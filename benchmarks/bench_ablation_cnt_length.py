"""Ablation — correlation benefit versus CNT length (the paper's LCNT knob).

Equation 3.2 makes the relaxation factor proportional to the CNT length, and
the paper's deferred "CNT length variation" discussion is implemented in
:mod:`repro.analysis.length_variation`.  This ablation sweeps the mean CNT
length for fixed and exponentially distributed lengths and reports the
effective relaxation, showing (a) the linear dependence on the mean length
and (b) that length *spread* does not erode the benefit under the paper's
perfect-within-tube-correlation assumption.
"""

import numpy as np

from repro.analysis.length_variation import LengthVariationStudy
from repro.constants import DEFAULT_MIN_CNFET_DENSITY_PER_UM


def _sweep(mean_lengths):
    study = LengthVariationStudy(
        min_cnfet_density_per_um=DEFAULT_MIN_CNFET_DENSITY_PER_UM,
        device_failure_probability=1e-6,
    )
    fixed = study.sweep_mean_length(mean_lengths, "fixed", n_segments=60_000)
    exponential = study.sweep_mean_length(mean_lengths, "exponential", n_segments=60_000)
    return fixed, exponential


def test_ablation_cnt_length(benchmark):
    mean_lengths = [10.0, 50.0, 100.0, 200.0, 400.0]
    fixed, exponential = benchmark(lambda: _sweep(mean_lengths))

    print("\n=== Ablation: relaxation factor vs CNT length ===")
    print("mean LCNT (um)   naive (Eq. 3.2)   fixed length   exponential length")
    for mean, f, e in zip(mean_lengths, fixed, exponential):
        print(f"{mean:14.0f}   {f.naive_relaxation:15.1f}   {f.effective_relaxation:12.1f}"
              f"   {e.effective_relaxation:18.1f}")

    fixed_relax = np.array([r.effective_relaxation for r in fixed])
    exp_relax = np.array([r.effective_relaxation for r in exponential])
    naive = np.array([r.naive_relaxation for r in fixed])

    # Linear growth with the mean length (Eq. 3.2) for fixed lengths.
    assert np.all(np.diff(fixed_relax) > 0)
    assert np.allclose(fixed_relax, naive, rtol=0.08)
    # Exponential spread never erodes the benefit below the fixed-length case
    # by more than sampling noise.
    assert np.all(exp_relax >= 0.95 * fixed_relax)
    # The paper's 200 um point lands at ≈360X.
    idx_200 = mean_lengths.index(200.0)
    assert fixed_relax[idx_200] == __import__("pytest").approx(360.0, rel=0.05)
