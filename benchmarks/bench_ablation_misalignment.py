"""Ablation — growth-direction misalignment versus the correlation benefit.

The aligned-active optimisation assumes CNTs run parallel to the placement
rows over the whole CNT length.  A misalignment angle θ makes a tube leave
the Wmin-wide aligned band after roughly W / tan(θ), truncating the
effective correlation length of Eq. 3.2.  This ablation sweeps the
misalignment spread and reports the surviving relaxation factor, which tells
a process engineer how tight the growth-direction control must be for the
paper's 350X benefit to hold.
"""

import numpy as np

from repro.analysis.mispositioned import MisalignmentImpactModel


def test_ablation_misalignment(benchmark, setup):
    model = MisalignmentImpactModel(
        band_width_nm=setup.wmin_correlated_nm(),
        cnt_length_um=setup.correlation.cnt_length_um,
        min_cnfet_density_per_um=setup.correlation.min_cnfet_density_per_um,
    )
    sigmas = [0.0, 0.01, 0.05, 0.1, 0.5, 1.0]
    results = benchmark(lambda: model.sweep(sigmas, n_samples=10_000))

    print("\n=== Ablation: growth-direction misalignment ===")
    print("sigma (deg)   eff. corr. length (um)   relaxation (X)   retention")
    for sigma, result in zip(sigmas, results):
        print(f"{sigma:11.2f}   {result.effective_correlation_length_um:22.1f}"
              f"   {result.effective_relaxation:14.1f}"
              f"   {result.relaxation_retention:9.2f}")

    relaxations = np.array([r.effective_relaxation for r in results])
    # Monotone degradation with the misalignment spread.
    assert np.all(np.diff(relaxations) <= 1e-9)
    # Perfect alignment recovers the full Eq. 3.2 factor.
    assert results[0].effective_relaxation == __import__("pytest").approx(
        360.0, rel=0.05
    )
    # Sub-0.05-degree control keeps more than half of the benefit; one degree
    # of spread destroys most of it — the quantitative version of the paper's
    # reliance on well-aligned quartz growth.
    assert results[2].relaxation_retention > 0.5
    assert results[-1].relaxation_retention < 0.2
