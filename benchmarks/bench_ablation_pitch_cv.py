"""Ablation — sensitivity of Wmin and the penalty to the pitch-variation model.

DESIGN.md calls out the inter-CNT pitch coefficient of variation (σS/µS) as
the main calibration knob of the reproduction: the paper keeps the ratio
from prior measurements without quoting it.  This ablation sweeps the CV
from a perfectly regular array (CV = 0) to strongly clumped growth (CV = 1.5)
and reports how Wmin, the relaxed Wmin and the 45 nm penalty respond, which
bounds how far the calibration choice can move the headline numbers.
"""

import numpy as np

from repro.core.calibration import CalibratedSetup
from repro.core.upsizing import UpsizingAnalysis


def _sweep(openrisc_design, cv_values):
    rows = []
    for cv in cv_values:
        setup = CalibratedSetup(pitch_cv=cv)
        wmin = setup.wmin_uncorrelated_nm()
        wmin_relaxed = setup.wmin_correlated_nm()
        analysis = UpsizingAnalysis(openrisc_design.widths_nm, openrisc_design.counts)
        rows.append({
            "cv": cv,
            "wmin_nm": wmin,
            "wmin_relaxed_nm": wmin_relaxed,
            "penalty_pct": 100.0 * analysis.capacitance_penalty(wmin),
            "penalty_relaxed_pct": 100.0 * analysis.capacitance_penalty(wmin_relaxed),
        })
    return rows


def test_ablation_pitch_cv(benchmark, openrisc_design):
    cv_values = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5]
    rows = benchmark(lambda: _sweep(openrisc_design, cv_values))

    print("\n=== Ablation: inter-CNT pitch CV (sigma_S / mu_S) ===")
    print("CV     Wmin (nm)   Wmin relaxed (nm)   penalty (%)   penalty relaxed (%)")
    for row in rows:
        print(f"{row['cv']:4.2f}   {row['wmin_nm']:9.1f}   {row['wmin_relaxed_nm']:17.1f}"
              f"   {row['penalty_pct']:11.1f}   {row['penalty_relaxed_pct']:19.1f}")

    wmins = np.array([row["wmin_nm"] for row in rows])
    relaxed = np.array([row["wmin_relaxed_nm"] for row in rows])
    # More pitch variation -> more density variation -> larger Wmin.
    assert np.all(np.diff(wmins) >= -1e-6)
    # The correlation benefit survives every calibration: relaxed Wmin is
    # always meaningfully smaller than the baseline.
    assert np.all(relaxed < wmins)
    assert np.all(wmins / relaxed > 1.2)
    # The default calibration (CV = 1) sits in the paper's regime.
    default_row = rows[cv_values.index(1.0)]
    assert 150.0 <= default_row["wmin_nm"] <= 185.0
