"""Ablation — one versus two aligned active regions per polarity.

Sec. 3.3 of the paper notes that the area penalty can be removed entirely by
providing two aligned active regions instead of one, at the cost of a 2X
reduction in the pRF benefit (and a < 5 % increase in Wmin).  This ablation
quantifies that trade-off end to end on both synthetic libraries.
"""

from repro.cells.aligned_active import enforce_aligned_active
from repro.cells.area import area_penalty_report
from repro.core.correlation import CorrelationParameters, RowYieldModel


def _trade_off(setup, library, groups_list):
    rows = []
    for groups in groups_list:
        params = CorrelationParameters(
            cnt_length_um=setup.correlation.cnt_length_um,
            min_cnfet_density_per_um=setup.correlation.min_cnfet_density_per_um,
            aligned_region_groups=groups,
        )
        row_model = RowYieldModel(parameters=params, count_model=setup.count_model)
        relaxation = row_model.relaxation_factor(setup.required_pf())
        wmin = setup.wmin_solver.solve_simplified(
            setup.min_size_device_count, relaxation_factor=relaxation
        ).wmin_nm
        report = area_penalty_report(
            enforce_aligned_active(library, wmin, aligned_region_groups=groups)
        )
        rows.append({
            "groups": groups,
            "relaxation": relaxation,
            "wmin_nm": wmin,
            "cells_with_penalty": report.penalised_cell_count,
            "max_penalty_pct": report.max_penalty_percent,
        })
    return rows


def test_ablation_aligned_region_count(benchmark, setup, nangate45, commercial65):
    results = benchmark(
        lambda: {
            "nangate45": _trade_off(setup, nangate45, [1, 2]),
            "commercial65": _trade_off(setup, commercial65, [1, 2]),
        }
    )

    print("\n=== Ablation: one vs two aligned active regions ===")
    for library_name, rows in results.items():
        print(f"-- {library_name} --")
        print("regions   relaxation   Wmin (nm)   cells w/ penalty   max penalty (%)")
        for row in rows:
            print(f"{row['groups']:7d}   {row['relaxation']:10.1f}   {row['wmin_nm']:9.1f}"
                  f"   {row['cells_with_penalty']:16d}   {row['max_penalty_pct']:15.1f}")

    for rows in results.values():
        one, two = rows
        # Two regions halve the correlation benefit ...
        assert one["relaxation"] / two["relaxation"] == __import__("pytest").approx(
            2.0, rel=0.01
        )
        # ... cost only a few percent of Wmin ...
        assert two["wmin_nm"] / one["wmin_nm"] < 1.08
        # ... and remove the area penalty entirely.
        assert two["cells_with_penalty"] == 0
        assert one["cells_with_penalty"] >= two["cells_with_penalty"]
