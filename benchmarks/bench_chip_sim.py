"""Throughput benchmark of the chip-level Monte Carlo engines.

Times the scalar (pre-vectorisation oracle) and the vectorized batched
engine on the Nangate45 OpenRISC-like block, and writes
``BENCH_chip_sim.json`` at the repository root with trials/sec and
device-windows/sec for both, so future PRs can track the performance
trajectory.  Runs as a pytest test (``pytest benchmarks/bench_chip_sim.py``)
or standalone (``python benchmarks/bench_chip_sim.py``).

Set ``REPRO_BENCH_QUICK=1`` for a smaller design and fewer trials (the CI
smoke configuration).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_json
from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chip_sim.json"


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _build_simulator(scale: float) -> ChipMonteCarlo:
    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=scale, seed=2010)
    placement = RowPlacement(design, row_width_nm=40_000.0)
    # The sparse-growth corner keeps per-device failures measurable, the
    # same configuration the validation tests use.
    return ChipMonteCarlo(
        placement,
        pitch=ExponentialPitch(20.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
    )


def _time_engine(run, n_trials: int, seed: int, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time; the first pass warms the allocator."""
    best = float("inf")
    for _ in range(repeats):
        rng = np.random.default_rng(seed)
        start = time.perf_counter()
        run(n_trials, rng)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(scale: float, scalar_trials: int, vector_trials: int) -> dict:
    """Measure both engines and return the benchmark record."""
    simulator = _build_simulator(scale)

    scalar_s = _time_engine(simulator.run_scalar, scalar_trials, seed=1)
    vector_s = _time_engine(simulator.run, vector_trials, seed=1, repeats=2)

    scalar_tps = scalar_trials / scalar_s
    vector_tps = vector_trials / vector_s
    device_count = simulator.device_count
    return {
        "benchmark": "ChipMonteCarlo.run on Nangate45 OpenRISC-like block",
        "quick_mode": _quick_mode(),
        "design": {
            "scale": scale,
            "device_count": device_count,
            "distinct_windows": int(simulator._geometry.window_lo.size),
            "rows": int(simulator._geometry.n_rows),
        },
        "scalar": {
            "n_trials": scalar_trials,
            "seconds": scalar_s,
            "trials_per_sec": scalar_tps,
            "device_windows_per_sec": scalar_tps * device_count,
        },
        "vectorized": {
            "n_trials": vector_trials,
            "seconds": vector_s,
            "trials_per_sec": vector_tps,
            "device_windows_per_sec": vector_tps * device_count,
        },
        "speedup": vector_tps / scalar_tps,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_vectorized_engine_speedup():
    """The batched engine must stay well ahead of the scalar oracle."""
    if _quick_mode():
        record = run_benchmark(scale=0.05, scalar_trials=5, vector_trials=50)
        floor = 5.0
    else:
        record = run_benchmark(scale=0.25, scalar_trials=10, vector_trials=200)
        floor = 20.0

    atomic_write_json(RESULT_PATH, record)

    print(f"\n=== Chip Monte Carlo throughput ({'quick' if record['quick_mode'] else 'full'}) ===")
    print(f"devices              : {record['design']['device_count']}")
    print(f"scalar trials/sec    : {record['scalar']['trials_per_sec']:.2f}")
    print(f"vectorized trials/sec: {record['vectorized']['trials_per_sec']:.2f}")
    print(f"speedup              : {record['speedup']:.1f}X")
    print(f"written              : {RESULT_PATH}")

    assert record["speedup"] >= floor, (
        f"vectorized engine only {record['speedup']:.1f}X faster "
        f"(floor {floor:.0f}X)"
    )


if __name__ == "__main__":
    test_vectorized_engine_speedup()
