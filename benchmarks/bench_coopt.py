"""Benchmark of the Pareto process/design co-optimization driver.

Runs :class:`~repro.core.coopt.ParetoCoOptimizer` on the OpenRISC width
histogram at the 99 % chip-yield target and writes ``BENCH_coopt.json``
at the repository root.  Two headline checks:

* **front quality** — the search must find at least one configuration
  that meets the yield target at a capacitance penalty no worse than the
  uniform-upsizing baseline of
  :class:`~repro.core.optimizer.CoOptimizationFlow` (the ladder contains
  the uniform plan, so losing to it would be a bug, not a tuning issue);
* **throughput** — at least 1e4 candidate evaluations/sec through the
  bounded serving tier (the measured figure is typically far higher:
  the chip log-yield is additive across width classes, so the full
  design cross product reduces to one batched service query per process
  point plus an outer-sum).

Runs as a pytest test (``pytest benchmarks/bench_coopt.py``) or
standalone (``python benchmarks/bench_coopt.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.core.calibration import CalibratedSetup
from repro.core.coopt import ParetoCoOptimizer, process_grid
from repro.netlist.openrisc import openrisc_width_histogram
from repro.resilience.atomic import atomic_write_json

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_coopt.json"

EVALS_PER_SEC_FLOOR = 1.0e4
YIELD_TARGET = 0.99


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_optimizer(extra_levels: int, densities: int) -> ParetoCoOptimizer:
    """Co-optimizer over a density grid around the nominal 250 /µm point."""
    setup = CalibratedSetup(yield_target=YIELD_TARGET)
    design = openrisc_width_histogram(setup.chip_transistor_count)
    rho = [200.0 + i * (150.0 / (densities - 1)) for i in range(densities)]
    return ParetoCoOptimizer(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        process_points=process_grid(densities_per_um=rho),
        extra_levels=extra_levels,
        max_combos=2_000_000,
    )


def run_benchmark(extra_levels: int, densities: int,
                  validate_trials: int) -> dict:
    optimizer = build_optimizer(extra_levels, densities)
    # Warm-up: surfaces build once and are reused by the timed run.
    start = time.perf_counter()
    result = optimizer.run(validate_trials=validate_trials, validate_top=1)
    total_seconds = time.perf_counter() - start

    best = result.best
    return {
        "benchmark": "process/design co-optimization Pareto search",
        "quick_mode": _quick_mode(),
        "yield_target": result.yield_target,
        "search_space": {
            "process_points": result.process_point_count,
            "extra_levels": extra_levels,
            "combos_per_process_point": optimizer.combos_per_process_point(),
            "candidates_total": result.candidates_evaluated,
        },
        "front_quality": {
            "meets_target": result.meets_target,
            "beats_uniform": result.beats_uniform,
            "front_size": len(result.front),
            "best": best.describe() if best else None,
            "uniform_wmin_nm": result.uniform_wmin_nm,
            "uniform_penalty": result.uniform_penalty,
            "uniform_baseline_wmin_nm": result.uniform_baseline_wmin_nm,
            "uniform_baseline_penalty": result.uniform_baseline_penalty,
            "penalty_vs_uniform": (
                best.capacitance_penalty - result.uniform_penalty
                if best else None
            ),
        },
        "pruning": {
            "pruned_by_upper_bound": result.candidates_pruned,
            "escalated_to_exact": result.candidates_escalated,
            "feasible": result.candidates_feasible,
        },
        "throughput": {
            "surface_build_seconds": result.surface_build_seconds,
            "inner_loop_seconds": result.inner_loop_seconds,
            "total_seconds": total_seconds,
            "evaluations_per_sec": result.evaluations_per_second,
            "floor": EVALS_PER_SEC_FLOOR,
        },
        "validations": [v.describe() for v in result.validations],
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_coopt_front_quality_and_throughput():
    """Front beats the uniform baseline; ≥1e4 candidate evals/sec."""
    if _quick_mode():
        record = run_benchmark(extra_levels=12, densities=5,
                               validate_trials=32)
    else:
        record = run_benchmark(extra_levels=40, densities=13,
                               validate_trials=256)

    atomic_write_json(RESULT_PATH, record)

    quality = record["front_quality"]
    rate = record["throughput"]["evaluations_per_sec"]
    print(f"\n=== Co-optimization Pareto search "
          f"({'quick' if record['quick_mode'] else 'full'}) ===")
    print(f"search space         : {record['search_space']['process_points']} "
          f"process points x "
          f"{record['search_space']['combos_per_process_point']} combos = "
          f"{record['search_space']['candidates_total']} candidates")
    print(f"pruned / escalated   : "
          f"{record['pruning']['pruned_by_upper_bound']} / "
          f"{record['pruning']['escalated_to_exact']}")
    print(f"best penalty         : "
          f"{100 * quality['best']['capacitance_penalty']:.2f} % "
          f"(uniform baseline {100 * quality['uniform_penalty']:.2f} %)")
    print(f"throughput           : {rate:.3e} candidate evals/sec "
          f"(floor {EVALS_PER_SEC_FLOOR:.0e})")
    print(f"written              : {RESULT_PATH}")

    assert quality["meets_target"], "no configuration met the yield target"
    assert quality["beats_uniform"], (
        "best penalty lost to the uniform-upsizing baseline: "
        f"{quality['best']['capacitance_penalty']} > "
        f"{quality['uniform_penalty']}"
    )
    assert rate >= EVALS_PER_SEC_FLOOR, (
        f"inner loop {rate:.3e} evals/sec below the "
        f"{EVALS_PER_SEC_FLOOR:.0e} floor"
    )
    for validation in record["validations"]:
        assert abs(validation["z_score"]) < 6.0, (
            "Monte Carlo validation disagrees with the serving-tier "
            f"prediction: {validation}"
        )


if __name__ == "__main__":
    test_coopt_front_quality_and_throughput()
