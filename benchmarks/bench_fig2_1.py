"""Figure 2.1 — CNFET failure probability pF versus width W.

Regenerates the three processing-corner curves, the per-device budget line
(1 - Yield)/Mmin ≈ 3e-9 and the widths at which the worst-corner curve
crosses the unrelaxed and relaxed budgets (the paper's 155 nm and 103 nm
markers, 168 nm and 118 nm with this reproduction's calibration).
"""

import numpy as np

from benchmarks.conftest import print_records
from repro.constants import (
    PAPER_WMIN_CORRELATED_NM,
    PAPER_WMIN_UNCORRELATED_NM,
)
from repro.reporting.experiments import record_from_numbers
from repro.reporting.figures import fig2_1_data


def test_fig2_1_failure_probability_curves(benchmark, setup):
    widths = np.arange(20.0, 181.0, 2.0)
    data = benchmark(lambda: fig2_1_data(setup=setup, widths_nm=widths))

    # Print the reproduced series (one row per 20 nm) the way the figure
    # reports them: width versus pF per processing corner.
    print("\n=== Fig. 2.1: pF vs W (selected points) ===")
    header = "W (nm)  " + "  ".join(f"{name:>22}" for name in data["curves"])
    print(header)
    for i in range(0, widths.size, 10):
        row = f"{widths[i]:6.0f}  " + "  ".join(
            f"{data['curves'][name][i]:22.3e}" for name in data["curves"]
        )
        print(row)
    print(f"budget pF          : {data['budget_pf']:.3e}")
    print(f"relaxed budget pF  : {data['relaxed_budget_pf']:.3e}")

    records = [
        record_from_numbers(
            "Fig2.1", "Wmin at unrelaxed budget",
            PAPER_WMIN_UNCORRELATED_NM, data["wmin_unrelaxed_nm"], unit="nm",
        ),
        record_from_numbers(
            "Fig2.1", "Wmin at relaxed budget",
            PAPER_WMIN_CORRELATED_NM, data["wmin_relaxed_nm"], unit="nm",
        ),
        record_from_numbers(
            "Fig2.1", "budget pF (1-Y)/Mmin", 3.0e-9, data["budget_pf"],
        ),
        record_from_numbers(
            "Fig2.1", "relaxed budget pF", 1.1e-6, data["relaxed_budget_pf"],
        ),
    ]
    print_records("Fig. 2.1 paper vs measured", records)

    # Shape assertions: exponential decrease, correct corner ordering and the
    # relaxed crossing sitting well below the unrelaxed one.
    worst = data["curves"]["pm=33%, pRs=30%"]
    best = data["curves"]["pm=0%, pRs=0%"]
    assert worst[0] > worst[-1]
    assert np.all(worst >= best)
    assert data["wmin_relaxed_nm"] < data["wmin_unrelaxed_nm"]
    assert data["wmin_unrelaxed_nm"] / data["wmin_relaxed_nm"] > 1.3
