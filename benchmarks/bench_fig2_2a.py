"""Figure 2.2a — transistor-width distribution of the OpenRISC case study.

Regenerates the width histogram both from the calibrated statistical design
(the series used by the chip-level analyses) and from the concrete synthetic
OpenRISC-like netlist mapped onto the Nangate-45-like library, and reports
the fraction of devices in the two smallest bins (the paper's Mmin ≈ 33 %).
"""

from benchmarks.conftest import print_records
from repro.netlist.openrisc import build_openrisc_like_design
from repro.reporting.experiments import record_from_numbers
from repro.reporting.figures import fig2_2a_data


def test_fig2_2a_width_histogram(benchmark, openrisc_design):
    data = benchmark(lambda: fig2_2a_data(design=openrisc_design))

    print("\n=== Fig. 2.2a: transistor width histogram ===")
    print("width (nm)   share (%)")
    for center, pct in zip(data["bin_centers_nm"], data["percentages"]):
        print(f"{center:10.0f}   {pct:8.1f}")

    records = [
        record_from_numbers(
            "Fig2.2a", "fraction of devices in two smallest bins (Mmin/M)",
            0.33, data["min_size_fraction"],
        ),
        record_from_numbers(
            "Fig2.2a", "total transistor count M",
            1.0e8, data["transistor_count"],
        ),
    ]
    print_records("Fig. 2.2a paper vs measured", records)

    assert abs(data["min_size_fraction"] - 0.33) < 0.01
    assert list(data["bin_centers_nm"]) == [80.0, 160.0, 240.0, 320.0]


def test_fig2_2a_concrete_netlist_histogram(benchmark, nangate45):
    design = benchmark(
        lambda: build_openrisc_like_design(nangate45, scale=0.25, seed=2010)
    )
    histogram = design.width_histogram(bin_width_nm=80.0)

    print("\n=== Fig. 2.2a (concrete synthetic netlist) ===")
    print(f"instances: {design.instance_count}, transistors: {design.transistor_count}")
    print("width (nm)   share (%)")
    for center, fraction in zip(histogram.bin_centers_nm, histogram.fractions):
        print(f"{center:10.0f}   {100.0 * fraction:8.1f}")

    small_fraction = histogram.fraction_below(160.0)
    print(f"fraction at or below 160 nm: {small_fraction:.2f} (paper: 0.33)")
    assert 0.2 <= small_fraction <= 0.9
