"""Figure 2.2b — upsizing penalty versus technology node (uncorrelated case).

Regenerates the gate-capacitance penalty of upsizing every small CNFET to
the uncorrelated Wmin, for the 45/32/22/16 nm nodes, with the width
distribution scaled linearly and the inter-CNT pitch held at 4 nm.
"""

import numpy as np

from benchmarks.conftest import print_records
from repro.reporting.experiments import ExperimentRecord
from repro.reporting.figures import fig2_2b_data


def test_fig2_2b_penalty_versus_node(benchmark, setup, openrisc_design):
    data = benchmark(lambda: fig2_2b_data(setup=setup, design=openrisc_design))

    print("\n=== Fig. 2.2b: upsizing penalty vs node (no correlation) ===")
    print(f"Wmin used: {data['wmin_nm']:.1f} nm")
    print("node (nm)   penalty (%)")
    for node, penalty in zip(data["nodes_nm"], data["penalty_percent"]):
        print(f"{node:9.0f}   {penalty:10.1f}")

    records = [
        ExperimentRecord(
            "Fig2.2b", "penalty trend across 45/32/22/16 nm",
            "grows steeply towards ~100 % at 16 nm",
            f"{data['penalty_percent'][0]:.1f} % -> {data['penalty_percent'][-1]:.1f} %",
            "monotone increase reproduced",
        ),
    ]
    print_records("Fig. 2.2b paper vs measured", records)

    penalties = np.asarray(data["penalty_percent"])
    # Shape: strictly increasing as the node shrinks, small at 45 nm,
    # approaching the ~100 % regime at 16 nm.
    assert np.all(np.diff(penalties) > 0)
    assert penalties[0] < 20.0
    assert penalties[-1] > 50.0
