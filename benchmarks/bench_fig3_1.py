"""Figure 3.1 — CNT sharing/correlation under the three growth/layout styles.

The paper's Fig. 3.1 illustrates (a) uncorrelated growth, (b) directional
growth with a non-aligned layout and (c) directional growth with an
aligned-active layout.  The quantitative counterpart regenerated here is the
correlation coefficient of the working-CNT counts of two equal-width FETs
1 µm apart along the growth direction, simulated with the growth substrate.
"""

from benchmarks.conftest import print_records
from repro.reporting.experiments import ExperimentRecord
from repro.reporting.figures import fig3_1_data


def test_fig3_1_count_correlation(benchmark):
    data = benchmark(lambda: fig3_1_data(n_samples=200, seed=31))

    print("\n=== Fig. 3.1: CNT count correlation between two FETs (1 um apart) ===")
    print(f"(a) uncorrelated growth, any layout     : "
          f"{data['correlation_uncorrelated_growth']:+.3f}")
    print(f"(b) directional growth, non-aligned     : "
          f"{data['correlation_directional_non_aligned']:+.3f}")
    print(f"(c) directional growth, aligned-active  : "
          f"{data['correlation_directional_aligned']:+.3f}")

    records = [
        ExperimentRecord(
            "Fig3.1", "count correlation, uncorrelated growth",
            "~0 (independent tubes)",
            f"{data['correlation_uncorrelated_growth']:+.2f}",
        ),
        ExperimentRecord(
            "Fig3.1", "count correlation, directional + aligned-active",
            "~1 (same tubes shared)",
            f"{data['correlation_directional_aligned']:+.2f}",
        ),
    ]
    print_records("Fig. 3.1 paper vs measured", records)

    assert data["correlation_directional_aligned"] > 0.8
    assert abs(data["correlation_uncorrelated_growth"]) < 0.35
    assert (
        data["correlation_directional_aligned"]
        > data["correlation_directional_non_aligned"]
    )
