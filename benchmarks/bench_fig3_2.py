"""Figure 3.2 — aligned-active enforcement on the AOI222_X1 cell.

The paper shows the AOI222_X1 cell of the Nangate library before and after
the aligned-active restriction: the critical n-type active regions are
upsized, every n-type region ends up on the global grid, and the cell grows
about 9 % wider.  This benchmark applies the transform to the synthetic
AOI222_X1 and reports the same quantities.
"""

from benchmarks.conftest import print_records
from repro.cells.aligned_active import AlignedActiveTransform
from repro.constants import PAPER_AOI222_WIDTH_INCREASE
from repro.device.active_region import Polarity
from repro.reporting.experiments import record_from_numbers


def test_fig3_2_aoi222_modification(benchmark, nangate45, setup):
    wmin = setup.wmin_correlated_nm()
    transform = AlignedActiveTransform(wmin_nm=wmin)
    cell = nangate45.get("AOI222_X1")

    result = benchmark(lambda: transform.apply_to_cell(cell))

    print("\n=== Fig. 3.2: AOI222_X1 before/after aligned-active enforcement ===")
    print(f"Wmin used                    : {wmin:.1f} nm")
    print(f"cell width before            : {result.original.width_nm:.0f} nm "
          f"({result.original.n_columns} columns)")
    print(f"cell width after             : {result.modified.width_nm:.0f} nm "
          f"({result.modified.n_columns} columns)")
    print(f"critical devices             : {result.critical_device_count}")
    print(f"devices upsized to Wmin      : {result.upsized_device_count}")
    print(f"cell width increase          : {100.0 * result.width_penalty:.1f} %")

    records = [
        record_from_numbers(
            "Fig3.2", "AOI222_X1 cell-width increase",
            100.0 * PAPER_AOI222_WIDTH_INCREASE, 100.0 * result.width_penalty,
            unit="%",
        ),
    ]
    print_records("Fig. 3.2 paper vs measured", records)

    # Shape assertions: the cell widens by a single column (≈9 %), every
    # critical n-type device is upsized to Wmin, and no column stacks more
    # than one critical n-device after the transform.
    assert result.extra_columns == 1
    assert abs(result.width_penalty - PAPER_AOI222_WIDTH_INCREASE) < 0.02
    for transistor in result.modified.transistors_of(Polarity.NFET):
        assert transistor.width_nm >= min(wmin, 320.0) - 1e-9
    assert transform._conflicting_columns(result.modified, Polarity.NFET) == {}
