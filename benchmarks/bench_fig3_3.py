"""Figure 3.3 — upsizing penalty versus node, with and without correlation.

Regenerates the two series of Fig. 3.3: the baseline penalty (Wmin from the
uncorrelated analysis, replicated from Fig. 2.2b) and the penalty after
enforcing directional growth plus aligned-active cells (Wmin relaxed by the
≈350X factor), across the 45/32/22/16 nm nodes.
"""

import numpy as np

from benchmarks.conftest import print_records
from repro.reporting.experiments import ExperimentRecord
from repro.reporting.figures import fig3_3_data


def test_fig3_3_penalty_with_and_without_correlation(benchmark, setup, openrisc_design):
    data = benchmark(lambda: fig3_3_data(setup=setup, design=openrisc_design))

    print("\n=== Fig. 3.3: upsizing penalty vs node ===")
    print(f"Wmin without correlation : {data['wmin_without_nm']:.1f} nm")
    print(f"Wmin with correlation    : {data['wmin_with_nm']:.1f} nm")
    print("node (nm)   without corr. (%)   with corr. + aligned (%)")
    for node, a, b in zip(
        data["nodes_nm"],
        data["penalty_without_correlation_percent"],
        data["penalty_with_correlation_percent"],
    ):
        print(f"{node:9.0f}   {a:17.1f}   {b:24.1f}")

    without_45 = data["penalty_without_correlation_percent"][0]
    with_45 = data["penalty_with_correlation_percent"][0]
    records = [
        ExperimentRecord(
            "Fig3.3", "penalty at 45 nm after optimization",
            "almost completely eliminated",
            f"{without_45:.1f} % -> {with_45:.1f} %",
        ),
        ExperimentRecord(
            "Fig3.3", "penalty ordering at every node",
            "optimized curve below baseline at 45/32/22/16 nm",
            "reproduced" if np.all(
                np.asarray(data["penalty_with_correlation_percent"])
                <= np.asarray(data["penalty_without_correlation_percent"])
            ) else "NOT reproduced",
        ),
    ]
    print_records("Fig. 3.3 paper vs measured", records)

    without = np.asarray(data["penalty_without_correlation_percent"])
    with_corr = np.asarray(data["penalty_with_correlation_percent"])
    assert np.all(with_corr <= without)
    assert with_45 < 0.6 * without_45
    assert np.all(np.diff(without) > 0)
    assert np.all(np.diff(with_corr) > 0)
