"""Headline result — the end-to-end processing/design co-optimization flow.

Runs the full flow of the paper on the OpenRISC-like case study and reports
the headline numbers: the ≈350X relaxation of the device-level failure
probability requirement, the Wmin reduction it enables, and the resulting
elimination of most of the upsizing penalty at 45 nm.
"""

from benchmarks.conftest import print_records
from repro.constants import (
    PAPER_RELAXATION_FACTOR,
    PAPER_WMIN_CORRELATED_NM,
    PAPER_WMIN_UNCORRELATED_NM,
)
from repro.core.optimizer import CoOptimizationFlow
from repro.reporting.experiments import record_from_numbers


def test_headline_co_optimization(benchmark, setup, openrisc_design):
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=openrisc_design.widths_nm,
        counts=openrisc_design.counts,
        min_size_device_count=openrisc_design.min_size_device_count,
    )
    report = benchmark(flow.run)

    print("\n=== Headline: processing/design co-optimization ===")
    for line in report.summary_lines():
        print(line)

    records = [
        record_from_numbers(
            "Headline", "relaxation of device pF requirement",
            PAPER_RELAXATION_FACTOR, report.relaxation_factor, unit="X",
        ),
        record_from_numbers(
            "Headline", "Wmin without correlation",
            PAPER_WMIN_UNCORRELATED_NM, report.baseline_wmin.wmin_nm, unit="nm",
        ),
        record_from_numbers(
            "Headline", "Wmin with correlation + aligned-active",
            PAPER_WMIN_CORRELATED_NM, report.optimized_wmin.wmin_nm, unit="nm",
        ),
        record_from_numbers(
            "Headline", "Wmin ratio (baseline / optimized)",
            PAPER_WMIN_UNCORRELATED_NM / PAPER_WMIN_CORRELATED_NM,
            report.baseline_wmin.wmin_nm / report.optimized_wmin.wmin_nm,
        ),
    ]
    print_records("Headline paper vs measured", records)

    assert 300.0 <= report.relaxation_factor <= 400.0
    assert report.optimized_wmin.wmin_nm < report.baseline_wmin.wmin_nm
    assert (
        report.optimized_upsizing.capacitance_penalty
        < report.baseline_upsizing.capacitance_penalty
    )
