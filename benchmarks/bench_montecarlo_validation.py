"""Monte Carlo validation of the analytical models.

Not a paper figure, but the reproduction's evidence that the closed-form
pipeline is trustworthy: the device failure probability (Eq. 2.2) and the
row failure probabilities of the three Table 1 scenarios (Eq. 3.1) are
re-estimated by direct simulation of CNT growth and compared against the
analytical values.
"""

from benchmarks.conftest import print_records
from repro.core.correlation import LayoutScenario
from repro.montecarlo.experiments import (
    compare_device_failure,
    compare_row_scenarios,
    relaxation_factor_comparison,
)
from repro.reporting.experiments import ExperimentRecord


def test_device_failure_validation(benchmark):
    record = benchmark(
        lambda: compare_device_failure(width_nm=48.0, n_samples=40_000, seed=17)
    )

    print("\n=== Monte Carlo validation: device failure probability ===")
    print(f"analytic pF(48 nm)    : {record.analytic:.3e}")
    print(f"Monte Carlo pF(48 nm) : {record.monte_carlo:.3e} "
          f"(± {record.standard_error:.1e})")

    print_records("Eq. 2.2 validation", [
        ExperimentRecord(
            "MC", "pF(48 nm), analytic vs simulated",
            f"{record.analytic:.3e}", f"{record.monte_carlo:.3e}",
            "agree" if record.agrees() else "DISAGREE",
        ),
    ])
    assert record.agrees(n_sigma=4.0, rtol=0.1)


def test_row_scenario_validation(benchmark):
    records = benchmark(
        lambda: compare_row_scenarios(
            device_width_nm=24.0, devices_per_segment=15, n_samples=5_000, seed=5
        )
    )

    print("\n=== Monte Carlo validation: row failure probabilities ===")
    for scenario, record in records.items():
        print(f"{scenario.value:28}: analytic {record.analytic:.3e}  "
              f"MC {record.monte_carlo:.3e} (± {record.standard_error:.1e})")

    aligned = records[LayoutScenario.DIRECTIONAL_ALIGNED]
    uncorrelated = records[LayoutScenario.UNCORRELATED_GROWTH]
    middle = records[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
    assert aligned.agrees(n_sigma=5.0, rtol=0.35)
    assert uncorrelated.agrees(n_sigma=5.0, rtol=0.35)
    assert aligned.monte_carlo <= middle.monte_carlo <= uncorrelated.monte_carlo * 1.1


def test_relaxation_factor_validation(benchmark):
    record = benchmark(
        lambda: relaxation_factor_comparison(
            device_width_nm=24.0, devices_per_segment=15, n_samples=5_000, seed=7
        )
    )

    print("\n=== Monte Carlo validation: relaxation factor ===")
    print(f"analytic ratio    : {record.analytic:.2f}X")
    print(f"Monte Carlo ratio : {record.monte_carlo:.2f}X (± {record.standard_error:.2f})")
    assert 1.0 < record.monte_carlo <= 15.5
    assert record.agrees(n_sigma=5.0, rtol=0.4)
