"""Variance-reduction benchmark of the rare-event importance sampler.

Measures the exponentially tilted device-tail estimator against naive
(Rao-Blackwellised) engine sampling at the paper's operating point —
pF = 1e-9, M = 1e8 minimum-size devices — and writes
``BENCH_rare_event.json`` at the repository root.  The headline figure is
the variance-reduction factor *at equal wall-clock*:

``VRF = (var_naive / var_tilted) · (rate_tilted / rate_naive)``

where the naive per-sample variance is computed analytically (exponential
pitch makes the count exactly Poisson, so ``Var[pf^N] = E[pf^2N] - pF²``
falls out of the count PGF; an empirical variance would need ~1e20 samples
at pF = 1e-9) and the tilted variance/throughput are measured.  The chip
yield assembled from the sampled tail must agree with the Eq. 2.3
first-order approximation within its reported standard error.

Runs as a pytest test (``pytest benchmarks/bench_rare_event.py``) or
standalone (``python benchmarks/bench_rare_event.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_json
from repro.core.circuit_yield import chip_yield_from_failure_estimate
from repro.core.count_model import PoissonCountModel
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.device_sim import DeviceMonteCarlo
from repro.montecarlo.rare_event import (
    default_tilt_factor,
    estimate_device_failure_tilted,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_rare_event.json"

MEAN_PITCH_NM = 4.0
TARGET_PF = 1e-9
DEVICE_COUNT = 1e8
#: The paper's pessimistic processing corner.
TYPE_MODEL = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def width_for_target_pf(target_pf: float) -> float:
    pf = TYPE_MODEL.per_cnt_failure_probability
    return MEAN_PITCH_NM * math.log(1.0 / target_pf) / (1.0 - pf)


def naive_variance_per_sample(width_nm: float) -> float:
    """Analytic per-sample variance of the naive ``pf^N`` estimator."""
    pf = TYPE_MODEL.per_cnt_failure_probability
    counts = PoissonCountModel(mean_pitch_nm=MEAN_PITCH_NM)
    second_moment = counts.pgf(width_nm, pf * pf)
    mean = counts.pgf(width_nm, pf)
    return second_moment - mean * mean


def run_benchmark(tilted_samples: int, naive_timing_samples: int) -> dict:
    pitch = ExponentialPitch(MEAN_PITCH_NM)
    pf = TYPE_MODEL.per_cnt_failure_probability
    width = width_for_target_pf(TARGET_PF)
    analytic_pf = math.exp(-(width / MEAN_PITCH_NM) * (1.0 - pf))

    # Tilted estimator: measured estimate, error and throughput.
    start = time.perf_counter()
    tilted = estimate_device_failure_tilted(
        pitch, pf, width, tilted_samples, np.random.default_rng(1)
    )
    tilted_seconds = time.perf_counter() - start
    tilted_rate = tilted_samples / tilted_seconds
    tilted_variance = tilted.variance_per_sample

    # Naive estimator: throughput measured, variance analytic (it cannot be
    # measured at pF = 1e-9 — that is the point of this benchmark).
    naive_mc = DeviceMonteCarlo(pitch=pitch, type_model=TYPE_MODEL)
    start = time.perf_counter()
    naive_mc.estimate(width, naive_timing_samples, np.random.default_rng(2))
    naive_seconds = time.perf_counter() - start
    naive_rate = naive_timing_samples / naive_seconds
    naive_variance = naive_variance_per_sample(width)

    variance_ratio = naive_variance / tilted_variance
    rate_ratio = tilted_rate / naive_rate
    vrf_equal_wallclock = variance_ratio * rate_ratio

    # Chip yield at the paper's operating point, Eq. 2.3 first order.
    sampled_yield = chip_yield_from_failure_estimate(
        tilted.estimate, tilted.standard_error, DEVICE_COUNT
    )
    analytic_yield = 1.0 - DEVICE_COUNT * analytic_pf
    yield_sigma = (
        abs(sampled_yield.yield_value - analytic_yield)
        / sampled_yield.standard_error
        if sampled_yield.standard_error > 0 else float("inf")
    )

    return {
        "benchmark": "rare-event tilted importance sampling, device tail",
        "quick_mode": _quick_mode(),
        "operating_point": {
            "target_pf": TARGET_PF,
            "device_count": DEVICE_COUNT,
            "width_nm": width,
            "mean_pitch_nm": MEAN_PITCH_NM,
            "per_cnt_failure": pf,
            "tilt_factor": default_tilt_factor(pitch, width, pf),
        },
        "tilted": {
            "n_samples": tilted_samples,
            "seconds": tilted_seconds,
            "samples_per_sec": tilted_rate,
            "estimate": tilted.estimate,
            "standard_error": tilted.standard_error,
            "relative_error": tilted.relative_error,
            "effective_sample_size": tilted.effective_sample_size,
            "variance_per_sample": tilted_variance,
        },
        "naive": {
            "n_timing_samples": naive_timing_samples,
            "samples_per_sec": naive_rate,
            "variance_per_sample_analytic": naive_variance,
        },
        "variance_reduction": {
            "variance_ratio": variance_ratio,
            "throughput_ratio": rate_ratio,
            "equal_wallclock_factor": vrf_equal_wallclock,
        },
        "chip_yield": {
            "analytic_first_order": analytic_yield,
            "sampled": sampled_yield.yield_value,
            "sampled_standard_error": sampled_yield.standard_error,
            "agreement_sigma": yield_sigma,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_rare_event_variance_reduction():
    """The tilted sampler must beat naive sampling by >= 100X at pF = 1e-9."""
    if _quick_mode():
        record = run_benchmark(tilted_samples=20_000, naive_timing_samples=20_000)
    else:
        record = run_benchmark(tilted_samples=200_000, naive_timing_samples=100_000)

    atomic_write_json(RESULT_PATH, record)

    vrf = record["variance_reduction"]["equal_wallclock_factor"]
    chip = record["chip_yield"]
    print(f"\n=== Rare-event variance reduction "
          f"({'quick' if record['quick_mode'] else 'full'}) ===")
    print(f"width for pF=1e-9    : {record['operating_point']['width_nm']:.1f} nm")
    print(f"tilted estimate      : {record['tilted']['estimate']:.4e} "
          f"({100 * record['tilted']['relative_error']:.2f} % rel err)")
    print(f"variance ratio       : {record['variance_reduction']['variance_ratio']:.3e}")
    print(f"throughput ratio     : {record['variance_reduction']['throughput_ratio']:.2f}")
    print(f"equal-wallclock VRF  : {vrf:.3e}")
    print(f"chip yield           : {chip['sampled']:.4f} vs {chip['analytic_first_order']:.4f} "
          f"({chip['agreement_sigma']:.2f} sigma)")
    print(f"written              : {RESULT_PATH}")

    assert vrf >= 100.0, f"variance reduction only {vrf:.1f}X (floor 100X)"
    assert chip["agreement_sigma"] <= 4.0, (
        "importance-sampled chip yield disagrees with Eq. 2.3: "
        f"{chip['sampled']} vs {chip['analytic_first_order']} "
        f"({chip['agreement_sigma']:.1f} sigma)"
    )


if __name__ == "__main__":
    test_rare_event_variance_reduction()
