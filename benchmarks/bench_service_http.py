"""Load test of the network-facing yield service (HTTP/ASGI tier).

Boots ``python -m repro.cli serve`` as a real subprocess over a
freshly-built device surface, drives ``POST /v1/query`` with persistent
keep-alive connections, and writes ``BENCH_service_http.json`` at the
repository root.  Three headline checks:

* **throughput** — at least 1e4 served yield queries/sec through the
  full network stack (HTTP parse, JSON validation, interpolation,
  bounds transform, JSON encode).  The API is batched, so the floor is
  on query *points* per second — the unit the co-optimization inner
  loop consumes — with the raw HTTP request rate recorded alongside;
* **latency** — client-observed p99 within the latency budget;
* **correctness** — the bounds on the wire are identical (after the
  JSON float round-trip) to the in-process
  :meth:`~repro.serving.service.YieldService.query` answer for the same
  batch.

Runs as a pytest test (``pytest benchmarks/bench_service_http.py``) or
standalone (``python benchmarks/bench_service_http.py [--quick]``).
Set ``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
if str(SRC_ROOT) not in sys.path:
    sys.path.insert(0, str(SRC_ROOT))

from repro.core.calibration import CalibratedSetup  # noqa: E402
from repro.growth.pitch import pitch_distribution_from_cv  # noqa: E402
from repro.resilience.atomic import atomic_write_json  # noqa: E402
from repro.serving import YieldService  # noqa: E402
from repro.surface import (  # noqa: E402
    GridAxis,
    SurfaceBuilder,
    SurfaceStore,
    SweepSpec,
)

RESULT_PATH = REPO_ROOT / "BENCH_service_http.json"

#: Floor on batched query-point throughput through the HTTP stack.
QUERY_THROUGHPUT_FLOOR = 1.0e4

#: Client-observed p99 latency budget per request (seconds).
P99_LATENCY_BUDGET_S = 0.050

W_LOW, W_HIGH = 60.0, 300.0
D_LOW, D_HIGH = 150.0, 400.0
DEVICE_COUNT = 3.3e7


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def build_store(root: Path) -> str:
    """Build the device surface at the calibrated operating point."""
    setup = CalibratedSetup()
    spec = SweepSpec(
        scenario="device",
        width_axis=GridAxis.from_range("width_nm", W_LOW, W_HIGH, 17),
        density_axis=GridAxis.from_range(
            "cnt_density_per_um", D_LOW, D_HIGH, 9
        ),
        pitch=pitch_distribution_from_cv(setup.mean_pitch_nm, setup.pitch_cv),
        per_cnt_failure=setup.corner.per_cnt_failure_probability,
        correlation=setup.correlation,
    )
    surface = SurfaceBuilder(spec).build()
    store = SurfaceStore(root)
    store.save(surface)
    return surface.key


def start_server(store_root: Path, port: int) -> subprocess.Popen:
    """Boot the CLI ``serve`` subcommand and wait until it answers."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", str(store_root),
            "--host", "127.0.0.1",
            "--port", str(port),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited during startup (code {process.returncode})"
            )
        try:
            status, _ = _http_once(port, b"GET", b"/healthz", b"")
            if status == 200:
                return process
        except OSError:
            time.sleep(0.05)
    process.terminate()
    raise RuntimeError("server did not become ready within 30s")


def _read_response(sock: socket.socket, buffer: bytearray) -> Tuple[int, bytes]:
    """Read one HTTP/1.1 response off a persistent connection."""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        buffer += chunk
    head_end = buffer.index(b"\r\n\r\n")
    head = bytes(buffer[:head_end])
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    body_start = head_end + 4
    while len(buffer) < body_start + length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-body")
        buffer += chunk
    body = bytes(buffer[body_start:body_start + length])
    del buffer[:body_start + length]
    return status, body


def _http_once(port: int, method: bytes, path: bytes, body: bytes) -> Tuple[int, bytes]:
    """One short-lived request (readiness probe / correctness check)."""
    with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
        sock.sendall(
            b"%s %s HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\n"
            b"content-length: %d\r\nconnection: close\r\n\r\n%s"
            % (method, path, len(body), body)
        )
        buffer = bytearray()
        return _read_response(sock, buffer)


def _query_body(rng: np.random.Generator, surface_key: str, batch: int) -> bytes:
    widths = rng.uniform(W_LOW, W_HIGH, batch)
    densities = rng.uniform(D_LOW, D_HIGH, batch)
    return json.dumps({
        "surface": surface_key,
        "width_nm": widths.tolist(),
        "cnt_density_per_um": densities.tolist(),
        "device_count": DEVICE_COUNT,
    }).encode("utf-8")


def _client_worker(
    port: int,
    request: bytes,
    stop_at: float,
    latencies: List[float],
    counters: Dict[str, int],
    lock: threading.Lock,
) -> None:
    """One persistent-connection client hammering ``POST /v1/query``."""
    local_latencies: List[float] = []
    requests = errors = 0
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        buffer = bytearray()
        while time.monotonic() < stop_at:
            started = time.perf_counter()
            sock.sendall(request)
            status, _ = _read_response(sock, buffer)
            local_latencies.append(time.perf_counter() - started)
            requests += 1
            if status != 200:
                errors += 1
    with lock:
        latencies.extend(local_latencies)
        counters["requests"] += requests
        counters["errors"] += errors


def measure_load(
    port: int, surface_key: str, batch: int, clients: int, duration_s: float
) -> dict:
    """Drive the server with persistent connections; summarise latency."""
    rng = np.random.default_rng(20100613)
    body = _query_body(rng, surface_key, batch)
    request = (
        b"POST /v1/query HTTP/1.1\r\nhost: bench\r\n"
        b"content-type: application/json\r\ncontent-length: %d\r\n\r\n%s"
        % (len(body), body)
    )
    latencies: List[float] = []
    counters = {"requests": 0, "errors": 0}
    lock = threading.Lock()
    stop_at = time.monotonic() + duration_s
    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(port, request, stop_at, latencies, counters, lock),
            daemon=True,
        )
        for _ in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    ordered = np.sort(np.asarray(latencies)) if latencies else np.array([0.0])

    def _pct(q: float) -> float:
        return float(ordered[min(len(ordered) - 1, int(q * len(ordered)))])

    return {
        "clients": clients,
        "batch_size": batch,
        "duration_s": elapsed,
        "requests": counters["requests"],
        "errors": counters["errors"],
        "requests_per_sec": counters["requests"] / elapsed,
        "queries_per_sec": counters["requests"] * batch / elapsed,
        "latency_p50_s": _pct(0.50),
        "latency_p90_s": _pct(0.90),
        "latency_p99_s": _pct(0.99),
        "latency_max_s": float(ordered[-1]),
    }


def crosscheck_bounds(port: int, store_root: Path, surface_key: str) -> dict:
    """Wire bounds must equal the in-process answer bit-for-bit."""
    rng = np.random.default_rng(7)
    widths = rng.uniform(W_LOW, W_HIGH, 16)
    densities = rng.uniform(D_LOW, D_HIGH, 16)
    body = json.dumps({
        "surface": surface_key,
        "width_nm": widths.tolist(),
        "cnt_density_per_um": densities.tolist(),
        "device_count": DEVICE_COUNT,
    }).encode("utf-8")
    status, raw = _http_once(port, b"POST", b"/v1/query", body)
    wire = json.loads(raw)
    service = YieldService(store=store_root)
    local = service.query(
        surface_key, widths, cnt_density_per_um=densities,
        device_count=DEVICE_COUNT,
    )
    fields = {
        "failure_probability": local.failure_probability,
        "failure_lower": local.failure_lower,
        "failure_upper": local.failure_upper,
        "chip_yield": local.chip_yield,
        "yield_lower": local.yield_lower,
        "yield_upper": local.yield_upper,
    }
    mismatches = [
        name for name, expected in fields.items()
        if wire[name] != expected.tolist()
    ]
    return {
        "status": status,
        "n_points": int(widths.size),
        "fields_checked": sorted(fields),
        "mismatched_fields": mismatches,
        "identical": status == 200 and not mismatches,
    }


def run_benchmark(batch: int, clients: int, duration_s: float) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        store_root = Path(tmp) / "surfaces"
        surface_key = build_store(store_root)
        port = _free_port()
        server = start_server(store_root, port)
        try:
            # Warm-up: page in the surface, settle the interpreter.
            measure_load(port, surface_key, batch, clients=1,
                         duration_s=min(1.0, duration_s / 4))
            load = measure_load(port, surface_key, batch, clients, duration_s)
            crosscheck = crosscheck_bounds(port, store_root, surface_key)
            status, raw = _http_once(port, b"GET", b"/v1/metrics", b"")
            metrics = json.loads(raw) if status == 200 else {"status": status}
        finally:
            server.terminate()
            server.wait(timeout=10.0)
    return {
        "benchmark": "network-facing yield service, HTTP/ASGI tier",
        "quick_mode": _quick_mode(),
        "surface_key": surface_key,
        "load": load,
        "query_throughput_floor": QUERY_THROUGHPUT_FLOOR,
        "p99_latency_budget_s": P99_LATENCY_BUDGET_S,
        "bounds_crosscheck": crosscheck,
        "server_metrics": {
            "routes": metrics.get("routes"),
            "service": metrics.get("service"),
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_service_http_throughput_and_bounds():
    """≥1e4 queries/sec over HTTP; p99 in budget; wire == in-process."""
    if _quick_mode():
        record = run_benchmark(batch=32, clients=2, duration_s=3.0)
    else:
        record = run_benchmark(batch=32, clients=4, duration_s=10.0)

    atomic_write_json(RESULT_PATH, record)

    load = record["load"]
    print(f"\n=== Yield service HTTP tier "
          f"({'quick' if record['quick_mode'] else 'full'}) ===")
    print(f"requests             : {load['requests']} "
          f"({load['errors']} errors, {load['clients']} clients, "
          f"batch {load['batch_size']})")
    print(f"throughput           : {load['queries_per_sec']:.3e} queries/sec "
          f"({load['requests_per_sec']:.0f} req/s; "
          f"floor {record['query_throughput_floor']:.0e})")
    print(f"latency              : p50 {load['latency_p50_s'] * 1e3:.2f} ms, "
          f"p99 {load['latency_p99_s'] * 1e3:.2f} ms "
          f"(budget {record['p99_latency_budget_s'] * 1e3:.0f} ms)")
    print(f"bounds cross-check   : identical="
          f"{record['bounds_crosscheck']['identical']}")
    print(f"written              : {RESULT_PATH}")

    assert load["errors"] == 0, f"{load['errors']} non-200 responses under load"
    assert load["queries_per_sec"] >= QUERY_THROUGHPUT_FLOOR, (
        f"HTTP query throughput {load['queries_per_sec']:.3e}/s is below "
        f"the {QUERY_THROUGHPUT_FLOOR:.0e} floor"
    )
    assert load["latency_p99_s"] <= P99_LATENCY_BUDGET_S, (
        f"p99 latency {load['latency_p99_s'] * 1e3:.1f} ms exceeds the "
        f"{P99_LATENCY_BUDGET_S * 1e3:.0f} ms budget"
    )
    assert record["bounds_crosscheck"]["identical"], (
        "wire bounds diverged from the in-process YieldService.query answer: "
        f"{record['bounds_crosscheck']}"
    )


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    test_service_http_throughput_and_bounds()
