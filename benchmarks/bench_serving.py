"""Throughput + correctness benchmark of the yield-surface serving layer.

Measures the batched :class:`~repro.serving.YieldService` answering
interpolated chip-yield queries against a precomputed device-pF surface at
the paper's 45 nm operating region, and writes ``BENCH_serving.json`` at
the repository root.  Two headline checks:

* **throughput** — at least 1e6 interpolated queries/sec on a single core
  (the design target for the co-optimization inner loop; the measured
  figure is typically several times that);
* **correctness** — at the paper's Table 1 operating points (the device
  pF at the baseline Wmin and the three row-scenario pRF values), every
  interpolated answer must lie within its *reported* error bound of the
  exact Eq. 2.2 / 3.1 closed-form evaluation.

Runs as a pytest test (``pytest benchmarks/bench_serving.py``) or
standalone (``python benchmarks/bench_serving.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_json
from repro.core.calibration import CalibratedSetup
from repro.core.correlation import LayoutScenario, RowYieldModel
from repro.core.count_model import count_model_from_pitch
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import pitch_distribution_from_cv
from repro.serving import YieldService
from repro.surface import (
    ALL_SCENARIOS,
    GridAxis,
    SurfaceBuilder,
    SweepSpec,
    density_to_mean_pitch_nm,
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

THROUGHPUT_FLOOR = 1.0e6
W_LOW, W_HIGH = 60.0, 300.0
D_LOW, D_HIGH = 150.0, 400.0
NOMINAL_DENSITY = 250.0  # 1 / (4 nm mean pitch)


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_surfaces(setup: CalibratedSetup):
    """Sweep all four scenario surfaces of the calibrated operating point."""
    pitch = pitch_distribution_from_cv(setup.mean_pitch_nm, setup.pitch_cv)
    surfaces = {}
    build_seconds = {}
    for scenario in ALL_SCENARIOS:
        spec = SweepSpec(
            scenario=scenario,
            width_axis=GridAxis.from_range("width_nm", W_LOW, W_HIGH, 33),
            density_axis=GridAxis.from_range(
                "cnt_density_per_um", D_LOW, D_HIGH, 17
            ),
            pitch=pitch,
            per_cnt_failure=setup.corner.per_cnt_failure_probability,
            correlation=setup.correlation,
        )
        start = time.perf_counter()
        surfaces[scenario] = SurfaceBuilder(spec).build()
        build_seconds[scenario] = time.perf_counter() - start
    return surfaces, build_seconds


def measure_throughput(service, key, n_queries: int, batch_size: int) -> dict:
    """Time batched in-grid queries (fresh uniform points per batch)."""
    rng = np.random.default_rng(20100613)
    batches = []
    remaining = n_queries
    while remaining > 0:
        n = min(batch_size, remaining)
        batches.append((
            rng.uniform(W_LOW, W_HIGH, n),
            rng.uniform(D_LOW, D_HIGH, n),
        ))
        remaining -= n
    start = time.perf_counter()
    for widths, densities in batches:
        service.query(key, widths, cnt_density_per_um=densities,
                      device_count=3.3e7)
    seconds = time.perf_counter() - start
    return {
        "n_queries": n_queries,
        "batch_size": batch_size,
        "seconds": seconds,
        "queries_per_sec": n_queries / seconds,
    }


def table1_crosscheck(setup: CalibratedSetup, surfaces, service) -> list:
    """Interpolated vs exact values at the paper's Table 1 operating points.

    The operating point is the device pF at the *baseline* Wmin (how the
    paper arrives at its pRF columns), queried at the nominal density and
    at the axis-interior neighbours around it.
    """
    wmin = setup.wmin_uncorrelated_nm()
    pitch = pitch_distribution_from_cv(setup.mean_pitch_nm, setup.pitch_cv)
    records = []
    query_points = [
        (wmin, NOMINAL_DENSITY),
        (wmin, 0.93 * NOMINAL_DENSITY),
        (0.8 * wmin, NOMINAL_DENSITY),
        (110.0, 275.0),
    ]
    for scenario, surface in surfaces.items():
        key = service.register(surface)
        for width, density in query_points:
            result = service.query(
                key, np.array([width]), cnt_density_per_um=np.array([density]),
                device_count=setup.min_size_device_count,
            )
            model = CNFETFailureModel(
                count_model_from_pitch(
                    pitch.with_mean(density_to_mean_pitch_nm(density))
                ),
                setup.corner.per_cnt_failure_probability,
            )
            exact_pf = model.failure_probability(width)
            if scenario == "device":
                exact = exact_pf
            else:
                exact = RowYieldModel(
                    parameters=setup.correlation
                ).row_failure_probability(LayoutScenario(scenario), exact_pf)
            records.append({
                "scenario": scenario,
                "width_nm": width,
                "cnt_density_per_um": density,
                "interpolated": float(result.failure_probability[0]),
                "exact": exact,
                "lower_bound": float(result.failure_lower[0]),
                "upper_bound": float(result.failure_upper[0]),
                "within_bounds": bool(
                    result.failure_lower[0] <= exact <= result.failure_upper[0]
                ),
            })
    return records


def run_benchmark(n_queries: int, batch_size: int) -> dict:
    setup = CalibratedSetup()
    surfaces, build_seconds = build_surfaces(setup)
    service = YieldService()
    device_key = service.register(surfaces["device"])

    # Warm-up pass (page in the arrays, trigger any lazy NumPy setup).
    measure_throughput(service, device_key, min(n_queries, 100_000), batch_size)
    throughput = measure_throughput(service, device_key, n_queries, batch_size)
    crosscheck = table1_crosscheck(setup, surfaces, service)

    return {
        "benchmark": "yield-surface serving layer, interpolated queries",
        "quick_mode": _quick_mode(),
        "operating_region": {
            "width_nm": [W_LOW, W_HIGH],
            "cnt_density_per_um": [D_LOW, D_HIGH],
            "wmin_baseline_nm": setup.wmin_uncorrelated_nm(),
            "min_size_device_count": setup.min_size_device_count,
        },
        "surfaces": {
            scenario: {
                **surface.describe(),
                "build_seconds": build_seconds[scenario],
            }
            for scenario, surface in surfaces.items()
        },
        "throughput": throughput,
        "throughput_floor": THROUGHPUT_FLOOR,
        "table1_crosscheck": crosscheck,
        "cache": service.cache.stats(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_serving_throughput_and_bounds():
    """≥1e6 interpolated queries/sec; Table 1 points within error bounds."""
    if _quick_mode():
        record = run_benchmark(n_queries=500_000, batch_size=250_000)
    else:
        record = run_benchmark(n_queries=4_000_000, batch_size=1_000_000)

    atomic_write_json(RESULT_PATH, record)

    rate = record["throughput"]["queries_per_sec"]
    checks = record["table1_crosscheck"]
    print(f"\n=== Yield-surface serving "
          f"({'quick' if record['quick_mode'] else 'full'}) ===")
    for scenario, info in record["surfaces"].items():
        print(f"surface {scenario:24s}: "
              f"{info['n_width']}x{info['n_density']} grid, "
              f"max interp err {info['max_interp_error_log']:.2e}, "
              f"built in {info['build_seconds']:.2f}s")
    print(f"throughput           : {rate:.3e} queries/sec "
          f"(floor {record['throughput_floor']:.0e})")
    n_ok = sum(1 for c in checks if c["within_bounds"])
    print(f"Table 1 cross-check  : {n_ok}/{len(checks)} points within "
          f"reported bounds")
    print(f"written              : {RESULT_PATH}")

    assert rate >= THROUGHPUT_FLOOR, (
        f"serving throughput {rate:.3e} q/s below the {THROUGHPUT_FLOOR:.0e} floor"
    )
    failing = [c for c in checks if not c["within_bounds"]]
    assert not failing, (
        "interpolated Table 1 points escaped their reported error bounds: "
        f"{failing}"
    )


if __name__ == "__main__":
    test_serving_throughput_and_bounds()
