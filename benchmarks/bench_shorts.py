"""Benchmark of the joint opens+shorts chip engine against opens-only.

Runs the batched :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo`
kernel on the same placed design twice — once with perfect metallic
removal (``eta = 1``, the opens-only regime) and once with imperfect
removal (``eta < 1``, the joint opens+shorts regime) — and writes
``BENCH_shorts.json`` at the repository root.  Two headline checks:

* **throughput floor** — the joint engine shares each trial's track
  positions and per-tube uniforms with the opens-only pass and adds only
  a second thinning threshold plus one more window count, so it must
  stay within 1.5X of the opens-only trials/sec;
* **accuracy** — the joint engine's mean failing-device count must match
  the thinned closed form of :mod:`repro.device.shorts` within Monte
  Carlo error (|z| < 6), trial by the same acceptance gate the
  equivalence suite applies.

Runs as a pytest test (``pytest benchmarks/bench_shorts.py``) or
standalone (``python benchmarks/bench_shorts.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path

import numpy as np

from repro.cells.nangate45 import build_nangate45_library
from repro.core.count_model import PoissonCountModel
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement
from repro.resilience.atomic import atomic_write_json

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_shorts.json"

#: The joint engine may cost at most this factor over opens-only.
SLOWDOWN_CEILING = 1.5

MEAN_PITCH_NM = 20.0
METALLIC_FRACTION = 1.0 / 3.0
REMOVAL_ETA = 0.95
REMOVAL_PROB_SEMI = 0.3


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def build_simulator(scale: float, eta: float) -> ChipMonteCarlo:
    """Chip simulator on the scaled OpenRISC-like design at one eta."""
    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=scale, seed=2010)
    placement = RowPlacement(design, row_width_nm=40_000.0)
    return ChipMonteCarlo(
        placement,
        pitch=ExponentialPitch(MEAN_PITCH_NM),
        type_model=CNTTypeModel(METALLIC_FRACTION, eta, REMOVAL_PROB_SEMI),
    )


def _timed_run(simulator: ChipMonteCarlo, n_trials: int, seed: int):
    start = time.perf_counter()
    result = simulator.run(n_trials, np.random.default_rng(seed))
    return result, time.perf_counter() - start


def run_benchmark(scale: float, n_trials: int) -> dict:
    opens = build_simulator(scale, eta=1.0)
    joint = build_simulator(scale, eta=REMOVAL_ETA)

    # Warm-up pass absorbs geometry materialisation and allocator churn.
    opens.run(4, np.random.default_rng(0))
    joint.run(4, np.random.default_rng(0))

    opens_result, opens_seconds = _timed_run(opens, n_trials, seed=20100620)
    joint_result, joint_seconds = _timed_run(joint, n_trials, seed=20100620)

    # Closed-form cross-check: mean failing devices is linear in the
    # per-class joint pF, so the engine must agree with the thinned form.
    widths, counts = joint.width_class_histogram()
    model = CNFETFailureModel.from_type_model(
        PoissonCountModel(mean_pitch_nm=MEAN_PITCH_NM),
        CNTTypeModel(METALLIC_FRACTION, REMOVAL_ETA, REMOVAL_PROB_SEMI),
    )
    predicted = float(np.sum(
        np.asarray(counts) * model.failure_probabilities(np.asarray(widths))
    ))
    se = joint_result.std_failing_devices / math.sqrt(n_trials)
    z = (joint_result.mean_failing_devices - predicted) / se if se > 0 else 0.0

    slowdown = joint_seconds / opens_seconds
    return {
        "benchmark": "joint opens+shorts chip engine vs opens-only",
        "quick_mode": _quick_mode(),
        "configuration": {
            "design_scale": scale,
            "n_trials": n_trials,
            "device_count": joint_result.device_count,
            "metallic_fraction": METALLIC_FRACTION,
            "removal_eta": REMOVAL_ETA,
            "removal_prob_semiconducting": REMOVAL_PROB_SEMI,
            "short_probability": METALLIC_FRACTION * (1.0 - REMOVAL_ETA),
        },
        "throughput": {
            "opens_only_seconds": opens_seconds,
            "joint_seconds": joint_seconds,
            "opens_only_trials_per_sec": n_trials / opens_seconds,
            "joint_trials_per_sec": n_trials / joint_seconds,
            "slowdown": slowdown,
            "ceiling": SLOWDOWN_CEILING,
        },
        "accuracy": {
            "mean_failing_devices": joint_result.mean_failing_devices,
            "closed_form_prediction": predicted,
            "standard_error": se,
            "z_score": z,
            "opens_only_mean_failing_devices":
                opens_result.mean_failing_devices,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_joint_engine_throughput_and_accuracy():
    """Joint engine within 1.5X of opens-only; matches the closed form."""
    if _quick_mode():
        record = run_benchmark(scale=0.02, n_trials=96)
    else:
        record = run_benchmark(scale=0.1, n_trials=256)

    atomic_write_json(RESULT_PATH, record)

    throughput = record["throughput"]
    accuracy = record["accuracy"]
    print(f"\n=== Joint opens+shorts engine "
          f"({'quick' if record['quick_mode'] else 'full'}) ===")
    print(f"devices              : "
          f"{record['configuration']['device_count']}")
    print(f"opens-only           : "
          f"{throughput['opens_only_trials_per_sec']:.1f} trials/sec")
    print(f"joint                : "
          f"{throughput['joint_trials_per_sec']:.1f} trials/sec "
          f"(slowdown {throughput['slowdown']:.2f}X, "
          f"ceiling {SLOWDOWN_CEILING}X)")
    print(f"closed-form z        : {accuracy['z_score']:+.2f}")
    print(f"written              : {RESULT_PATH}")

    assert throughput["slowdown"] <= SLOWDOWN_CEILING, (
        f"joint engine {throughput['slowdown']:.2f}X slower than "
        f"opens-only, ceiling is {SLOWDOWN_CEILING}X"
    )
    assert accuracy["standard_error"] > 0.0
    assert abs(accuracy["z_score"]) < 6.0, (
        "joint engine disagrees with the thinned closed form: "
        f"z = {accuracy['z_score']:.2f}"
    )
    # The short channel must actually bite: the joint run fails more
    # devices than the opens-only run at the same seed and trial count.
    assert (
        accuracy["mean_failing_devices"]
        > accuracy["opens_only_mean_failing_devices"]
    )


if __name__ == "__main__":
    test_joint_engine_throughput_and_accuracy()
