"""Table 1 — row failure probability pRF for the three growth/layout styles.

Regenerates the paper's Table 1: pRF under (1) uncorrelated CNT growth,
(2) directional growth with the unmodified cell library and (3) directional
growth with the aligned-active library, plus the factor decomposition
(paper: 26.5X from the growth, 13X from the layout, ≈350X total).
"""

from benchmarks.conftest import print_records
from repro.constants import (
    PAPER_RELAXATION_FACTOR,
    PAPER_TABLE1_PRF_ALIGNED,
    PAPER_TABLE1_PRF_DIRECTIONAL,
    PAPER_TABLE1_PRF_UNCORRELATED,
)
from repro.reporting.experiments import record_from_numbers
from repro.reporting.tables import table1_data


def test_table1_row_failure_probabilities(benchmark, setup, openrisc_design):
    data = benchmark(lambda: table1_data(setup=setup, design=openrisc_design))

    print("\n=== Table 1: pRF per growth/layout style ===")
    print(f"device pF at Wmin ({data['wmin_nm']:.1f} nm): {data['device_pf']:.3e}")
    print(f"uncorrelated CNT growth           : {data['prf_uncorrelated']:.3e}")
    print(f"directional growth, non-aligned   : {data['prf_directional_non_aligned']:.3e}")
    print(f"directional growth, aligned-active: {data['prf_directional_aligned']:.3e}")
    print(f"gain from directional growth      : {data['gain_from_growth']:.1f}X")
    print(f"gain from aligned-active layout   : {data['gain_from_alignment']:.1f}X")
    print(f"total gain                        : {data['total_gain']:.1f}X")

    records = [
        record_from_numbers(
            "Table1", "pRF, uncorrelated growth",
            PAPER_TABLE1_PRF_UNCORRELATED, data["prf_uncorrelated"],
        ),
        record_from_numbers(
            "Table1", "pRF, directional growth (non-aligned)",
            PAPER_TABLE1_PRF_DIRECTIONAL, data["prf_directional_non_aligned"],
        ),
        record_from_numbers(
            "Table1", "pRF, directional growth + aligned-active",
            PAPER_TABLE1_PRF_ALIGNED, data["prf_directional_aligned"],
        ),
        record_from_numbers(
            "Table1", "total pRF reduction",
            PAPER_RELAXATION_FACTOR, data["total_gain"], unit="X",
        ),
    ]
    print_records("Table 1 paper vs measured", records)

    # Shape assertions: strict ordering, multiplicative decomposition and a
    # total factor in the paper's 350X regime.
    assert (
        data["prf_uncorrelated"]
        > data["prf_directional_non_aligned"]
        > data["prf_directional_aligned"]
    )
    assert data["total_gain"] == __import__("pytest").approx(
        data["gain_from_growth"] * data["gain_from_alignment"], rel=1e-9
    )
    assert 300.0 <= data["total_gain"] <= 400.0
    # Decomposition is in the paper's regime: most of the benefit comes from
    # the directional growth itself, a ~13X residual from the aligned cells.
    assert 15.0 <= data["gain_from_growth"] <= 45.0
    assert 8.0 <= data["gain_from_alignment"] <= 20.0
