"""Table 2 — standard-cell area penalty of the aligned-active restriction.

Regenerates the three columns of Table 2: the commercial-65-nm-like library
with one and with two aligned active regions per polarity, and the
Nangate-45-like library with one aligned region — reporting the number of
cells, the share of cells with an area penalty, the min/max penalty and the
Wmin each variant implies.
"""

from benchmarks.conftest import print_records
from repro.constants import (
    PAPER_COMMERCIAL65_CELL_COUNT,
    PAPER_NANGATE_CELL_COUNT,
    PAPER_NANGATE_CELLS_WITH_PENALTY,
    PAPER_TABLE2_COMMERCIAL65_PENALTY_FRACTION,
)
from repro.reporting.experiments import ExperimentRecord, record_from_numbers
from repro.reporting.tables import render_table, table2_data


def test_table2_area_penalties(benchmark, setup, nangate45, commercial65):
    rows = benchmark(
        lambda: table2_data(
            setup=setup, nangate_library=nangate45, commercial_library=commercial65
        )
    )

    print("\n=== Table 2: area penalty of the aligned-active restriction ===")
    print(render_table(rows, columns=[
        "library", "aligned_regions", "num_cells", "cells_with_penalty",
        "cells_with_penalty_pct", "min_penalty_pct", "max_penalty_pct", "wmin_nm",
    ]))

    commercial_one, commercial_two, nangate_row = rows
    records = [
        record_from_numbers(
            "Table2", "65 nm library cell count",
            PAPER_COMMERCIAL65_CELL_COUNT, commercial_one["num_cells"],
        ),
        record_from_numbers(
            "Table2", "65 nm cells with penalty (one region)",
            100.0 * PAPER_TABLE2_COMMERCIAL65_PENALTY_FRACTION,
            commercial_one["cells_with_penalty_pct"], unit="%",
        ),
        ExperimentRecord(
            "Table2", "65 nm penalty range (one region)",
            "10 % .. 70 %",
            f"{commercial_one['min_penalty_pct']:.0f} % .. "
            f"{commercial_one['max_penalty_pct']:.0f} %",
        ),
        record_from_numbers(
            "Table2", "65 nm cells with penalty (two regions)",
            0.0, commercial_two["cells_with_penalty_pct"], unit="%",
            note="two aligned regions remove the area penalty",
        ),
        record_from_numbers(
            "Table2", "45 nm Nangate cell count",
            PAPER_NANGATE_CELL_COUNT, nangate_row["num_cells"],
        ),
        record_from_numbers(
            "Table2", "45 nm Nangate cells with penalty",
            PAPER_NANGATE_CELLS_WITH_PENALTY, nangate_row["cells_with_penalty"],
        ),
        ExperimentRecord(
            "Table2", "Wmin ordering (45 nm < 65 nm one-region < two-region)",
            "103 nm < 107 nm < 112 nm",
            f"{nangate_row['wmin_nm']:.0f} nm < {commercial_one['wmin_nm']:.0f} nm"
            f" < {commercial_two['wmin_nm']:.0f} nm",
        ),
    ]
    print_records("Table 2 paper vs measured", records)

    # Shape assertions.
    assert commercial_one["num_cells"] == 775
    assert nangate_row["num_cells"] == 134
    assert nangate_row["cells_with_penalty"] == 4
    assert abs(commercial_one["cells_with_penalty_pct"] - 20.0) < 5.0
    assert commercial_two["cells_with_penalty"] == 0
    assert commercial_one["min_penalty_pct"] >= 9.0
    assert commercial_one["max_penalty_pct"] <= 75.0
    assert (
        nangate_row["wmin_nm"]
        < commercial_one["wmin_nm"]
        < commercial_two["wmin_nm"]
    )
    # Two aligned regions cost < ~8 % extra Wmin (paper: < 5 %).
    assert commercial_two["wmin_nm"] / commercial_one["wmin_nm"] < 1.08
