"""Throughput benchmark of the batched levelized STA vs the scalar oracle.

Samples one per-trial delay matrix over a design-derived timing graph, then
times :func:`repro.timing.sta.propagate_arrivals` (vectorized, all trials in
one levelized sweep) against :func:`propagate_arrivals_scalar` (per-trial
Python walk — the pre-vectorisation oracle) on the *same* matrix, asserting
the arrivals are bitwise equal before comparing speed.  Writes
``BENCH_timing.json`` at the repository root with trials/sec and node-evals/
sec for both paths.  Runs as a pytest test
(``pytest benchmarks/bench_timing.py``) or standalone
(``python benchmarks/bench_timing.py``).

Set ``REPRO_BENCH_QUICK=1`` for a smaller graph and fewer trials (the CI
smoke configuration).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_json
from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo, _chip_window_counts
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement
from repro.timing import TimingMonteCarlo, derive_timing_graph
from repro.timing.parametric import _delays_from_currents
from repro.timing.sta import propagate_arrivals, propagate_arrivals_scalar

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_timing.json"


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _build_delay_matrix(scale: float, n_trials: int):
    """A derived graph plus one Monte-Carlo-sampled (trials × nodes) matrix."""
    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=scale, seed=2010)
    placement = RowPlacement(design, row_width_nm=40_000.0)
    chip = ChipMonteCarlo(
        placement,
        pitch=pitch_distribution_from_cv(8.0, 1.0),
        type_model=CNTTypeModel(0.30, 1.0, 0.05),
    )
    timing = derive_timing_graph(chip, seed=7)
    tmc = TimingMonteCarlo.from_chip(chip, timing=timing)
    payload = tmc._payload
    rng = np.random.default_rng(1)
    counts = _chip_window_counts(payload.geometry, n_trials, rng)
    gate_counts = np.round(counts[:, payload.node_window]).astype(np.int64)
    currents = payload.current_model.on_currents_from_counts(
        gate_counts, rng, payload.diameter_mean_nm, payload.diameter_std_nm
    )
    delays = _delays_from_currents(payload.scale_ps_ua, currents)
    return timing.graph, delays


def _time_pass(run, repeats: int) -> float:
    """Best-of-``repeats`` wall time; the first pass warms the caches."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(scale: float, scalar_trials: int, vector_trials: int) -> dict:
    """Measure both STA paths on shared delay samples; return the record."""
    graph, delays = _build_delay_matrix(scale, vector_trials)

    # Equivalence first: both paths must produce bitwise-equal arrivals on
    # the scalar slice before speed means anything.
    scalar_slice = delays[:scalar_trials]
    batched = propagate_arrivals(graph, scalar_slice)
    scalar = propagate_arrivals_scalar(graph, scalar_slice)
    if not np.array_equal(batched, scalar):
        raise AssertionError("batched STA disagrees with the scalar oracle")

    scalar_s = _time_pass(
        lambda: propagate_arrivals_scalar(graph, scalar_slice), repeats=1
    )
    vector_s = _time_pass(
        lambda: propagate_arrivals(graph, delays), repeats=2
    )

    scalar_tps = scalar_trials / scalar_s
    vector_tps = vector_trials / vector_s
    return {
        "benchmark": "levelized STA over a derived Nangate45 timing graph",
        "quick_mode": _quick_mode(),
        "graph": {
            "scale": scale,
            "n_nodes": graph.n_nodes,
            "n_arcs": graph.n_arcs,
            "depth": graph.depth,
        },
        "scalar": {
            "n_trials": scalar_trials,
            "seconds": scalar_s,
            "trials_per_sec": scalar_tps,
            "node_evals_per_sec": scalar_tps * graph.n_nodes,
        },
        "vectorized": {
            "n_trials": vector_trials,
            "seconds": vector_s,
            "trials_per_sec": vector_tps,
            "node_evals_per_sec": vector_tps * graph.n_nodes,
        },
        "speedup": vector_tps / scalar_tps,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_batched_sta_speedup():
    """The batched levelized sweep must stay well ahead of the scalar walk."""
    if _quick_mode():
        record = run_benchmark(scale=0.02, scalar_trials=10, vector_trials=200)
        floor = 5.0
    else:
        record = run_benchmark(scale=0.1, scalar_trials=20, vector_trials=1_000)
        floor = 10.0

    atomic_write_json(RESULT_PATH, record)

    print(f"\n=== Levelized STA throughput ({'quick' if record['quick_mode'] else 'full'}) ===")
    print(f"graph                : {record['graph']['n_nodes']} nodes, depth {record['graph']['depth']}")
    print(f"scalar trials/sec    : {record['scalar']['trials_per_sec']:.2f}")
    print(f"vectorized trials/sec: {record['vectorized']['trials_per_sec']:.2f}")
    print(f"speedup              : {record['speedup']:.1f}X")
    print(f"written              : {RESULT_PATH}")

    assert record["speedup"] >= floor, (
        f"batched STA only {record['speedup']:.1f}X faster (floor {floor:.0f}X)"
    )


if __name__ == "__main__":
    test_batched_sta_speedup()
