"""Throughput benchmark of the stacked wafer runner vs the per-die loop.

Times :func:`repro.montecarlo.wafer_sim.simulate_wafer` (one stacked
die × trial × track pass per die group) against
:func:`repro.montecarlo.wafer_sim.per_die_loop` (the pre-stacked path:
:class:`~repro.montecarlo.device_sim.DeviceMonteCarlo` once per die and
width class) on the same wafer, the same width-class histogram and equal
trial counts per (die, width-class) estimate, and writes
``BENCH_wafer.json`` at the repository root.

The stacked pass wins on three structural counts: all width classes of a
die are answered from one shared track set (the per-die loop re-samples
tracks per width), its gap budget carries a 2-sigma margin with exact
top-ups instead of the engine's 8-sigma margin, and the per-die Python
and allocation overheads amortise over the whole wafer.

Runs as a pytest test (``pytest benchmarks/bench_wafer.py``) or
standalone (``python benchmarks/bench_wafer.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.backend import get_backend
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import WaferGrowthModel
from repro.montecarlo.wafer_sim import per_die_loop, simulate_wafer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wafer.json"

#: OpenRISC-flavoured minimum-size width-class histogram: the device
#: widths a die actually carries between the baseline Wmin region and the
#: upsized classes, with per-die multiplicities.  All classes physically
#: share each row's tracks — exactly what the stacked pass exploits.
WIDTH_CLASSES_NM = (90.0, 105.0, 120.0, 150.0, 178.0)
DEVICE_COUNTS = (400.0, 300.0, 250.0, 200.0, 150.0)

SEED_KEY = (20100616,)


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm the allocator / import paths
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(die_size_mm: float, n_trials: int) -> dict:
    wafer = WaferGrowthModel(
        center_pitch_nm=4.0, die_size_mm=die_size_mm
    ).generate(np.random.default_rng(1))
    pitch = ExponentialPitch(4.0)
    type_model = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)
    args = (wafer, pitch, type_model, WIDTH_CLASSES_NM, DEVICE_COUNTS)
    kwargs = dict(n_trials=n_trials, seed_key=SEED_KEY)

    loop_s = _time(lambda: per_die_loop(*args, **kwargs))
    stacked_s = _time(lambda: simulate_wafer(*args, **kwargs))
    f32 = get_backend("numpy", dtype="float32")
    stacked32_s = _time(lambda: simulate_wafer(*args, backend=f32, **kwargs))

    stacked = simulate_wafer(*args, **kwargs)
    loop = per_die_loop(*args, **kwargs)
    estimates = wafer.die_count * len(WIDTH_CLASSES_NM)
    return {
        "benchmark": "wafer_sim stacked pass vs per-die DeviceMonteCarlo loop",
        "quick_mode": _quick_mode(),
        "workload": {
            "die_count": wafer.die_count,
            "width_classes_nm": list(WIDTH_CLASSES_NM),
            "device_counts": list(DEVICE_COUNTS),
            "trials_per_die": n_trials,
            "note": (
                "equal trial counts per (die, width-class) estimate; the "
                "stacked pass answers all width classes from one shared "
                "track set per trial, the per-die loop re-samples per class"
            ),
        },
        "per_die_loop": {
            "seconds": loop_s,
            "die_estimates_per_sec": estimates / loop_s,
            "dtype": "float64",
        },
        "stacked": {
            "seconds": stacked_s,
            "die_estimates_per_sec": estimates / stacked_s,
            "dtype": "float64",
        },
        "stacked_float32": {
            "seconds": stacked32_s,
            "die_estimates_per_sec": estimates / stacked32_s,
        },
        "speedup": loop_s / stacked_s,
        "speedup_float32": loop_s / stacked32_s,
        "agreement": {
            "mean_chip_yield_stacked": stacked.mean_chip_yield,
            "mean_chip_yield_loop": loop.mean_chip_yield,
            "good_die_fraction_stacked": stacked.good_die_fraction,
            "good_die_fraction_loop": loop.good_die_fraction,
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_stacked_wafer_speedup():
    """The stacked wafer pass must stay well ahead of the per-die loop."""
    if _quick_mode():
        record = run_benchmark(die_size_mm=20.0, n_trials=128)
        floor = 1.5
    else:
        record = run_benchmark(die_size_mm=10.0, n_trials=512)
        floor = 3.0

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    mode = "quick" if record["quick_mode"] else "full"
    print(f"\n=== Wafer Monte Carlo throughput ({mode}) ===")
    print(f"dies x width classes : {record['workload']['die_count']} x "
          f"{len(record['workload']['width_classes_nm'])}")
    print(f"per-die loop         : {record['per_die_loop']['seconds']*1e3:.1f} ms")
    print(f"stacked pass         : {record['stacked']['seconds']*1e3:.1f} ms")
    print(f"speedup              : {record['speedup']:.2f}X "
          f"(float32: {record['speedup_float32']:.2f}X)")
    print(f"written              : {RESULT_PATH}")

    assert record["speedup"] >= floor, (
        f"stacked wafer pass only {record['speedup']:.2f}X faster than the "
        f"per-die loop (floor {floor:.1f}X)"
    )
    # The two paths estimate the same wafer: aggregates must agree closely.
    agree = record["agreement"]
    assert abs(
        agree["mean_chip_yield_stacked"] - agree["mean_chip_yield_loop"]
    ) < 0.05


if __name__ == "__main__":
    test_stacked_wafer_speedup()
