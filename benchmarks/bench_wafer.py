"""Throughput benchmark of the wafer tier: stacked passes vs per-die loops.

Three cases, all at equal trial counts per estimate, written to
``BENCH_wafer.json`` at the repository root:

* **width-class wafer** — :func:`repro.montecarlo.wafer_sim.simulate_wafer`
  (one stacked die × trial × track pass per die group) against
  :func:`repro.montecarlo.wafer_sim.per_die_loop`
  (:class:`~repro.montecarlo.device_sim.DeviceMonteCarlo` once per die and
  width class) on the same radial-drift wafer;
* **correlated-field wafer** — the same comparison on a wafer whose
  density and misalignment carry spatially correlated Gaussian-random-field
  structure (:mod:`repro.growth.spatial`) with per-die misalignment
  de-rating applied inside the stacked pass;
* **chip wafer** — :func:`repro.montecarlo.wafer_sim.run_chip_wafer`
  (whole-placement per-die chip runs on one shared geometry) against
  :func:`repro.montecarlo.wafer_sim.chip_per_die_loop` (a fresh
  :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo` per die), bitwise
  identical direct statistics by construction.

The stacked width-class pass wins on three structural counts: all width
classes of a die are answered from one shared track set (the per-die loop
re-samples tracks per width), its gap budget carries a 2-sigma margin
with exact top-ups instead of the engine's 8-sigma margin, and the
per-die Python and allocation overheads amortise over the whole wafer.
The chip-wafer pass wins by materialising the placement geometry once
instead of once per die.

Runs as a pytest test (``pytest benchmarks/bench_wafer.py``) or
standalone (``python benchmarks/bench_wafer.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.resilience.atomic import atomic_write_json
from repro.analysis.mispositioned import MisalignmentImpactModel
from repro.backend import get_backend
from repro.cells.nangate45 import build_nangate45_library
from repro.growth.pitch import ExponentialPitch
from repro.growth.spatial import SpatialFieldSpec
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import WaferGrowthModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.wafer_sim import (
    chip_per_die_loop,
    per_die_loop,
    run_chip_wafer,
    simulate_wafer,
)
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_wafer.json"

#: OpenRISC-flavoured minimum-size width-class histogram: the device
#: widths a die actually carries between the baseline Wmin region and the
#: upsized classes, with per-die multiplicities.  All classes physically
#: share each row's tracks — exactly what the stacked pass exploits.
WIDTH_CLASSES_NM = (90.0, 105.0, 120.0, 150.0, 178.0)
DEVICE_COUNTS = (400.0, 300.0, 250.0, 200.0, 150.0)

SEED_KEY = (20100616,)


def _quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm the allocator / import paths
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _width_class_case(wafer, pitch, type_model, n_trials: int,
                      misalignment=None) -> dict:
    """Stacked width-class pass vs per-die DeviceMonteCarlo loop."""
    args = (wafer, pitch, type_model, WIDTH_CLASSES_NM, DEVICE_COUNTS)
    kwargs = dict(n_trials=n_trials, seed_key=SEED_KEY,
                  misalignment=misalignment)

    loop_s = _time(lambda: per_die_loop(*args, **kwargs))
    stacked_s = _time(lambda: simulate_wafer(*args, **kwargs))
    f32 = get_backend("numpy", dtype="float32")
    stacked32_s = _time(lambda: simulate_wafer(*args, backend=f32, **kwargs))

    stacked = simulate_wafer(*args, **kwargs)
    loop = per_die_loop(*args, **kwargs)
    estimates = wafer.die_count * len(WIDTH_CLASSES_NM)
    return {
        "die_count": wafer.die_count,
        "width_classes_nm": list(WIDTH_CLASSES_NM),
        "device_counts": list(DEVICE_COUNTS),
        "trials_per_die": n_trials,
        "misalignment_derated": misalignment is not None,
        "per_die_loop": {
            "seconds": loop_s,
            "die_estimates_per_sec": estimates / loop_s,
            "dtype": "float64",
        },
        "stacked": {
            "seconds": stacked_s,
            "die_estimates_per_sec": estimates / stacked_s,
            "dtype": "float64",
        },
        "stacked_float32": {
            "seconds": stacked32_s,
            "die_estimates_per_sec": estimates / stacked32_s,
        },
        "speedup": loop_s / stacked_s,
        "speedup_float32": loop_s / stacked32_s,
        "agreement": {
            "mean_chip_yield_stacked": stacked.mean_chip_yield,
            "mean_chip_yield_loop": loop.mean_chip_yield,
            "good_die_fraction_stacked": stacked.good_die_fraction,
            "good_die_fraction_loop": loop.good_die_fraction,
        },
    }


def _chip_wafer_case(wafer, netlist_scale: float, n_trials: int) -> dict:
    """Shared-geometry whole-placement wafer pass vs fresh-simulator loop."""
    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=netlist_scale, seed=2010)
    placement = RowPlacement(design)
    chip = ChipMonteCarlo(
        placement,
        pitch=ExponentialPitch(4.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
    )
    kwargs = dict(n_trials=n_trials, seed_key=SEED_KEY)

    loop_s = _time(lambda: chip_per_die_loop(wafer, chip, **kwargs), repeats=2)
    stacked_s = _time(lambda: run_chip_wafer(wafer, chip, **kwargs), repeats=2)

    stacked = run_chip_wafer(wafer, chip, **kwargs)
    loop = chip_per_die_loop(wafer, chip, **kwargs)
    bitwise = all(
        a.chip_yield == b.chip_yield
        and a.mean_failing_devices == b.mean_failing_devices
        and a.std_failing_devices == b.std_failing_devices
        and a.mean_failing_rows == b.mean_failing_rows
        for a, b in zip(stacked.dice, loop.dice)
    )
    return {
        "die_count": wafer.die_count,
        "netlist_scale": netlist_scale,
        "device_count": chip.device_count,
        "width_class_count": len(stacked.widths_nm),
        "trials_per_die": n_trials,
        "per_die_chip_loop": {"seconds": loop_s},
        "shared_geometry": {"seconds": stacked_s},
        "speedup": loop_s / stacked_s,
        "direct_stats_bitwise_equal": bitwise,
        "agreement": {
            "mean_chip_yield_stacked": stacked.mean_chip_yield,
            "mean_chip_yield_loop": loop.mean_chip_yield,
        },
    }


def run_benchmark(die_size_mm: float, n_trials: int, netlist_scale: float,
                  chip_trials: int) -> dict:
    """All three wafer-tier cases on one wafer geometry."""
    radial_wafer = WaferGrowthModel(
        center_pitch_nm=4.0, die_size_mm=die_size_mm
    ).generate(np.random.default_rng(1))
    correlated_wafer = WaferGrowthModel(
        center_pitch_nm=4.0,
        die_size_mm=die_size_mm,
        density_field=SpatialFieldSpec(sigma=0.04, correlation_length_mm=25.0),
        misalignment_field=SpatialFieldSpec(sigma=1.0, correlation_length_mm=30.0),
    ).generate(seed_key=(1,))
    pitch = ExponentialPitch(4.0)
    type_model = CNTTypeModel(1.0 / 3.0, 1.0, 0.3)
    misalignment = MisalignmentImpactModel(
        band_width_nm=103.0, cnt_length_um=200.0, min_cnfet_density_per_um=1.8
    )

    return {
        "benchmark": "wafer tier: stacked passes vs per-die loops",
        "quick_mode": _quick_mode(),
        "width_class": _width_class_case(
            radial_wafer, pitch, type_model, n_trials
        ),
        "correlated_field": _width_class_case(
            correlated_wafer, pitch, type_model, n_trials,
            misalignment=misalignment,
        ),
        "chip_wafer": _chip_wafer_case(
            correlated_wafer, netlist_scale, chip_trials
        ),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def test_stacked_wafer_speedup():
    """Every stacked wafer pass must stay well ahead of its per-die loop."""
    if _quick_mode():
        record = run_benchmark(die_size_mm=20.0, n_trials=128,
                               netlist_scale=0.02, chip_trials=32)
        floor, chip_floor = 1.5, 1.3
    else:
        record = run_benchmark(die_size_mm=10.0, n_trials=512,
                               netlist_scale=0.05, chip_trials=96)
        floor, chip_floor = 3.0, 1.5

    atomic_write_json(RESULT_PATH, record)

    mode = "quick" if record["quick_mode"] else "full"
    print(f"\n=== Wafer Monte Carlo throughput ({mode}) ===")
    for case in ("width_class", "correlated_field"):
        c = record[case]
        print(f"{case:17s}: loop {c['per_die_loop']['seconds']*1e3:8.1f} ms | "
              f"stacked {c['stacked']['seconds']*1e3:7.1f} ms | "
              f"{c['speedup']:.2f}X (f32 {c['speedup_float32']:.2f}X)")
    c = record["chip_wafer"]
    print(f"chip_wafer       : loop {c['per_die_chip_loop']['seconds']*1e3:8.1f} ms | "
          f"shared  {c['shared_geometry']['seconds']*1e3:7.1f} ms | "
          f"{c['speedup']:.2f}X (bitwise={c['direct_stats_bitwise_equal']})")
    print(f"written          : {RESULT_PATH}")

    for case in ("width_class", "correlated_field"):
        assert record[case]["speedup"] >= floor, (
            f"{case} stacked pass only {record[case]['speedup']:.2f}X faster "
            f"than the per-die loop (floor {floor:.1f}X)"
        )
        agree = record[case]["agreement"]
        assert abs(
            agree["mean_chip_yield_stacked"] - agree["mean_chip_yield_loop"]
        ) < 0.05
    assert record["chip_wafer"]["speedup"] >= chip_floor, (
        f"chip-wafer shared-geometry pass only "
        f"{record['chip_wafer']['speedup']:.2f}X faster than the per-die "
        f"ChipMonteCarlo loop (floor {chip_floor:.1f}X)"
    )
    assert record["chip_wafer"]["direct_stats_bitwise_equal"]


if __name__ == "__main__":
    test_stacked_wafer_speedup()
