"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-versus-measured comparison using the records from
:mod:`repro.reporting.experiments`.  The ``benchmark`` fixture from
pytest-benchmark times the data-generation step so regressions in the
analytical pipeline show up as performance changes as well.
"""

from __future__ import annotations

from typing import Iterable

import pytest

from repro.reporting.experiments import ExperimentRecord, experiment_summary


def print_records(title: str, records: Iterable[ExperimentRecord]) -> None:
    """Print a paper-versus-measured block for one experiment."""
    print()
    print(f"=== {title} ===")
    print(experiment_summary(records))
    print()


@pytest.fixture(scope="session")
def setup():
    """The calibrated 45 nm setup shared by all benchmarks."""
    from repro.core.calibration import CalibratedSetup

    return CalibratedSetup()


@pytest.fixture(scope="session")
def openrisc_design(setup):
    """The statistical OpenRISC design at the chip scale."""
    from repro.netlist.openrisc import openrisc_width_histogram

    return openrisc_width_histogram(setup.chip_transistor_count)


@pytest.fixture(scope="session")
def nangate45():
    from repro.cells.nangate45 import build_nangate45_library

    return build_nangate45_library()


@pytest.fixture(scope="session")
def commercial65():
    from repro.cells.commercial65 import build_commercial65_library

    return build_commercial65_library()
