#!/usr/bin/env python3
"""Enforcing the aligned-active layout restriction on cell libraries.

This example reproduces the layout side of the paper (Sec. 3.2 / 3.3,
Fig. 3.2, Table 2):

1. build the synthetic Nangate-45-like (134 cells) and commercial-65-like
   (775 cells) libraries,
2. compute the Wmin each library variant needs,
3. apply the aligned-active transform with one and with two aligned active
   regions per polarity,
4. report the per-library area statistics (Table 2) and show the AOI222_X1
   before/after detail (Fig. 3.2).

Run with::

    python examples/aligned_active_library.py
"""

from repro.cells.aligned_active import AlignedActiveTransform, enforce_aligned_active
from repro.cells.area import area_penalty_report
from repro.cells.commercial65 import build_commercial65_library
from repro.cells.nangate45 import build_nangate45_library
from repro.core.calibration import CalibratedSetup
from repro.device.active_region import Polarity
from repro.reporting.tables import render_table, table2_data


def show_aoi222_detail(library, wmin_nm: float) -> None:
    """Fig. 3.2: the AOI222_X1 cell before and after the restriction."""
    transform = AlignedActiveTransform(wmin_nm=wmin_nm)
    result = transform.apply_to_cell(library.get("AOI222_X1"))
    before, after = result.original, result.modified

    print(f"AOI222_X1 with Wmin = {wmin_nm:.1f} nm")
    print(f"  columns          : {before.n_columns} -> {after.n_columns}")
    print(f"  cell width       : {before.width_nm:.0f} nm -> {after.width_nm:.0f} nm "
          f"({100.0 * result.width_penalty:+.1f} %)")
    print(f"  critical devices : {result.critical_device_count} "
          f"({result.upsized_device_count} upsized to Wmin)")
    print("  n-type devices (name, width nm, column, band):")
    for t in sorted(after.transistors_of(Polarity.NFET), key=lambda d: d.name):
        print(f"    {t.name:6} {t.width_nm:7.1f}  col {t.column:2d}  band {t.row_slot}")


def main() -> None:
    setup = CalibratedSetup()
    nangate45 = build_nangate45_library()
    commercial65 = build_commercial65_library()

    wmin_45 = setup.wmin_correlated_nm()
    print("=== Fig. 3.2: aligned-active enforcement on AOI222_X1 ===")
    show_aoi222_detail(nangate45, wmin_45)

    print("\n=== Library-wide impact (Table 2) ===")
    rows = table2_data(
        setup=setup, nangate_library=nangate45, commercial_library=commercial65
    )
    print(render_table(rows, columns=[
        "library", "aligned_regions", "num_cells", "cells_with_penalty",
        "cells_with_penalty_pct", "min_penalty_pct", "max_penalty_pct", "wmin_nm",
    ]))

    print("\n=== Penalised Nangate cells in detail ===")
    result = enforce_aligned_active(nangate45, wmin_45)
    for cell_result in result.penalised_cells:
        print(f"  {cell_result.original.name:12} "
              f"+{100.0 * cell_result.width_penalty:5.1f} % width "
              f"({cell_result.extra_columns} extra column(s))")

    print("\n=== Trade-off: one vs two aligned active regions (45 nm) ===")
    for groups in (1, 2):
        report = area_penalty_report(
            enforce_aligned_active(nangate45, wmin_45, aligned_region_groups=groups)
        )
        print(f"  {groups} region(s): {report.penalised_cell_count} cells penalised, "
              f"max penalty {report.max_penalty_percent:.1f} %")


if __name__ == "__main__":
    main()
