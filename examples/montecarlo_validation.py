#!/usr/bin/env python3
"""Monte Carlo validation of the analytical yield models.

The paper's results rest on two closed-form layers: the device failure
probability (Eq. 2.2) and the row-based correlated yield model
(Eq. 3.1 / 3.2).  This example validates both against direct simulation of
CNT growth, typing, removal and device capture:

* pF(W) from the count-model PGF versus the isotropic growth simulator,
* the three Table 1 scenarios versus the shared-track row simulator,
* the relaxation factor implied by each.

Run with::

    python examples/montecarlo_validation.py
"""

import numpy as np

from repro.core.correlation import LayoutScenario
from repro.montecarlo.experiments import (
    compare_device_failure,
    compare_row_scenarios,
    relaxation_factor_comparison,
)


def main() -> None:
    print("=== Device failure probability pF(W): analytic vs Monte Carlo ===")
    print("W (nm)      analytic        Monte Carlo     (std. err.)   agree?")
    for width in (24.0, 40.0, 64.0, 96.0):
        record = compare_device_failure(width_nm=width, n_samples=30_000, seed=int(width))
        print(f"{width:6.0f}   {record.analytic:12.4e}   {record.monte_carlo:12.4e}"
              f"   ({record.standard_error:9.1e})   "
              f"{'yes' if record.agrees() else 'NO'}")

    print("\n=== Row failure probability per layout scenario (Eq. 3.1) ===")
    records = compare_row_scenarios(
        device_width_nm=24.0, devices_per_segment=15, n_samples=6_000, seed=5
    )
    for scenario in LayoutScenario:
        record = records[scenario]
        print(f"{scenario.value:28}: analytic {record.analytic:10.3e}   "
              f"MC {record.monte_carlo:10.3e} (+/- {record.standard_error:.1e})")

    print("\n=== Relaxation factor (uncorrelated / aligned) ===")
    ratio = relaxation_factor_comparison(
        device_width_nm=24.0, devices_per_segment=15, n_samples=6_000, seed=7
    )
    print(f"analytic    : {ratio.analytic:6.2f}X")
    print(f"Monte Carlo : {ratio.monte_carlo:6.2f}X (+/- {ratio.standard_error:.2f})")
    print("(the paper's full-scale factor is LCNT x Pmin-CNFET = 360X; this "
          "example uses a deliberately small segment so the Monte Carlo "
          "confidence intervals stay tight)")


if __name__ == "__main__":
    main()
