#!/usr/bin/env python3
"""Monte Carlo validation of the analytical yield models.

The paper's results rest on two closed-form layers: the device failure
probability (Eq. 2.2) and the row-based correlated yield model
(Eq. 3.1 / 3.2).  This example validates both against direct simulation of
CNT growth, typing, removal and device capture:

* pF(W) from the count-model PGF versus the isotropic growth simulator,
* the three Table 1 scenarios versus the shared-track row simulator,
* the relaxation factor implied by each,
* the chip-level vectorized batch engine versus its per-trial scalar oracle
  (same distribution, orders of magnitude more trials per second).

Run with::

    python examples/montecarlo_validation.py
"""

import time

import numpy as np

from repro.cells.nangate45 import build_nangate45_library
from repro.core.correlation import LayoutScenario
from repro.growth.pitch import ExponentialPitch
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.experiments import (
    compare_chip_engines,
    compare_device_failure,
    compare_row_scenarios,
    relaxation_factor_comparison,
)
from repro.netlist.design import Design
from repro.netlist.placement import RowPlacement


def main() -> None:
    print("=== Device failure probability pF(W): analytic vs Monte Carlo ===")
    print("W (nm)      analytic        Monte Carlo     (std. err.)   agree?")
    for width in (24.0, 40.0, 64.0, 96.0):
        record = compare_device_failure(width_nm=width, n_samples=30_000, seed=int(width))
        print(f"{width:6.0f}   {record.analytic:12.4e}   {record.monte_carlo:12.4e}"
              f"   ({record.standard_error:9.1e})   "
              f"{'yes' if record.agrees() else 'NO'}")

    print("\n=== Row failure probability per layout scenario (Eq. 3.1) ===")
    records = compare_row_scenarios(
        device_width_nm=24.0, devices_per_segment=15, n_samples=6_000, seed=5
    )
    for scenario in LayoutScenario:
        record = records[scenario]
        print(f"{scenario.value:28}: analytic {record.analytic:10.3e}   "
              f"MC {record.monte_carlo:10.3e} (+/- {record.standard_error:.1e})")

    print("\n=== Relaxation factor (uncorrelated / aligned) ===")
    ratio = relaxation_factor_comparison(
        device_width_nm=24.0, devices_per_segment=15, n_samples=6_000, seed=7
    )
    print(f"analytic    : {ratio.analytic:6.2f}X")
    print(f"Monte Carlo : {ratio.monte_carlo:6.2f}X (+/- {ratio.standard_error:.2f})")
    print("(the paper's full-scale factor is LCNT x Pmin-CNFET = 360X; this "
          "example uses a deliberately small segment so the Monte Carlo "
          "confidence intervals stay tight)")

    print("\n=== Chip engine: vectorized batch vs per-trial scalar oracle ===")
    library = build_nangate45_library()
    design = Design("validation_block", library)
    for i in range(120):
        design.add(f"u{i}", "INV_X1" if i % 2 == 0 else "NAND2_X1")
    placement = RowPlacement(design, row_width_nm=20_000.0)
    record = compare_chip_engines(
        placement,
        pitch=ExponentialPitch(20.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
        n_trials=30,
        seed=2010,
    )
    print(f"scalar mean failing devices    : {record.analytic:8.2f}")
    print(f"vectorized mean failing devices: {record.monte_carlo:8.2f} "
          f"(+/- {record.standard_error:.2f})")
    print(f"agree within tolerance         : {'yes' if record.agrees() else 'NO'}")

    simulator = ChipMonteCarlo(
        placement,
        pitch=ExponentialPitch(20.0),
        type_model=CNTTypeModel(1.0 / 3.0, 1.0, 0.3),
    )
    start = time.perf_counter()
    simulator.run(500, np.random.default_rng(42))
    elapsed = time.perf_counter() - start
    print(f"vectorized throughput          : {500 / elapsed:8.0f} trials/sec "
          f"({simulator.device_count} devices; pass n_workers>1 to run() "
          "for multi-core scaling)")


if __name__ == "__main__":
    main()
