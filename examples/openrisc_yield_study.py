#!/usr/bin/env python3
"""OpenRISC-style yield study on a concrete synthetic netlist.

This example exercises the full substrate stack rather than the statistical
shortcut:

1. build the synthetic Nangate-45-like standard-cell library,
2. generate the OpenRISC-like gate-level netlist and size it with the
   load-driven sizing pass,
3. place it into 200 µm rows and extract the small-CNFET density
   Pmin-CNFET (the design half of Eq. 3.2),
4. sweep the device failure-probability curve (Fig. 2.1) into a yield
   surface and answer every width query — the curve, the design's whole
   width histogram, before and after upsizing — through the batched
   serving layer,
5. feed the measured placement density into the correlation model and
   report the design-specific relaxation factor.

Run with::

    python examples/openrisc_yield_study.py
"""

import numpy as np

from repro.cells.nangate45 import build_nangate45_library
from repro.core.calibration import CalibratedSetup
from repro.core.circuit_yield import chip_yield_from_failure_probabilities
from repro.core.correlation import CorrelationParameters, LayoutScenario, RowYieldModel
from repro.core.upsizing import UpsizingAnalysis, upsize_widths
from repro.growth.pitch import pitch_distribution_from_cv
from repro.netlist.openrisc import build_openrisc_like_design
from repro.netlist.placement import RowPlacement
from repro.reporting.ascii_plot import ascii_line_plot
from repro.serving import YieldService
from repro.surface import GridAxis, SurfaceBuilder, SweepSpec


def main(scale: float = 0.5) -> None:
    setup = CalibratedSetup()
    library = build_nangate45_library()

    print("Building the synthetic OpenRISC-like core ...")
    design = build_openrisc_like_design(library, scale=scale, seed=2010)
    print(f"  instances   : {design.instance_count}")
    print(f"  transistors : {design.transistor_count}")

    histogram = design.width_histogram(bin_width_nm=80.0)
    print("\nTransistor width histogram (Fig. 2.2a analogue):")
    for center, fraction in zip(histogram.bin_centers_nm, histogram.fractions):
        print(f"  {center:5.0f} nm : {100.0 * fraction:5.1f} %")

    print("\nPlacing into 200 um rows ...")
    placement = RowPlacement(design, row_width_nm=200_000.0, utilisation_target=0.85)
    stats = placement.statistics(small_width_threshold_nm=160.0)
    print(f"  rows                 : {stats.row_count}")
    print(f"  mean row utilisation : {stats.mean_utilisation:.2f}")
    print(f"  small CNFET density  : {stats.small_density_per_um:.2f} FETs/um "
          f"(paper: 1.8 FETs/um)")

    # Sweep the device failure surface once; every pF(W) below is a batched
    # query against it instead of a per-point Eq. 2.2 evaluation.
    wmin = setup.wmin_uncorrelated_nm()
    statistical = design.to_statistical(scaled_to=setup.chip_transistor_count)
    w_high = max(float(np.max(statistical.widths_nm)), wmin) + 50.0
    surface = SurfaceBuilder(SweepSpec(
        width_axis=GridAxis.from_range("width_nm", 20.0, w_high, 33),
        density_axis=GridAxis.from_range(
            "cnt_density_per_um", 200.0, 300.0, 5
        ),
        pitch=pitch_distribution_from_cv(setup.mean_pitch_nm, setup.pitch_cv),
        per_cnt_failure=setup.corner.per_cnt_failure_probability,
        correlation=setup.correlation,
    )).build()
    service = YieldService()
    key = service.register(surface)

    def device_pf(widths_nm):
        return service.query(key, np.asarray(widths_nm, dtype=float))

    widths = np.arange(20.0, 181.0, 4.0)
    curve = device_pf(widths).failure_probability
    print("\nDevice failure probability vs width (Fig. 2.1, worst corner, "
          "served from the yield surface):")
    print(ascii_line_plot(widths, curve, log_y=True, height=12,
                          x_label="W (nm)", y_label="pF"))

    # Chip-level yield of the concrete core, scaled to a full chip: the
    # whole width histogram is answered in one batched query.
    before = device_pf(statistical.widths_nm)
    yield_before = chip_yield_from_failure_probabilities(
        before.failure_probability, counts=statistical.counts
    )
    upsized = upsize_widths(statistical.widths_nm, wmin)
    after = device_pf(upsized)
    yield_after = chip_yield_from_failure_probabilities(
        after.failure_probability, counts=statistical.counts
    )
    penalty = UpsizingAnalysis(
        statistical.widths_nm, statistical.counts
    ).capacitance_penalty(wmin)
    print(f"\nChip yield before upsizing          : {yield_before:.3%}")
    print(f"Chip yield after upsizing to {wmin:5.1f} nm: {yield_after:.3%}")
    print(f"Gate-capacitance penalty             : {100.0 * penalty:.1f} %")
    print(f"Surface queries served               : {service.queries_served}")

    # Plug the measured placement density into the correlation model.
    params = CorrelationParameters(
        cnt_length_um=200.0,
        min_cnfet_density_per_um=stats.small_density_per_um,
    )
    row_model = RowYieldModel(parameters=params, count_model=setup.count_model)
    relaxation = row_model.relaxation_factor(setup.required_pf())
    wmin_relaxed = setup.wmin_solver.solve_simplified(
        setup.min_size_device_count, relaxation_factor=relaxation
    ).wmin_nm
    penalty_relaxed = UpsizingAnalysis(
        statistical.widths_nm, statistical.counts
    ).capacitance_penalty(wmin_relaxed)
    print(f"\nDesign-specific relaxation factor    : {relaxation:.0f}X")
    print(f"Wmin with correlation + aligned cells: {wmin_relaxed:.1f} nm")
    print(f"Residual penalty                     : {100.0 * penalty_relaxed:.1f} %")

    aligned = row_model.evaluate(
        LayoutScenario.DIRECTIONAL_ALIGNED,
        device_pf([wmin_relaxed]).failure_probability[0],
        setup.min_size_device_count,
    )
    print(f"Chip yield with aligned-active cells : {aligned.chip_yield:.3%}")


if __name__ == "__main__":
    main()
