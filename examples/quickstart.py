#!/usr/bin/env python3
"""Quickstart: the paper's processing/design co-optimization in ~20 lines.

Builds the calibrated 45 nm setup, loads the OpenRISC-like transistor-width
distribution scaled to a 100-million-transistor chip, and runs the full
Sec. 2 + Sec. 3 flow: baseline Wmin, correlation relaxation (~350X),
optimised Wmin and the upsizing penalty before/after, across technology
nodes.

Run with::

    python examples/quickstart.py
"""

from repro.core import default_setup
from repro.core.optimizer import CoOptimizationFlow
from repro.netlist.openrisc import openrisc_width_histogram


def main() -> None:
    setup = default_setup()
    design = openrisc_width_histogram(setup.chip_transistor_count)

    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    report = flow.run()

    print("CNFET yield co-optimization (Zhang et al., DAC 2010 reproduction)")
    print("=" * 68)
    for line in report.summary_lines():
        print(line)

    print()
    print("Upsizing penalty vs technology node:")
    print("node (nm)   without correlation (%)   with correlation (%)")
    for node, a, b in zip(
        report.baseline_scaling.nodes_nm,
        report.baseline_scaling.penalties_percent,
        report.optimized_scaling.penalties_percent,
    ):
        print(f"{node:9.0f}   {a:23.1f}   {b:20.1f}")


if __name__ == "__main__":
    main()
