#!/usr/bin/env python3
"""Technology scaling study: Fig. 2.2b and Fig. 3.3 in one script.

Sweeps the 45/32/22/16 nm nodes (and a user-extendable list), scaling the
transistor-width distribution linearly while keeping the inter-CNT pitch at
4 nm, and reports the upsizing penalty with and without the CNT-correlation
optimisation, plus the noise-margin and delay side-analyses at the chosen
operating point.

Run with::

    python examples/technology_scaling_study.py
"""

import numpy as np

from repro.analysis.delay import GateDelayModel
from repro.analysis.noise_margin import NoiseMarginModel
from repro.core.calibration import CalibratedSetup
from repro.core.scaling import penalty_comparison
from repro.growth.types import CNTTypeModel
from repro.netlist.openrisc import openrisc_width_histogram
from repro.reporting.ascii_plot import ascii_bar_chart


def main() -> None:
    setup = CalibratedSetup()
    design = openrisc_width_histogram(setup.chip_transistor_count)

    wmin_baseline = setup.wmin_uncorrelated_nm()
    wmin_optimised = setup.wmin_correlated_nm()
    nodes = [45, 32, 22, 16, 11]  # one node beyond the paper's sweep

    without, with_corr = penalty_comparison(
        design.widths_nm, design.counts,
        wmin_uncorrelated_nm=wmin_baseline,
        wmin_correlated_nm=wmin_optimised,
        nodes_nm=nodes,
    )

    print("=== Upsizing penalty vs technology node ===")
    print(f"Wmin without correlation: {wmin_baseline:.1f} nm")
    print(f"Wmin with correlation   : {wmin_optimised:.1f} nm")
    print()
    print(ascii_bar_chart(
        [f"{n} nm (no corr.)" for n in nodes], without.penalties_percent,
        title="penalty (%) without CNT correlation",
    ))
    print()
    print(ascii_bar_chart(
        [f"{n} nm (corr.)" for n in nodes], with_corr.penalties_percent,
        title="penalty (%) with CNT correlation and aligned-active cells",
    ))

    # Side analysis 1: how good must m-CNT removal be to keep noise hazards
    # in check at the optimised device size?
    print("\n=== Noise-margin hazard analysis (surviving m-CNTs) ===")
    noise = NoiseMarginModel(
        count_model=setup.count_model,
        type_model=CNTTypeModel(1.0 / 3.0, 0.9999, 0.0),
    )
    summary = noise.summarise_chip(wmin_optimised, setup.chip_transistor_count)
    required = noise.required_removal_probability(
        wmin_optimised, setup.chip_transistor_count, max_hazardous_devices=1e4
    )
    print(f"P(device keeps a surviving m-CNT) at pRm=99.99 %: "
          f"{summary.prob_device_has_surviving_mcnt:.3e}")
    print(f"expected hazardous devices per chip             : "
          f"{summary.expected_hazardous_devices_per_chip:.3g}")
    print(f"pRm needed to keep hazards below 1e4 devices    : {required:.6f}")

    # Side analysis 2: delay spread at minimum size, before and after the
    # optimisation changes the minimum device width.
    print("\n=== Gate delay spread (statistical averaging) ===")
    rng = np.random.default_rng(45)
    delay_model = GateDelayModel(count_model=setup.count_model)
    for label, width in (
        ("original minimum-size device (80 nm)", 80.0),
        (f"baseline Wmin ({wmin_baseline:.0f} nm)", wmin_baseline),
        (f"optimised Wmin ({wmin_optimised:.0f} nm)", wmin_optimised),
    ):
        summary = delay_model.summarise(width, 3_000, rng)
        print(f"{label:42}: sigma/mu = {summary.relative_spread:.3f}, "
              f"p99/nominal = {summary.p99_delay:.2f}")


if __name__ == "__main__":
    main()
