#!/usr/bin/env python3
"""Wafer-level what-if study: die-to-die growth variation and yield maps.

Goes one level above the paper's chip-scale analysis: every die on a wafer
gets its own CNT density (drifting towards the edge) and growth-direction
misalignment, and the chip-level yield model is evaluated per die for three
sizing strategies:

* no upsizing at all,
* upsizing to the uncorrelated Wmin (Sec. 2 baseline),
* upsizing to the correlation-relaxed Wmin with aligned-active cells,
  de-rated per die by the local misalignment angle.

The output is a text yield map plus good-die counts per strategy.

Run with::

    python examples/wafer_yield_map.py
"""

import math

import numpy as np

from repro.analysis.mispositioned import MisalignmentImpactModel
from repro.core.calibration import CalibratedSetup
from repro.growth.wafer import WaferGrowthModel


def die_yield(setup_template, pitch_nm, width_nm, relaxation=1.0):
    """Chip yield of one die with its local pitch and an upsized width."""
    setup = CalibratedSetup(
        mean_pitch_nm=pitch_nm,
        pitch_cv=setup_template.pitch_cv,
        corner=setup_template.corner,
        chip_transistor_count=setup_template.chip_transistor_count,
        min_size_fraction=setup_template.min_size_fraction,
        yield_target=setup_template.yield_target,
    )
    p_f = setup.failure_model.failure_probability(width_nm) / relaxation
    m_min = setup.min_size_device_count
    return math.exp(m_min * math.log1p(-min(p_f, 1.0 - 1e-12)))


def render_map(wafer, values, threshold=0.5):
    """Render a crude text map: '#' good die, '.' failing die."""
    columns = sorted({site.column for site in wafer.sites})
    rows = sorted({site.row for site in wafer.sites})
    by_pos = {(s.column, s.row): v for s, v in zip(wafer.sites, values)}
    lines = []
    for row in reversed(rows):
        cells = []
        for column in columns:
            value = by_pos.get((column, row))
            if value is None:
                cells.append(" ")
            else:
                cells.append("#" if value >= threshold else ".")
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    setup = CalibratedSetup()
    wafer = WaferGrowthModel(
        wafer_diameter_mm=100.0,
        die_size_mm=10.0,
        center_pitch_nm=setup.mean_pitch_nm,
        edge_pitch_drift=0.12,
        pitch_noise_sigma=0.02,
        center_misalignment_deg=0.02,
        edge_misalignment_deg=0.3,
    ).generate(np.random.default_rng(7))

    wmin_baseline = setup.wmin_uncorrelated_nm()
    wmin_optimised = setup.wmin_correlated_nm()
    nominal_relaxation = setup.relaxation_factor()
    misalignment_model = MisalignmentImpactModel(
        band_width_nm=wmin_optimised,
        cnt_length_um=setup.correlation.cnt_length_um,
        min_cnfet_density_per_um=setup.correlation.min_cnfet_density_per_um,
    )

    strategies = {}
    strategies["no upsizing (80 nm devices)"] = [
        die_yield(setup, site.mean_pitch_nm, 80.0) for site in wafer.sites
    ]
    strategies[f"upsized to baseline Wmin ({wmin_baseline:.0f} nm)"] = [
        die_yield(setup, site.mean_pitch_nm, wmin_baseline) for site in wafer.sites
    ]
    optimised = []
    for site in wafer.sites:
        local_relaxation = misalignment_model.evaluate(
            abs(site.misalignment_deg), n_samples=2_000
        ).effective_relaxation
        optimised.append(
            die_yield(setup, site.mean_pitch_nm, wmin_optimised,
                      relaxation=local_relaxation)
        )
    strategies[
        f"aligned-active at Wmin {wmin_optimised:.0f} nm (local misalignment de-rate)"
    ] = optimised

    print(f"Wafer: {wafer.die_count} dies, {wafer.wafer_diameter_mm:.0f} mm, "
          f"{wafer.die_size_mm:.0f} mm dies")
    print(f"Nominal relaxation factor: {nominal_relaxation:.0f}X\n")
    for label, values in strategies.items():
        good = sum(1 for v in values if v >= 0.5)
        print(f"--- {label}")
        print(f"    good dies: {good}/{wafer.die_count} "
              f"(mean yield {np.mean(values):.2%})")
        print(render_map(wafer, values))
        print()


if __name__ == "__main__":
    main()
