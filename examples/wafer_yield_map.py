#!/usr/bin/env python3
"""Wafer-level what-if study: die-to-die growth variation and yield maps.

Goes one level above the paper's chip-scale analysis: every die on a wafer
gets its own CNT density (drifting towards the edge, with spatially
correlated 2-D structure from :mod:`repro.growth.spatial`) and
growth-direction misalignment (correlated the same way), and the
chip-level yield model is evaluated per die for three sizing strategies:

* no upsizing at all,
* upsizing to the uncorrelated Wmin (Sec. 2 baseline),
* upsizing to the correlation-relaxed Wmin with aligned-active cells,
  de-rated per die by the local misalignment angle.

Two engines drive the per-die numbers:

* the *stacked wafer Monte Carlo runner*
  (:func:`repro.montecarlo.wafer_sim.simulate_wafer`) simulates every
  die's CNT growth directly — one die × trial × track pass answers all
  sizing widths from the same sampled tracks — and prints a radial yield
  summary for a measurable compute-tile workload;
* the precomputed yield-surface serving layer answers the deep-tail
  full-chip strategies (pF ~ 1e-9, beyond direct per-die sampling) as one
  batched :class:`~repro.serving.YieldService` query over every die's
  local density.

The output is the Monte Carlo radial table plus a text yield map and
good-die counts per strategy.

Run with::

    python examples/wafer_yield_map.py
"""

import numpy as np

from repro.analysis.mispositioned import MisalignmentImpactModel
from repro.core.calibration import CalibratedSetup
from repro.core.circuit_yield import yield_from_uniform_failure_probability_array
from repro.growth.pitch import pitch_distribution_from_cv
from repro.growth.spatial import SpatialFieldSpec
from repro.growth.wafer import WaferGrowthModel
from repro.montecarlo.wafer_sim import simulate_wafer
from repro.reporting.tables import (
    WAFER_SUMMARY_COLUMNS,
    render_table,
    wafer_map_lines,
    wafer_summary_rows,
)
from repro.serving import YieldService
from repro.surface import GridAxis, SurfaceBuilder, SweepSpec


def strategy_yields(service, key, width_nm, densities, device_count,
                    relaxations=None):
    """Per-die chip yields for one sizing strategy — one batched query.

    ``relaxations`` optionally divides each die's device pF by its local
    correlation benefit before the Eq. 2.3 product, mirroring the relaxed
    per-device budget of Sec. 3.
    """
    result = service.query(
        key,
        np.full(densities.shape, width_nm),
        cnt_density_per_um=densities,
        device_count=1.0,
    )
    p_f = result.failure_probability
    if relaxations is not None:
        p_f = p_f / np.asarray(relaxations)
    p_f = np.minimum(p_f, 1.0 - 1e-12)
    return yield_from_uniform_failure_probability_array(p_f, device_count)


def render_map(wafer, values, threshold=0.5):
    """Render a crude text map: '#' good die, '.' failing die."""
    return "\n".join(wafer_map_lines(wafer.sites, values, threshold=threshold))


def monte_carlo_tile_study(wafer, setup, n_trials: int = 2_048,
                           misalignment=None) -> None:
    """Direct stacked Monte Carlo over the wafer for a measurable workload.

    Simulates a 10k-minimum-size-device compute tile per die at two sizing
    widths under the pessimistic processing corner — a regime where
    per-die failures are frequent enough for direct sampling — and prints
    the radial yield table.  Both widths are answered from the *same*
    sampled tracks of each trial (they physically share them), which is
    what makes whole-wafer Monte Carlo affordable.  When a
    ``misalignment`` model is given, the Sec. 3 analytic relaxation is
    applied per die inside the stacked pass, de-rated by each die's local
    misalignment angle.
    """
    pitch = pitch_distribution_from_cv(setup.mean_pitch_nm, setup.pitch_cv)
    result = simulate_wafer(
        wafer,
        pitch,
        setup.corner.to_type_model(),
        widths_nm=[80.0, 120.0],
        device_counts=[5_000.0, 5_000.0],
        n_trials=n_trials,
        seed_key=(20100616,),
        misalignment=misalignment,
    )
    print(f"--- stacked Monte Carlo: 10k-device tile per die, "
          f"{result.n_trials} trials/die")
    print(render_table(wafer_summary_rows(result),
                       columns=WAFER_SUMMARY_COLUMNS))
    print(f"    expected good dice: {result.expected_good_dice:.1f}"
          f"/{result.die_count}\n")


def main(die_size_mm: float = 10.0, misalignment_samples: int = 2_000,
         mc_trials: int = 2_048) -> None:
    setup = CalibratedSetup()
    # Spatially correlated density and misalignment structure (PR 5):
    # neighbouring dies see correlated CNT densities and drift the same
    # way, which is what makes the edge zones fail *together* rather
    # than as independent coin flips.
    wafer = WaferGrowthModel(
        wafer_diameter_mm=100.0,
        die_size_mm=die_size_mm,
        center_pitch_nm=setup.mean_pitch_nm,
        edge_pitch_drift=0.12,
        center_misalignment_deg=0.02,
        edge_misalignment_deg=0.3,
        density_field=SpatialFieldSpec(sigma=0.02, correlation_length_mm=25.0),
        misalignment_field=SpatialFieldSpec(sigma=1.0, correlation_length_mm=30.0),
    ).generate(seed_key=(7,))

    wmin_baseline = setup.wmin_uncorrelated_nm()
    wmin_optimised = setup.wmin_correlated_nm()
    nominal_relaxation = setup.relaxation_factor()
    misalignment_model = MisalignmentImpactModel(
        band_width_nm=wmin_optimised,
        cnt_length_um=setup.correlation.cnt_length_um,
        min_cnfet_density_per_um=setup.correlation.min_cnfet_density_per_um,
    )

    # One sweep serves every die and strategy: densities bracket the wafer's
    # edge drift and noise, widths bracket all three sizing strategies.
    densities = np.array([1000.0 / site.mean_pitch_nm for site in wafer.sites])
    surface = SurfaceBuilder(SweepSpec(
        width_axis=GridAxis.from_range(
            "width_nm", 60.0, max(wmin_baseline, wmin_optimised) + 50.0, 17
        ),
        density_axis=GridAxis.from_range(
            "cnt_density_per_um",
            0.9 * float(densities.min()), 1.1 * float(densities.max()), 9,
        ),
        pitch=pitch_distribution_from_cv(setup.mean_pitch_nm, setup.pitch_cv),
        per_cnt_failure=setup.corner.per_cnt_failure_probability,
        correlation=setup.correlation,
    )).build()
    service = YieldService()
    key = service.register(surface)
    m_min = setup.min_size_device_count

    strategies = {}
    strategies["no upsizing (80 nm devices)"] = strategy_yields(
        service, key, 80.0, densities, m_min
    )
    strategies[f"upsized to baseline Wmin ({wmin_baseline:.0f} nm)"] = (
        strategy_yields(service, key, wmin_baseline, densities, m_min)
    )
    local_relaxations = np.array([
        misalignment_model.evaluate(
            abs(site.misalignment_deg), n_samples=misalignment_samples
        ).effective_relaxation
        for site in wafer.sites
    ])
    strategies[
        f"aligned-active at Wmin {wmin_optimised:.0f} nm (local misalignment de-rate)"
    ] = strategy_yields(
        service, key, wmin_optimised, densities, m_min,
        relaxations=local_relaxations,
    )

    print(f"Wafer: {wafer.die_count} dies, {wafer.wafer_diameter_mm:.0f} mm, "
          f"{wafer.die_size_mm:.0f} mm dies "
          f"(density field l = "
          f"{wafer.density_field.spec.correlation_length_mm:.0f} mm)")
    monte_carlo_tile_study(wafer, setup, n_trials=mc_trials,
                           misalignment=misalignment_model)
    print(f"Nominal relaxation factor: {nominal_relaxation:.0f}X")
    print(f"Yield surface: {surface.key} "
          f"({surface.width_nm.size}x{surface.cnt_density_per_um.size} grid, "
          f"{service.queries_served} die-queries served)\n")
    for label, values in strategies.items():
        good = int(np.sum(values >= 0.5))
        print(f"--- {label}")
        print(f"    good dies: {good}/{wafer.die_count} "
              f"(mean yield {np.mean(values):.2%})")
        print(render_map(wafer, values))
        print()


if __name__ == "__main__":
    main()
