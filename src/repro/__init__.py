"""repro — CNFET circuit yield enhancement via carbon-nanotube correlation.

A reproduction of "Carbon Nanotube Correlation: Promising Opportunity for
CNFET Circuit Yield Enhancement" (Zhang et al., DAC 2010).

The package is organised into:

* :mod:`repro.growth` — CNT growth substrate (pitch statistics, metallic/
  semiconducting types, removal processing, directional and isotropic
  growth simulators).
* :mod:`repro.device` — CNFET device substrate (active regions, drive
  current, variation, gate capacitance).
* :mod:`repro.cells` — standard-cell substrate (cell/library models,
  synthetic Nangate-45-like and commercial-65-like libraries, the
  aligned-active layout transform, area penalties).
* :mod:`repro.netlist` — circuit substrate (designs, a synthetic
  OpenRISC-like core, sizing and placement).
* :mod:`repro.core` — the paper's analytical contribution (count models,
  device failure probability, circuit yield, Wmin, the correlation-aware
  row yield model, upsizing penalties, technology scaling and the
  end-to-end co-optimization flow).
* :mod:`repro.montecarlo` — Monte Carlo validation of the analytical
  models (batched engine + rare-event importance sampling/splitting).
* :mod:`repro.surface` — precomputed, error-bounded, disk-persisted
  yield-surface artifacts swept from the closed forms or MC estimators.
* :mod:`repro.serving` — the batched query-serving tier over those
  surfaces (interpolation with propagated bounds, LRU cache, fallbacks).
* :mod:`repro.analysis` — extensions (noise margin, CNT length variation,
  delay variation).
* :mod:`repro.reporting` — table/figure data generators and text rendering.

Quickstart::

    from repro.core import default_setup
    from repro.core.optimizer import CoOptimizationFlow
    from repro.netlist.openrisc import openrisc_width_histogram

    setup = default_setup()
    design = openrisc_width_histogram(setup.chip_transistor_count)
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    report = flow.run()
    print("\\n".join(report.summary_lines()))
"""

from repro.core.calibration import CalibratedSetup, default_setup
from repro.core.optimizer import CoOptimizationFlow, CoOptimizationReport

__version__ = "1.0.0"

__all__ = [
    "CalibratedSetup",
    "default_setup",
    "CoOptimizationFlow",
    "CoOptimizationReport",
    "__version__",
]
