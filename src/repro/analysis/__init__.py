"""Extension analyses beyond the paper's core results.

The paper points at several adjacent questions it does not fully develop:
noise-margin degradation from surviving metallic CNTs (deferred to
[Zhang 09b]), the impact of CNT length variations on the correlation benefit
("will be discussed in a more detailed version of this work"), and the
delay/variation consequences of CNT count statistics.  This package
implements those extensions on top of the same substrates:

* :mod:`repro.analysis.noise_margin` — probability of noise-margin hazards
  from surviving m-CNTs as a function of the removal efficiency pRm.
* :mod:`repro.analysis.length_variation` — correlation benefit when the CNT
  length is a random variable rather than a fixed 200 µm.
* :mod:`repro.analysis.delay` — gate-delay spread induced by CNT count and
  diameter variations, and its dependence on device width.
* :mod:`repro.analysis.mispositioned` — mis-positioned / misaligned CNTs:
  the (negligible) single-device count loss and the truncation of the
  correlation benefit when the growth direction is misaligned from the rows.
"""

from repro.analysis.noise_margin import NoiseMarginModel, NoiseMarginSummary
from repro.analysis.length_variation import (
    CNTLengthDistribution,
    ExponentialLengthDistribution,
    FixedLengthDistribution,
    LognormalLengthDistribution,
    LengthVariationStudy,
)
from repro.analysis.delay import GateDelayModel, DelaySummary
from repro.analysis.mispositioned import (
    MisalignmentImpact,
    MisalignmentImpactModel,
    count_loss_probability,
)

__all__ = [
    "NoiseMarginModel",
    "NoiseMarginSummary",
    "CNTLengthDistribution",
    "ExponentialLengthDistribution",
    "FixedLengthDistribution",
    "LognormalLengthDistribution",
    "LengthVariationStudy",
    "GateDelayModel",
    "DelaySummary",
    "MisalignmentImpact",
    "MisalignmentImpactModel",
    "count_loss_probability",
]
