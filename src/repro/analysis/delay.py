"""Gate-delay variation induced by CNT imperfections (extension analysis).

The statistical-averaging argument the paper leans on (σ(Ion)/µ(Ion) ∝ 1/√N)
matters to designers mostly through its effect on gate delay: a gate whose
drive current is down because it captured few tubes (or thin tubes) is slow,
and the slow tail of the delay distribution sets the usable clock period.
This module provides a compact delay model so the reproduction can expose
that trade-off alongside the yield analysis:

* delay of a gate ≈ C_load · V_dd / I_on, with I_on summed over the gate's
  working tubes,
* the load is the width-proportional gate capacitance of the fanout gates,
* Monte Carlo over CNT counts and diameters yields the delay distribution,
  whose mean, spread and high quantiles are reported per device width.

Because everything is expressed as ratios to the nominal (mean-count,
nominal-diameter) delay, no absolute technology calibration is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.core.count_model import CountModel
from repro.device.capacitance import GateCapacitanceModel
from repro.device.current import CNTCurrentModel
from repro.growth.types import CNTTypeModel
from repro.units import ensure_positive


@dataclass(frozen=True)
class DelaySummary:
    """Normalised delay statistics of a gate at one device width."""

    width_nm: float
    mean_delay: float
    std_delay: float
    p95_delay: float
    p99_delay: float
    failure_fraction: float
    n_samples: int

    @property
    def relative_spread(self) -> float:
        """σ(delay) / µ(delay)."""
        if self.mean_delay == 0:
            return float("nan")
        return self.std_delay / self.mean_delay


class GateDelayModel:
    """Monte Carlo gate-delay model driven by CNT count/diameter statistics.

    Parameters
    ----------
    count_model:
        CNT count distribution Prob{N(W)}.
    type_model:
        CNT type / removal statistics (sets the working-tube thinning).
    current_model:
        Per-tube on-current model.
    capacitance_model:
        Load capacitance model (width-proportional).
    fanout:
        Number of identical receiver gates loading the output.
    diameter_mean_nm, diameter_std_nm:
        Tube diameter statistics.
    """

    def __init__(
        self,
        count_model: CountModel,
        type_model: Optional[CNTTypeModel] = None,
        current_model: Optional[CNTCurrentModel] = None,
        capacitance_model: Optional[GateCapacitanceModel] = None,
        fanout: int = 4,
        diameter_mean_nm: float = 1.5,
        diameter_std_nm: float = 0.2,
    ) -> None:
        self.count_model = count_model
        self.type_model = type_model or CNTTypeModel()
        self.current_model = current_model or CNTCurrentModel()
        self.capacitance_model = capacitance_model or GateCapacitanceModel()
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.fanout = int(fanout)
        self.diameter_mean_nm = ensure_positive(diameter_mean_nm, "diameter_mean_nm")
        if diameter_std_nm < 0:
            raise ValueError("diameter_std_nm must be non-negative")
        self.diameter_std_nm = float(diameter_std_nm)

    # ------------------------------------------------------------------
    # Nominal reference
    # ------------------------------------------------------------------

    def nominal_delay(self, width_nm: float) -> float:
        """Delay of a device with the mean working-tube count and nominal tubes."""
        ensure_positive(width_nm, "width_nm")
        mean_working = (
            self.count_model.mean_count(width_nm)
            * self.type_model.per_cnt_success_probability
        )
        nominal_current = mean_working * self.current_model.semiconducting_on_current_ua(
            self.diameter_mean_nm
        )
        load = self.fanout * self.capacitance_model.device_capacitance_af(width_nm)
        if nominal_current == 0:
            return float("inf")
        return load / nominal_current

    # ------------------------------------------------------------------
    # Monte Carlo
    # ------------------------------------------------------------------

    def sample_delays(
        self,
        width_nm: float,
        n_samples: int,
        rng: np.random.Generator,
        normalise: bool = True,
    ) -> np.ndarray:
        """Sample gate delays; failed devices (no working tube) yield ``inf``."""
        ensure_positive(width_nm, "width_nm")
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        counts = self.count_model.sample(width_nm, n_samples, rng)
        working = rng.binomial(counts, self.type_model.per_cnt_success_probability)
        load = self.fanout * self.capacitance_model.device_capacitance_af(width_nm)
        delays = np.empty(n_samples, dtype=float)
        for i, k in enumerate(working):
            if k == 0:
                delays[i] = np.inf
                continue
            current = self.current_model.sample_on_current_ua(
                int(k), rng, self.diameter_mean_nm, self.diameter_std_nm
            )
            delays[i] = load / current
        if normalise:
            nominal = self.nominal_delay(width_nm)
            if np.isfinite(nominal) and nominal > 0:
                delays = delays / nominal
        return delays

    def delays_from_counts(
        self,
        width_nm: float,
        working_counts: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        normalise: bool = True,
    ) -> np.ndarray:
        """Gate delays driven by externally sampled working-tube counts.

        Companion of :meth:`sample_delays` for callers that already hold the
        per-device counts — e.g. the chip Monte Carlo engine, whose counts
        carry the row-sharing correlation of the paper.  The count sampling
        step is skipped entirely; only the per-tube diameter draw remains
        (one flat vectorised draw via
        :meth:`~repro.device.current.CNTCurrentModel.on_currents_from_counts`),
        and ``rng=None`` gives every tube the nominal diameter so the delays
        become a deterministic function of the counts.

        Parameters
        ----------
        width_nm:
            Device width (sets the load capacitance).
        working_counts:
            Integer array (any shape) of working-tube counts per device.
        rng:
            Diameter sampling stream, or ``None`` for nominal diameters.
        normalise:
            Divide by :meth:`nominal_delay` (same convention as
            :meth:`sample_delays`).

        Returns
        -------
        numpy.ndarray
            Delay array of the same shape; devices with zero working tubes
            get ``inf``.
        """
        ensure_positive(width_nm, "width_nm")
        counts = np.asarray(working_counts)
        load = self.fanout * self.capacitance_model.device_capacitance_af(width_nm)
        currents = self.current_model.on_currents_from_counts(
            counts, rng, self.diameter_mean_nm, self.diameter_std_nm
        )
        delays = np.full(counts.shape, np.inf, dtype=float)
        conducting = currents > 0.0
        delays[conducting] = load / currents[conducting]
        if normalise:
            nominal = self.nominal_delay(width_nm)
            if np.isfinite(nominal) and nominal > 0:
                delays = delays / nominal
        return delays

    def summarise(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> DelaySummary:
        """Normalised delay statistics at one device width."""
        delays = self.sample_delays(width_nm, n_samples, rng, normalise=True)
        finite = delays[np.isfinite(delays)]
        failure_fraction = 1.0 - finite.size / delays.size
        if finite.size == 0:
            return DelaySummary(
                width_nm=float(width_nm),
                mean_delay=float("inf"),
                std_delay=float("nan"),
                p95_delay=float("inf"),
                p99_delay=float("inf"),
                failure_fraction=failure_fraction,
                n_samples=int(n_samples),
            )
        return DelaySummary(
            width_nm=float(width_nm),
            mean_delay=float(np.mean(finite)),
            std_delay=float(np.std(finite, ddof=1)) if finite.size > 1 else 0.0,
            p95_delay=float(np.percentile(finite, 95)),
            p99_delay=float(np.percentile(finite, 99)),
            failure_fraction=failure_fraction,
            n_samples=int(n_samples),
        )

    def spread_versus_width(
        self,
        widths_nm: Iterable[float],
        n_samples: int,
        rng: np.random.Generator,
    ) -> List[DelaySummary]:
        """Delay statistics across widths — wider devices average out variation."""
        return [self.summarise(float(w), n_samples, rng) for w in widths_nm]
