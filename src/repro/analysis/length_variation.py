"""Correlation benefit under CNT length variation (extension analysis).

The paper's row yield model assumes a fixed CNT length LCNT = 200 µm with
perfect correlation inside a tube and none across tube boundaries, and
explicitly defers the impact of CNT length variation to "a more detailed
version of this work".  This module supplies that analysis.

Model: along a placement row, the small devices are laid out at linear
density Pmin-CNFET.  The row is partitioned into independent correlation
segments whose lengths are the CNT lengths drawn from a distribution.  The
devices inside one segment fail together (aligned-active layout), so the
chip-level relaxation factor — the ratio between the uncorrelated and
correlated chip failure probabilities — equals the *average number of small
devices per segment*, which for i.i.d. segment lengths is

``relaxation ≈ E[L] · Pmin-CNFET``

in the naive mean-length argument of Eq. 3.2.  The exact effective
relaxation is the ratio of failure opportunities — every device in the
uncorrelated case versus one per *occupied* correlation segment in the
aligned case — i.e. the mean number of devices per occupied segment.
Length-biasing means occupied segments are longer than average, so the
effective relaxation never falls below the naive prediction and actually
improves slightly for broad length distributions; what genuinely hurts is a
short *mean* tube length, which shrinks every segment.  The study below
quantifies both effects so the LCNT requirement of the paper can be traded
against growth quality.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.units import ensure_positive


class CNTLengthDistribution(abc.ABC):
    """Distribution of CNT (correlation segment) lengths, in µm."""

    @property
    @abc.abstractmethod
    def mean_um(self) -> float:
        """Mean segment length in µm."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` segment lengths (µm)."""


@dataclass(frozen=True)
class FixedLengthDistribution(CNTLengthDistribution):
    """Degenerate distribution: every tube has exactly ``length_um``."""

    length_um: float

    def __post_init__(self) -> None:
        ensure_positive(self.length_um, "length_um")

    @property
    def mean_um(self) -> float:
        """Mean segment length (µm) — the fixed length itself."""
        return self.length_um

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` identical lengths (µm)."""
        return np.full(size, self.length_um, dtype=float)


@dataclass(frozen=True)
class ExponentialLengthDistribution(CNTLengthDistribution):
    """Exponentially distributed tube length (memoryless breakage model)."""

    mean_length_um: float

    def __post_init__(self) -> None:
        ensure_positive(self.mean_length_um, "mean_length_um")

    @property
    def mean_um(self) -> float:
        """Mean segment length (µm) of the exponential distribution."""
        return self.mean_length_um

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` exponentially distributed lengths (µm)."""
        return rng.exponential(scale=self.mean_length_um, size=size)


@dataclass(frozen=True)
class LognormalLengthDistribution(CNTLengthDistribution):
    """Lognormally distributed tube length (multiplicative growth variation)."""

    median_length_um: float
    sigma_log: float

    def __post_init__(self) -> None:
        ensure_positive(self.median_length_um, "median_length_um")
        ensure_positive(self.sigma_log, "sigma_log")

    @property
    def mean_um(self) -> float:
        """Mean segment length (µm) implied by the median and log-sigma."""
        return self.median_length_um * math.exp(0.5 * self.sigma_log ** 2)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` lognormally distributed lengths (µm)."""
        return rng.lognormal(
            mean=math.log(self.median_length_um), sigma=self.sigma_log, size=size
        )


@dataclass(frozen=True)
class LengthVariationResult:
    """Relaxation factors under a CNT length distribution."""

    mean_length_um: float
    naive_relaxation: float
    effective_relaxation: float
    devices_per_segment_mean: float
    empty_segment_fraction: float

    @property
    def ratio_to_naive(self) -> float:
        """effective / naive relaxation.

        Always ≥ 1 under the perfect-within-tube-correlation assumption:
        occupied segments are length-biased, so the average number of devices
        sharing a segment is at least the naive E[L]·Pmin-CNFET estimate.
        """
        if self.naive_relaxation == 0:
            return float("nan")
        return self.effective_relaxation / self.naive_relaxation


class LengthVariationStudy:
    """Quantifies the correlation benefit under random CNT lengths.

    Parameters
    ----------
    min_cnfet_density_per_um:
        Small-CNFET linear density Pmin-CNFET (FETs/µm).
    device_failure_probability:
        Device-level pF at the operating point of interest; the effective
        relaxation depends (weakly) on it through the segment failure
        saturation.
    """

    def __init__(
        self,
        min_cnfet_density_per_um: float = 1.8,
        device_failure_probability: float = 1.0e-6,
    ) -> None:
        self.density_per_um = ensure_positive(
            min_cnfet_density_per_um, "min_cnfet_density_per_um"
        )
        if not 0.0 < device_failure_probability < 1.0:
            raise ValueError("device_failure_probability must lie in (0, 1)")
        self.device_failure_probability = float(device_failure_probability)

    # ------------------------------------------------------------------
    # Core computation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        distribution: CNTLengthDistribution,
        n_segments: int = 200_000,
        rng: Optional[np.random.Generator] = None,
    ) -> LengthVariationResult:
        """Compute the naive and effective relaxation for a length distribution.

        The effective relaxation is defined through the chip failure
        probability: with ``m_i`` devices in segment ``i`` and per-device
        failure probability ``pF``,

        ``P{chip fails} ≈ Σ_i P{segment i fails} = Σ_{i occupied} pF``

        for the aligned case versus ``Σ_i m_i · pF`` for the uncorrelated
        case; segments with zero devices contribute nothing to either sum.
        The ratio of the two sums — the mean number of devices per occupied
        segment — is the effective relaxation.
        """
        rng = rng or np.random.default_rng(20100614)
        lengths = distribution.sample(n_segments, rng)
        devices = rng.poisson(lengths * self.density_per_um)
        p_f = self.device_failure_probability

        # Uncorrelated chip failure weight: every device is its own chance.
        uncorrelated_weight = float(np.sum(devices)) * p_f
        # Aligned chip failure weight: one chance per non-empty segment
        # (a segment with zero devices cannot fail and contributes nothing).
        occupied = devices > 0
        aligned_weight = float(np.sum(occupied)) * p_f

        if aligned_weight == 0.0:
            effective = float("inf") if uncorrelated_weight > 0 else 1.0
        else:
            effective = uncorrelated_weight / aligned_weight

        return LengthVariationResult(
            mean_length_um=float(np.mean(lengths)),
            naive_relaxation=distribution.mean_um * self.density_per_um,
            effective_relaxation=effective,
            devices_per_segment_mean=float(np.mean(devices)),
            empty_segment_fraction=float(np.mean(~occupied)),
        )

    def sweep_mean_length(
        self,
        mean_lengths_um: Iterable[float],
        distribution_family: str = "exponential",
        n_segments: int = 100_000,
        rng: Optional[np.random.Generator] = None,
    ) -> List[LengthVariationResult]:
        """Effective relaxation versus mean CNT length (the ablation sweep).

        ``distribution_family`` selects "fixed", "exponential" or "lognormal"
        (with a fixed shape of σ_log = 0.5 for the lognormal).
        """
        rng = rng or np.random.default_rng(20100615)
        results: List[LengthVariationResult] = []
        for mean_um in mean_lengths_um:
            mean_um = float(mean_um)
            if distribution_family == "fixed":
                dist: CNTLengthDistribution = FixedLengthDistribution(mean_um)
            elif distribution_family == "exponential":
                dist = ExponentialLengthDistribution(mean_um)
            elif distribution_family == "lognormal":
                sigma = 0.5
                median = mean_um / math.exp(0.5 * sigma ** 2)
                dist = LognormalLengthDistribution(median, sigma)
            else:
                raise ValueError(
                    f"unknown distribution_family {distribution_family!r}"
                )
            results.append(self.evaluate(dist, n_segments=n_segments, rng=rng))
        return results
