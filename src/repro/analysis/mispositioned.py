"""Mis-positioned / misaligned CNTs and their effect on the correlation benefit.

The paper's count-failure model deliberately ignores mis-positioned CNTs,
citing [Patil 08] for the observation that their effect is very limited when
the channel is short or when directional growth is used.  Mis-positioning
matters to *this* paper in a second, subtler way, though: the aligned-active
optimisation assumes a tube stays inside the shared active band over the
whole CNT length LCNT.  A tube growing at a small angle θ to the row drifts
out of a band of width W after a run length of roughly ``W / tan(θ)``, which
truncates the effective correlation length and therefore the relaxation
factor of Eq. 3.2.

This module quantifies both effects:

* :func:`count_loss_probability` — probability that a tube misses the
  source/drain overlap of a single device because of its angle (the effect
  the paper says is negligible — the numbers here confirm it),
* :class:`MisalignmentImpactModel` — the effective correlation length and
  relaxation factor as a function of the growth-direction misalignment
  spread, which connects to the wafer model in :mod:`repro.growth.wafer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.units import ensure_positive, um_to_nm


def count_loss_probability(
    channel_length_nm: float,
    device_width_nm: float,
    misalignment_deg: float,
) -> float:
    """Probability that a misaligned tube fails to bridge source and drain.

    A straight tube entering the active region at angle θ to the channel's
    transverse axis walks sideways by ``channel_length · tan(θ)`` while
    crossing the channel; if that walk exceeds the remaining device width the
    tube exits through the side of the active region and no longer connects
    source to drain.  For a tube entering at a uniformly distributed height,

    ``P{miss} = min(channel_length · |tan θ| / device_width, 1)``.

    With the paper's short channels (tens of nm) and degree-level
    misalignment this is a sub-percent effect — the reason the paper
    neglects it.
    """
    ensure_positive(channel_length_nm, "channel_length_nm")
    ensure_positive(device_width_nm, "device_width_nm")
    walk = channel_length_nm * abs(math.tan(math.radians(misalignment_deg)))
    return min(walk / device_width_nm, 1.0)


@dataclass(frozen=True)
class MisalignmentImpact:
    """Effective correlation statistics under a misalignment spread."""

    misalignment_sigma_deg: float
    nominal_cnt_length_um: float
    effective_correlation_length_um: float
    nominal_relaxation: float
    effective_relaxation: float

    @property
    def relaxation_retention(self) -> float:
        """Fraction of the nominal relaxation factor that survives."""
        if self.nominal_relaxation == 0:
            return float("nan")
        return self.effective_relaxation / self.nominal_relaxation


class MisalignmentImpactModel:
    """Effect of growth-direction misalignment on the aligned-active benefit.

    Parameters
    ----------
    band_width_nm:
        Width of the aligned active band (≈ Wmin after the optimisation).
    cnt_length_um:
        Nominal CNT length LCNT.
    min_cnfet_density_per_um:
        Small-CNFET density Pmin-CNFET along the row.
    """

    def __init__(
        self,
        band_width_nm: float = 103.0,
        cnt_length_um: float = 200.0,
        min_cnfet_density_per_um: float = 1.8,
    ) -> None:
        self.band_width_nm = ensure_positive(band_width_nm, "band_width_nm")
        self.cnt_length_um = ensure_positive(cnt_length_um, "cnt_length_um")
        self.density_per_um = ensure_positive(
            min_cnfet_density_per_um, "min_cnfet_density_per_um"
        )

    # ------------------------------------------------------------------
    # Single-angle geometry
    # ------------------------------------------------------------------

    def run_length_in_band_um(self, misalignment_deg: float) -> float:
        """Distance a tube at angle θ stays inside the aligned band.

        A tube at angle θ to the row leaves a band of width W after
        ``W / tan(θ)``; the usable correlation length is the smaller of that
        and the physical tube length.
        """
        angle = abs(misalignment_deg)
        if angle <= 0.0:
            return self.cnt_length_um
        run_nm = self.band_width_nm / math.tan(math.radians(angle))
        run_um = run_nm / um_to_nm(1.0)
        return min(run_um, self.cnt_length_um)

    def relaxation_for_angle(self, misalignment_deg: float) -> float:
        """Relaxation factor (Eq. 3.2) with the angle-truncated run length."""
        effective_length = self.run_length_in_band_um(misalignment_deg)
        return max(effective_length * self.density_per_um, 1.0)

    # ------------------------------------------------------------------
    # Angle-distribution averages
    # ------------------------------------------------------------------

    def evaluate(
        self,
        misalignment_sigma_deg: float,
        n_samples: int = 20_000,
        rng: Optional[np.random.Generator] = None,
    ) -> MisalignmentImpact:
        """Average the correlation benefit over a normal angle distribution."""
        if misalignment_sigma_deg < 0:
            raise ValueError("misalignment_sigma_deg must be non-negative")
        rng = rng or np.random.default_rng(20100617)
        nominal_relaxation = self.cnt_length_um * self.density_per_um
        if misalignment_sigma_deg == 0.0:
            return MisalignmentImpact(
                misalignment_sigma_deg=0.0,
                nominal_cnt_length_um=self.cnt_length_um,
                effective_correlation_length_um=self.cnt_length_um,
                nominal_relaxation=nominal_relaxation,
                effective_relaxation=nominal_relaxation,
            )
        angles = rng.normal(0.0, misalignment_sigma_deg, size=n_samples)
        lengths = np.array([self.run_length_in_band_um(a) for a in angles])
        relaxations = np.maximum(lengths * self.density_per_um, 1.0)
        return MisalignmentImpact(
            misalignment_sigma_deg=float(misalignment_sigma_deg),
            nominal_cnt_length_um=self.cnt_length_um,
            effective_correlation_length_um=float(np.mean(lengths)),
            nominal_relaxation=nominal_relaxation,
            effective_relaxation=float(np.mean(relaxations)),
        )

    def sweep(
        self,
        sigma_values_deg: Iterable[float],
        n_samples: int = 20_000,
        rng: Optional[np.random.Generator] = None,
    ) -> List[MisalignmentImpact]:
        """Evaluate the impact for a sweep of misalignment spreads."""
        rng = rng or np.random.default_rng(20100618)
        return [
            self.evaluate(float(sigma), n_samples=n_samples, rng=rng)
            for sigma in sigma_values_deg
        ]
