"""Noise-margin hazards from surviving metallic CNTs (extension analysis).

CNT count failure is not the only CNT-induced failure mode: a metallic CNT
that escapes removal shorts the CNFET's source and drain, which degrades the
static noise margin of the gate it belongs to.  The paper notes this
(referring to [Zhang 09b]) but argues that noise susceptibility does not
necessarily turn into a logic failure because downstream stages restore the
signal — and therefore restricts its yield model to count failures.

This module quantifies the size of that set-aside hazard so users of the
library can check the assumption for their own process parameters:

* the probability that a CNFET of width W retains at least one (or at least
  ``k``) surviving metallic tubes, as a function of pRm,
* the expected number of hazardous gates on a chip, and the pRm needed to
  keep that number below a target — reproducing the style of requirement
  ("pRm > 99.99 %") the paper quotes from prior work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.core.count_model import CountModel
from repro.growth.types import CNTTypeModel
from repro.units import ensure_positive, ensure_probability


@dataclass(frozen=True)
class NoiseMarginSummary:
    """Chip-level summary of surviving-m-CNT hazards."""

    width_nm: float
    prob_device_has_surviving_mcnt: float
    expected_surviving_mcnt_per_device: float
    expected_hazardous_devices_per_chip: float
    chip_device_count: float


class NoiseMarginModel:
    """Probability model for surviving metallic CNTs in a CNFET.

    Parameters
    ----------
    count_model:
        CNT count distribution Prob{N(W)}.
    type_model:
        CNT type and removal statistics; ``removal_prob_metallic`` (pRm) is
        the key knob here.
    """

    def __init__(self, count_model: CountModel, type_model: CNTTypeModel) -> None:
        self.count_model = count_model
        self.type_model = type_model

    # ------------------------------------------------------------------
    # Device-level probabilities
    # ------------------------------------------------------------------

    @property
    def per_cnt_surviving_metallic_probability(self) -> float:
        """Probability that one grown tube ends up as a surviving m-CNT."""
        return self.type_model.surviving_metallic_probability

    def prob_device_has_surviving_mcnt(self, width_nm: float) -> float:
        """P{device of width W has ≥ 1 surviving metallic tube}.

        Each grown tube independently becomes a surviving m-CNT with
        probability ``q = pm (1 - pRm)``, so

        ``P{≥1} = 1 - E[(1 - q)^N(W)] = 1 - G_N(1 - q)``

        with ``G_N`` the count PGF.
        """
        ensure_positive(width_nm, "width_nm")
        q = self.per_cnt_surviving_metallic_probability
        if q <= 0.0:
            return 0.0
        return 1.0 - float(self.count_model.pgf(width_nm, 1.0 - q))

    def expected_surviving_mcnt(self, width_nm: float) -> float:
        """Expected number of surviving metallic tubes in one device."""
        ensure_positive(width_nm, "width_nm")
        return self.count_model.mean_count(width_nm) * (
            self.per_cnt_surviving_metallic_probability
        )

    def prob_device_has_at_least(self, width_nm: float, k: int) -> float:
        """P{device has ≥ k surviving metallic tubes} (exact via the pmf)."""
        if k <= 0:
            return 1.0
        q = self.per_cnt_surviving_metallic_probability
        if q == 0.0:
            return 0.0
        pmf = self.count_model.pmf(width_nm)
        total = 0.0
        for n, p_n in enumerate(pmf):
            if p_n == 0.0 or n < k:
                continue
            # P{Binomial(n, q) >= k}
            prob_lt_k = 0.0
            for j in range(k):
                prob_lt_k += (
                    math.comb(n, j) * (q ** j) * ((1.0 - q) ** (n - j))
                )
            total += p_n * (1.0 - prob_lt_k)
        return total

    # ------------------------------------------------------------------
    # Chip-level summaries
    # ------------------------------------------------------------------

    def summarise_chip(
        self, width_nm: float, chip_device_count: float
    ) -> NoiseMarginSummary:
        """Expected number of devices on a chip carrying surviving m-CNTs."""
        ensure_positive(chip_device_count, "chip_device_count")
        p_hazard = self.prob_device_has_surviving_mcnt(width_nm)
        return NoiseMarginSummary(
            width_nm=float(width_nm),
            prob_device_has_surviving_mcnt=p_hazard,
            expected_surviving_mcnt_per_device=self.expected_surviving_mcnt(width_nm),
            expected_hazardous_devices_per_chip=p_hazard * chip_device_count,
            chip_device_count=float(chip_device_count),
        )

    def required_removal_probability(
        self,
        width_nm: float,
        chip_device_count: float,
        max_hazardous_devices: float = 1.0,
    ) -> float:
        """Smallest pRm keeping the expected hazardous-device count below a target.

        This reproduces the style of the "> 99.99 %" requirement the paper
        quotes: solve for pRm such that
        ``chip_device_count · P{device has a surviving m-CNT} ≤ target``.
        The solution uses a bisection on pRm because the count PGF is not
        generally invertible in closed form.
        """
        ensure_positive(chip_device_count, "chip_device_count")
        ensure_positive(max_hazardous_devices, "max_hazardous_devices")

        def hazards(p_rm: float) -> float:
            model = CNTTypeModel(
                metallic_fraction=self.type_model.metallic_fraction,
                removal_prob_metallic=p_rm,
                removal_prob_semiconducting=self.type_model.removal_prob_semiconducting,
            )
            q = model.surviving_metallic_probability
            if q <= 0.0:
                return 0.0
            p_hazard = 1.0 - float(self.count_model.pgf(width_nm, 1.0 - q))
            return p_hazard * chip_device_count

        if hazards(0.0) <= max_hazardous_devices:
            return 0.0
        low, high = 0.0, 1.0
        for _ in range(60):
            mid = 0.5 * (low + high)
            if hazards(mid) <= max_hazardous_devices:
                high = mid
            else:
                low = mid
        return high

    def hazard_curve(
        self, width_nm: float, removal_probabilities: Iterable[float]
    ) -> np.ndarray:
        """P{device has ≥1 surviving m-CNT} for each pRm in the given sweep."""
        results = []
        for p_rm in removal_probabilities:
            p_rm = ensure_probability(p_rm, "p_rm")
            model = CNTTypeModel(
                metallic_fraction=self.type_model.metallic_fraction,
                removal_prob_metallic=p_rm,
                removal_prob_semiconducting=self.type_model.removal_prob_semiconducting,
            )
            q = model.surviving_metallic_probability
            if q <= 0.0:
                results.append(0.0)
            else:
                results.append(1.0 - float(self.count_model.pgf(width_nm, 1.0 - q)))
        return np.asarray(results, dtype=float)
