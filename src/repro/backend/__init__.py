"""Array-API backend dispatch for the batched Monte Carlo engine.

The engine's numerics (gap draw + ``cumsum`` + banded ``searchsorted`` +
prefix sums + stopped likelihood-ratio gathers) run against the small
:class:`~repro.backend.core.ArrayBackend` protocol instead of NumPy
directly, so the same kernels execute on NumPy (the bit-identical
reference), CuPy, or torch, in either float64 or float32.

Select a backend explicitly::

    from repro.backend import get_backend
    backend = get_backend("numpy", dtype="float32")

or through the environment (picked up by every engine entry point that is
not handed an explicit backend)::

    REPRO_BACKEND=cupy REPRO_DTYPE=float32 python -m repro.cli wafer ...

See :mod:`repro.backend.core` for the dtype policy and the bit-identity
contract, and ``tests/backend/`` for the conformance suite that enforces
both.
"""

from repro.backend.core import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    default_backend,
    get_backend,
    match_dtype,
    register_backend,
    resolve_dtype,
)
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "match_dtype",
    "register_backend",
    "resolve_dtype",
]


def _cupy_factory(dtype, accum):
    from repro.backend.gpu import CupyBackend

    return CupyBackend(dtype=dtype, accum_dtype=accum)


def _torch_factory(dtype, accum):
    from repro.backend.gpu import TorchBackend

    return TorchBackend(dtype=dtype, accum_dtype=accum)


register_backend("cupy", _cupy_factory)
register_backend("torch", _torch_factory)
