"""Array backend protocol, dtype policy, and the backend registry.

The batched Monte Carlo engine is an array program: one 2D gap draw, a
``cumsum``, a banded ``searchsorted``, prefix sums, and a handful of
gathers.  None of those steps is NumPy-specific — they exist verbatim in
CuPy and (under slightly different names) in PyTorch — so the engine is
written against the small namespace protocol defined here instead of
against ``numpy`` directly.

:class:`ArrayBackend` is that protocol.  A backend bundles three things:

* the *array namespace* — ``cumsum``, ``searchsorted``, ``take``,
  ``concatenate`` … (elementwise arithmetic and comparisons go through the
  arrays' own operators and need no dispatch);
* the *RNG adapter* — :meth:`ArrayBackend.uniform` and
  :meth:`ArrayBackend.sample_gaps` turn the caller's
  :class:`numpy.random.Generator` (the single source of randomness, keyed
  by ``spawn_key`` for reproducible chunking) into draws on the backend's
  device;
* the *dtype policy* — ``dtype`` is the storage/compute dtype of track
  positions and values (float64 reference, float32 for GPU-friendly
  runs), ``accum_dtype`` the dtype of the reductions that are sensitive
  to rounding (window prefix sums and likelihood-ratio accumulation),
  float64 by default even under a float32 storage policy.

Bit-identity contract
---------------------
The NumPy backend at float64 must be *bit-identical* to the pre-dispatch
engine: every method maps to exactly the NumPy call the engine used to
make, in the same order, and the RNG adapter passes the caller's
generator straight through (draws always happen in the generator's native
float64 and are cast to the policy dtype afterwards, so the float32 and
float64 policies consume identical streams).  The conformance suite under
``tests/backend/`` pins this down.

Selection
---------
``get_backend()`` resolves a backend by name — explicitly, or from the
``REPRO_BACKEND`` environment variable (default ``numpy``); the dtype
policy likewise from ``REPRO_DTYPE`` (default ``float64``).  GPU backends
(``cupy``, ``torch``) are resolved lazily: importing this package never
imports them, and asking for an unavailable one raises
:class:`BackendUnavailableError` with an install hint.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "default_backend",
    "get_backend",
    "match_dtype",
    "register_backend",
    "resolve_dtype",
]


class BackendUnavailableError(RuntimeError):
    """Raised when a requested backend's runtime cannot be imported."""


_DTYPE_NAMES = {
    "float32": np.float32,
    "float64": np.float64,
    "f32": np.float32,
    "f64": np.float64,
}


def resolve_dtype(dtype) -> np.dtype:
    """Normalise a dtype spec (name or NumPy dtype) to a NumPy dtype.

    Only the two floating policies of the engine are accepted; anything
    else is a configuration error worth failing loudly on.
    """
    if isinstance(dtype, str):
        try:
            dtype = _DTYPE_NAMES[dtype.lower()]
        except KeyError:
            raise ValueError(
                f"unknown dtype policy {dtype!r}; expected one of "
                f"{sorted(set(_DTYPE_NAMES))}"
            ) from None
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            f"dtype policy must be float32 or float64, got {dt}"
        )
    return dt


def match_dtype(values, like: np.ndarray) -> np.ndarray:
    """Cast ``values`` to the dtype of ``like`` (no copy when it already matches).

    This is the explicit-cast helper for ``searchsorted`` operands: NumPy
    silently promotes a float32 haystack + float64 needle to float64,
    which is a full-array upcast on the hot path (and a hard error on
    torch, which refuses mixed-dtype searches).  Casting the *queries* to
    the *positions* dtype keeps the promotion explicit, cheap (queries
    are the small side), and identical in float64 where it is a no-op.
    """
    return np.asarray(values, dtype=like.dtype)


class ArrayBackend:
    """Namespace protocol the engine's array programs are written against.

    The base class implements the whole protocol in terms of ``self.xp``,
    an array module with NumPy semantics (NumPy itself, CuPy, or a shim).
    Methods whose semantics differ between runtimes (``searchsorted``
    side flags, prefix sums, paired gathers, RNG) are the named methods
    below; everything elementwise stays on the arrays' operators.
    """

    #: registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, dtype=np.float64, accum_dtype=np.float64) -> None:
        self.dtype = resolve_dtype(dtype)
        self.accum_dtype = resolve_dtype(accum_dtype)

    # -- identity / transport ------------------------------------------------

    @property
    def xp(self):  # pragma: no cover - subclasses bind a module
        """The backing array module (NumPy, CuPy, or a shim)."""
        raise NotImplementedError

    def asarray(self, a, dtype=None):
        """Backend array from ``a``; ``dtype=None`` keeps the input dtype."""
        return self.xp.asarray(a, dtype=dtype)

    def to_numpy(self, a) -> np.ndarray:
        """NumPy array from a backend array (host transfer when needed)."""
        return np.asarray(a)

    def cast_like(self, values, like):
        """Backend counterpart of :func:`match_dtype`."""
        return self.xp.asarray(values, dtype=like.dtype)

    # -- creation ------------------------------------------------------------

    def zeros(self, shape, dtype=None):
        """Zero-filled backend array; ``dtype=None`` uses the policy dtype."""
        return self.xp.zeros(shape, dtype=dtype or self.dtype)

    def empty(self, shape, dtype=None):
        """Uninitialised backend array; ``dtype=None`` uses the policy dtype."""
        return self.xp.empty(shape, dtype=dtype or self.dtype)

    def full(self, shape, fill_value, dtype=None):
        """Constant-filled backend array; ``dtype=None`` uses the policy dtype."""
        return self.xp.full(shape, fill_value, dtype=dtype or self.dtype)

    def arange(self, n, dtype=None):
        """``[0, n)`` index vector on the backend."""
        return self.xp.arange(n, dtype=dtype)

    def where(self, cond, a, b):
        """Elementwise ``a if cond else b`` on the backend."""
        return self.xp.where(cond, a, b)

    # -- the engine's array program ------------------------------------------

    def cumsum(self, a, axis):
        """Inclusive cumulative sum along ``axis``."""
        return self.xp.cumsum(a, axis=axis)

    def concatenate(self, arrays, axis):
        """Concatenate backend arrays along ``axis``."""
        return self.xp.concatenate(arrays, axis=axis)

    def clip(self, a, lo, hi):
        """Elementwise clamp of ``a`` into ``[lo, hi]``."""
        return self.xp.clip(a, lo, hi)

    def searchsorted(self, a, v, side):
        """Insertion indices of ``v`` into sorted ``a``.

        ``v`` must already share ``a``'s dtype (see :func:`match_dtype`);
        the conformance suite asserts the engine never relies on implicit
        promotion here.
        """
        return self.xp.searchsorted(a, v, side=side)

    def take(self, a, indices):
        """Gather ``a[indices]`` (flat take)."""
        return self.xp.take(a, indices)

    def take_pairs(self, a, rows, cols):
        """``a[rows, cols]`` for a 2D array and paired index vectors."""
        return a[rows, cols]

    def prefix_sum(self, values, size=None):
        """Zero-prefixed inclusive cumulative sum in the accumulator dtype.

        Returns an array of length ``len(values) + 1`` whose element ``i``
        is the sum of ``values[:i]``, accumulated in ``accum_dtype`` (the
        window-counting reduction is the engine step most sensitive to
        float32 rounding, so it gets its own dtype knob).
        """
        out = self.xp.zeros((size if size is not None else values.shape[0]) + 1,
                            dtype=self.accum_dtype)
        self.xp.cumsum(values, out=out[1:])
        return out

    def sum(self, a, axis=None):
        """Sum reduction over ``axis`` (all elements when ``None``)."""
        return self.xp.sum(a, axis=axis)

    def any(self, a) -> bool:
        """True when any element of ``a`` is truthy (host bool)."""
        return bool(self.xp.any(a))

    def exp(self, a):
        """Elementwise exponential."""
        return self.xp.exp(a)

    def power(self, base, exponent):
        """Elementwise ``base ** exponent``."""
        return self.xp.power(base, exponent)

    def reshape(self, a, shape):
        """View ``a`` with a new ``shape``."""
        return self.xp.reshape(a, shape)

    def ravel(self, a):
        """Flattened view (or copy) of ``a``."""
        return self.xp.ravel(a)

    # -- RNG adapter ---------------------------------------------------------

    def uniform(self, rng: np.random.Generator, shape):
        """U(0, 1) draws of ``shape`` on the backend's device.

        Always consumes the caller's generator in its native float64 (so
        the float32 policy sees the *same* stream, cast) — except on GPU
        backends, which draw from a device generator deterministically
        derived from ``rng`` (see :meth:`device_rng`).
        """
        raise NotImplementedError

    def sample_gaps(self, pitch, shape, rng: np.random.Generator, out=None):
        """Inter-CNT gap draws from ``pitch`` of ``shape``, policy dtype.

        ``out`` is an optional pre-allocated destination (a view into a
        stacked batch); backends may ignore it and return a fresh array —
        callers must use the *returned* array either way.
        """
        raise NotImplementedError

    # -- plumbing ------------------------------------------------------------

    def __reduce__(self):
        # Backends ride inside picklable chunk payloads dispatched to
        # process pools; reconstruct by name so workers re-resolve the
        # runtime locally instead of shipping module handles.
        return (get_backend, (self.name, self.dtype.name, self.accum_dtype.name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype.name}, "
            f"accum_dtype={self.accum_dtype.name})"
        )


_REGISTRY: Dict[str, Callable[[np.dtype, np.dtype], ArrayBackend]] = {}
_CACHE: Dict[Tuple[str, str, str], ArrayBackend] = {}


def register_backend(
    name: str, factory: Callable[[np.dtype, np.dtype], ArrayBackend]
) -> None:
    """Register a backend factory under ``name`` (used by :func:`get_backend`)."""
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`get_backend` (availability checked lazily)."""
    return tuple(sorted(_REGISTRY))


def get_backend(
    name: Optional[str] = None,
    dtype=None,
    accum_dtype=None,
) -> ArrayBackend:
    """Resolve a backend by name and dtype policy.

    ``None`` arguments fall back to the ``REPRO_BACKEND`` / ``REPRO_DTYPE``
    environment variables and then to ``numpy`` / ``float64``.  Instances
    are cached per (name, dtype, accum_dtype) — backends are stateless.
    """
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "numpy")
    if dtype is None:
        dtype = os.environ.get("REPRO_DTYPE", "float64")
    dt = resolve_dtype(dtype)
    if accum_dtype is None:
        accum_dtype = os.environ.get("REPRO_ACCUM_DTYPE", "float64")
    accum = resolve_dtype(accum_dtype)
    key = (name, dt.name, accum.name)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known backends: {available_backends()}"
        ) from None
    backend = factory(dt, accum)
    _CACHE[key] = backend
    return backend


def default_backend() -> ArrayBackend:
    """The environment-selected backend (``numpy``/``float64`` by default)."""
    return get_backend()
