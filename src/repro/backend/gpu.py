"""GPU backends: CuPy (drop-in NumPy namespace) and PyTorch (shimmed).

Imported lazily by the factories in :mod:`repro.backend` — importing the
backend package never imports CuPy or torch, and resolving one that is
not installed raises
:class:`~repro.backend.core.BackendUnavailableError`.  Neither runtime is
available in CI, so this module is exercised only by the ``gpu``-marked
conformance tests (auto-skipped elsewhere) and is excluded from the
coverage gate (see ``.coveragerc``).

RNG derivation
--------------
Engine callers hand every kernel a :class:`numpy.random.Generator`
spawned from the chunk tree, which is what makes runs independent of
``n_workers``.  GPU backends cannot share that stream directly; instead
every device draw consumes one 63-bit integer from the *host* generator
and seeds a fresh device generator with it.  The derivation is
deterministic — same spawn key, same call sequence, same device streams —
so GPU runs keep the bitwise ``n_workers`` invariance *within* a backend,
while drawing different (equally valid) randomness than the NumPy
reference; the conformance suite therefore holds GPU backends to
statistical, not bitwise, agreement.  (Host generators cannot be weakly
referenced, so a per-generator device-RNG cache is not an option; one
host draw per device draw is the stateless alternative.)
"""

from __future__ import annotations

import numpy as np

from repro.backend.core import ArrayBackend, BackendUnavailableError

__all__ = ["CupyBackend", "TorchBackend"]


def _device_seed(rng: np.random.Generator) -> int:
    """Fresh deterministic device seed, advancing the host stream once."""
    return int(rng.integers(0, 2**63))


class CupyBackend(ArrayBackend):
    """CuPy backend: the NumPy namespace on a CUDA device."""

    name = "cupy"

    def __init__(self, dtype=np.float64, accum_dtype=np.float64) -> None:
        try:
            import cupy
        except ImportError as exc:
            raise BackendUnavailableError(
                "backend 'cupy' requested but cupy is not importable; "
                "install cupy-cuda* matching your CUDA toolkit"
            ) from exc
        super().__init__(dtype=dtype, accum_dtype=accum_dtype)
        self._cupy = cupy

    @property
    def xp(self):
        """The backing array module: CuPy."""
        return self._cupy

    def to_numpy(self, a) -> np.ndarray:
        """Device-to-host transfer via ``cupy.asnumpy``."""
        return self._cupy.asnumpy(a)

    def device_rng(self, rng: np.random.Generator):
        """Fresh device generator for one draw, seeded from the host stream."""
        return self._cupy.random.default_rng(_device_seed(rng))

    def uniform(self, rng: np.random.Generator, shape):
        """U(0, 1) draws on the device, seeded from the host stream."""
        return self.device_rng(rng).random(shape, dtype=self.dtype)

    def sample_gaps(self, pitch, shape, rng: np.random.Generator, out=None):
        # ``out`` is an optimisation hint the protocol allows backends to
        # ignore; callers use the returned array either way.
        """Gap draws from ``pitch`` on the device (host fallback for families
        without a device sampler); ``out`` is ignored, use the return value.
        """
        from repro.growth.pitch import (
            DeterministicPitch,
            ExponentialPitch,
            GammaPitch,
        )

        dev = self.device_rng(rng)
        if isinstance(pitch, DeterministicPitch):
            return self._cupy.full(shape, pitch.pitch_nm, dtype=self.dtype)
        if isinstance(pitch, ExponentialPitch):
            u = dev.random(shape, dtype=self.dtype)
            return -self._cupy.log1p(-u) * pitch.mean_nm
        if isinstance(pitch, GammaPitch):
            gaps = dev.standard_gamma(pitch.shape, shape)
            return self._cupy.asarray(gaps, dtype=self.dtype) * pitch.scale_nm
        # Families without a device sampler: draw on the host stream and
        # transfer — correct, just not fast.  (TruncatedNormalPitch etc.)
        return self._cupy.asarray(pitch.sample_batch(shape, rng),
                                  dtype=self.dtype)


class TorchBackend(ArrayBackend):
    """PyTorch backend: NumPy-protocol shim over ``torch`` tensor ops.

    The device is ``cuda`` when available, else ``cpu`` (override with the
    ``REPRO_TORCH_DEVICE`` environment variable) — the CPU fallback makes
    the conformance suite runnable on any box with torch installed.
    """

    name = "torch"

    def __init__(self, dtype=np.float64, accum_dtype=np.float64) -> None:
        try:
            import torch
        except ImportError as exc:
            raise BackendUnavailableError(
                "backend 'torch' requested but torch is not importable"
            ) from exc
        super().__init__(dtype=dtype, accum_dtype=accum_dtype)
        import os

        self._torch = torch
        device = os.environ.get("REPRO_TORCH_DEVICE")
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)

    # -- dtype plumbing ------------------------------------------------------

    def _tdtype(self, dtype=None):
        torch = self._torch
        if isinstance(dtype, torch.dtype):
            return dtype
        dt = np.dtype(dtype) if dtype is not None else self.dtype
        if dt == np.dtype(np.float32):
            return torch.float32
        if dt == np.dtype(np.float64):
            return torch.float64
        if dt == np.dtype(np.int64):
            return torch.int64
        raise ValueError(f"no torch mapping for dtype {dt}")

    @property
    def xp(self):
        """No NumPy-like module: every protocol method is shimmed explicitly."""
        raise NotImplementedError(
            "TorchBackend dispatches through explicit methods, not a module"
        )

    def asarray(self, a, dtype=None):
        """Torch tensor on the backend device; ``dtype=None`` keeps the input dtype."""
        torch = self._torch
        if isinstance(a, torch.Tensor):
            return a.to(self._tdtype(dtype)) if dtype is not None else a
        return torch.as_tensor(
            np.asarray(a), dtype=self._tdtype(dtype) if dtype is not None else None,
            device=self.device,
        )

    def to_numpy(self, a) -> np.ndarray:
        """Host NumPy array from a tensor (detach + cpu transfer)."""
        if isinstance(a, self._torch.Tensor):
            return a.detach().cpu().numpy()
        return np.asarray(a)

    def cast_like(self, values, like):
        """Tensor of ``values`` cast to the dtype and device of ``like``."""
        return self.asarray(values).to(like.dtype)

    # -- array program -------------------------------------------------------

    def zeros(self, shape, dtype=None):
        """Zero-filled tensor; ``dtype=None`` uses the policy dtype."""
        return self._torch.zeros(shape, dtype=self._tdtype(dtype),
                                 device=self.device)

    def empty(self, shape, dtype=None):
        """Uninitialised tensor; ``dtype=None`` uses the policy dtype."""
        return self._torch.empty(shape, dtype=self._tdtype(dtype),
                                 device=self.device)

    def full(self, shape, fill_value, dtype=None):
        """Constant-filled tensor; ``dtype=None`` uses the policy dtype."""
        return self._torch.full(shape, fill_value, dtype=self._tdtype(dtype),
                                device=self.device)

    def arange(self, n, dtype=None):
        """``[0, n)`` index tensor on the device."""
        return self._torch.arange(
            n, dtype=self._tdtype(dtype) if dtype is not None else None,
            device=self.device,
        )

    def where(self, cond, a, b):
        """Elementwise ``a if cond else b`` as a tensor op."""
        torch = self._torch
        if not isinstance(b, torch.Tensor):
            b = torch.as_tensor(b, dtype=a.dtype if isinstance(a, torch.Tensor)
                                else None, device=self.device)
        return torch.where(cond, a, b)

    def cumsum(self, a, axis):
        """Inclusive cumulative sum along ``axis`` (``torch.cumsum``)."""
        return self._torch.cumsum(a, dim=axis)

    def concatenate(self, arrays, axis):
        """Concatenate tensors along ``axis`` (``torch.cat``)."""
        return self._torch.cat(tuple(arrays), dim=axis)

    def clip(self, a, lo, hi):
        """Elementwise clamp into ``[lo, hi]`` (``torch.clamp``)."""
        return self._torch.clamp(a, min=lo, max=hi)

    def searchsorted(self, a, v, side):
        """Insertion indices into sorted ``a``; torch requires matching dtypes."""
        return self._torch.searchsorted(a, v, right=(side == "right"))

    def take(self, a, indices):
        """Flat gather ``a[indices]`` (``torch.take``)."""
        return a[indices]

    def take_pairs(self, a, rows, cols):
        """Paired 2D gather ``a[rows, cols]`` via advanced indexing."""
        return a[rows, cols]

    def prefix_sum(self, values, size=None):
        """Zero-prefixed inclusive cumulative sum in the accumulator dtype."""
        torch = self._torch
        n = size if size is not None else values.shape[0]
        out = torch.zeros(n + 1, dtype=self._tdtype(self.accum_dtype),
                          device=self.device)
        torch.cumsum(values.to(out.dtype), dim=0, out=out[1:])
        return out

    def sum(self, a, axis=None):
        """Sum reduction over ``axis`` (all elements when ``None``)."""
        return self._torch.sum(a, dim=axis) if axis is not None else self._torch.sum(a)

    def any(self, a) -> bool:
        """True when any element is truthy (host bool)."""
        return bool(self._torch.any(a))

    def exp(self, a):
        """Elementwise exponential (``torch.exp``)."""
        return self._torch.exp(a)

    def power(self, base, exponent):
        """Elementwise ``base ** exponent`` (``torch.pow``)."""
        torch = self._torch
        if not isinstance(base, torch.Tensor):
            base = torch.as_tensor(base, device=self.device)
        return torch.pow(base, exponent)

    def reshape(self, a, shape):
        """Tensor view with a new ``shape``."""
        return self._torch.reshape(a, shape)

    def ravel(self, a):
        """Flattened tensor view (``torch.reshape(-1)``)."""
        return self._torch.ravel(a)

    # -- RNG adapter ---------------------------------------------------------

    def device_rng(self, rng: np.random.Generator):
        """Fresh device generator for one draw, seeded from the host stream."""
        dev = self._torch.Generator(device=self.device)
        dev.manual_seed(_device_seed(rng))
        return dev

    def uniform(self, rng: np.random.Generator, shape):
        """U(0, 1) draws on the device, seeded from the host stream."""
        if isinstance(shape, int):
            shape = (shape,)
        return self._torch.rand(shape, generator=self.device_rng(rng),
                                dtype=self._tdtype(), device=self.device)

    def sample_gaps(self, pitch, shape, rng: np.random.Generator, out=None):
        # ``out`` is an optimisation hint the protocol allows backends to
        # ignore; callers use the returned array either way.
        """Gap draws from ``pitch`` on the device (host fallback for families
        without a device sampler); ``out`` is ignored, use the return value.
        """
        from repro.growth.pitch import DeterministicPitch, ExponentialPitch

        torch = self._torch
        if isinstance(pitch, DeterministicPitch):
            return torch.full(shape, pitch.pitch_nm, dtype=self._tdtype(),
                              device=self.device)
        if isinstance(pitch, ExponentialPitch):
            u = self.uniform(rng, shape)
            return -torch.log1p(-u) * pitch.mean_nm
        # torch has no generator-controlled gamma sampler; draw on the host
        # stream and transfer (correct, slower — documented limitation).
        return self.asarray(pitch.sample_batch(shape, rng), dtype=self.dtype)
