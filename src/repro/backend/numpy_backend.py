"""NumPy reference backend — the bit-identity anchor of the dispatch layer.

Every method maps to exactly the NumPy call the pre-dispatch engine made,
so the float64 policy reproduces the PR-1/PR-2 engine bit for bit (the
golden-regression test pins this).  The float32 policy consumes the same
RNG stream — draws happen in the generator's native float64 and are cast
afterwards — which keeps float32-vs-float64 comparisons purely about
arithmetic rounding, not about different random numbers.
"""

from __future__ import annotations

import numpy as np

from repro.backend.core import ArrayBackend, register_backend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """The reference backend: ``xp`` is NumPy itself, RNG passes through."""

    name = "numpy"

    @property
    def xp(self):
        """The backing array module: NumPy itself."""
        return np

    def to_numpy(self, a) -> np.ndarray:
        """Identity transport: the array is already on the host."""
        return np.asarray(a)

    # -- RNG adapter ---------------------------------------------------------

    def uniform(self, rng: np.random.Generator, shape):
        """U(0, 1) draws from the caller's generator, cast to the policy dtype."""
        u = rng.random(shape)
        return np.asarray(u, dtype=self.dtype)

    def sample_gaps(self, pitch, shape, rng: np.random.Generator, out=None):
        """Gap draws from ``pitch`` on the caller's generator, policy dtype.

        ``out`` enables an allocation-free fast path for exponential/gamma
        families under the float64 policy; the drawn values are identical
        to the generic path either way.
        """
        if out is not None and self.dtype == np.dtype(np.float64):
            # Allocation-free fast path for the families whose standard
            # variates NumPy can draw straight into a destination view.
            # ``Generator.exponential(scale)`` / ``gamma(k, scale)`` are
            # exactly ``standard_* * scale`` on the same stream, so the
            # values (not just the law) match the generic path.
            from repro.growth.pitch import ExponentialPitch, GammaPitch

            if isinstance(pitch, ExponentialPitch):
                rng.standard_exponential(size=shape, out=out)
                out *= pitch.mean_pitch_nm
                return out
            if isinstance(pitch, GammaPitch):
                rng.standard_gamma(pitch.shape, size=shape, out=out)
                out *= pitch.scale_nm
                return out
        gaps = pitch.sample_batch(shape, rng)
        return np.asarray(gaps, dtype=self.dtype)


register_backend(
    "numpy", lambda dtype, accum: NumpyBackend(dtype=dtype, accum_dtype=accum)
)
