"""Standard-cell substrate.

The paper's layout-level contribution — the aligned-active restriction — is
a transformation on standard-cell libraries, so the reproduction needs a
cell-library substrate:

* :mod:`repro.cells.geometry` — rectangles, placement grids and snapping.
* :mod:`repro.cells.cell` — transistors, intra-cell active regions and the
  :class:`StandardCell` object.
* :mod:`repro.cells.library` — the :class:`CellLibrary` container with
  library-wide statistics.
* :mod:`repro.cells.nangate45` — a procedurally generated 134-cell library
  standing in for the Nangate 45 nm Open Cell Library.
* :mod:`repro.cells.commercial65` — a procedurally generated 775-cell
  library standing in for the commercial 65 nm library of Table 2.
* :mod:`repro.cells.aligned_active` — the aligned-active enforcement
  heuristic of Sec. 3.2.
* :mod:`repro.cells.area` — library-level area-penalty statistics (Table 2).
* :mod:`repro.cells.export` — LEF-style / Liberty-style text views of the
  libraries (and their aligned-active variants).
"""

from repro.cells.geometry import Rect, PlacementGrid
from repro.cells.cell import CellTransistor, StandardCell, CellActiveRegion
from repro.cells.library import CellLibrary, LibraryStatistics
from repro.cells.nangate45 import build_nangate45_library
from repro.cells.commercial65 import build_commercial65_library
from repro.cells.aligned_active import (
    AlignedActiveTransform,
    CellAlignmentResult,
    LibraryAlignmentResult,
)
from repro.cells.area import AreaPenaltyReport, area_penalty_report
from repro.cells.export import (
    export_liberty_view,
    export_physical_view,
    parse_physical_view,
)

__all__ = [
    "Rect",
    "PlacementGrid",
    "CellTransistor",
    "StandardCell",
    "CellActiveRegion",
    "CellLibrary",
    "LibraryStatistics",
    "build_nangate45_library",
    "build_commercial65_library",
    "AlignedActiveTransform",
    "CellAlignmentResult",
    "LibraryAlignmentResult",
    "AreaPenaltyReport",
    "area_penalty_report",
    "export_liberty_view",
    "export_physical_view",
    "parse_physical_view",
]
