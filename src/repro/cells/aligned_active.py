"""The aligned-active enforcement heuristic (Sec. 3.2, Fig. 3.2).

The paper's heuristic for retro-fitting an existing standard-cell library
with the aligned-active restriction is:

1. estimate Wmin (Eq. 2.5 together with the row yield model of Eq. 3.1),
2. find the active regions of all CNFETs with width ≤ Wmin ("critical
   regions") and upsize them to Wmin,
3. place the n-type (and, independently, p-type) critical active regions of
   every cell so their y-coordinates match a globally defined grid,
4. fix up intra-cell routing; retain I/O pin positions as far as possible.

Step 3 is free for most cells, but a cell that stacks two critical devices
of the same polarity vertically in the same column cannot put both of them
on one shared y-band: one of them must move to a new column, widening the
cell.  This is what costs area on a handful of Nangate cells (e.g. the
AOI222_X1 of Fig. 3.2, +~9 % cell width) and on ~20 % of the commercial
65 nm cells (Table 2).  Allowing *two* aligned active regions per polarity
accommodates the stacked pair without widening anything — at the price of
splitting the correlated devices over two track groups and thus halving the
correlation benefit.

This module implements that transformation on the cell model of
:mod:`repro.cells.cell` and reports per-cell and per-library penalties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.cell import CellFamily, CellTransistor, StandardCell
from repro.cells.geometry import PlacementGrid
from repro.cells.library import CellLibrary
from repro.device.active_region import Polarity
from repro.units import ensure_positive


@dataclass(frozen=True)
class CellAlignmentResult:
    """Outcome of enforcing the aligned-active restriction on one cell."""

    original: StandardCell
    modified: StandardCell
    critical_device_count: int
    upsized_device_count: int
    extra_columns: int

    @property
    def width_penalty(self) -> float:
        """Fractional cell-width increase (0 when the cell did not widen)."""
        return self.modified.width_nm / self.original.width_nm - 1.0

    @property
    def has_area_penalty(self) -> bool:
        """True when the cell had to widen."""
        return self.extra_columns > 0

    @property
    def area_penalty_nm2(self) -> float:
        """Absolute area increase (row height is fixed, so width drives area)."""
        return self.modified.area_nm2 - self.original.area_nm2


@dataclass(frozen=True)
class LibraryAlignmentResult:
    """Outcome of enforcing the aligned-active restriction on a whole library."""

    library_name: str
    wmin_nm: float
    aligned_region_groups: int
    cell_results: Tuple[CellAlignmentResult, ...]

    # ------------------------------------------------------------------
    # Aggregates (the quantities reported in Table 2)
    # ------------------------------------------------------------------

    @property
    def cell_count(self) -> int:
        """Number of cells processed."""
        return len(self.cell_results)

    @property
    def penalised_cells(self) -> Tuple[CellAlignmentResult, ...]:
        """Cells whose width increased."""
        return tuple(r for r in self.cell_results if r.has_area_penalty)

    @property
    def penalised_cell_count(self) -> int:
        """Number of cells with an area penalty."""
        return len(self.penalised_cells)

    @property
    def penalised_fraction(self) -> float:
        """Fraction of library cells with an area penalty."""
        if not self.cell_results:
            return 0.0
        return self.penalised_cell_count / self.cell_count

    @property
    def min_penalty(self) -> float:
        """Smallest non-zero width penalty (0.0 when no cell is penalised)."""
        penalties = [r.width_penalty for r in self.penalised_cells]
        return min(penalties) if penalties else 0.0

    @property
    def max_penalty(self) -> float:
        """Largest width penalty (0.0 when no cell is penalised)."""
        penalties = [r.width_penalty for r in self.penalised_cells]
        return max(penalties) if penalties else 0.0

    def result_for(self, cell_name: str) -> CellAlignmentResult:
        """Per-cell result lookup by name."""
        for result in self.cell_results:
            if result.original.name == cell_name:
                return result
        raise KeyError(f"no alignment result for cell {cell_name!r}")

    def to_library(self, new_name: Optional[str] = None) -> CellLibrary:
        """Materialise the modified cells as a new :class:`CellLibrary`."""
        name = new_name or f"{self.library_name}_aligned"
        return CellLibrary(name, cells=[r.modified for r in self.cell_results])


class AlignedActiveTransform:
    """Enforces the aligned-active layout restriction on cells and libraries.

    Parameters
    ----------
    wmin_nm:
        The upsizing threshold: devices narrower than this are critical,
        get upsized to ``wmin_nm`` and must sit on the aligned band(s).
    aligned_region_groups:
        Number of aligned active bands available per polarity (1 in the
        paper's baseline; 2 in the zero-area-penalty variant of Sec. 3.3).
    align_non_critical:
        Whether non-critical regions are also pulled onto the grid when that
        is free (the paper notes it is "still beneficial"); this has no area
        effect in the model but is reflected in the produced geometry.
    grid:
        Optional explicit placement grid for the aligned bands.  The default
        grid places band 0 at the bottom of each polarity strip.
    """

    def __init__(
        self,
        wmin_nm: float,
        aligned_region_groups: int = 1,
        align_non_critical: bool = True,
        grid: Optional[PlacementGrid] = None,
    ) -> None:
        self.wmin_nm = ensure_positive(wmin_nm, "wmin_nm")
        if aligned_region_groups < 1:
            raise ValueError("aligned_region_groups must be at least 1")
        self.aligned_region_groups = int(aligned_region_groups)
        self.align_non_critical = bool(align_non_critical)
        self.grid = grid or PlacementGrid(origin_nm=0.0, pitch_nm=self.wmin_nm + 60.0)

    # ------------------------------------------------------------------
    # Device-level helpers
    # ------------------------------------------------------------------

    def is_critical(self, transistor: CellTransistor) -> bool:
        """A device is critical when its width is at or below Wmin."""
        return transistor.width_nm <= self.wmin_nm

    def _upsize(self, transistor: CellTransistor) -> CellTransistor:
        """Upsize a critical device to Wmin (non-critical devices unchanged)."""
        if self.is_critical(transistor) and transistor.width_nm < self.wmin_nm:
            return transistor.resized(self.wmin_nm)
        return transistor

    # ------------------------------------------------------------------
    # Cell-level transformation
    # ------------------------------------------------------------------

    def _conflicting_columns(
        self, cell: StandardCell, polarity: Polarity
    ) -> Dict[int, List[CellTransistor]]:
        """Columns holding more critical devices of one polarity than bands.

        Each such column must shed its surplus devices into new columns.
        """
        per_column: Dict[int, List[CellTransistor]] = {}
        for t in cell.transistors_of(polarity):
            if self.is_critical(t):
                per_column.setdefault(t.column, []).append(t)
        return {
            col: devices
            for col, devices in per_column.items()
            if len({d.row_slot for d in devices}) > self.aligned_region_groups
        }

    def apply_to_cell(self, cell: StandardCell) -> CellAlignmentResult:
        """Apply the aligned-active restriction to one cell.

        Critical devices are upsized to Wmin and assigned to aligned bands
        (row slots ``0 .. aligned_region_groups - 1``).  Columns holding more
        critical devices than there are bands shed the surplus into new
        columns appended at the right edge of the cell, which widens it.
        Physical cells (no transistors) pass through unchanged.
        """
        if cell.family is CellFamily.PHYSICAL or not cell.transistors:
            return CellAlignmentResult(
                original=cell,
                modified=cell,
                critical_device_count=0,
                upsized_device_count=0,
                extra_columns=0,
            )

        critical = [t for t in cell.transistors if self.is_critical(t)]
        upsized_count = sum(1 for t in critical if t.width_nm < self.wmin_nm)

        # Work out, per polarity, which devices must move to new columns.
        moves: Dict[str, int] = {}  # transistor name -> new column
        extra_columns = 0
        next_new_column = cell.n_columns
        for polarity in (Polarity.NFET, Polarity.PFET):
            conflicts = self._conflicting_columns(cell, polarity)
            for column in sorted(conflicts):
                devices = sorted(conflicts[column], key=lambda t: t.row_slot)
                surplus = devices[self.aligned_region_groups:]
                for device in surplus:
                    moves[device.name] = next_new_column
                    next_new_column += 1
                    extra_columns += 1

        new_transistors: List[CellTransistor] = []
        for t in cell.transistors:
            new_t = self._upsize(t)
            if t.name in moves:
                # Displaced device lands on band 0 of its new column.
                new_t = new_t.moved(column=moves[t.name], row_slot=0)
            elif self.is_critical(t):
                # Critical device stays in place but snaps onto an allowed band.
                band = min(t.row_slot, self.aligned_region_groups - 1)
                new_t = new_t.moved(row_slot=band)
            elif self.align_non_critical and t.row_slot >= self.aligned_region_groups:
                # Non-critical devices are aligned when it costs nothing:
                # they only keep an off-band slot if their column still hosts
                # a device on every allowed band.
                new_t = new_t.moved(row_slot=0)
            new_transistors.append(new_t)

        modified = cell.with_transistors(
            new_transistors, n_columns=cell.n_columns + extra_columns
        )
        return CellAlignmentResult(
            original=cell,
            modified=modified,
            critical_device_count=len(critical),
            upsized_device_count=upsized_count,
            extra_columns=extra_columns,
        )

    # ------------------------------------------------------------------
    # Library-level transformation
    # ------------------------------------------------------------------

    def apply_to_library(self, library: CellLibrary) -> LibraryAlignmentResult:
        """Apply the restriction to every cell of a library (Table 2 rows)."""
        results = tuple(self.apply_to_cell(cell) for cell in library)
        return LibraryAlignmentResult(
            library_name=library.name,
            wmin_nm=self.wmin_nm,
            aligned_region_groups=self.aligned_region_groups,
            cell_results=results,
        )


def enforce_aligned_active(
    library: CellLibrary,
    wmin_nm: float,
    aligned_region_groups: int = 1,
) -> LibraryAlignmentResult:
    """Convenience wrapper: build a transform and apply it to a library."""
    transform = AlignedActiveTransform(
        wmin_nm=wmin_nm, aligned_region_groups=aligned_region_groups
    )
    return transform.apply_to_library(library)
