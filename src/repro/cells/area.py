"""Library-level area-penalty statistics (Table 2).

Given a :class:`~repro.cells.aligned_active.LibraryAlignmentResult`, this
module condenses it into the quantities Table 2 of the paper reports per
library and per aligned-region-count variant:

* total number of standard cells,
* number / fraction of cells with an area penalty,
* minimum and maximum width penalty among the penalised cells,
* the Wmin the restriction was enforced against.

It also provides a design-level area estimator: the area impact of a cell
library change on a placed design depends on how often each cell is
instantiated, so the report can be weighted by an instance-count profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.cells.aligned_active import LibraryAlignmentResult


@dataclass(frozen=True)
class AreaPenaltyReport:
    """Condensed per-library area statistics (one column of Table 2)."""

    library_name: str
    wmin_nm: float
    aligned_region_groups: int
    cell_count: int
    penalised_cell_count: int
    min_penalty: float
    max_penalty: float
    mean_penalty_over_penalised: float

    @property
    def penalised_fraction(self) -> float:
        """Fraction of cells with an area penalty."""
        if self.cell_count == 0:
            return 0.0
        return self.penalised_cell_count / self.cell_count

    @property
    def min_penalty_percent(self) -> float:
        """Minimum penalty in percent (Table 2's "Min penalty")."""
        return 100.0 * self.min_penalty

    @property
    def max_penalty_percent(self) -> float:
        """Maximum penalty in percent (Table 2's "Max penalty")."""
        return 100.0 * self.max_penalty

    def as_table_row(self) -> Dict[str, object]:
        """Row dictionary used by the reporting layer and benchmarks."""
        return {
            "library": self.library_name,
            "aligned_regions": self.aligned_region_groups,
            "num_cells": self.cell_count,
            "cells_with_penalty": self.penalised_cell_count,
            "cells_with_penalty_pct": 100.0 * self.penalised_fraction,
            "min_penalty_pct": self.min_penalty_percent,
            "max_penalty_pct": self.max_penalty_percent,
            "wmin_nm": self.wmin_nm,
        }


def area_penalty_report(result: LibraryAlignmentResult) -> AreaPenaltyReport:
    """Summarise a library alignment result into an :class:`AreaPenaltyReport`."""
    penalised = result.penalised_cells
    if penalised:
        mean_penalty = sum(r.width_penalty for r in penalised) / len(penalised)
    else:
        mean_penalty = 0.0
    return AreaPenaltyReport(
        library_name=result.library_name,
        wmin_nm=result.wmin_nm,
        aligned_region_groups=result.aligned_region_groups,
        cell_count=result.cell_count,
        penalised_cell_count=result.penalised_cell_count,
        min_penalty=result.min_penalty,
        max_penalty=result.max_penalty,
        mean_penalty_over_penalised=mean_penalty,
    )


def design_area_increase(
    result: LibraryAlignmentResult,
    instance_counts: Mapping[str, float],
    ignore_missing: bool = True,
) -> float:
    """Fractional placed-area increase of a design using the modified library.

    Parameters
    ----------
    result:
        Library alignment result.
    instance_counts:
        Mapping cell name -> number of instances in the design.
    ignore_missing:
        If True, instances of cells absent from the library result are
        skipped; otherwise a ``KeyError`` is raised.
    """
    area_before = 0.0
    area_after = 0.0
    by_name = {r.original.name: r for r in result.cell_results}
    for cell_name, count in instance_counts.items():
        cell_result = by_name.get(cell_name)
        if cell_result is None:
            if ignore_missing:
                continue
            raise KeyError(f"cell {cell_name!r} not present in alignment result")
        area_before += count * cell_result.original.area_nm2
        area_after += count * cell_result.modified.area_nm2
    if area_before == 0.0:
        return 0.0
    return area_after / area_before - 1.0


def compare_region_variants(
    reports: Sequence[AreaPenaltyReport],
) -> Dict[int, AreaPenaltyReport]:
    """Index area reports by their aligned-region-group count.

    Table 2 contrasts the one-region and two-region variants of the 65 nm
    library; this helper keys a collection of reports so benchmarks can print
    them side by side.
    """
    indexed: Dict[int, AreaPenaltyReport] = {}
    for report in reports:
        indexed[report.aligned_region_groups] = report
    return indexed
