"""Standard-cell model: transistors, intra-cell active regions, cells.

The reproduction needs just enough of a standard-cell abstraction to carry
out the paper's analyses:

* per-transistor widths (for the width histogram and the yield model),
* per-transistor placement inside the cell in terms of *columns* (gate-pitch
  slots along x) and *row slots* (vertical stacking positions inside the
  n- or p-strip), because vertical stacking is what makes the aligned-active
  restriction expensive for some cells,
* the cell width in placement sites (for area-penalty accounting),
* pin positions (retained as much as possible by the transform, mirroring
  the paper's statement that I/O pin locations were preserved).

The model is deliberately not a polygon-level layout database; every figure
and table of the paper depends only on the quantities above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.device.active_region import ActiveRegion, Polarity
from repro.units import ensure_positive


class CellFamily(enum.Enum):
    """Coarse functional family of a standard cell."""

    COMBINATIONAL = "combinational"
    BUFFER = "buffer"
    SEQUENTIAL = "sequential"
    PHYSICAL = "physical"  # filler, tap, antenna, tie cells


@dataclass(frozen=True)
class CellTransistor:
    """One transistor inside a standard cell.

    Parameters
    ----------
    name:
        Device name unique within the cell (e.g. ``"MN0"``).
    polarity:
        n-type or p-type.
    width_nm:
        Device width (the CNFET width W).
    column:
        Index of the gate-pitch column the device occupies along x.
    row_slot:
        Vertical stacking slot inside the polarity strip.  Slot 0 is adjacent
        to the power rail; slot 1 (and above) indicates a device stacked
        further from the rail in the same column — the configuration that
        conflicts with a single aligned active band.
    """

    name: str
    polarity: Polarity
    width_nm: float
    column: int
    row_slot: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.width_nm, "width_nm")
        if self.column < 0:
            raise ValueError(f"column must be non-negative, got {self.column}")
        if self.row_slot < 0:
            raise ValueError(f"row_slot must be non-negative, got {self.row_slot}")

    def resized(self, new_width_nm: float) -> "CellTransistor":
        """Copy with a new width (used by upsizing)."""
        return replace(self, width_nm=float(new_width_nm))

    def moved(self, column: Optional[int] = None, row_slot: Optional[int] = None) -> "CellTransistor":
        """Copy placed at a different column and/or row slot."""
        return replace(
            self,
            column=self.column if column is None else int(column),
            row_slot=self.row_slot if row_slot is None else int(row_slot),
        )


@dataclass(frozen=True)
class CellPin:
    """A cell I/O pin with its x offset (in columns) inside the cell."""

    name: str
    column: int
    direction: str = "input"

    def __post_init__(self) -> None:
        if self.column < 0:
            raise ValueError(f"column must be non-negative, got {self.column}")
        if self.direction not in ("input", "output", "inout"):
            raise ValueError(f"invalid pin direction {self.direction!r}")


@dataclass(frozen=True)
class CellActiveRegion:
    """An intra-cell active region: one transistor's diffusion window."""

    transistor: CellTransistor
    region: ActiveRegion

    @property
    def is_critical(self) -> bool:
        """Placeholder; criticality is decided against Wmin by the transform."""
        return False


@dataclass
class StandardCell:
    """A standard cell: named transistor placement plus outline geometry.

    Parameters
    ----------
    name:
        Library cell name, e.g. ``"AOI222_X1"``.
    family:
        Functional family (combinational, buffer, sequential, physical).
    transistors:
        The cell's devices with their intra-cell placement.
    n_columns:
        Number of gate-pitch columns the cell occupies along x.
    gate_pitch_nm:
        Width of one column (the placement site width).
    height_nm:
        Standard-cell row height (fixed per library).
    pins:
        Cell I/O pins.
    drive_strength:
        Numeric drive strength (1 for X1, 2 for X2, ...).
    """

    name: str
    family: CellFamily
    transistors: Tuple[CellTransistor, ...]
    n_columns: int
    gate_pitch_nm: float
    height_nm: float
    pins: Tuple[CellPin, ...] = field(default_factory=tuple)
    drive_strength: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.gate_pitch_nm, "gate_pitch_nm")
        ensure_positive(self.height_nm, "height_nm")
        if self.n_columns <= 0:
            raise ValueError(f"n_columns must be positive, got {self.n_columns}")
        max_col = max((t.column for t in self.transistors), default=-1)
        if max_col >= self.n_columns:
            raise ValueError(
                f"cell {self.name}: transistor column {max_col} exceeds "
                f"n_columns={self.n_columns}"
            )
        names = [t.name for t in self.transistors]
        if len(names) != len(set(names)):
            raise ValueError(f"cell {self.name}: duplicate transistor names")

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------

    @property
    def width_nm(self) -> float:
        """Cell width along the placement row."""
        return self.n_columns * self.gate_pitch_nm

    @property
    def area_nm2(self) -> float:
        """Cell area (width × row height)."""
        return self.width_nm * self.height_nm

    @property
    def transistor_count(self) -> int:
        """Number of devices in the cell."""
        return len(self.transistors)

    # ------------------------------------------------------------------
    # Device queries
    # ------------------------------------------------------------------

    def transistors_of(self, polarity: Polarity) -> List[CellTransistor]:
        """Devices of one polarity."""
        return [t for t in self.transistors if t.polarity is polarity]

    def transistor_widths_nm(self, polarity: Optional[Polarity] = None) -> List[float]:
        """Widths of all devices (optionally one polarity)."""
        devices = self.transistors if polarity is None else self.transistors_of(polarity)
        return [t.width_nm for t in devices]

    def min_transistor_width_nm(self) -> float:
        """Smallest device width in the cell."""
        if not self.transistors:
            raise ValueError(f"cell {self.name} has no transistors")
        return min(t.width_nm for t in self.transistors)

    def columns_with_stacking(self, polarity: Polarity) -> Dict[int, int]:
        """Columns where more than one device of a polarity is stacked.

        Returns a mapping ``column -> number of occupied row slots``; only
        columns with two or more slots are included.  These are the columns
        that conflict with a single aligned active band.
        """
        slots: Dict[int, set] = {}
        for t in self.transistors_of(polarity):
            slots.setdefault(t.column, set()).add(t.row_slot)
        return {col: len(s) for col, s in slots.items() if len(s) > 1}

    def max_stacking_depth(self) -> int:
        """Largest number of vertically stacked devices in any column."""
        depth = 1 if self.transistors else 0
        for polarity in (Polarity.NFET, Polarity.PFET):
            stacked = self.columns_with_stacking(polarity)
            if stacked:
                depth = max(depth, max(stacked.values()))
        return depth

    # ------------------------------------------------------------------
    # Active-region extraction
    # ------------------------------------------------------------------

    def active_regions(
        self,
        n_strip_y_nm: float = 0.0,
        p_strip_y_nm: Optional[float] = None,
        slot_pitch_nm: Optional[float] = None,
        x_origin_nm: float = 0.0,
    ) -> List[CellActiveRegion]:
        """Materialise one :class:`ActiveRegion` per transistor.

        Parameters
        ----------
        n_strip_y_nm:
            y-coordinate of the bottom of the n-strip.
        p_strip_y_nm:
            y-coordinate of the bottom of the p-strip; defaults to the upper
            half of the cell.
        slot_pitch_nm:
            Vertical offset between stacked row slots; defaults to 40 % of
            the cell height divided by the deepest stack.
        x_origin_nm:
            x-coordinate of the cell's left edge (for placed cells).
        """
        if p_strip_y_nm is None:
            p_strip_y_nm = 0.55 * self.height_nm
        if slot_pitch_nm is None:
            depth = max(self.max_stacking_depth(), 1)
            slot_pitch_nm = 0.4 * self.height_nm / depth

        regions: List[CellActiveRegion] = []
        for t in self.transistors:
            base_y = n_strip_y_nm if t.polarity is Polarity.NFET else p_strip_y_nm
            y = base_y + t.row_slot * slot_pitch_nm
            region = ActiveRegion(
                x_nm=x_origin_nm + t.column * self.gate_pitch_nm,
                y_nm=y,
                length_nm=self.gate_pitch_nm,
                width_nm=t.width_nm,
                polarity=t.polarity,
            )
            regions.append(CellActiveRegion(transistor=t, region=region))
        return regions

    # ------------------------------------------------------------------
    # Copy-on-modify helpers used by the aligned-active transform
    # ------------------------------------------------------------------

    def with_transistors(
        self, transistors: Sequence[CellTransistor], n_columns: Optional[int] = None
    ) -> "StandardCell":
        """Copy of the cell with a new transistor list (and optionally width)."""
        return StandardCell(
            name=self.name,
            family=self.family,
            transistors=tuple(transistors),
            n_columns=self.n_columns if n_columns is None else int(n_columns),
            gate_pitch_nm=self.gate_pitch_nm,
            height_nm=self.height_nm,
            pins=self.pins,
            drive_strength=self.drive_strength,
        )

    def renamed(self, new_name: str) -> "StandardCell":
        """Copy of the cell under a different name."""
        return StandardCell(
            name=new_name,
            family=self.family,
            transistors=self.transistors,
            n_columns=self.n_columns,
            gate_pitch_nm=self.gate_pitch_nm,
            height_nm=self.height_nm,
            pins=self.pins,
            drive_strength=self.drive_strength,
        )
