"""A procedurally generated 775-cell library standing in for the commercial
65 nm library of Table 2.

The paper extends its aligned-active analysis to a commercial 65 nm standard
cell library with 775 cells and reports that roughly 20 % of the cells incur
an area penalty (between 10 % and 70 %) when a single aligned active region
is enforced per polarity, and that splitting the budget into two aligned
active regions removes the penalty entirely at the cost of halving the
correlation benefit.

The commercial library is unavailable, so this module synthesises a library
with the same structural profile:

* 775 cells spanning a richer set of functions and drive strengths than the
  Nangate-like 45 nm library (more complex gates, a large flip-flop/latch
  matrix with scan/set/reset/enable/negative-edge/multi-bit variants, clock
  gates, level shifters, spare/ECO and physical cells),
* a ~20 % subset — the compact variants of high fan-in complex gates and of
  every sequential cell — whose minimum-size devices are vertically stacked
  inside a column and therefore widen under the single-aligned-region
  restriction, with width penalties spread across the 10–70 % range,
* the same structural representation as the 45 nm library, so the exact same
  :class:`~repro.cells.aligned_active.AlignedActiveTransform` runs on both.

Generation is fully deterministic: penalties follow from each cell's column
count and stacking depth, not from random draws.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cells.cell import CellFamily, CellPin, CellTransistor, StandardCell
from repro.cells.library import CellLibrary
from repro.device.active_region import Polarity

#: Width quantum of the 65 nm library (X1 n-device width).
BASE_WIDTH_NM_65 = 80.0
#: P/N ratio.
PN_RATIO_65 = 2.0
#: Row height of the 65 nm library.
ROW_HEIGHT_NM_65 = 1800.0
#: Gate pitch (placement site width).
GATE_PITCH_NM_65 = 260.0

#: Total number of cells in the paper's commercial library.
COMMERCIAL65_TARGET_CELL_COUNT = 775


def _make_cell(
    name: str,
    family: CellFamily,
    device_count: int,
    columns: int,
    stacked_nfet_pairs: int,
    drive: int,
    n_inputs: int,
    output_names: Tuple[str, ...] = ("ZN",),
) -> StandardCell:
    """Assemble one 65 nm cell with minimum-size devices and optional stacking."""
    transistors: List[CellTransistor] = []
    scale = float(drive)

    column = 0
    index = 0
    # Stacked devices are internal keeper/clock/feedback devices; they stay
    # at minimum width regardless of the cell's drive strength (only the
    # output stage scales), so they remain "critical" in every variant that
    # keeps the compact stacked layout.
    for _ in range(stacked_nfet_pairs):
        for slot in range(2):
            transistors.append(
                CellTransistor(
                    name=f"MN{index}",
                    polarity=Polarity.NFET,
                    width_nm=BASE_WIDTH_NM_65,
                    column=column,
                    row_slot=slot,
                )
            )
            index += 1
        column += 1
    while index < device_count:
        transistors.append(
            CellTransistor(
                name=f"MN{index}",
                polarity=Polarity.NFET,
                width_nm=BASE_WIDTH_NM_65 * scale,
                column=min(column, columns - 1),
                row_slot=0,
            )
        )
        index += 1
        column += 1

    for i in range(device_count):
        transistors.append(
            CellTransistor(
                name=f"MP{i}",
                polarity=Polarity.PFET,
                width_nm=BASE_WIDTH_NM_65 * PN_RATIO_65 * scale,
                column=min(i, columns - 1),
                row_slot=0,
            )
        )

    pins = [
        CellPin(name=f"A{i + 1}", column=min(i, columns - 1), direction="input")
        for i in range(n_inputs)
    ]
    for j, out in enumerate(output_names):
        pins.append(CellPin(name=out, column=max(columns - 1 - j, 0), direction="output"))

    return StandardCell(
        name=name,
        family=family,
        transistors=tuple(transistors),
        n_columns=columns,
        gate_pitch_nm=GATE_PITCH_NM_65,
        height_nm=ROW_HEIGHT_NM_65,
        pins=tuple(pins),
        drive_strength=float(drive),
    )


def _physical_cell(name: str, columns: int) -> StandardCell:
    """Filler / decap / tap / spare placeholder with no active devices."""
    return StandardCell(
        name=name,
        family=CellFamily.PHYSICAL,
        transistors=tuple(),
        n_columns=columns,
        gate_pitch_nm=GATE_PITCH_NM_65,
        height_nm=ROW_HEIGHT_NM_65,
        pins=tuple(),
        drive_strength=1.0,
    )


# ---------------------------------------------------------------------------
# Function catalogues
# ---------------------------------------------------------------------------

def _combinational_functions() -> List[Tuple[str, int, int, Tuple[int, ...]]]:
    """(name, devices per polarity, base columns, drives) — never penalised."""
    drives_huge: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32)
    drives_big: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)
    drives_med: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
    drives_small: Tuple[int, ...] = (1, 2, 3, 4)

    functions: List[Tuple[str, int, int, Tuple[int, ...]]] = [
        ("INV", 1, 2, drives_huge),
        ("BUF", 2, 3, drives_huge),
        ("CLKINV", 1, 2, drives_big),
        ("CLKBUF", 2, 3, drives_big),
        ("DLY1", 4, 5, drives_small),
        ("DLY2", 6, 7, drives_small),
        ("DLY4", 8, 9, drives_small),
        ("XOR2", 4, 6, drives_med),
        ("XNOR2", 4, 6, drives_med),
        ("XOR3", 8, 9, drives_small),
        ("XNOR3", 8, 9, drives_small),
        ("MUX2", 6, 6, drives_med),
        ("MUX3", 9, 9, drives_small),
        ("MUX4", 12, 12, drives_small),
        ("MUX2N", 6, 6, drives_small),
        ("FA", 12, 14, (1, 2, 3)),
        ("HA", 7, 9, (1, 2, 3)),
        ("MAJ3", 10, 11, (1, 2)),
        ("TBUF", 3, 4, drives_med),
        ("TINV", 2, 3, drives_small),
        ("AO21", 4, 5, drives_med),
        ("AO22", 5, 6, drives_med),
        ("OA21", 4, 5, drives_med),
        ("OA22", 5, 6, drives_med),
        ("AO211", 5, 7, drives_small),
        ("OA211", 5, 7, drives_small),
        ("NB1", 2, 3, drives_small),        # non-inverting repeater
        ("HOLDBUF", 4, 5, drives_small),    # hold-fix delay buffer
    ]
    for fanin in (2, 3, 4):
        functions.append((f"NAND{fanin}", fanin, fanin + 1, drives_med))
        functions.append((f"NOR{fanin}", fanin, fanin + 1, drives_med))
        functions.append((f"AND{fanin}", fanin + 1, fanin + 2, drives_med))
        functions.append((f"OR{fanin}", fanin + 1, fanin + 2, drives_med))
    for name, devices, cols in (
        ("AOI21", 3, 4), ("AOI22", 4, 5), ("OAI21", 3, 4), ("OAI22", 4, 5),
        ("AOI211", 4, 6), ("OAI211", 4, 6), ("AOI31", 4, 5), ("OAI31", 4, 5),
        ("AOI32", 5, 6), ("OAI32", 5, 6),
    ):
        functions.append((name, devices, cols, drives_med))
    return functions


def _stacked_combinational_functions() -> List[Tuple[str, int, int, int]]:
    """(name, devices, base columns, stacked pairs) — penalised in X1/X2.

    Stacking depths and column counts are chosen so the induced single-region
    width penalties cover the 14–67 % range.
    """
    return [
        ("AOI222", 6, 8, 2),     # 2/8  = 25 %
        ("OAI222", 6, 8, 2),
        ("AOI221", 5, 7, 1),     # 1/7  ≈ 14 %
        ("OAI221", 5, 7, 1),
        ("AOI322", 7, 8, 2),     # 25 %
        ("OAI322", 7, 8, 2),
        ("AOI333", 9, 7, 3),     # 3/7  ≈ 43 %
        ("OAI333", 9, 7, 3),
        ("AOI2222", 8, 6, 3),    # 50 %
        ("OAI2222", 8, 6, 3),
        ("MXIT2", 6, 5, 2),      # 40 %
        ("MXIT4", 12, 6, 3),     # 50 %
        ("XOR4", 12, 6, 4),      # 4/6  ≈ 67 %
        ("XNOR4", 12, 6, 4),
        ("FAC", 14, 7, 4),       # ≈ 57 %
        ("CMPR22", 16, 10, 3),   # 30 %
        ("CMPR42", 24, 12, 4),   # ≈ 33 %
    ]


def _sequential_functions() -> List[Tuple[str, int, int, int]]:
    """(name, devices, base columns, stacked pairs) — penalised in X1/X2.

    60 sequential functions built combinatorially: flip-flop cores × edge ×
    scan/reset/set options, multi-bit registers, latches, clock gates and
    retention registers.  Column counts keep the compact-variant penalties in
    the 10–20 % band, which is where the bulk of the paper's penalised cells
    sit (flip-flops and latches).
    """
    cells: List[Tuple[str, int, int, int]] = []

    # Single-bit flip-flops: {D, SD} x {"", N} x {"", R, S, RS} = 16 types.
    for scan in ("D", "SD"):
        for edge in ("", "N"):
            for ctrl in ("", "R", "S", "RS"):
                name = f"{scan}FF{edge}{ctrl}"
                base_devices = 10 if scan == "D" else 14
                base_columns = 16 if scan == "D" else 19
                extra = len(ctrl)
                stacked = 2 if ctrl != "RS" else 3
                cells.append((name, base_devices + 2 * extra, base_columns + extra, stacked))

    # Enable flip-flops: 8 types.
    for scan in ("D", "SD"):
        for ctrl in ("", "R", "S", "RS"):
            name = f"E{scan}FF{ctrl}"
            base_devices = 14 if scan == "D" else 18
            base_columns = 20 if scan == "D" else 23
            extra = len(ctrl)
            cells.append((name, base_devices + 2 * extra, base_columns + extra, 3))

    # Multi-bit registers: 8 types.
    for bits in (2, 4):
        for scan in ("D", "SD"):
            for ctrl in ("", "R"):
                name = f"{scan}FF{ctrl}Q{bits}"
                base_devices = (10 if scan == "D" else 14) * bits
                base_columns = (14 if scan == "D" else 17) * bits
                cells.append((name, base_devices, base_columns, 2 * bits))

    # Latches: 16 types.
    for level in ("H", "L"):
        for scan in ("", "S"):
            for ctrl in ("", "R", "SET", "E"):
                name = f"{scan}DL{level}{ctrl}"
                base_devices = 8 if scan == "" else 12
                base_columns = 10 if scan == "" else 14
                extra_devices = 2 if ctrl else 0
                cells.append(
                    (name, base_devices + extra_devices, base_columns,
                     1 + (1 if scan else 0))
                )

    # Clock gates: 8 types.
    for edge in ("", "N"):
        for test in ("", "TST"):
            for ctrl in ("", "R"):
                name = f"CLKGATE{edge}{test}{ctrl}"
                base_devices = 9 + (2 if test else 0) + (2 if ctrl else 0)
                cells.append((name, base_devices, 10, 1))

    # Retention registers: 4 types.
    for scan in ("D", "SD"):
        for ctrl in ("R", "RS"):
            name = f"RET{scan}FF{ctrl}"
            base_devices = 18 if scan == "D" else 22
            base_columns = 24 if scan == "D" else 27
            cells.append((name, base_devices, base_columns, 3))

    return cells


def _special_functions() -> List[Tuple[str, int, int, Tuple[int, ...]]]:
    """(name, devices, columns, drives) — power-intent and ECO cells, no stacking."""
    return [
        ("ISOLAND", 3, 4, (1, 2, 4)),
        ("ISOLOR", 3, 4, (1, 2, 4)),
        ("LVLSHIFT", 6, 8, (1, 2, 4)),
        ("LVLSHIFTD", 8, 10, (1, 2, 4)),
        ("RETNBUF", 4, 5, (1, 2, 4)),
        ("PWRGATE", 2, 6, (1, 2, 4, 8)),
        ("SPAREINV", 1, 2, (1,)),
        ("SPARENAND2", 2, 3, (1,)),
        ("SPARENOR2", 2, 3, (1,)),
        ("SPAREDFF", 10, 16, (1,)),
        ("PULLUP", 1, 2, (1,)),
        ("PULLDOWN", 1, 2, (1,)),
        ("ANTENNA", 1, 2, (1,)),
        ("TIEH", 2, 2, (1,)),
        ("TIEL", 2, 2, (1,)),
    ]


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------

def build_commercial65_library(
    target_cell_count: int = COMMERCIAL65_TARGET_CELL_COUNT,
) -> CellLibrary:
    """Build the synthetic 775-cell commercial-65-nm-like library.

    The function catalogues expand to slightly fewer cells than the target;
    the remainder is padded with physical cells (decaps, fillers, taps, end
    caps) under plausible names, mirroring how commercial libraries round out
    their cell counts.  If the catalogues ever overshoot, the trailing
    physical padding is simply omitted and the list truncated.
    """
    library = CellLibrary("commercial65")
    comb = CellFamily.COMBINATIONAL
    seq = CellFamily.SEQUENTIAL
    buf = CellFamily.BUFFER

    # Plain combinational cells (no stacking, never penalised).
    for name, devices, columns, drives in _combinational_functions():
        family = buf if name in ("BUF", "CLKBUF", "NB1", "HOLDBUF", "TBUF") else comb
        n_inputs = max(1, min(devices, 6))
        for drive in drives:
            cols = columns + (drive - 1)
            library.add(
                _make_cell(f"{name}_X{drive}", family, devices, cols, 0, drive, n_inputs)
            )

    # High fan-in complex gates: compact X1/X2 variants are stacked.
    for name, devices, columns, stacked in _stacked_combinational_functions():
        n_inputs = max(1, min(devices, 8))
        for drive in (1, 2, 4):
            stacked_pairs = stacked if drive <= 2 else 0
            cols = columns + 2 * (drive - 1)
            library.add(
                _make_cell(
                    f"{name}_X{drive}", comb, devices, cols, stacked_pairs, drive, n_inputs
                )
            )

    # Sequential cells: compact X1/X2 variants are stacked.  Drive scaling in
    # sequential cells mostly widens the output stage, so the compact
    # variants keep the X1 column count while X4/X8 fold into extra columns.
    for name, devices, columns, stacked in _sequential_functions():
        n_inputs = max(2, min(devices // 3, 6))
        for drive in (1, 2, 4, 8):
            stacked_pairs = stacked if drive <= 2 else 0
            cols = columns if drive <= 2 else columns + 2 * (drive - 2)
            library.add(
                _make_cell(
                    f"{name}_X{drive}", seq, devices, cols, stacked_pairs, drive,
                    n_inputs, output_names=("Q", "QN"),
                )
            )

    # Power-intent / ECO cells.
    for name, devices, columns, drives in _special_functions():
        n_inputs = max(1, min(devices, 4))
        for drive in drives:
            library.add(
                _make_cell(
                    f"{name}_X{drive}", comb, devices, columns + (drive - 1), 0,
                    drive, n_inputs,
                )
            )

    # Physical padding to the exact target count: decaps, fillers, taps.
    physical_names: List[str] = []
    for width in (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64):
        physical_names.append(f"DECAP_X{width}")
        physical_names.append(f"FILL_X{width}")
    physical_names.extend(["TAPCELL_X1", "TAPCELL_X2", "ENDCAP_LEFT", "ENDCAP_RIGHT"])
    spare_index = 1
    physical_iter = iter(physical_names)
    while len(library) < target_cell_count:
        try:
            name = next(physical_iter)
            columns = 2
        except StopIteration:
            name = f"ECOFILL{spare_index}_X1"
            columns = 1 + (spare_index % 8)
            spare_index += 1
        library.add(_physical_cell(name, columns))

    if len(library) > target_cell_count:
        trimmed = CellLibrary("commercial65")
        for cell in list(library)[:target_cell_count]:
            trimmed.add(cell)
        library = trimmed

    return library


def commercial65_cell_count() -> int:
    """Number of cells the builder produces (the paper's library has 775)."""
    return len(build_commercial65_library())


def commercial65_stacked_cell_names(library: CellLibrary) -> Sequence[str]:
    """Names of cells containing vertically stacked devices (penalty candidates)."""
    names = []
    for cell in library:
        if cell.max_stacking_depth() > 1:
            names.append(cell.name)
    return names
