"""Text exporters for the synthetic standard-cell libraries.

Downstream EDA users expect a cell library to come with machine-readable
views.  This module emits two simple, self-consistent text formats for the
synthetic libraries:

* a **LEF-style** physical view (cell outline, site width, per-transistor
  active-region rectangles and pin positions), and
* a **Liberty-style** logical/electrical view (cell area, drive strength,
  per-pin direction and capacitance from the width-proportional model).

The emitters are intentionally a structured subset of the real formats —
enough for the parsers in this package (and for human inspection / diffing
of library variants, e.g. before and after the aligned-active transform),
without claiming full LEF/Liberty compliance.  A small parser for the
physical view is provided so round-tripping can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cells.cell import StandardCell
from repro.cells.library import CellLibrary
from repro.device.capacitance import GateCapacitanceModel


# ---------------------------------------------------------------------------
# Physical (LEF-style) view
# ---------------------------------------------------------------------------

def export_physical_view(library: CellLibrary) -> str:
    """Emit a LEF-style physical description of every cell in the library."""
    lines: List[str] = [
        f"LIBRARY {library.name}",
        "UNITS NANOMETERS",
        "",
    ]
    for cell in library:
        lines.append(f"MACRO {cell.name}")
        lines.append(f"  CLASS {cell.family.value.upper()}")
        lines.append(f"  SIZE {cell.width_nm:.1f} BY {cell.height_nm:.1f}")
        lines.append(f"  SITEWIDTH {cell.gate_pitch_nm:.1f}")
        for region in cell.active_regions():
            t = region.transistor
            r = region.region
            lines.append(
                "  ACTIVE "
                f"{t.name} {t.polarity.value.upper()} "
                f"RECT {r.x_nm:.1f} {r.y_nm:.1f} {r.x_end_nm:.1f} {r.y_end_nm:.1f}"
            )
        for pin in cell.pins:
            lines.append(
                f"  PIN {pin.name} DIRECTION {pin.direction.upper()} "
                f"COLUMN {pin.column}"
            )
        lines.append("END MACRO")
        lines.append("")
    lines.append(f"END LIBRARY {library.name}")
    return "\n".join(lines)


@dataclass
class ParsedMacro:
    """A macro read back from the physical view."""

    name: str
    cell_class: str
    width_nm: float
    height_nm: float
    active_rects: List[Dict[str, float]]
    pins: List[Dict[str, str]]

    @property
    def transistor_count(self) -> int:
        """Number of active-region rectangles (one per transistor)."""
        return len(self.active_rects)


def parse_physical_view(text: str) -> Dict[str, ParsedMacro]:
    """Parse the LEF-style physical view back into per-macro summaries.

    Only the structure emitted by :func:`export_physical_view` is accepted;
    unknown statements raise ``ValueError`` so format drift is caught by the
    round-trip tests.
    """
    macros: Dict[str, ParsedMacro] = {}
    current: Optional[ParsedMacro] = None
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("LIBRARY", "UNITS", "END LIBRARY")):
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "MACRO":
            current = ParsedMacro(
                name=tokens[1], cell_class="", width_nm=0.0, height_nm=0.0,
                active_rects=[], pins=[],
            )
        elif keyword == "END" and len(tokens) > 1 and tokens[1] == "MACRO":
            if current is None:
                raise ValueError("END MACRO without MACRO")
            macros[current.name] = current
            current = None
        elif current is None:
            raise ValueError(f"statement outside MACRO: {line!r}")
        elif keyword == "CLASS":
            current.cell_class = tokens[1]
        elif keyword == "SIZE":
            current.width_nm = float(tokens[1])
            current.height_nm = float(tokens[3])
        elif keyword == "SITEWIDTH":
            continue
        elif keyword == "ACTIVE":
            current.active_rects.append({
                "name": tokens[1],
                "polarity": tokens[2],
                "x1": float(tokens[4]), "y1": float(tokens[5]),
                "x2": float(tokens[6]), "y2": float(tokens[7]),
            })
        elif keyword == "PIN":
            current.pins.append({
                "name": tokens[1],
                "direction": tokens[3],
                "column": tokens[5],
            })
        else:
            raise ValueError(f"unknown statement: {line!r}")
    if current is not None:
        raise ValueError(f"unterminated MACRO {current.name}")
    return macros


# ---------------------------------------------------------------------------
# Logical/electrical (Liberty-style) view
# ---------------------------------------------------------------------------

def export_liberty_view(
    library: CellLibrary,
    capacitance_model: Optional[GateCapacitanceModel] = None,
) -> str:
    """Emit a Liberty-style logical/electrical description of the library.

    Input-pin capacitance is computed from the width-proportional gate
    capacitance of the transistors in the pin's column — the same model the
    upsizing-penalty metric uses, so library variants can be compared on
    total input capacitance directly from this view.
    """
    capacitance_model = capacitance_model or GateCapacitanceModel()
    lines: List[str] = [f'library ("{library.name}") {{', '  unit_scale : "nm, aF";']
    for cell in library:
        lines.append(f'  cell ("{cell.name}") {{')
        lines.append(f"    area : {cell.area_nm2 / 1.0e6:.4f};")
        lines.append(f"    drive_strength : {cell.drive_strength:g};")
        lines.append(f'    cell_family : "{cell.family.value}";')
        per_column_cap: Dict[int, float] = {}
        for t in cell.transistors:
            per_column_cap[t.column] = per_column_cap.get(t.column, 0.0) + (
                capacitance_model.device_capacitance_af(t.width_nm)
            )
        for pin in cell.pins:
            lines.append(f'    pin ("{pin.name}") {{')
            lines.append(f"      direction : {pin.direction};")
            if pin.direction == "input":
                cap = per_column_cap.get(pin.column, 0.0)
                lines.append(f"      capacitance : {cap:.2f};")
            lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def total_input_capacitance_af(
    liberty_text: str,
) -> float:
    """Sum every ``capacitance :`` entry in a Liberty-style view.

    Used to compare library variants (e.g. before/after aligned-active
    enforcement) on total input capacitance without re-deriving it from the
    cell objects.
    """
    total = 0.0
    for line in liberty_text.splitlines():
        line = line.strip()
        if line.startswith("capacitance :"):
            value = line.split(":", 1)[1].strip().rstrip(";")
            total += float(value)
    return total
