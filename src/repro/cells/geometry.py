"""Layout geometry primitives for the standard-cell substrate.

Coordinates follow the convention of :mod:`repro.device.active_region`:
``x`` runs along the placement row (the CNT growth direction), ``y`` runs
across the row (the device-width axis).  All lengths are in nanometres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import ensure_positive


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle in layout coordinates (nm)."""

    x_nm: float
    y_nm: float
    width_x_nm: float
    height_y_nm: float

    def __post_init__(self) -> None:
        ensure_positive(self.width_x_nm, "width_x_nm")
        ensure_positive(self.height_y_nm, "height_y_nm")

    @property
    def x_end_nm(self) -> float:
        """Right edge."""
        return self.x_nm + self.width_x_nm

    @property
    def y_end_nm(self) -> float:
        """Top edge."""
        return self.y_nm + self.height_y_nm

    @property
    def area_nm2(self) -> float:
        """Rectangle area in nm²."""
        return self.width_x_nm * self.height_y_nm

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles overlap with positive area."""
        return (
            self.x_nm < other.x_end_nm
            and other.x_nm < self.x_end_nm
            and self.y_nm < other.y_end_nm
            and other.y_nm < self.y_end_nm
        )

    def contains_point(self, x_nm: float, y_nm: float) -> bool:
        """True when (x, y) lies inside or on the boundary of the rectangle."""
        return (
            self.x_nm <= x_nm <= self.x_end_nm
            and self.y_nm <= y_nm <= self.y_end_nm
        )

    def translated(self, dx_nm: float = 0.0, dy_nm: float = 0.0) -> "Rect":
        """Copy of the rectangle shifted by (dx, dy)."""
        return Rect(
            x_nm=self.x_nm + dx_nm,
            y_nm=self.y_nm + dy_nm,
            width_x_nm=self.width_x_nm,
            height_y_nm=self.height_y_nm,
        )


@dataclass(frozen=True)
class PlacementGrid:
    """A one-dimensional grid used to snap active-region y-coordinates.

    The aligned-active restriction of Sec. 3.2 places all critical active
    regions on "a globally defined grid": a fixed y-origin per polarity.
    This object captures that grid and provides snapping.

    Parameters
    ----------
    origin_nm:
        y-coordinate of the first grid line.
    pitch_nm:
        Spacing between grid lines.  A single aligned band corresponds to one
        grid line; the two-aligned-region variant of Sec. 3.3 uses two.
    """

    origin_nm: float
    pitch_nm: float

    def __post_init__(self) -> None:
        ensure_positive(self.pitch_nm, "pitch_nm")

    def line(self, index: int) -> float:
        """y-coordinate of grid line ``index``."""
        return self.origin_nm + index * self.pitch_nm

    def snap(self, y_nm: float) -> float:
        """y-coordinate of the nearest grid line."""
        index = round((y_nm - self.origin_nm) / self.pitch_nm)
        return self.line(int(index))

    def snap_index(self, y_nm: float) -> int:
        """Index of the nearest grid line."""
        return int(round((y_nm - self.origin_nm) / self.pitch_nm))

    def distance_to_grid(self, y_nm: float) -> float:
        """Absolute distance from ``y_nm`` to the nearest grid line."""
        return abs(y_nm - self.snap(y_nm))

    def is_on_grid(self, y_nm: float, tolerance_nm: float = 1e-6) -> bool:
        """True when ``y_nm`` coincides with a grid line (within tolerance)."""
        return self.distance_to_grid(y_nm) <= tolerance_nm


def snap_up(value_nm: float, step_nm: float) -> float:
    """Round ``value_nm`` up to the next multiple of ``step_nm``.

    Used when widening cells: cell widths must remain integral multiples of
    the placement site (gate pitch), so any extra width is rounded up to the
    next site boundary.
    """
    ensure_positive(step_nm, "step_nm")
    return math.ceil(value_nm / step_nm - 1e-12) * step_nm
