"""The standard-cell library container and library-wide statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.cells.cell import CellFamily, StandardCell
from repro.device.active_region import Polarity


@dataclass(frozen=True)
class LibraryStatistics:
    """Summary statistics over all cells of a library."""

    cell_count: int
    transistor_count: int
    min_transistor_width_nm: float
    max_transistor_width_nm: float
    mean_transistor_width_nm: float
    sequential_cell_count: int
    combinational_cell_count: int


class CellLibrary:
    """A named collection of :class:`~repro.cells.cell.StandardCell` objects.

    Cells are keyed by name; iteration order is insertion order, which the
    procedural builders keep deterministic so statistics and benchmarks are
    reproducible.
    """

    def __init__(self, name: str, cells: Optional[Iterable[StandardCell]] = None) -> None:
        self.name = name
        self._cells: Dict[str, StandardCell] = {}
        for cell in cells or ():
            self.add(cell)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def add(self, cell: StandardCell) -> None:
        """Add a cell; raises if a cell of the same name already exists."""
        if cell.name in self._cells:
            raise ValueError(f"library {self.name} already contains cell {cell.name}")
        self._cells[cell.name] = cell

    def replace(self, cell: StandardCell) -> None:
        """Add or overwrite a cell (used by library transforms)."""
        self._cells[cell.name] = cell

    def get(self, name: str) -> StandardCell:
        """Look up a cell by name; raises ``KeyError`` with context if absent."""
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not found in library {self.name!r} "
                f"({len(self._cells)} cells)"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[StandardCell]:
        return iter(self._cells.values())

    @property
    def cell_names(self) -> List[str]:
        """Names of all cells in insertion order."""
        return list(self._cells)

    # ------------------------------------------------------------------
    # Library-wide views
    # ------------------------------------------------------------------

    def cells_of_family(self, family: CellFamily) -> List[StandardCell]:
        """All cells of one functional family."""
        return [c for c in self if c.family is family]

    def all_transistor_widths_nm(
        self, polarity: Optional[Polarity] = None
    ) -> np.ndarray:
        """Widths of every transistor in the library."""
        widths: List[float] = []
        for cell in self:
            widths.extend(cell.transistor_widths_nm(polarity))
        return np.asarray(widths, dtype=float)

    def width_histogram(
        self, bin_edges_nm: Iterable[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram of library transistor widths over the given bin edges."""
        widths = self.all_transistor_widths_nm()
        edges = np.asarray(list(bin_edges_nm), dtype=float)
        counts, edges = np.histogram(widths, bins=edges)
        return counts, edges

    def statistics(self) -> LibraryStatistics:
        """Library-wide summary statistics."""
        widths = self.all_transistor_widths_nm()
        if widths.size == 0:
            raise ValueError(f"library {self.name} has no transistors")
        return LibraryStatistics(
            cell_count=len(self),
            transistor_count=int(widths.size),
            min_transistor_width_nm=float(widths.min()),
            max_transistor_width_nm=float(widths.max()),
            mean_transistor_width_nm=float(widths.mean()),
            sequential_cell_count=len(self.cells_of_family(CellFamily.SEQUENTIAL)),
            combinational_cell_count=len(self.cells_of_family(CellFamily.COMBINATIONAL)),
        )

    def copy(self, new_name: Optional[str] = None) -> "CellLibrary":
        """Shallow copy of the library (cells are immutable value objects)."""
        return CellLibrary(new_name or self.name, cells=list(self))
