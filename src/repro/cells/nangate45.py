"""A procedurally generated 134-cell library standing in for Nangate 45 nm.

The paper evaluates its aligned-active heuristic on the Nangate 45 nm Open
Cell Library (134 cells), slightly modified for CNFET technology as in
[Bobba 09].  The actual library is a proprietary download, so this module
builds a synthetic equivalent with the same *shape*:

* 134 cells spanning the usual families (inverters/buffers, NAND/NOR/AND/OR,
  AOI/OAI complex gates, XOR/MUX/adders, tri-states, flip-flops with
  set/reset/scan, latches, clock gates, and physical cells),
* multiple drive strengths per function,
* per-transistor widths quantised to the 80 nm unit that produces the
  80/160/240/320 nm histogram bins of Fig. 2.2a,
* a small number of cells (the high fan-in AOI222/OAI222/OAI33 gates and the
  largest scan flip-flop) whose minimum-size devices are vertically stacked
  inside a column — the structural property that makes the aligned-active
  restriction cost area in exactly a handful of cells, as the paper reports
  (4 cells out of 134, with the AOI222_X1 example of Fig. 3.2 growing ~9 %).

Only properties consumed by the paper's analyses are modelled: widths,
column placement, vertical stacking, pins and cell outline dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cells.cell import CellFamily, CellPin, CellTransistor, StandardCell
from repro.cells.library import CellLibrary
from repro.device.active_region import Polarity

#: Width quantum: the n-device width of an X1 gate.
BASE_WIDTH_NM = 80.0
#: P/N width ratio used for simple gates.
PN_RATIO = 2.0
#: Standard-cell row height of the synthetic 45 nm library.
ROW_HEIGHT_NM = 1400.0
#: Gate-pitch (placement site) width.
GATE_PITCH_NM = 190.0


@dataclass(frozen=True)
class CellTemplate:
    """Parametric description of a cell function, expanded per drive strength.

    Attributes
    ----------
    base_name:
        Function name, e.g. ``"AOI222"``; cell names are
        ``f"{base_name}_X{drive}"``.
    family:
        Functional family.
    n_inputs:
        Number of logic inputs (drives the pin list).
    nfet_units, pfet_units:
        Per-device width multipliers (in units of ``BASE_WIDTH_NM`` for
        n-devices and ``BASE_WIDTH_NM * PN_RATIO`` for p-devices) for an X1
        instance; the list length is the device count per polarity.
    base_columns:
        Cell width in gate-pitch columns for the X1 instance.
    drives:
        Drive strengths generated from this template.
    stacked_nfet_pairs:
        Number of columns (X1 variant only) in which two n-devices are
        stacked vertically; these are the columns that conflict with a single
        aligned active band.
    extra_columns_per_drive:
        Additional columns per unit of drive strength above 1 (wider devices
        need folding and more diffusion area).
    """

    base_name: str
    family: CellFamily
    n_inputs: int
    nfet_units: Tuple[float, ...]
    pfet_units: Tuple[float, ...]
    base_columns: int
    drives: Tuple[int, ...]
    stacked_nfet_pairs: int = 0
    extra_columns_per_drive: float = 1.0
    output_pins: Tuple[str, ...] = ("ZN",)


def _pin_names(n_inputs: int) -> List[str]:
    """Standard Nangate-style input pin names A1, A2, ... / A, B, ..."""
    if n_inputs == 1:
        return ["A"]
    if n_inputs == 2:
        return ["A1", "A2"]
    return [f"A{i + 1}" for i in range(n_inputs)]


def _build_cell(template: CellTemplate, drive: int) -> StandardCell:
    """Expand one template at one drive strength into a StandardCell."""
    transistors: List[CellTransistor] = []
    scale = float(drive)
    name = f"{template.base_name}_X{drive}"

    n_count = len(template.nfet_units)
    p_count = len(template.pfet_units)
    columns = template.base_columns + int(
        round(template.extra_columns_per_drive * (drive - 1))
    )

    # Stacked columns only exist in the X1 variant: larger drives fold their
    # devices into wider diffusion strips instead.
    stacked_pairs = template.stacked_nfet_pairs if drive == 1 else 0

    # Assign n-devices to columns; the first `2 * stacked_pairs` devices fill
    # the stacked columns two at a time (row slots 0 and 1).
    column = 0
    device_index = 0
    for pair in range(stacked_pairs):
        for slot in range(2):
            units = template.nfet_units[device_index % n_count]
            transistors.append(
                CellTransistor(
                    name=f"MN{device_index}",
                    polarity=Polarity.NFET,
                    width_nm=BASE_WIDTH_NM * units * scale,
                    column=column,
                    row_slot=slot,
                )
            )
            device_index += 1
        column += 1
    while device_index < n_count:
        units = template.nfet_units[device_index]
        transistors.append(
            CellTransistor(
                name=f"MN{device_index}",
                polarity=Polarity.NFET,
                width_nm=BASE_WIDTH_NM * units * scale,
                column=min(column, columns - 1),
                row_slot=0,
            )
        )
        device_index += 1
        column += 1

    for i, units in enumerate(template.pfet_units):
        transistors.append(
            CellTransistor(
                name=f"MP{i}",
                polarity=Polarity.PFET,
                width_nm=BASE_WIDTH_NM * PN_RATIO * units * scale,
                column=min(i, columns - 1),
                row_slot=0,
            )
        )

    pins = [CellPin(name=p, column=min(i, columns - 1), direction="input")
            for i, p in enumerate(_pin_names(template.n_inputs))]
    for j, out in enumerate(template.output_pins):
        pins.append(CellPin(name=out, column=max(columns - 1 - j, 0), direction="output"))

    return StandardCell(
        name=name,
        family=template.family,
        transistors=tuple(transistors),
        n_columns=columns,
        gate_pitch_nm=GATE_PITCH_NM,
        height_nm=ROW_HEIGHT_NM,
        pins=tuple(pins),
        drive_strength=float(drive),
    )


def _physical_cell(name: str, columns: int) -> StandardCell:
    """Filler / tie / antenna cell with no (or trivial) transistor content."""
    return StandardCell(
        name=name,
        family=CellFamily.PHYSICAL,
        transistors=tuple(),
        n_columns=columns,
        gate_pitch_nm=GATE_PITCH_NM,
        height_nm=ROW_HEIGHT_NM,
        pins=tuple(),
        drive_strength=1.0,
    )


def _series(units: float, count: int) -> Tuple[float, ...]:
    """Device widths for a series stack: each device upsized by the stack depth."""
    return tuple([units * count] * count)


def _parallel(units: float, count: int) -> Tuple[float, ...]:
    """Device widths for parallel devices: nominal width each."""
    return tuple([units] * count)


def nangate45_templates() -> List[CellTemplate]:
    """The template list that expands to exactly 134 cells."""
    comb = CellFamily.COMBINATIONAL
    buf = CellFamily.BUFFER
    seq = CellFamily.SEQUENTIAL

    templates: List[CellTemplate] = [
        # Inverters / buffers -------------------------------------------------
        CellTemplate("INV", comb, 1, _parallel(1, 1), _parallel(1, 1), 2,
                     (1, 2, 4, 8, 16, 32)),
        CellTemplate("BUF", buf, 1, _parallel(1, 2), _parallel(1, 2), 3,
                     (1, 2, 4, 8, 16, 32), output_pins=("Z",)),
        CellTemplate("CLKBUF", buf, 1, _parallel(1, 2), _parallel(1, 2), 3,
                     (1, 2, 3), output_pins=("Z",)),
        # NAND / NOR ----------------------------------------------------------
        CellTemplate("NAND2", comb, 2, _series(1, 2), _parallel(1, 2), 3, (1, 2, 4)),
        CellTemplate("NAND3", comb, 3, _series(1, 3), _parallel(1, 3), 4, (1, 2, 4)),
        CellTemplate("NAND4", comb, 4, _series(1, 4), _parallel(1, 4), 5, (1, 2, 4)),
        CellTemplate("NOR2", comb, 2, _parallel(1, 2), _series(1, 2), 3, (1, 2, 4)),
        CellTemplate("NOR3", comb, 3, _parallel(1, 3), _series(1, 3), 4, (1, 2, 4)),
        CellTemplate("NOR4", comb, 4, _parallel(1, 4), _series(1, 4), 5, (1, 2, 4)),
        # AND / OR (NAND/NOR + inverter) ---------------------------------------
        CellTemplate("AND2", comb, 2, _series(1, 2) + (1,), _parallel(1, 2) + (1,),
                     4, (1, 2, 4), output_pins=("ZN",)),
        CellTemplate("AND3", comb, 3, _series(1, 3) + (1,), _parallel(1, 3) + (1,),
                     5, (1, 2, 4), output_pins=("ZN",)),
        CellTemplate("AND4", comb, 4, _series(1, 4) + (1,), _parallel(1, 4) + (1,),
                     6, (1, 2, 4), output_pins=("ZN",)),
        CellTemplate("OR2", comb, 2, _parallel(1, 2) + (1,), _series(1, 2) + (1,),
                     4, (1, 2, 4), output_pins=("ZN",)),
        CellTemplate("OR3", comb, 3, _parallel(1, 3) + (1,), _series(1, 3) + (1,),
                     5, (1, 2, 4), output_pins=("ZN",)),
        CellTemplate("OR4", comb, 4, _parallel(1, 4) + (1,), _series(1, 4) + (1,),
                     6, (1, 2, 4), output_pins=("ZN",)),
        # XOR / XNOR ----------------------------------------------------------
        CellTemplate("XOR2", comb, 2, _parallel(2, 4), _parallel(2, 4), 6, (1, 2),
                     output_pins=("Z",)),
        CellTemplate("XNOR2", comb, 2, _parallel(2, 4), _parallel(2, 4), 6, (1, 2)),
        # AOI / OAI complex gates ----------------------------------------------
        CellTemplate("AOI21", comb, 3, _series(1, 2) + (2,), _parallel(2, 3), 4,
                     (1, 2, 4)),
        CellTemplate("AOI22", comb, 4, _series(1, 2) * 2, _parallel(2, 4), 5,
                     (1, 2, 4)),
        CellTemplate("OAI21", comb, 3, _parallel(2, 3), _series(1, 2) + (2,), 4,
                     (1, 2, 4)),
        CellTemplate("OAI22", comb, 4, _parallel(2, 4), _series(1, 2) * 2, 5,
                     (1, 2, 4)),
        CellTemplate("AOI211", comb, 4, _series(1, 2) + (2, 2), _parallel(2, 4), 6,
                     (1, 2, 4)),
        CellTemplate("AOI221", comb, 5, _series(1, 2) * 2 + (2,), _parallel(2, 5), 8,
                     (1, 2, 4)),
        # The three high fan-in gates below keep their pull-down devices at
        # minimum width in the CNFET-flavoured library ([Bobba 09] style),
        # and the X1 variants stack two of those minimum-size devices in one
        # column — the structure that conflicts with a single aligned band.
        CellTemplate("AOI222", comb, 6, _parallel(1, 6), _parallel(2, 6), 11,
                     (1, 2, 4), stacked_nfet_pairs=1),
        CellTemplate("OAI211", comb, 4, _parallel(2, 4), _series(1, 2) + (2, 2), 6,
                     (1, 2, 4)),
        CellTemplate("OAI221", comb, 5, _parallel(2, 5), _series(1, 2) * 2 + (2,), 8,
                     (1, 2, 4)),
        CellTemplate("OAI222", comb, 6, _parallel(1, 6), _series(1, 2) * 3, 11,
                     (1, 2, 4), stacked_nfet_pairs=1),
        CellTemplate("OAI33", comb, 6, _parallel(1, 6), _series(1, 3) * 2, 7,
                     (1,), stacked_nfet_pairs=1),
        # MUX / arithmetic ------------------------------------------------------
        CellTemplate("MUX2", comb, 3, _parallel(2, 4) + (1, 1), _parallel(2, 4) + (1, 1),
                     6, (1, 2), output_pins=("Z",)),
        CellTemplate("FA", comb, 3, _parallel(2, 12), _parallel(2, 12), 14, (1,),
                     output_pins=("S", "CO")),
        CellTemplate("HA", comb, 2, _parallel(2, 7), _parallel(2, 7), 9, (1,),
                     output_pins=("S", "CO")),
        # Tri-state -------------------------------------------------------------
        CellTemplate("TBUF", buf, 2, _series(1, 2) + (1,), _series(1, 2) + (1,), 4,
                     (1, 2, 4, 8, 16), output_pins=("Z",)),
        CellTemplate("TINV", comb, 2, _series(1, 2), _series(1, 2), 3, (1, 2),
                     output_pins=("ZN",)),
        # Sequential ------------------------------------------------------------
        CellTemplate("DFF", seq, 2, _parallel(1, 10), _parallel(1, 10), 14, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("DFFR", seq, 3, _parallel(1, 12), _parallel(1, 12), 16, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("DFFS", seq, 3, _parallel(1, 12), _parallel(1, 12), 16, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("DFFRS", seq, 4, _parallel(1, 14), _parallel(1, 14), 18, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("SDFF", seq, 4, _parallel(1, 14), _parallel(1, 14), 19, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("SDFFR", seq, 5, _parallel(1, 16), _parallel(1, 16), 21, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("SDFFS", seq, 5, _parallel(1, 16), _parallel(1, 16), 21, (1, 2),
                     output_pins=("Q", "QN")),
        CellTemplate("SDFFRS", seq, 6, _parallel(1, 18), _parallel(1, 18), 25, (1, 2),
                     stacked_nfet_pairs=1, output_pins=("Q", "QN")),
        CellTemplate("DLH", seq, 2, _parallel(1, 8), _parallel(1, 8), 11, (1, 2),
                     output_pins=("Q",)),
        CellTemplate("DLL", seq, 2, _parallel(1, 8), _parallel(1, 8), 11, (1, 2),
                     output_pins=("Q",)),
        CellTemplate("CLKGATE", seq, 2, _parallel(1, 9), _parallel(1, 9), 12,
                     (1, 2, 4, 8), output_pins=("GCK",)),
        CellTemplate("CLKGATETST", seq, 3, _parallel(1, 11), _parallel(1, 11), 14,
                     (1, 2, 4, 8), output_pins=("GCK",)),
    ]
    return templates


#: Cells whose X1 variant contains vertically stacked minimum-size devices —
#: the cells the aligned-active restriction penalises (Fig. 3.2 / Table 2).
NANGATE45_STACKED_CELLS = ("AOI222_X1", "OAI222_X1", "OAI33_X1", "SDFFRS_X1")


def build_nangate45_library() -> CellLibrary:
    """Build the synthetic 134-cell Nangate-45-like library."""
    library = CellLibrary("nangate45_cnfet")
    for template in nangate45_templates():
        for drive in template.drives:
            library.add(_build_cell(template, drive))

    # Physical cells (no active devices): fillers, antenna, tie cells.
    for columns, suffix in ((1, "X1"), (2, "X2"), (4, "X4"), (8, "X8"),
                            (16, "X16"), (32, "X32")):
        library.add(_physical_cell(f"FILLCELL_{suffix}", columns))
    library.add(_physical_cell("ANTENNA_X1", 2))
    library.add(_physical_cell("LOGIC0_X1", 2))
    library.add(_physical_cell("LOGIC1_X1", 2))

    return library


def nangate45_cell_count() -> int:
    """Number of cells the builder produces (should equal the paper's 134)."""
    return len(build_nangate45_library())
