"""Command-line interface for the reproduction.

Exposes the main analyses as sub-commands so the library can be driven
without writing Python:

``python -m repro.cli wmin``
    The Sec. 2 / Sec. 3 Wmin analysis (baseline, relaxation, optimised).

``python -m repro.cli co-opt``
    Joint process/design co-optimization: a Pareto yield-vs-cost search
    over CNT density, pitch family, correlation length, misalignment and
    per-width-class selective upsizing, answered through the bounded
    serving tier with dominance pruning, optionally validated end-to-end
    by chip/timing Monte Carlo.

``python -m repro.cli table1``
    Row failure probabilities for the three growth/layout styles.

``python -m repro.cli table2``
    Area-penalty statistics for the two synthetic libraries.

``python -m repro.cli scaling``
    Upsizing penalty versus technology node, with and without correlation.

``python -m repro.cli align``
    Apply the aligned-active restriction to a library and optionally write
    the modified physical/Liberty views to files.

``python -m repro.cli netlist``
    Generate the synthetic OpenRISC-like netlist and write it as a
    structural Verilog-style file.

``python -m repro.cli timing``
    Timing-aware parametric yield: joint functional / critical-path Monte
    Carlo over a design-derived timing graph (or one ingested with
    ``--graph``), reporting functional, timing and combined yield at the
    chosen clock period.

``python -m repro.cli rare-event``
    Importance-sampled device failure probability deep in the tail
    (default pF ≈ 1e-9) with the chip-yield consequence at the configured
    transistor count, compared against the Eq. 2.3 / 3.1 closed forms.

``python -m repro.cli wafer``
    Wafer-level Monte Carlo: per-die chip yield under die-to-die CNT
    density drift — radial, or spatially correlated via
    ``--correlation-length-mm`` — simulated by the stacked
    (die × trial × track) engine with a radial summary table, optional
    per-die misalignment de-rating, and a text yield map.

``python -m repro.cli chip-wafer``
    Whole-placement per-die chip runs: the synthetic OpenRISC-like block
    yield-mapped across every die of a wafer on one shared placement
    geometry, reporting the direct (correlation-aware) and Eq. 2.3
    (independent-device) yields side by side.

``python -m repro.cli sweep``
    Precompute yield surfaces (device pF and the Table 1 scenarios) over a
    (width, CNT density) grid and persist them to a surface store.

``python -m repro.cli query``
    Answer batched yield queries against a persisted surface through the
    serving layer (interpolation with error bounds, exact fallback).

``python -m repro.cli serve``
    Run the network-facing yield service: the asyncio HTTP/ASGI tier
    over a surface store (batched ``POST /v1/query``, surface
    listing/upload, metrics), optionally scaled across ``--workers``
    processes sharing the port via ``SO_REUSEPORT``.

Every sub-command accepts the calibration knobs that matter (yield target,
pitch CV, CNT length, density) so quick what-if studies need no code, plus
``--json`` for machine-readable output.  The long-running campaign
commands (``wafer``, ``chip-wafer``, ``sweep``) accept
``--checkpoint-dir`` to persist completed work units and ``--resume`` to
continue an interrupted campaign bitwise-identically.

Exit codes: 0 on success; 1 on runtime errors (``error: ...`` on
stderr); 2 on usage errors — both argparse's own and semantic ones such
as invalid flag combinations or unreadable checkpoint/store paths
(one-line ``error: ...`` on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.calibration import CalibratedSetup
from repro.core.correlation import CorrelationParameters
from repro.core.optimizer import CoOptimizationFlow
from repro.netlist.openrisc import openrisc_width_histogram


class CLIUsageError(Exception):
    """A semantic usage error: wrong flag combination or unusable path.

    Raised by handlers for mistakes argparse cannot see (``--resume``
    without ``--checkpoint-dir``, a store path that is not a readable
    directory).  ``main`` maps it to the conventional usage exit code 2
    with a one-line ``error: ...`` message, matching argparse's own
    behaviour.
    """


def _add_checkpoint_options(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume options shared by the campaign commands."""
    parser.add_argument("--checkpoint-dir", type=str, default=None,
                        help="persist completed work units under this "
                             "directory so an interrupted campaign can be "
                             "resumed")
    parser.add_argument("--resume", action="store_true",
                        help="resume from an existing checkpoint in "
                             "--checkpoint-dir (bitwise identical to an "
                             "uninterrupted run)")


def _validate_checkpoint_args(args: argparse.Namespace) -> None:
    """Reject unusable checkpoint flag combinations (usage errors)."""
    if args.resume and args.checkpoint_dir is None:
        raise CLIUsageError("--resume requires --checkpoint-dir")
    if args.checkpoint_dir is not None:
        path = Path(args.checkpoint_dir)
        if path.exists() and not path.is_dir():
            raise CLIUsageError(
                f"--checkpoint-dir {args.checkpoint_dir!r} exists but is "
                "not a directory"
            )
        if args.resume and not path.exists():
            raise CLIUsageError(
                f"cannot resume: checkpoint dir {args.checkpoint_dir!r} "
                "does not exist"
            )


def _checkpoint_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Checkpoint keyword arguments for the campaign runners."""
    _validate_checkpoint_args(args)
    if args.checkpoint_dir is None:
        return {}
    return {"checkpoint_dir": args.checkpoint_dir, "resume": bool(args.resume)}


def _build_setup(args: argparse.Namespace) -> CalibratedSetup:
    """Construct a CalibratedSetup from the shared CLI options."""
    return CalibratedSetup(
        mean_pitch_nm=args.mean_pitch_nm,
        pitch_cv=args.pitch_cv,
        chip_transistor_count=int(args.transistors),
        min_size_fraction=args.min_size_fraction,
        yield_target=args.yield_target,
        correlation=CorrelationParameters(
            cnt_length_um=args.cnt_length_um,
            min_cnfet_density_per_um=args.cnfet_density,
        ),
    )


def _add_shorts_options(parser: argparse.ArgumentParser) -> None:
    """Metallic-short knobs shared by the simulation and sweep commands."""
    parser.add_argument("--metallic-frac", type=float, default=None,
                        help="metallic CNT fraction p_m (default: the "
                             "calibrated corner's value)")
    parser.add_argument("--removal-eta", type=float, default=1.0,
                        help="conditional metallic-removal probability eta; "
                             "values below 1 leave surviving shorts with "
                             "per-tube probability p_m*(1-eta) (default 1)")


def _shorts_type_model(setup: CalibratedSetup, args: argparse.Namespace):
    """The CNT type model with the CLI's shorts knobs applied.

    Defaults reproduce the pre-shorts behaviour exactly: the corner's
    metallic fraction with perfect removal (eta = 1, no surviving shorts).
    """
    metallic_frac = (
        setup.corner.metallic_fraction
        if args.metallic_frac is None else args.metallic_frac
    )
    if not 0.0 <= metallic_frac <= 1.0:
        raise CLIUsageError("--metallic-frac must lie in [0, 1]")
    if not 0.0 <= args.removal_eta <= 1.0:
        raise CLIUsageError("--removal-eta must lie in [0, 1]")
    from repro.growth.types import CNTTypeModel

    return CNTTypeModel(
        metallic_fraction=metallic_frac,
        removal_prob_metallic=args.removal_eta,
        removal_prob_semiconducting=setup.corner.removal_prob_semiconducting,
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--yield-target", type=float, default=0.90,
                        help="desired chip yield (default 0.90)")
    parser.add_argument("--transistors", type=float, default=1.0e8,
                        help="chip transistor count M (default 1e8)")
    parser.add_argument("--min-size-fraction", type=float, default=0.33,
                        help="fraction of minimum-size devices Mmin/M (default 0.33)")
    parser.add_argument("--mean-pitch-nm", type=float, default=4.0,
                        help="mean inter-CNT pitch in nm (default 4)")
    parser.add_argument("--pitch-cv", type=float, default=1.0,
                        help="inter-CNT pitch coefficient of variation (default 1.0)")
    parser.add_argument("--cnt-length-um", type=float, default=200.0,
                        help="CNT length LCNT in um (default 200)")
    parser.add_argument("--cnfet-density", type=float, default=1.8,
                        help="small-CNFET density Pmin-CNFET in FETs/um (default 1.8)")


def _json_default(value: object) -> object:
    """Make NumPy scalars/arrays JSON-serialisable."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def _nan_to_none(value: float) -> Optional[float]:
    """``None`` for NaN — strict-JSON payloads must not carry bare ``NaN``.

    ``json.dumps`` would happily emit the (non-RFC-8259) ``NaN`` literal,
    which breaks ``jq`` and every strict parser downstream.
    """
    return None if value != value else value


def _emit(args: argparse.Namespace, payload: Dict[str, object],
          lines: Sequence[str]) -> int:
    """Print either the human-readable lines or the JSON payload."""
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, default=_json_default))
    else:
        for line in lines:
            print(line)
    return 0


def _parse_float_list(text: str, name: str) -> List[float]:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise ValueError(f"could not parse {name} {text!r}: {exc}") from None
    if not values:
        raise ValueError(f"{name} must contain at least one value")
    return values


def _cmd_wmin(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    design = openrisc_width_histogram(setup.chip_transistor_count)
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    report = flow.run()
    payload = {
        "wmin_baseline_nm": report.baseline_wmin.wmin_nm,
        "wmin_optimized_nm": report.optimized_wmin.wmin_nm,
        "relaxation_factor": report.relaxation_factor,
        "required_pf_baseline": report.baseline_wmin.required_pf,
        "required_pf_optimized": report.optimized_wmin.required_pf,
        "capacitance_penalty_baseline": report.baseline_upsizing.capacitance_penalty,
        "capacitance_penalty_optimized": report.optimized_upsizing.capacitance_penalty,
    }
    return _emit(args, payload, report.summary_lines())


def _cmd_coopt(args: argparse.Namespace) -> int:
    from repro.core.coopt import ParetoCoOptimizer, process_grid

    if args.extra_levels < 0:
        raise CLIUsageError("--extra-levels must be non-negative")
    if args.max_combos < 1:
        raise CLIUsageError("--max-combos must be at least 1")
    if args.validate_trials < 0:
        raise CLIUsageError("--validate-trials must be non-negative")
    if args.validate_top < 1:
        raise CLIUsageError("--validate-top must be at least 1")
    if args.workers < 1:
        raise CLIUsageError("--workers must be at least 1")
    setup = _build_setup(args)
    try:
        densities = _parse_float_list(args.densities, "--densities")
        pitch_cvs = (
            _parse_float_list(args.pitch_cvs, "--pitch-cvs")
            if args.pitch_cvs is not None else [setup.pitch_cv]
        )
        lengths = (
            _parse_float_list(args.cnt_lengths_um, "--cnt-lengths-um")
            if args.cnt_lengths_um is not None
            else [setup.correlation.cnt_length_um]
        )
        angles = _parse_float_list(args.misalignment_deg, "--misalignment-deg")
        etas = _parse_float_list(args.removal_eta, "--removal-eta")
    except ValueError as exc:
        raise CLIUsageError(str(exc)) from None
    if any(not 0.0 <= eta <= 1.0 for eta in etas):
        raise CLIUsageError("--removal-eta values must lie in [0, 1]")
    corner = setup.corner
    if args.metallic_frac is not None:
        if not 0.0 <= args.metallic_frac <= 1.0:
            raise CLIUsageError("--metallic-frac must lie in [0, 1]")
        from repro.core.failure import ProcessingCorner

        corner = ProcessingCorner(
            name=f"pm={100.0 * args.metallic_frac:g}%, "
                 f"pRs={100.0 * corner.removal_prob_semiconducting:g}%",
            metallic_fraction=args.metallic_frac,
            removal_prob_semiconducting=corner.removal_prob_semiconducting,
        )

    design = openrisc_width_histogram(setup.chip_transistor_count)
    optimizer = ParetoCoOptimizer(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        process_points=process_grid(
            densities_per_um=densities,
            pitch_cvs=pitch_cvs,
            corners=(corner,),
            cnt_lengths_um=lengths,
            misalignments_deg=angles,
            removal_etas=etas,
        ),
        extra_levels=args.extra_levels,
        max_combos=args.max_combos,
        seed=args.seed,
    )
    result = optimizer.run(
        validate_trials=args.validate_trials,
        validate_top=args.validate_top,
        n_workers=args.workers,
        t_clk_factor=args.tclk_factor,
    )
    payload = {
        "yield_target": result.yield_target,
        "meets_target": result.meets_target,
        "beats_uniform": result.beats_uniform,
        "uniform_wmin_nm": result.uniform_wmin_nm,
        "uniform_penalty": result.uniform_penalty,
        "uniform_baseline_wmin_nm": result.uniform_baseline_wmin_nm,
        "uniform_baseline_penalty": result.uniform_baseline_penalty,
        "candidates_evaluated": result.candidates_evaluated,
        "candidates_pruned": result.candidates_pruned,
        "candidates_escalated": result.candidates_escalated,
        "candidates_feasible": result.candidates_feasible,
        "process_point_count": result.process_point_count,
        "evaluations_per_second": result.evaluations_per_second,
        "surface_build_seconds": result.surface_build_seconds,
        "inner_loop_seconds": result.inner_loop_seconds,
        "front": [point.describe() for point in result.front],
        "best": result.best.describe() if result.best else None,
        "validations": [v.describe() for v in result.validations],
    }
    return _emit(args, payload, result.summary_lines())


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.reporting.tables import table1_data

    setup = _build_setup(args)
    data = table1_data(setup=setup)
    lines = [
        f"device pF at Wmin ({data['wmin_nm']:.1f} nm): {data['device_pf']:.3e}",
        f"pRF uncorrelated growth            : {data['prf_uncorrelated']:.3e}",
        f"pRF directional, non-aligned       : {data['prf_directional_non_aligned']:.3e}",
        f"pRF directional, aligned-active    : {data['prf_directional_aligned']:.3e}",
        f"gain from growth / alignment / all : {data['gain_from_growth']:.1f}X / "
        f"{data['gain_from_alignment']:.1f}X / {data['total_gain']:.1f}X",
    ]
    return _emit(args, dict(data), lines)


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.reporting.tables import render_table, table2_data

    setup = _build_setup(args)
    rows = table2_data(setup=setup)
    table = render_table(rows, columns=[
        "library", "aligned_regions", "num_cells", "cells_with_penalty",
        "cells_with_penalty_pct", "min_penalty_pct", "max_penalty_pct", "wmin_nm",
    ])
    return _emit(args, {"rows": rows}, [table])


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.reporting.figures import fig3_3_data

    setup = _build_setup(args)
    data = fig3_3_data(setup=setup)
    lines = [
        f"Wmin without correlation: {data['wmin_without_nm']:.1f} nm",
        f"Wmin with correlation   : {data['wmin_with_nm']:.1f} nm",
        "node (nm)   penalty without (%)   penalty with (%)",
    ]
    for node, a, b in zip(
        data["nodes_nm"],
        data["penalty_without_correlation_percent"],
        data["penalty_with_correlation_percent"],
    ):
        lines.append(f"{node:9.0f}   {a:19.1f}   {b:16.1f}")
    return _emit(args, dict(data), lines)


def _cmd_align(args: argparse.Namespace) -> int:
    from repro.cells.aligned_active import enforce_aligned_active
    from repro.cells.area import area_penalty_report
    from repro.cells.commercial65 import build_commercial65_library
    from repro.cells.export import export_liberty_view, export_physical_view
    from repro.cells.nangate45 import build_nangate45_library

    setup = _build_setup(args)
    if args.library == "nangate45":
        library = build_nangate45_library()
    else:
        library = build_commercial65_library()
    wmin = (
        args.wmin_nm if args.wmin_nm is not None else setup.wmin_correlated_nm()
    )
    result = enforce_aligned_active(
        library, wmin, aligned_region_groups=args.aligned_regions
    )
    report = area_penalty_report(result)
    payload = {
        "library": report.library_name,
        "wmin_nm": report.wmin_nm,
        "aligned_regions": report.aligned_region_groups,
        "cell_count": report.cell_count,
        "penalised_cell_count": report.penalised_cell_count,
        "penalised_fraction": report.penalised_fraction,
        "min_penalty_percent": report.min_penalty_percent,
        "max_penalty_percent": report.max_penalty_percent,
    }
    lines = [
        f"library                : {report.library_name}",
        f"Wmin                   : {report.wmin_nm:.1f} nm",
        f"aligned regions        : {report.aligned_region_groups}",
        f"cells                  : {report.cell_count}",
        f"cells with penalty     : {report.penalised_cell_count} "
        f"({100.0 * report.penalised_fraction:.1f} %)",
        f"penalty range          : {report.min_penalty_percent:.1f} % .. "
        f"{report.max_penalty_percent:.1f} %",
    ]
    if args.physical_out:
        modified = result.to_library()
        with open(args.physical_out, "w", encoding="utf-8") as handle:
            handle.write(export_physical_view(modified))
        payload["physical_out"] = args.physical_out
        lines.append(f"wrote physical view    : {args.physical_out}")
    if args.liberty_out:
        modified = result.to_library()
        with open(args.liberty_out, "w", encoding="utf-8") as handle:
            handle.write(export_liberty_view(modified))
        payload["liberty_out"] = args.liberty_out
        lines.append(f"wrote liberty view     : {args.liberty_out}")
    return _emit(args, payload, lines)


def _cmd_rare_event(args: argparse.Namespace) -> int:
    from repro.core.circuit_yield import (
        chip_yield_from_failure_estimate,
        yield_from_uniform_failure_probability,
    )
    from repro.core.correlation import LayoutScenario
    from repro.growth.pitch import pitch_distribution_from_cv
    from repro.montecarlo.device_sim import DeviceMonteCarlo
    from repro.montecarlo.rare_event import default_tilt_factor

    setup = _build_setup(args)
    failure_model = setup.failure_model
    if args.width_nm is not None:
        width = args.width_nm
    else:
        width = failure_model.width_for_failure_probability(args.target_pf)
    analytic_pf = failure_model.failure_probability(width)

    pitch = pitch_distribution_from_cv(args.mean_pitch_nm, args.pitch_cv)
    type_model = setup.corner.to_type_model()
    # Resolve the tilt here so the reported factor is exactly the one the
    # estimator consumes (an explicit --tilt-factor wins, even 0-adjacent).
    if args.tilt_factor is not None:
        tilt = args.tilt_factor
    else:
        tilt = default_tilt_factor(
            pitch, width, type_model.per_cnt_failure_probability
        )
    mc = DeviceMonteCarlo(pitch=pitch, type_model=type_model)
    rng = np.random.default_rng(args.seed)
    result = mc.estimate_tilted(width, args.samples, rng, tilt_factor=tilt)

    m_min = setup.min_size_device_count
    sampled = chip_yield_from_failure_estimate(
        result.failure_probability, result.standard_error, m_min
    )
    analytic_yield = yield_from_uniform_failure_probability(
        analytic_pf, m_min, exact=False
    )
    aligned = setup.row_yield_model.evaluate_estimate(
        LayoutScenario.DIRECTIONAL_ALIGNED,
        result.failure_probability,
        result.standard_error,
        m_min,
    )

    payload = {
        "width_nm": width,
        "tilt_factor": tilt,
        "n_samples": args.samples,
        "analytic_pf": analytic_pf,
        "sampled_pf": result.failure_probability,
        "sampled_pf_se": result.standard_error,
        "min_size_device_count": m_min,
        "chip_yield_analytic": analytic_yield,
        "chip_yield_sampled": sampled.yield_value,
        "chip_yield_sampled_se": sampled.standard_error,
        "chip_yield_aligned": aligned.chip_yield,
        "chip_yield_aligned_se": aligned.chip_yield_se,
        "row_count": aligned.row_count,
    }
    lines = [
        f"device width            : {width:.2f} nm (tilt factor {tilt:.3f})",
        f"analytic pF (Eq. 2.2)   : {analytic_pf:.4e}",
        f"sampled pF (tilted IS)  : {result.failure_probability:.4e} "
        f"+- {result.standard_error:.2e} "
        f"({100.0 * result.relative_error:.2f} % rel, "
        f"{args.samples} samples)",
    ]
    if args.pitch_cv != 1.0:
        lines.append(
            "  note: pitch CV != 1 — the analytic count model uses the "
            "ordinary-renewal boundary convention, the sampler the "
            "uniform-offset one; the tail magnifies that difference"
        )
    lines.extend([
        f"Mmin                    : {m_min:.3e} minimum-size devices",
        f"chip yield, Eq. 2.3     : {analytic_yield:.4f}",
        f"chip yield, sampled pF  : {sampled.yield_value:.4f} "
        f"+- {sampled.standard_error:.4f}",
        f"chip yield, aligned 3.1 : {aligned.chip_yield:.4f} "
        f"+- {aligned.chip_yield_se:.4f} "
        f"(KR = {aligned.row_count:.3e} rows)",
    ])
    return _emit(args, payload, lines)


def _build_wafer_model(args: argparse.Namespace) -> "object":
    """Wafer growth model from the shared wafer CLI options.

    A ``--correlation-length-mm`` switches the density variation from the
    legacy independent per-die noise to a spatially correlated
    Gaussian-random-field draw; ``--misalignment-correlation-length-mm``
    does the same for the misalignment angle.
    """
    from repro.growth.spatial import SpatialFieldSpec
    from repro.growth.wafer import WaferGrowthModel

    density_field = None
    if args.correlation_length_mm is not None:
        density_field = SpatialFieldSpec(
            sigma=args.field_sigma,
            correlation_length_mm=args.correlation_length_mm,
        )
    misalignment_field = None
    if args.misalignment_correlation_length_mm is not None:
        misalignment_field = SpatialFieldSpec(
            sigma=1.0,
            correlation_length_mm=args.misalignment_correlation_length_mm,
        )
    return WaferGrowthModel(
        wafer_diameter_mm=args.wafer_diameter_mm,
        die_size_mm=args.die_size_mm,
        center_pitch_nm=args.mean_pitch_nm,
        edge_pitch_drift=args.edge_pitch_drift,
        pitch_noise_sigma=args.pitch_noise_sigma,
        center_misalignment_deg=args.center_misalignment_deg,
        edge_misalignment_deg=args.edge_misalignment_deg,
        density_field=density_field,
        misalignment_field=misalignment_field,
    )


def _build_misalignment_model(args: argparse.Namespace, setup) -> "object":
    """The Sec. 3 de-rating model for ``--derate-misalignment`` runs."""
    from repro.analysis.mispositioned import MisalignmentImpactModel

    if not args.derate_misalignment:
        return None
    return MisalignmentImpactModel(
        band_width_nm=setup.wmin_correlated_nm(),
        cnt_length_um=args.cnt_length_um,
        min_cnfet_density_per_um=args.cnfet_density,
    )


def _add_wafer_geometry_options(parser: argparse.ArgumentParser) -> None:
    """Wafer map options shared by the ``wafer`` and ``chip-wafer`` commands."""
    parser.add_argument("--wafer-diameter-mm", type=float, default=100.0,
                        help="usable wafer diameter (default 100)")
    parser.add_argument("--die-size-mm", type=float, default=10.0,
                        help="square die edge length (default 10)")
    parser.add_argument("--edge-pitch-drift", type=float, default=0.15,
                        help="relative pitch increase at the wafer edge")
    parser.add_argument("--pitch-noise-sigma", type=float, default=0.02,
                        help="die-to-die random pitch component (relative; "
                             "replaced by the field when "
                             "--correlation-length-mm is given)")
    parser.add_argument("--correlation-length-mm", type=float, default=None,
                        help="correlation length of a spatially correlated "
                             "CNT-density field (omit for the legacy "
                             "independent per-die noise)")
    parser.add_argument("--field-sigma", type=float, default=0.05,
                        help="marginal sigma of the correlated density field "
                             "(log-density units, default 0.05)")
    parser.add_argument("--misalignment-correlation-length-mm", type=float,
                        default=None,
                        help="correlation length of the misalignment-angle "
                             "field (omit for independent per-die angles)")
    parser.add_argument("--center-misalignment-deg", type=float, default=0.2,
                        help="misalignment spread at the wafer centre")
    parser.add_argument("--edge-misalignment-deg", type=float, default=1.0,
                        help="misalignment spread at the wafer edge")
    parser.add_argument("--derate-misalignment", action="store_true",
                        help="apply the Sec. 3 analytic relaxation per die, "
                             "de-rated by the local misalignment angle")
    parser.add_argument("--good-die-threshold", type=float, default=0.5,
                        help="yield above which a die counts as good")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for die groups (results identical)")
    parser.add_argument("--seed", type=int, default=20100616, help="RNG seed")


def _cmd_wafer(args: argparse.Namespace) -> int:
    from repro.backend import get_backend
    from repro.growth.pitch import pitch_distribution_from_cv
    from repro.montecarlo.wafer_sim import per_die_loop, simulate_wafer
    from repro.reporting.tables import (
        WAFER_SUMMARY_COLUMNS,
        render_table,
        wafer_summary_rows,
    )

    setup = _build_setup(args)
    if args.widths_nm is not None:
        widths = _parse_float_list(args.widths_nm, "--widths-nm")
    else:
        # The per-die yield below multiplies *independent* device survival
        # probabilities (Eq. 2.3), so the matching default sizing is the
        # uncorrelated Wmin; the correlated Wmin only reaches the target
        # together with the Eq. 3.1 row model.
        widths = [setup.wmin_uncorrelated_nm()]
    if args.device_counts is not None:
        counts = _parse_float_list(args.device_counts, "--device-counts")
    else:
        counts = [setup.min_size_device_count / len(widths)] * len(widths)

    model = _build_wafer_model(args)
    wafer = model.generate(
        np.random.default_rng(args.seed), seed_key=(args.seed,)
    )
    pitch = pitch_distribution_from_cv(args.mean_pitch_nm, args.pitch_cv)
    type_model = _shorts_type_model(setup, args)
    misalignment = _build_misalignment_model(args, setup)
    backend = get_backend(args.backend, dtype=args.dtype) if (
        args.backend or args.dtype
    ) else None
    checkpoint_kwargs = _checkpoint_kwargs(args)
    runner = per_die_loop if args.per_die_loop else simulate_wafer
    if args.per_die_loop:
        if checkpoint_kwargs:
            print("note: --checkpoint-dir ignored with --per-die-loop "
                  "(the reference loop is not checkpointed)",
                  file=sys.stderr)
        kwargs = {}
    else:
        kwargs = {"n_workers": args.workers, "backend": backend,
                  **checkpoint_kwargs}
    result = runner(
        wafer, pitch, type_model, widths, counts,
        n_trials=args.trials,
        seed_key=(args.seed,),
        good_die_threshold=args.good_die_threshold,
        misalignment=misalignment,
        **kwargs,
    )
    payload = {
        "die_count": result.die_count,
        "n_trials": result.n_trials,
        "widths_nm": list(result.widths_nm),
        "device_counts": list(result.device_counts),
        "correlation_length_mm": args.correlation_length_mm,
        "metallic_fraction": type_model.metallic_fraction,
        "removal_eta": type_model.removal_prob_metallic,
        "short_probability": type_model.surviving_metallic_probability,
        "derate_misalignment": bool(args.derate_misalignment),
        "mean_chip_yield": result.mean_chip_yield,
        "good_die_fraction": result.good_die_fraction,
        "expected_good_dice": result.expected_good_dice,
        "dice": [
            {
                "column": d.column, "row": d.row,
                "x_mm": d.x_mm, "y_mm": d.y_mm,
                "mean_pitch_nm": d.mean_pitch_nm,
                "cnt_density_per_um": d.cnt_density_per_um,
                "misalignment_deg": d.misalignment_deg,
                "relaxation_factor": d.relaxation_factor,
                "chip_yield": d.chip_yield,
                "chip_yield_se": d.chip_yield_se,
            }
            for d in result.dice
        ],
    }
    from repro.reporting.tables import wafer_map_lines

    lines = [
        f"dies                 : {result.die_count} "
        f"({args.wafer_diameter_mm:.0f} mm wafer, "
        f"{args.die_size_mm:.0f} mm dies)",
        f"trials per die       : {result.n_trials}",
        f"width classes (nm)   : {', '.join(f'{w:.1f}' for w in result.widths_nm)}",
        f"density field        : "
        + (f"correlated, l = {args.correlation_length_mm:g} mm, "
           f"sigma = {args.field_sigma:g}"
           if args.correlation_length_mm is not None
           else "radial + independent noise"),
        f"misalignment de-rate : {'on' if misalignment is not None else 'off'}",
        f"mean chip yield      : {result.mean_chip_yield:.4f}",
        f"good-die fraction    : {result.good_die_fraction:.3f} "
        f"(threshold {result.good_die_threshold:g})",
        f"expected good dice   : {result.expected_good_dice:.1f}",
        render_table(wafer_summary_rows(result), columns=WAFER_SUMMARY_COLUMNS),
        *wafer_map_lines(result.dice, result.die_yields(),
                         threshold=result.good_die_threshold),
    ]
    return _emit(args, payload, lines)


def _cmd_chip_wafer(args: argparse.Namespace) -> int:
    from repro.cells.nangate45 import build_nangate45_library
    from repro.growth.pitch import pitch_distribution_from_cv
    from repro.montecarlo.chip_sim import ChipMonteCarlo
    from repro.montecarlo.wafer_sim import chip_per_die_loop, run_chip_wafer
    from repro.netlist.openrisc import build_openrisc_like_design
    from repro.netlist.placement import RowPlacement
    from repro.reporting.tables import (
        CHIP_WAFER_SUMMARY_COLUMNS,
        render_table,
        chip_wafer_summary_rows,
        wafer_map_lines,
    )

    setup = _build_setup(args)
    wafer = _build_wafer_model(args).generate(
        np.random.default_rng(args.seed), seed_key=(args.seed,)
    )
    library = build_nangate45_library()
    design = build_openrisc_like_design(
        library, scale=args.scale, seed=args.netlist_seed
    )
    placement = RowPlacement(design)
    chip = ChipMonteCarlo(
        placement,
        pitch=pitch_distribution_from_cv(args.mean_pitch_nm, args.pitch_cv),
        type_model=_shorts_type_model(setup, args),
    )
    misalignment = _build_misalignment_model(args, setup)
    checkpoint_kwargs = _checkpoint_kwargs(args)
    if args.per_die_loop:
        # The reference loop computes only the direct view (no Eq. 2.3
        # classes to de-rate) and runs serially; say so instead of
        # silently dropping the flags.
        if misalignment is not None:
            print("note: --derate-misalignment ignored with --per-die-loop "
                  "(the reference loop has no Eq. 2.3 view to de-rate)",
                  file=sys.stderr)
        if args.workers != 1:
            print("note: --workers ignored with --per-die-loop "
                  "(the reference loop is serial)", file=sys.stderr)
        if checkpoint_kwargs:
            print("note: --checkpoint-dir ignored with --per-die-loop "
                  "(the reference loop is not checkpointed)",
                  file=sys.stderr)
        result = chip_per_die_loop(
            wafer, chip, n_trials=args.trials, seed_key=(args.seed,),
            good_die_threshold=args.good_die_threshold,
        )
    else:
        result = run_chip_wafer(
            wafer, chip, n_trials=args.trials, seed_key=(args.seed,),
            good_die_threshold=args.good_die_threshold,
            n_workers=args.workers, misalignment=misalignment,
            **checkpoint_kwargs,
        )
    payload = {
        "die_count": result.die_count,
        "device_count": result.device_count,
        "n_trials": result.n_trials,
        "widths_nm": list(result.widths_nm),
        "device_counts": list(result.device_counts),
        "mean_chip_yield": result.mean_chip_yield,
        "good_die_fraction": result.good_die_fraction,
        "expected_good_dice": result.expected_good_dice,
        "dice": [
            {
                "column": d.column, "row": d.row,
                "x_mm": d.x_mm, "y_mm": d.y_mm,
                "mean_pitch_nm": d.mean_pitch_nm,
                "misalignment_deg": d.misalignment_deg,
                "chip_yield": d.chip_yield,
                "eq23_chip_yield": _nan_to_none(d.eq23_chip_yield),
                "eq23_chip_yield_se": _nan_to_none(d.eq23_chip_yield_se),
                "mean_failing_devices": d.mean_failing_devices,
                "relaxation_factor": d.relaxation_factor,
            }
            for d in result.dice
        ],
    }
    lines = [
        f"dies                 : {result.die_count} "
        f"({args.wafer_diameter_mm:.0f} mm wafer, "
        f"{args.die_size_mm:.0f} mm dies)",
        f"placed design        : {design.instance_count} instances, "
        f"{result.device_count} transistors "
        f"({len(result.widths_nm)} width classes)",
        f"trials per die       : {result.n_trials}",
        f"mean direct yield    : {result.mean_chip_yield:.4f}",
        f"good-die fraction    : {result.good_die_fraction:.3f} "
        f"(threshold {result.good_die_threshold:g})",
        f"expected good dice   : {result.expected_good_dice:.1f}",
        render_table(chip_wafer_summary_rows(result),
                     columns=CHIP_WAFER_SUMMARY_COLUMNS),
        *wafer_map_lines(result.dice, result.die_yields(),
                         threshold=result.good_die_threshold),
    ]
    return _emit(args, payload, lines)


def _cmd_netlist(args: argparse.Namespace) -> int:
    from repro.cells.nangate45 import build_nangate45_library
    from repro.netlist.openrisc import build_openrisc_like_design
    from repro.netlist.verilog import export_structural_netlist

    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=args.scale, seed=args.seed)
    text = export_structural_netlist(design)
    payload = {
        "instance_count": design.instance_count,
        "transistor_count": design.transistor_count,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        payload["output"] = args.output
        lines = [f"wrote {design.instance_count} instances to {args.output}"]
    else:
        lines = [text]
    return _emit(args, payload, lines)


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.analysis.delay import GateDelayModel
    from repro.cells.nangate45 import build_nangate45_library
    from repro.core.count_model import PoissonCountModel
    from repro.growth.pitch import pitch_distribution_from_cv
    from repro.growth.types import CNTTypeModel
    from repro.montecarlo.chip_sim import ChipMonteCarlo
    from repro.netlist.openrisc import build_openrisc_like_design
    from repro.netlist.placement import RowPlacement
    from repro.timing import TimingMonteCarlo, load_timing_graph

    if args.tclk_ps is not None and args.tclk_factor is not None:
        raise CLIUsageError("--tclk-ps and --tclk-factor are mutually exclusive")
    if args.workers < 1:
        raise CLIUsageError("--workers must be at least 1")
    if args.graph is not None:
        if args.scale is not None or args.netlist_seed is not None:
            raise CLIUsageError(
                "--graph takes a ready-made timing graph; --scale and "
                "--netlist-seed only apply to the derived netlist mode"
            )
        graph_path = Path(args.graph)
        if not graph_path.is_file():
            raise CLIUsageError(f"--graph {args.graph!r} is not a readable file")

    type_model = CNTTypeModel()
    if args.graph is not None:
        graph = load_timing_graph(args.graph)
        delay_model = GateDelayModel(
            count_model=PoissonCountModel(args.mean_pitch_nm),
            type_model=type_model,
        )
        engine = TimingMonteCarlo.from_graph(graph, delay_model)
        mode = "ingested (independent per-node counts)"
    else:
        scale = 0.05 if args.scale is None else args.scale
        netlist_seed = 2010 if args.netlist_seed is None else args.netlist_seed
        library = build_nangate45_library()
        design = build_openrisc_like_design(library, scale=scale, seed=netlist_seed)
        placement = RowPlacement(design)
        chip = ChipMonteCarlo(
            placement,
            pitch=pitch_distribution_from_cv(args.mean_pitch_nm, args.pitch_cv),
            type_model=type_model,
        )
        engine = TimingMonteCarlo.from_chip(chip, seed=args.derive_seed)
        graph = engine.graph
        mode = "derived (correlated shared-track counts)"

    if args.tclk_ps is not None:
        t_clk = float(args.tclk_ps)
    else:
        factor = 1.2 if args.tclk_factor is None else args.tclk_factor
        t_clk = engine.default_t_clk_ps(factor=factor)
    result = engine.run(
        args.trials,
        np.random.default_rng(args.seed),
        t_clk_ps=t_clk,
        n_workers=args.workers,
        oracle=args.oracle,
    )
    payload = {
        "mode": mode,
        "n_nodes": graph.n_nodes,
        "n_arcs": graph.n_arcs,
        "depth": graph.depth,
        "n_trials": result.n_trials,
        "t_clk_ps": result.t_clk_ps,
        "nominal_critical_path_ps": result.nominal_critical_path_ps,
        "functional_yield": result.functional_yield,
        "timing_yield": result.timing_yield,
        "combined_yield": result.combined_yield,
    }
    lines = [
        f"timing graph          : {graph.n_nodes} nodes, {graph.n_arcs} arcs, "
        f"depth {graph.depth} ({mode})",
        f"trials                : {result.n_trials}",
        f"nominal critical path : {result.nominal_critical_path_ps:.2f} ps",
        f"clock period          : {result.t_clk_ps:.2f} ps",
        f"functional yield      : {result.functional_yield:.4f}",
        f"timing yield          : {result.timing_yield:.4f}",
        f"combined yield        : {result.combined_yield:.4f}",
    ]
    return _emit(args, payload, lines)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.growth.pitch import pitch_distribution_from_cv
    from repro.reporting.tables import (
        SURFACE_SUMMARY_COLUMNS,
        render_table,
        surface_summary_rows,
    )
    from repro.surface import (
        ALL_SCENARIOS,
        GridAxis,
        SurfaceBuilder,
        SurfaceStore,
        SweepSpec,
    )

    setup = _build_setup(args)
    scenarios = ALL_SCENARIOS if args.scenario == "all" else (args.scenario,)
    pitch = pitch_distribution_from_cv(args.mean_pitch_nm, args.pitch_cv)
    type_model = _shorts_type_model(setup, args)
    store = SurfaceStore(args.out)
    checkpoint_kwargs = _checkpoint_kwargs(args)

    surfaces = []
    reports = []
    for scenario in scenarios:
        try:
            spec = SweepSpec(
                scenario=scenario,
                width_axis=GridAxis.from_range(
                    "width_nm", args.w_min, args.w_max, args.w_points
                ),
                density_axis=GridAxis.from_range(
                    "cnt_density_per_um",
                    args.density_min, args.density_max, args.density_points,
                ),
                pitch=pitch,
                per_cnt_failure=type_model.per_cnt_failure_probability,
                correlation=setup.correlation,
                method=args.method,
                tolerance_log=args.tolerance,
                max_refinement_rounds=args.max_refinement_rounds,
                mc_samples=args.mc_samples,
                seed=args.seed,
                metallic_fraction=type_model.metallic_fraction,
                removal_eta=type_model.removal_prob_metallic,
            )
        except ValueError as exc:
            # The tilted sampler has no joint opens+shorts path; surface
            # the spec's rejection as the usage error it is.
            raise CLIUsageError(str(exc)) from None
        report = SurfaceBuilder(spec, **checkpoint_kwargs).build_report()
        store.save(report.surface)
        surfaces.append(report.surface)
        reports.append(report)

    payload = {
        "store": str(store.root),
        "surfaces": [s.describe() for s in surfaces],
        "evaluations": [r.evaluations for r in reports],
    }
    lines = [
        render_table(
            surface_summary_rows(surfaces), columns=SURFACE_SUMMARY_COLUMNS
        ),
        f"persisted {len(surfaces)} surface(s) under {store.root}",
    ]
    return _emit(args, payload, lines)


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serving import YieldService
    from repro.surface import SurfaceStore

    store_path = Path(args.store)
    if not store_path.exists():
        raise CLIUsageError(f"surface store {args.store!r} does not exist")
    if not store_path.is_dir():
        raise CLIUsageError(f"surface store {args.store!r} is not a directory")
    store = SurfaceStore(args.store)
    keys = store.keys()
    if args.key is None:
        raise ValueError(
            f"--key is required; available surfaces: {keys or '(none)'}"
        )
    service = YieldService(store=store)
    widths = np.asarray(_parse_float_list(args.width_nm, "--width-nm"))
    densities = (
        np.asarray(_parse_float_list(args.density, "--density"))
        if args.density is not None else None
    )
    result = service.query(
        args.key,
        widths,
        cnt_density_per_um=densities,
        device_count=args.transistors * args.min_size_fraction,
        fallback=args.fallback,
        deadline_s=args.deadline_s,
    )
    payload = {
        "scenario": result.scenario,
        "device_count": args.transistors * args.min_size_fraction,
        "width_nm": widths,
        "failure_probability": result.failure_probability,
        "failure_lower": result.failure_lower,
        "failure_upper": result.failure_upper,
        "chip_yield": result.chip_yield,
        "yield_lower": result.yield_lower,
        "yield_upper": result.yield_upper,
        "interpolated": result.interpolated,
        "degraded": result.degraded,
        "degradation": list(result.degradation),
    }
    lines = [
        f"scenario      : {result.scenario}",
        f"device count  : {args.transistors * args.min_size_fraction:.3e}",
        f"degradation   : {', '.join(result.degradation)}",
        "width (nm)   failure prob [lower, upper]            chip yield  served",
    ]
    for idx in range(result.n_queries):
        served = "grid" if result.interpolated[idx] else args.fallback
        lines.append(
            f"{widths[idx]:10.2f}   {result.failure_probability[idx]:.4e} "
            f"[{result.failure_lower[idx]:.4e}, {result.failure_upper[idx]:.4e}]"
            f"   {result.chip_yield[idx]:.6f}  {served}"
        )
    return _emit(args, payload, lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.http import StoreAppFactory, run_server

    store = None
    if args.store is not None:
        store_path = Path(args.store)
        if not store_path.exists():
            raise CLIUsageError(f"surface store {args.store!r} does not exist")
        if not store_path.is_dir():
            raise CLIUsageError(
                f"surface store {args.store!r} is not a directory"
            )
        store = args.store
    if args.workers < 1:
        raise CLIUsageError("--workers must be at least 1")
    if args.workers > 1 and args.port == 0:
        raise CLIUsageError("--workers > 1 needs an explicit --port")
    factory = StoreAppFactory(
        store=store,
        cache_capacity=args.cache_capacity,
        deadline_s=args.deadline_s,
        refine_capacity=args.refine_capacity,
        refine_workers=args.refine_workers,
    )
    run_server(
        factory, host=args.host, port=args.port, workers=args.workers
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CNFET yield enhancement via CNT correlation (DAC 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_subparser(name: str, handler, description: str,
                      common: bool = True) -> argparse.ArgumentParser:
        sub = subparsers.add_parser(name, help=description)
        if common:
            _add_common_options(sub)
        sub.add_argument("--json", action="store_true",
                         help="emit a machine-readable JSON payload")
        sub.set_defaults(handler=handler)
        return sub

    for name, handler, description in (
        ("wmin", _cmd_wmin, "baseline/optimised Wmin and penalties"),
        ("table1", _cmd_table1, "row failure probabilities (Table 1)"),
        ("table2", _cmd_table2, "library area penalties (Table 2)"),
        ("scaling", _cmd_scaling, "penalty versus technology node (Fig. 2.2b / 3.3)"),
    ):
        add_subparser(name, handler, description)

    coopt = add_subparser(
        "co-opt", _cmd_coopt,
        "Pareto process/design co-optimization (yield target at minimum "
        "capacitance penalty)",
    )
    coopt.add_argument("--densities", type=str, default="200,250,320",
                       help="comma-separated CNT densities rho in /um to "
                            "search (default 200,250,320)")
    coopt.add_argument("--pitch-cvs", type=str, default=None,
                       help="comma-separated pitch CVs to search "
                            "(default: the --pitch-cv value)")
    coopt.add_argument("--cnt-lengths-um", type=str, default=None,
                       help="comma-separated CNT correlation lengths in um "
                            "(default: the --cnt-length-um value)")
    coopt.add_argument("--misalignment-deg", type=str, default="0",
                       help="comma-separated misalignment specs in degrees "
                            "(default 0)")
    coopt.add_argument("--metallic-frac", type=float, default=None,
                       help="metallic CNT fraction p_m of the searched "
                            "corner (default: the calibrated corner's value)")
    coopt.add_argument("--removal-eta", type=str, default="1",
                       help="comma-separated metallic-removal efficiencies "
                            "eta to search; values below 1 activate the "
                            "short failure mode (default 1)")
    coopt.add_argument("--extra-levels", type=int, default=4,
                       help="extra upsizing levels between the smallest "
                            "class width and the baseline Wmin (default 4)")
    coopt.add_argument("--max-combos", type=int, default=200_000,
                       help="guard on per-process-point design combinations "
                            "(default 200000)")
    coopt.add_argument("--validate-trials", type=int, default=0,
                       help="Monte Carlo trials per validated front member "
                            "(0 disables end-to-end validation)")
    coopt.add_argument("--validate-top", type=int, default=1,
                       help="how many front members to validate (default 1)")
    coopt.add_argument("--workers", type=int, default=1,
                       help="worker processes for the validation Monte "
                            "Carlo (the front itself is worker-invariant)")
    coopt.add_argument("--tclk-factor", type=float, default=1.2,
                       help="validation clock period as a multiple of the "
                            "nominal critical path (default 1.2)")
    coopt.add_argument("--seed", type=int, default=20100613,
                       help="root seed for the spawn-keyed validation RNG")

    align = add_subparser(
        "align", _cmd_align, "apply the aligned-active restriction to a library"
    )
    align.add_argument("--library", choices=("nangate45", "commercial65"),
                       default="nangate45")
    align.add_argument("--wmin-nm", type=float, default=None,
                       help="override the Wmin used for criticality")
    align.add_argument("--aligned-regions", type=int, default=1,
                       help="number of aligned active regions per polarity")
    align.add_argument("--physical-out", type=str, default=None,
                       help="write the modified physical (LEF-style) view here")
    align.add_argument("--liberty-out", type=str, default=None,
                       help="write the modified Liberty-style view here")

    rare = add_subparser(
        "rare-event", _cmd_rare_event,
        "importance-sampled tail pF and its chip-yield consequence",
    )
    rare.add_argument("--target-pf", type=float, default=1e-9,
                      help="device failure probability to probe (default 1e-9)")
    rare.add_argument("--width-nm", type=float, default=None,
                      help="device width override (solved from --target-pf "
                           "when omitted)")
    rare.add_argument("--samples", type=int, default=100_000,
                      help="importance-sampling trial count (default 100000)")
    rare.add_argument("--tilt-factor", type=float, default=None,
                      help="mean-pitch stretch factor (auto when omitted)")
    rare.add_argument("--seed", type=int, default=2010, help="RNG seed")

    wafer = add_subparser(
        "wafer", _cmd_wafer,
        "wafer-level per-die yield under CNT density drift (stacked engine)",
    )
    _add_wafer_geometry_options(wafer)
    wafer.add_argument("--widths-nm", type=str, default=None,
                       help="comma-separated device width classes "
                            "(default: the uncorrelated Wmin, which matches "
                            "the independent-device Eq. 2.3 product)")
    wafer.add_argument("--device-counts", type=str, default=None,
                       help="devices per width class per die "
                            "(default: Mmin split evenly)")
    wafer.add_argument("--trials", type=int, default=2048,
                       help="Monte Carlo trials per die (default 2048)")
    wafer.add_argument("--backend", type=str, default=None,
                       help="array backend (numpy/cupy/torch; default: "
                            "REPRO_BACKEND or numpy)")
    wafer.add_argument("--dtype", type=str, default=None,
                       help="dtype policy float64/float32 (default: "
                            "REPRO_DTYPE or float64)")
    wafer.add_argument("--per-die-loop", action="store_true",
                       help="use the reference die-by-die loop instead of "
                            "the stacked engine (cross-check/benchmark)")
    _add_shorts_options(wafer)
    _add_checkpoint_options(wafer)

    chip_wafer = add_subparser(
        "chip-wafer", _cmd_chip_wafer,
        "whole-placement per-die chip yield across a wafer (shared geometry)",
    )
    _add_wafer_geometry_options(chip_wafer)
    chip_wafer.add_argument("--scale", type=float, default=0.05,
                            help="OpenRISC-like netlist scale factor "
                                 "(default 0.05)")
    chip_wafer.add_argument("--netlist-seed", type=int, default=2010,
                            help="netlist generator seed")
    chip_wafer.add_argument("--trials", type=int, default=128,
                            help="whole-chip trials per die (default 128)")
    chip_wafer.add_argument("--per-die-loop", action="store_true",
                            help="use the fresh-simulator-per-die reference "
                                 "instead of the shared-geometry pass")
    _add_shorts_options(chip_wafer)
    _add_checkpoint_options(chip_wafer)

    netlist = add_subparser(
        "netlist", _cmd_netlist, "generate the synthetic OpenRISC-like netlist",
        common=False,
    )
    netlist.add_argument("--scale", type=float, default=0.25,
                         help="netlist size scale factor (default 0.25)")
    netlist.add_argument("--seed", type=int, default=2010, help="generator seed")
    netlist.add_argument("--output", type=str, default=None,
                         help="output file (stdout when omitted)")

    timing = add_subparser(
        "timing", _cmd_timing,
        "joint functional / critical-path (parametric) yield Monte Carlo",
        common=False,
    )
    timing.add_argument("--graph", type=str, default=None,
                        help="ingest a plain-text timing graph instead of "
                             "deriving one from the synthetic netlist")
    timing.add_argument("--scale", type=float, default=None,
                        help="OpenRISC-like netlist scale factor for the "
                             "derived mode (default 0.05)")
    timing.add_argument("--netlist-seed", type=int, default=None,
                        help="netlist generator seed for the derived mode "
                             "(default 2010)")
    timing.add_argument("--derive-seed", type=int, default=2010,
                        help="fanin-sampling seed of the derived graph")
    timing.add_argument("--mean-pitch-nm", type=float, default=8.0,
                        help="mean inter-CNT pitch in nm (default 8)")
    timing.add_argument("--pitch-cv", type=float, default=1.0,
                        help="pitch coefficient of variation (default 1.0)")
    timing.add_argument("--trials", type=int, default=256,
                        help="whole-chip Monte Carlo trials (default 256)")
    timing.add_argument("--seed", type=int, default=2010, help="RNG seed")
    timing.add_argument("--workers", type=int, default=1,
                        help="processes for trial chunks (results identical)")
    timing.add_argument("--tclk-ps", type=float, default=None,
                        help="clock period in ps (exclusive with "
                             "--tclk-factor)")
    timing.add_argument("--tclk-factor", type=float, default=None,
                        help="clock period as a multiple of the nominal "
                             "critical path (default 1.2)")
    timing.add_argument("--oracle", action="store_true",
                        help="use the per-trial scalar STA walk instead of "
                             "the batched sweep (bitwise-identical, slower)")

    sweep = add_subparser(
        "sweep", _cmd_sweep,
        "precompute yield surfaces over a (width, CNT density) grid",
    )
    sweep.add_argument("--scenario", default="all",
                       choices=("all", "device", "uncorrelated",
                                "directional_non_aligned", "directional_aligned"),
                       help="which surface(s) to sweep (default all)")
    sweep.add_argument("--w-min", type=float, default=20.0,
                       help="width axis lower bound in nm (default 20)")
    sweep.add_argument("--w-max", type=float, default=400.0,
                       help="width axis upper bound in nm (default 400)")
    sweep.add_argument("--w-points", type=int, default=33,
                       help="initial width grid points (default 33)")
    sweep.add_argument("--density-min", type=float, default=125.0,
                       help="CNT density axis lower bound per um (default 125)")
    sweep.add_argument("--density-max", type=float, default=500.0,
                       help="CNT density axis upper bound per um (default 500)")
    sweep.add_argument("--density-points", type=int, default=17,
                       help="initial density grid points (default 17)")
    sweep.add_argument("--tolerance", type=float, default=1e-3,
                       help="interpolation-error tolerance in log space")
    sweep.add_argument("--max-refinement-rounds", type=int, default=3,
                       help="maximum grid-refinement rounds (default 3)")
    sweep.add_argument("--method", default="auto",
                       choices=("auto", "closed_form", "tilted"),
                       help="sweep path (default auto)")
    sweep.add_argument("--mc-samples", type=int, default=20_000,
                       help="samples per grid point on the tilted path")
    sweep.add_argument("--seed", type=int, default=20100613, help="sweep RNG seed")
    sweep.add_argument("--out", type=str, default="surfaces",
                       help="surface store directory (default ./surfaces)")
    _add_shorts_options(sweep)
    _add_checkpoint_options(sweep)

    query = add_subparser(
        "query", _cmd_query,
        "serve batched yield queries from a persisted surface",
    )
    query.add_argument("--store", type=str, default="surfaces",
                       help="surface store directory (default ./surfaces)")
    query.add_argument("--key", type=str, default=None,
                       help="surface key or unambiguous prefix (see sweep output)")
    query.add_argument("--width-nm", type=str, required=True,
                       help="comma-separated device widths to query")
    query.add_argument("--density", type=str, default=None,
                       help="comma-separated CNT densities per um "
                            "(surface reference density when omitted)")
    query.add_argument("--fallback", default="exact",
                       choices=("exact", "mc", "none"),
                       help="out-of-grid handling (default exact)")
    query.add_argument("--deadline-s", type=float, default=None,
                       help="wall-clock budget per query; past it, "
                            "out-of-grid answers clamp to the nearest grid "
                            "point with [0, 1] bounds and the result is "
                            "flagged degraded")

    serve = add_subparser(
        "serve", _cmd_serve,
        "run the HTTP/ASGI yield service over a surface store",
        common=False,
    )
    serve.add_argument("--store", type=str, default=None,
                       help="surface store directory to serve (omit for an "
                            "upload-only service)")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port; 0 picks a free port "
                            "(single-worker only)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes sharing the port via "
                            "SO_REUSEPORT (default 1)")
    serve.add_argument("--cache-capacity", type=int, default=8,
                       help="surfaces held in memory per worker (default 8)")
    serve.add_argument("--deadline-s", type=float, default=None,
                       help="default per-query wall-clock budget")
    serve.add_argument("--refine-capacity", type=int, default=64,
                       help="bound on pending background MC refinement jobs")
    serve.add_argument("--refine-workers", type=int, default=1,
                       help="background refinement threads per worker")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Runtime failures in any handler are reported on stderr and mapped to
    exit code 1, so scripted callers get a consistent contract: 0 success,
    1 runtime error, 2 usage error (from argparse or a
    :class:`CLIUsageError` — invalid flag combination, unusable path).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (KeyboardInterrupt, SystemExit):
        raise
    except CLIUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 — the CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
