"""Command-line interface for the reproduction.

Exposes the main analyses as sub-commands so the library can be driven
without writing Python:

``python -m repro.cli wmin``
    The Sec. 2 / Sec. 3 Wmin analysis (baseline, relaxation, optimised).

``python -m repro.cli table1``
    Row failure probabilities for the three growth/layout styles.

``python -m repro.cli table2``
    Area-penalty statistics for the two synthetic libraries.

``python -m repro.cli scaling``
    Upsizing penalty versus technology node, with and without correlation.

``python -m repro.cli align``
    Apply the aligned-active restriction to a library and optionally write
    the modified physical/Liberty views to files.

``python -m repro.cli netlist``
    Generate the synthetic OpenRISC-like netlist and write it as a
    structural Verilog-style file.

``python -m repro.cli rare-event``
    Importance-sampled device failure probability deep in the tail
    (default pF ≈ 1e-9) with the chip-yield consequence at the configured
    transistor count, compared against the Eq. 2.3 / 3.1 closed forms.

Every sub-command accepts the calibration knobs that matter (yield target,
pitch CV, CNT length, density) so quick what-if studies need no code.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.calibration import CalibratedSetup
from repro.core.correlation import CorrelationParameters
from repro.core.optimizer import CoOptimizationFlow
from repro.netlist.openrisc import openrisc_width_histogram


def _build_setup(args: argparse.Namespace) -> CalibratedSetup:
    """Construct a CalibratedSetup from the shared CLI options."""
    return CalibratedSetup(
        mean_pitch_nm=args.mean_pitch_nm,
        pitch_cv=args.pitch_cv,
        chip_transistor_count=int(args.transistors),
        min_size_fraction=args.min_size_fraction,
        yield_target=args.yield_target,
        correlation=CorrelationParameters(
            cnt_length_um=args.cnt_length_um,
            min_cnfet_density_per_um=args.cnfet_density,
        ),
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--yield-target", type=float, default=0.90,
                        help="desired chip yield (default 0.90)")
    parser.add_argument("--transistors", type=float, default=1.0e8,
                        help="chip transistor count M (default 1e8)")
    parser.add_argument("--min-size-fraction", type=float, default=0.33,
                        help="fraction of minimum-size devices Mmin/M (default 0.33)")
    parser.add_argument("--mean-pitch-nm", type=float, default=4.0,
                        help="mean inter-CNT pitch in nm (default 4)")
    parser.add_argument("--pitch-cv", type=float, default=1.0,
                        help="inter-CNT pitch coefficient of variation (default 1.0)")
    parser.add_argument("--cnt-length-um", type=float, default=200.0,
                        help="CNT length LCNT in um (default 200)")
    parser.add_argument("--cnfet-density", type=float, default=1.8,
                        help="small-CNFET density Pmin-CNFET in FETs/um (default 1.8)")


def _cmd_wmin(args: argparse.Namespace) -> int:
    setup = _build_setup(args)
    design = openrisc_width_histogram(setup.chip_transistor_count)
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    report = flow.run()
    for line in report.summary_lines():
        print(line)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.reporting.tables import table1_data

    setup = _build_setup(args)
    data = table1_data(setup=setup)
    print(f"device pF at Wmin ({data['wmin_nm']:.1f} nm): {data['device_pf']:.3e}")
    print(f"pRF uncorrelated growth            : {data['prf_uncorrelated']:.3e}")
    print(f"pRF directional, non-aligned       : {data['prf_directional_non_aligned']:.3e}")
    print(f"pRF directional, aligned-active    : {data['prf_directional_aligned']:.3e}")
    print(f"gain from growth / alignment / all : {data['gain_from_growth']:.1f}X / "
          f"{data['gain_from_alignment']:.1f}X / {data['total_gain']:.1f}X")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.reporting.tables import render_table, table2_data

    setup = _build_setup(args)
    rows = table2_data(setup=setup)
    print(render_table(rows, columns=[
        "library", "aligned_regions", "num_cells", "cells_with_penalty",
        "cells_with_penalty_pct", "min_penalty_pct", "max_penalty_pct", "wmin_nm",
    ]))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.reporting.figures import fig3_3_data

    setup = _build_setup(args)
    data = fig3_3_data(setup=setup)
    print(f"Wmin without correlation: {data['wmin_without_nm']:.1f} nm")
    print(f"Wmin with correlation   : {data['wmin_with_nm']:.1f} nm")
    print("node (nm)   penalty without (%)   penalty with (%)")
    for node, a, b in zip(
        data["nodes_nm"],
        data["penalty_without_correlation_percent"],
        data["penalty_with_correlation_percent"],
    ):
        print(f"{node:9.0f}   {a:19.1f}   {b:16.1f}")
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    from repro.cells.aligned_active import enforce_aligned_active
    from repro.cells.area import area_penalty_report
    from repro.cells.commercial65 import build_commercial65_library
    from repro.cells.export import export_liberty_view, export_physical_view
    from repro.cells.nangate45 import build_nangate45_library

    setup = _build_setup(args)
    if args.library == "nangate45":
        library = build_nangate45_library()
    else:
        library = build_commercial65_library()
    wmin = (
        args.wmin_nm if args.wmin_nm is not None else setup.wmin_correlated_nm()
    )
    result = enforce_aligned_active(
        library, wmin, aligned_region_groups=args.aligned_regions
    )
    report = area_penalty_report(result)
    print(f"library                : {report.library_name}")
    print(f"Wmin                   : {report.wmin_nm:.1f} nm")
    print(f"aligned regions        : {report.aligned_region_groups}")
    print(f"cells                  : {report.cell_count}")
    print(f"cells with penalty     : {report.penalised_cell_count} "
          f"({100.0 * report.penalised_fraction:.1f} %)")
    print(f"penalty range          : {report.min_penalty_percent:.1f} % .. "
          f"{report.max_penalty_percent:.1f} %")
    if args.physical_out:
        modified = result.to_library()
        with open(args.physical_out, "w", encoding="utf-8") as handle:
            handle.write(export_physical_view(modified))
        print(f"wrote physical view    : {args.physical_out}")
    if args.liberty_out:
        modified = result.to_library()
        with open(args.liberty_out, "w", encoding="utf-8") as handle:
            handle.write(export_liberty_view(modified))
        print(f"wrote liberty view     : {args.liberty_out}")
    return 0


def _cmd_rare_event(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.circuit_yield import (
        chip_yield_from_failure_estimate,
        yield_from_uniform_failure_probability,
    )
    from repro.core.correlation import LayoutScenario
    from repro.growth.pitch import pitch_distribution_from_cv
    from repro.montecarlo.device_sim import DeviceMonteCarlo
    from repro.montecarlo.rare_event import default_tilt_factor

    setup = _build_setup(args)
    failure_model = setup.failure_model
    if args.width_nm is not None:
        width = args.width_nm
    else:
        width = failure_model.width_for_failure_probability(args.target_pf)
    analytic_pf = failure_model.failure_probability(width)

    pitch = pitch_distribution_from_cv(args.mean_pitch_nm, args.pitch_cv)
    type_model = setup.corner.to_type_model()
    # Resolve the tilt here so the reported factor is exactly the one the
    # estimator consumes (an explicit --tilt-factor wins, even 0-adjacent).
    if args.tilt_factor is not None:
        tilt = args.tilt_factor
    else:
        tilt = default_tilt_factor(
            pitch, width, type_model.per_cnt_failure_probability
        )
    mc = DeviceMonteCarlo(pitch=pitch, type_model=type_model)
    rng = np.random.default_rng(args.seed)
    result = mc.estimate_tilted(width, args.samples, rng, tilt_factor=tilt)

    m_min = setup.min_size_device_count
    sampled = chip_yield_from_failure_estimate(
        result.failure_probability, result.standard_error, m_min
    )
    analytic_yield = yield_from_uniform_failure_probability(
        analytic_pf, m_min, exact=False
    )
    aligned = setup.row_yield_model.evaluate_estimate(
        LayoutScenario.DIRECTIONAL_ALIGNED,
        result.failure_probability,
        result.standard_error,
        m_min,
    )

    print(f"device width            : {width:.2f} nm (tilt factor {tilt:.3f})")
    print(f"analytic pF (Eq. 2.2)   : {analytic_pf:.4e}")
    print(f"sampled pF (tilted IS)  : {result.failure_probability:.4e} "
          f"+- {result.standard_error:.2e} "
          f"({100.0 * result.relative_error:.2f} % rel, "
          f"{args.samples} samples)")
    if args.pitch_cv != 1.0:
        print("  note: pitch CV != 1 — the analytic count model uses the "
              "ordinary-renewal boundary convention, the sampler the "
              "uniform-offset one; the tail magnifies that difference")
    print(f"Mmin                    : {m_min:.3e} minimum-size devices")
    print(f"chip yield, Eq. 2.3     : {analytic_yield:.4f}")
    print(f"chip yield, sampled pF  : {sampled.yield_value:.4f} "
          f"+- {sampled.standard_error:.4f}")
    print(f"chip yield, aligned 3.1 : {aligned.chip_yield:.4f} "
          f"+- {aligned.chip_yield_se:.4f} "
          f"(KR = {aligned.row_count:.3e} rows)")
    return 0


def _cmd_netlist(args: argparse.Namespace) -> int:
    from repro.cells.nangate45 import build_nangate45_library
    from repro.netlist.openrisc import build_openrisc_like_design
    from repro.netlist.verilog import export_structural_netlist

    library = build_nangate45_library()
    design = build_openrisc_like_design(library, scale=args.scale, seed=args.seed)
    text = export_structural_netlist(design)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {design.instance_count} instances to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CNFET yield enhancement via CNT correlation (DAC 2010 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, description in (
        ("wmin", _cmd_wmin, "baseline/optimised Wmin and penalties"),
        ("table1", _cmd_table1, "row failure probabilities (Table 1)"),
        ("table2", _cmd_table2, "library area penalties (Table 2)"),
        ("scaling", _cmd_scaling, "penalty versus technology node (Fig. 2.2b / 3.3)"),
    ):
        sub = subparsers.add_parser(name, help=description)
        _add_common_options(sub)
        sub.set_defaults(handler=handler)

    align = subparsers.add_parser(
        "align", help="apply the aligned-active restriction to a library"
    )
    _add_common_options(align)
    align.add_argument("--library", choices=("nangate45", "commercial65"),
                       default="nangate45")
    align.add_argument("--wmin-nm", type=float, default=None,
                       help="override the Wmin used for criticality")
    align.add_argument("--aligned-regions", type=int, default=1,
                       help="number of aligned active regions per polarity")
    align.add_argument("--physical-out", type=str, default=None,
                       help="write the modified physical (LEF-style) view here")
    align.add_argument("--liberty-out", type=str, default=None,
                       help="write the modified Liberty-style view here")
    align.set_defaults(handler=_cmd_align)

    rare = subparsers.add_parser(
        "rare-event",
        help="importance-sampled tail pF and its chip-yield consequence",
    )
    _add_common_options(rare)
    rare.add_argument("--target-pf", type=float, default=1e-9,
                      help="device failure probability to probe (default 1e-9)")
    rare.add_argument("--width-nm", type=float, default=None,
                      help="device width override (solved from --target-pf "
                           "when omitted)")
    rare.add_argument("--samples", type=int, default=100_000,
                      help="importance-sampling trial count (default 100000)")
    rare.add_argument("--tilt-factor", type=float, default=None,
                      help="mean-pitch stretch factor (auto when omitted)")
    rare.add_argument("--seed", type=int, default=2010, help="RNG seed")
    rare.set_defaults(handler=_cmd_rare_event)

    netlist = subparsers.add_parser(
        "netlist", help="generate the synthetic OpenRISC-like netlist"
    )
    netlist.add_argument("--scale", type=float, default=0.25,
                         help="netlist size scale factor (default 0.25)")
    netlist.add_argument("--seed", type=int, default=2010, help="generator seed")
    netlist.add_argument("--output", type=str, default=None,
                         help="output file (stdout when omitted)")
    netlist.set_defaults(handler=_cmd_netlist)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
