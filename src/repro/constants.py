"""Default parameter values used by the DAC 2010 reproduction.

Every constant here traces to a specific statement in the paper (section
numbers in the comments) or to one of the referenced prior works the paper
relies on.  They are defaults only: all public APIs accept explicit
parameters so studies can sweep away from the paper's operating point.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# CNT growth statistics (Sec. 2.1)
# --------------------------------------------------------------------------

DEFAULT_MEAN_PITCH_NM = 4.0
"""Mean inter-CNT pitch µS in nm (the paper adopts the optimised 4 nm value
from [Deng 07])."""

DEFAULT_PITCH_CV = 1.0
"""Default coefficient of variation (σS / µS) of the inter-CNT pitch.

[Zhang 09a] reports a large spread in measured inter-CNT spacing; a CV of
1.0 corresponds to exponentially distributed pitch, i.e. Poisson CNT counts,
and calibrates the (pm = 33 %, pRs = 30 %) curve of Fig. 2.1 to cross the
3e-9 requirement near W ≈ 155 nm.  See :mod:`repro.core.calibration`.
"""

DEFAULT_CNT_LENGTH_UM = 200.0
"""CNT length LCNT in µm for directional growth ([Kang 07], [Patil 09b],
quoted in Sec. 3.3)."""

# --------------------------------------------------------------------------
# CNT type / removal process (Sec. 2.1)
# --------------------------------------------------------------------------

DEFAULT_METALLIC_FRACTION = 1.0 / 3.0
"""Probability pm of a grown CNT being metallic (the commonly assumed 33 %)."""

DEFAULT_REMOVAL_PROB_METALLIC = 1.0
"""Conditional removal probability pRm of a metallic CNT.  The paper assumes
pRm ≈ 1 (> 99.99 % required for VLSI)."""

DEFAULT_REMOVAL_PROB_SEMICONDUCTING = 0.30
"""Conditional (inadvertent) removal probability pRs of a semiconducting CNT
for the pessimistic processing corner of Fig. 2.1."""

# --------------------------------------------------------------------------
# Circuit-level case study (Sec. 2.2, Sec. 3.3)
# --------------------------------------------------------------------------

DEFAULT_CHIP_TRANSISTOR_COUNT = 100_000_000
"""Number of transistors M in the chip-level case study."""

DEFAULT_MIN_SIZE_FRACTION = 0.33
"""Fraction of transistors that fall in the two smallest width bins of the
OpenRISC histogram (Fig. 2.2a), i.e. Mmin / M."""

DEFAULT_YIELD_TARGET = 0.90
"""Desired chip-level CNT-count-limited yield."""

DEFAULT_MIN_CNFET_DENSITY_PER_UM = 1.8
"""Average linear density Pmin-CNFET of small-width CNFETs along a placement
row, in FETs per µm (Sec. 3.3)."""

# --------------------------------------------------------------------------
# Technology nodes (Fig. 2.2b, Fig. 3.3)
# --------------------------------------------------------------------------

TECHNOLOGY_NODES_NM = (45, 32, 22, 16)
"""Technology nodes swept in the scaling analysis."""

REFERENCE_NODE_NM = 45
"""Node at which the width distribution is extracted; other nodes scale the
distribution linearly while the inter-CNT pitch stays constant."""

# --------------------------------------------------------------------------
# Paper-reported reference results (used by EXPERIMENTS.md tooling & tests)
# --------------------------------------------------------------------------

PAPER_WMIN_UNCORRELATED_NM = 155.0
"""Wmin at 45 nm without correlation (Sec. 2.2)."""

PAPER_WMIN_CORRELATED_NM = 103.0
"""Wmin at 45 nm with directional growth + aligned-active cells (Sec. 3.3)."""

PAPER_RELAXATION_FACTOR = 350.0
"""Headline relaxation of the device-level failure-probability requirement."""

PAPER_RELAXATION_FROM_GROWTH = 26.5
"""Portion of the relaxation attributed to directional growth alone
(Table 1: 5.3e-6 / 2.0e-7)."""

PAPER_RELAXATION_FROM_ALIGNMENT = 13.0
"""Portion of the relaxation attributed to the aligned-active layout style
(Table 1: 2.0e-7 / 1.5e-8)."""

PAPER_TABLE1_PRF_UNCORRELATED = 5.3e-6
PAPER_TABLE1_PRF_DIRECTIONAL = 2.0e-7
PAPER_TABLE1_PRF_ALIGNED = 1.5e-8

PAPER_NANGATE_CELL_COUNT = 134
PAPER_COMMERCIAL65_CELL_COUNT = 775
PAPER_NANGATE_CELLS_WITH_PENALTY = 4
PAPER_AOI222_WIDTH_INCREASE = 0.09
"""Cell width increase of AOI222_X1 after aligned-active enforcement."""

PAPER_TABLE2_COMMERCIAL65_PENALTY_FRACTION = 0.20
PAPER_TABLE2_WMIN_ONE_REGION_NM = 107.0
PAPER_TABLE2_WMIN_TWO_REGION_NM = 112.0
PAPER_TABLE2_WMIN_NANGATE_NM = 103.0
