"""Core yield engine — the paper's primary contribution.

This package implements the analytical machinery of the DAC 2010 paper:

* :mod:`repro.core.count_model` — CNT count distributions Prob{N(W)}
  (renewal, Poisson, empirical).
* :mod:`repro.core.failure` — device-level CNT count failure probability
  pF(W) (Eq. 2.2) and the processing-corner curves of Fig. 2.1.
* :mod:`repro.core.circuit_yield` — circuit-level yield (Eq. 2.3) and its
  approximations.
* :mod:`repro.core.wmin` — the minimum upsizing threshold Wmin
  (Eq. 2.4 / 2.5).
* :mod:`repro.core.correlation` — row-based yield under directional growth
  and aligned-active layout (Eq. 3.1 / 3.2), including the numerically
  evaluated non-aligned case and the resulting relaxation factor (Table 1).
* :mod:`repro.core.upsizing` — the upsizing operator and the gate-capacitance
  penalty metric (Fig. 2.2b).
* :mod:`repro.core.scaling` — technology scaling of the width distribution
  (Fig. 2.2b / Fig. 3.3).
* :mod:`repro.core.calibration` — the calibrated default operating point.
* :mod:`repro.core.optimizer` — the end-to-end processing/design
  co-optimization flow.
* :mod:`repro.core.coopt` — the Pareto yield-vs-cost search over joint
  processing and selective-upsizing knobs (bound-pruned, service-backed).
"""

from repro.core.count_model import (
    CountModel,
    RenewalCountModel,
    PoissonCountModel,
    EmpiricalCountModel,
    count_model_from_pitch,
)
from repro.core.failure import (
    CNFETFailureModel,
    ProcessingCorner,
    FIG2_1_CORNERS,
)
from repro.core.circuit_yield import (
    chip_yield,
    chip_yield_from_failure_probabilities,
    yield_loss,
    required_device_failure_probability,
)
from repro.core.wmin import WminSolver, WminResult
from repro.core.correlation import (
    LayoutScenario,
    CorrelationParameters,
    RowYieldModel,
    RowYieldResult,
    relaxation_factor,
)
from repro.core.upsizing import UpsizingAnalysis, UpsizingResult, upsize_widths
from repro.core.scaling import TechnologyScaler, ScalingStudy, ScalingPoint
from repro.core.calibration import CalibratedSetup, default_setup
from repro.core.optimizer import CoOptimizationFlow, CoOptimizationReport
from repro.core.coopt import (
    CandidatePoint,
    CoOptResult,
    CoOptValidation,
    ParetoCoOptimizer,
    ProcessPoint,
    pareto_front,
    process_grid,
)

__all__ = [
    "CountModel",
    "RenewalCountModel",
    "PoissonCountModel",
    "EmpiricalCountModel",
    "count_model_from_pitch",
    "CNFETFailureModel",
    "ProcessingCorner",
    "FIG2_1_CORNERS",
    "chip_yield",
    "chip_yield_from_failure_probabilities",
    "yield_loss",
    "required_device_failure_probability",
    "WminSolver",
    "WminResult",
    "LayoutScenario",
    "CorrelationParameters",
    "RowYieldModel",
    "RowYieldResult",
    "relaxation_factor",
    "UpsizingAnalysis",
    "UpsizingResult",
    "upsize_widths",
    "TechnologyScaler",
    "ScalingStudy",
    "ScalingPoint",
    "CalibratedSetup",
    "default_setup",
    "CoOptimizationFlow",
    "CoOptimizationReport",
    "CandidatePoint",
    "CoOptResult",
    "CoOptValidation",
    "ParetoCoOptimizer",
    "ProcessPoint",
    "pareto_front",
    "process_grid",
]
