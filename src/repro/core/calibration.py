"""Calibrated default operating point of the reproduction.

The paper's quantitative anchors at the 45 nm node are:

* the (pm = 33 %, pRs = 30 %) curve of Fig. 2.1 crosses the per-device
  budget (1 - 0.9) / 33e6 ≈ 3e-9 near W ≈ 155 nm, and
* after the ≈350X relaxation it crosses ≈1.1e-6 near W ≈ 103 nm.

With the paper's mean pitch µS = 4 nm these anchors pin down how much CNT
density variation the count model must carry.  A Poisson count model
(exponential pitch, CV = 1) gives

``pF(W) = exp(-(W / 4 nm) · (1 - pf))``, pf = 0.531

which crosses 3e-9 at W ≈ 167 nm and 1.05e-6 at W ≈ 118 nm — within ~10 % of
the paper's widths and with the correct exponential shape and ~1.5X ratio.
This is the default calibration.  The :class:`CalibratedSetup` object bundles
the calibrated count model, processing corner, circuit parameters and
correlation parameters so examples, tests and benchmarks all start from the
same place and record the same assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constants import (
    DEFAULT_CHIP_TRANSISTOR_COUNT,
    DEFAULT_CNT_LENGTH_UM,
    DEFAULT_MEAN_PITCH_NM,
    DEFAULT_MIN_CNFET_DENSITY_PER_UM,
    DEFAULT_MIN_SIZE_FRACTION,
    DEFAULT_PITCH_CV,
    DEFAULT_YIELD_TARGET,
)
from repro.core.correlation import CorrelationParameters, RowYieldModel
from repro.core.count_model import CountModel, count_model_from_cv
from repro.core.failure import CNFETFailureModel, ProcessingCorner, FIG2_1_CORNERS
from repro.core.wmin import WminSolver
from repro.units import ensure_positive, ensure_probability


@dataclass
class CalibratedSetup:
    """Everything needed to rerun the paper's 45 nm case study.

    Attributes
    ----------
    mean_pitch_nm, pitch_cv:
        Inter-CNT pitch statistics (µS, σS/µS) defining the count model.
    corner:
        Processing corner (pm, pRs) used for the Wmin analysis; defaults to
        the paper's pessimistic pm = 33 %, pRs = 30 %.
    chip_transistor_count:
        Total transistor count M of the case-study chip.
    min_size_fraction:
        Fraction of devices in the minimum-size bins (Mmin / M ≈ 33 %).
    yield_target:
        Desired chip yield.
    correlation:
        LCNT / Pmin-CNFET parameters for the row yield model.
    """

    mean_pitch_nm: float = DEFAULT_MEAN_PITCH_NM
    pitch_cv: float = DEFAULT_PITCH_CV
    corner: ProcessingCorner = field(default_factory=lambda: FIG2_1_CORNERS[0])
    chip_transistor_count: int = DEFAULT_CHIP_TRANSISTOR_COUNT
    min_size_fraction: float = DEFAULT_MIN_SIZE_FRACTION
    yield_target: float = DEFAULT_YIELD_TARGET
    correlation: CorrelationParameters = field(
        default_factory=lambda: CorrelationParameters(
            cnt_length_um=DEFAULT_CNT_LENGTH_UM,
            min_cnfet_density_per_um=DEFAULT_MIN_CNFET_DENSITY_PER_UM,
        )
    )

    def __post_init__(self) -> None:
        ensure_positive(self.mean_pitch_nm, "mean_pitch_nm")
        if self.pitch_cv < 0:
            raise ValueError("pitch_cv must be non-negative")
        ensure_positive(self.chip_transistor_count, "chip_transistor_count")
        ensure_probability(self.min_size_fraction, "min_size_fraction")
        ensure_probability(self.yield_target, "yield_target")
        self._count_model: Optional[CountModel] = None

    # ------------------------------------------------------------------
    # Derived building blocks
    # ------------------------------------------------------------------

    @property
    def min_size_device_count(self) -> float:
        """Mmin — the number of minimum-size devices."""
        return self.chip_transistor_count * self.min_size_fraction

    @property
    def count_model(self) -> CountModel:
        """The calibrated CNT count model (cached)."""
        if self._count_model is None:
            self._count_model = count_model_from_cv(self.mean_pitch_nm, self.pitch_cv)
        return self._count_model

    @property
    def failure_model(self) -> CNFETFailureModel:
        """Device failure model at the configured processing corner."""
        return CNFETFailureModel.from_corner(self.count_model, self.corner)

    def failure_model_for(self, corner: ProcessingCorner) -> CNFETFailureModel:
        """Device failure model for an arbitrary processing corner."""
        return CNFETFailureModel.from_corner(self.count_model, corner)

    @property
    def wmin_solver(self) -> WminSolver:
        """Wmin solver at the configured yield target."""
        return WminSolver(self.failure_model, self.yield_target)

    @property
    def row_yield_model(self) -> RowYieldModel:
        """Row yield model with the configured correlation parameters."""
        return RowYieldModel(parameters=self.correlation, count_model=self.count_model)

    # ------------------------------------------------------------------
    # Headline quantities
    # ------------------------------------------------------------------

    def required_pf(self, relaxation_factor: float = 1.0) -> float:
        """Device-level failure budget (1 - Yield)/Mmin, optionally relaxed."""
        return self.wmin_solver.required_pf(
            self.min_size_device_count, relaxation_factor
        )

    def relaxation_factor(self) -> float:
        """Correlation relaxation MRmin-equivalent for this setup (≈350X)."""
        return self.row_yield_model.relaxation_factor(self.required_pf())

    def wmin_uncorrelated_nm(self) -> float:
        """Wmin without any correlation benefit (paper: ≈155 nm)."""
        return self.wmin_solver.solve_simplified(self.min_size_device_count).wmin_nm

    def wmin_correlated_nm(self) -> float:
        """Wmin with directional growth + aligned-active cells (paper: ≈103 nm)."""
        return self.wmin_solver.solve_simplified(
            self.min_size_device_count,
            relaxation_factor=self.relaxation_factor(),
        ).wmin_nm


def default_setup() -> CalibratedSetup:
    """The calibrated 45 nm setup used across examples, tests and benchmarks."""
    return CalibratedSetup()
