"""Circuit-level CNT-count-limited yield — Eq. 2.3 and its approximations.

With M independent CNFETs of widths W_1 ... W_M, the chip survives only when
every device survives:

``Yield = Π_i (1 - pF(W_i)) ≈ 1 - Σ_i pF(W_i)``        (Eq. 2.3)

The approximation holds because individual pF values are tiny (1e-6 or
smaller) while M is huge (1e8), so the sum — not any single term — carries
the yield loss.  This module implements both the exact product (in log space
for numerical robustness) and the first-order approximation, plus the
"required device failure probability" helper used by the Wmin derivation
(Eq. 2.5): for Mmin minimum-size devices to jointly hit a yield target,

``pF(Wt) <= (1 - Yield_desired) / Mmin``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Union

import numpy as np

from repro.core.failure import CNFETFailureModel
from repro.units import ensure_probability


def chip_yield_from_failure_probabilities(
    failure_probabilities: Iterable[float],
    counts: Optional[Iterable[float]] = None,
    exact: bool = True,
) -> float:
    """Chip yield given per-device failure probabilities (Eq. 2.3).

    Parameters
    ----------
    failure_probabilities:
        pF value per device, or per device *class* when ``counts`` is given.
    counts:
        Optional multiplicities: ``counts[i]`` devices share failure
        probability ``failure_probabilities[i]``.  This is how 1e8-transistor
        chips are evaluated without materialising 1e8 numbers.
    exact:
        If True use the exact product Π (1 - pF)^count computed in log space;
        otherwise the first-order approximation 1 - Σ count·pF (clamped at 0).
    """
    p = np.asarray(list(failure_probabilities), dtype=float)
    if p.size == 0:
        return 1.0
    if np.any((p < 0) | (p > 1)):
        raise ValueError("failure probabilities must lie in [0, 1]")
    if counts is None:
        c = np.ones_like(p)
    else:
        c = np.asarray(list(counts), dtype=float)
        if c.shape != p.shape:
            raise ValueError(
                f"counts shape {c.shape} does not match probabilities shape {p.shape}"
            )
        if np.any(c < 0):
            raise ValueError("counts must be non-negative")

    if exact:
        if np.any((p == 1.0) & (c > 0)):
            return 0.0
        log_yield = float(np.sum(c * np.log1p(-p)))
        return math.exp(log_yield)
    expected_failures = float(np.sum(c * p))
    return max(0.0, 1.0 - expected_failures)


def chip_yield(
    widths_nm: Union[Iterable[float], np.ndarray],
    failure_model: CNFETFailureModel,
    counts: Optional[Iterable[float]] = None,
    exact: bool = True,
) -> float:
    """Chip yield for a width population under a device failure model.

    ``widths_nm`` may enumerate every device or, together with ``counts``,
    describe a histogram of widths (the natural form for a synthesized
    design's sizing distribution).
    """
    widths = np.asarray(list(widths_nm), dtype=float)
    probabilities = failure_model.failure_probabilities(widths)
    return chip_yield_from_failure_probabilities(probabilities, counts=counts, exact=exact)


def yield_loss(yield_value: float) -> float:
    """Convenience: 1 - Yield."""
    yield_value = ensure_probability(yield_value, "yield_value")
    return 1.0 - yield_value


def expected_failing_devices(
    failure_probabilities: Iterable[float],
    counts: Optional[Iterable[float]] = None,
) -> float:
    """Expected number of failing devices, Σ count·pF.

    When this expectation is much smaller than 1 the chip yield is high; the
    paper's yield budget of 10 % corresponds to ≈ 0.105 expected failures.
    """
    p = np.asarray(list(failure_probabilities), dtype=float)
    if counts is None:
        c = np.ones_like(p)
    else:
        c = np.asarray(list(counts), dtype=float)
    return float(np.sum(c * p))


def required_device_failure_probability(
    yield_target: float,
    device_count: float,
    exact: bool = False,
) -> float:
    """Device-level pF budget that lets ``device_count`` devices hit a yield.

    This is the horizontal line drawn on Fig. 2.1: for Mmin minimum-size
    devices sharing the same failure probability,

    * first-order (the paper's Eq. 2.5): ``pF <= (1 - Yield) / Mmin``;
    * exact: ``pF <= 1 - Yield^(1 / Mmin)``.

    The two agree to within a fraction of a percent at the paper's operating
    point (Yield = 0.9, Mmin = 3.3e7), but the exact form is available for
    aggressive yield targets.
    """
    yield_target = ensure_probability(yield_target, "yield_target")
    if device_count <= 0:
        raise ValueError(f"device_count must be positive, got {device_count}")
    if yield_target == 1.0:
        return 0.0
    if exact:
        return 1.0 - yield_target ** (1.0 / device_count)
    return (1.0 - yield_target) / device_count


def yield_from_uniform_failure_probability(
    device_failure_probability: float, device_count: float, exact: bool = True
) -> float:
    """Yield of ``device_count`` identical devices with the given pF."""
    p = ensure_probability(device_failure_probability, "device_failure_probability")
    if device_count < 0:
        raise ValueError("device_count must be non-negative")
    if exact:
        if p == 1.0 and device_count > 0:
            return 0.0
        return math.exp(device_count * math.log1p(-p))
    return max(0.0, 1.0 - device_count * p)


def yield_from_uniform_failure_probability_array(
    failure_probabilities: np.ndarray,
    device_count: Union[float, np.ndarray],
    exact: bool = True,
) -> np.ndarray:
    """Vectorised :func:`yield_from_uniform_failure_probability`.

    The batched query-serving layer pushes whole arrays of interpolated
    failure probabilities through Eq. 2.3 / 3.1 with this hook; the
    device count may be a scalar or broadcast elementwise.
    """
    p = np.asarray(failure_probabilities, dtype=float)
    m = np.asarray(device_count, dtype=float)
    if p.size and (np.any(p < 0) | np.any(p > 1)):
        raise ValueError("failure probabilities must lie in [0, 1]")
    if m.size and np.any(m < 0):
        raise ValueError("device_count must be non-negative")
    if exact:
        with np.errstate(divide="ignore", invalid="ignore"):
            log_yield = m * np.log1p(-p)
        log_yield = np.where(np.isnan(log_yield), 0.0, log_yield)
        return np.where((p >= 1.0) & (m > 0), 0.0, np.exp(log_yield))
    return np.maximum(0.0, 1.0 - m * p)


@dataclass(frozen=True)
class YieldEstimate:
    """A chip yield derived from a *sampled* failure probability.

    Carries the delta-method standard error of the propagated Monte Carlo
    uncertainty, so rare-event tail estimates (pF ≈ 1e-9 from the
    importance sampler) can be compared against the Eq. 2.3 closed forms
    *within their reported error* instead of eyeballing absolute numbers.
    """

    yield_value: float
    standard_error: float
    device_count: float
    failure_probability: float
    failure_probability_se: float

    @property
    def yield_loss(self) -> float:
        """1 - yield."""
        return 1.0 - self.yield_value

    @property
    def loss_relative_error(self) -> float:
        """Standard error relative to the yield *loss* (the tail quantity)."""
        if self.yield_loss == 0:
            return float("nan")
        return self.standard_error / self.yield_loss

    def agrees_with(self, reference_yield: float, n_sigma: float = 4.0) -> bool:
        """True when ``reference_yield`` lies within ``n_sigma`` errors."""
        if self.standard_error == 0:
            return self.yield_value == reference_yield
        return (
            abs(self.yield_value - reference_yield)
            <= n_sigma * self.standard_error
        )


def chip_yield_from_failure_estimate(
    failure_probability: float,
    standard_error: float,
    device_count: float,
    exact: bool = False,
) -> YieldEstimate:
    """Chip yield (Eq. 2.3) from an *estimated* uniform device pF.

    ``exact=False`` (default) applies the paper's first-order form
    ``1 - M·pF`` whose propagated standard error is simply ``M·SE``;
    ``exact=True`` uses the product form ``(1 - pF)^M`` with the
    delta-method error ``M·(1-pF)^(M-1)·SE``.  The two coincide to within
    a fraction of a percent at the paper's operating point (M = 1e8,
    pF = 1e-9).
    """
    p = ensure_probability(failure_probability, "failure_probability")
    if standard_error < 0:
        raise ValueError("standard_error must be non-negative")
    if device_count < 0:
        raise ValueError("device_count must be non-negative")
    if exact:
        yield_value = yield_from_uniform_failure_probability(
            p, device_count, exact=True
        )
        if p < 1.0:
            slope = device_count * math.exp(
                (device_count - 1.0) * math.log1p(-p)
            )
        else:
            slope = 0.0
        se = slope * standard_error
    else:
        yield_value = max(0.0, 1.0 - device_count * p)
        se = device_count * standard_error
    return YieldEstimate(
        yield_value=yield_value,
        standard_error=se,
        device_count=float(device_count),
        failure_probability=p,
        failure_probability_se=float(standard_error),
    )
