"""Process/design co-optimization — a Pareto yield-vs-cost search.

The paper's endgame is a *decision*: choose processing conditions and a
(selective) upsizing plan that hit a chip-yield target (Eq. 2.3) at the
smallest capacitance penalty (Fig. 2.2b).  Following the rapid
co-optimization methodology of Hills et al., this module searches jointly
over

* **processing knobs** — CNT density ρ, inter-CNT pitch family (via its
  CV), processing corner (pm, pRs), metallic-removal efficiency eta (the
  shorts knob of :mod:`repro.device.shorts`), CNT correlation length
  LCNT and the growth-direction misalignment spec, and
* **design knobs** — per-width-class upsizing thresholds, generalising the
  uniform ``U_Wt`` operator of :mod:`repro.core.upsizing` to ECO-style
  selective upsizing of only the worst-yield classes.

The inner loop never runs Monte Carlo: candidate points are answered by
batched :class:`repro.serving.YieldService` queries against precomputed
device-pF surfaces, whose guaranteed error bounds drive dominance pruning
— a candidate whose *upper-bound* chip yield already misses the target is
rejected outright, one whose *lower bound* meets it is accepted outright,
and only the straddlers escalate to the exact closed-form evaluation.
Because the chip log-yield is additive across width classes, the full
cross product of per-class upsizing levels costs one service query per
(class, level) plus an outer-sum reduction — millions of candidate
evaluations per second on one core.

Winners are validated end-to-end: a placed OpenRISC-like design is
simulated with :class:`repro.montecarlo.chip_sim.ChipMonteCarlo` at the
winning process point (the expected failing-device count is compared
against the serving tier's prediction, which is unbiased under track
correlation because expectation is linear) and the joint
functional/timing yield is measured with
:class:`repro.timing.TimingMonteCarlo`.

Everything is deterministic: candidate enumeration is a pure function of
the configuration, Monte Carlo validation draws from spawn-keyed
:class:`numpy.random.SeedSequence` streams, and the returned front is
bitwise identical across reruns at the same seed and across worker
counts.
"""

from __future__ import annotations

import functools
import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.mispositioned import MisalignmentImpactModel
from repro.core.calibration import CalibratedSetup
from repro.core.count_model import count_model_from_pitch
from repro.core.failure import CNFETFailureModel, FIG2_1_CORNERS, ProcessingCorner
from repro.core.optimizer import CoOptimizationFlow
from repro.units import ensure_positive, ensure_probability

#: Nominal CNT density of the paper's calibration (µS = 4 nm → 250 /µm).
NOMINAL_DENSITY_PER_UM = 250.0


@dataclass(frozen=True)
class ProcessPoint:
    """One processing condition of the joint search space.

    Attributes
    ----------
    cnt_density_per_um:
        CNT density ρ (tubes/µm); the mean inter-CNT pitch is 1000/ρ nm.
    pitch_cv:
        Coefficient of variation of the inter-CNT pitch (1.0 = the
        calibrated exponential family, 0.0 = deterministic pitch).
    corner:
        Processing corner (pm, pRs) — see :data:`repro.core.FIG2_1_CORNERS`.
    cnt_length_um:
        CNT correlation length LCNT (growth knob of Eq. 3.2).
    misalignment_sigma_deg:
        Growth-direction misalignment spec; truncates the usable
        correlation length via the Sec. 3 band geometry.
    metallic_removal_eta:
        Conditional metallic-removal probability ``eta`` of the removal
        step.  The paper's pRm = 1 assumption (the default) leaves no
        surviving shorts; values below 1 activate the metallic-short
        failure mode of :mod:`repro.device.shorts` with per-tube short
        probability ``p_m · (1 - eta)``.
    """

    cnt_density_per_um: float = NOMINAL_DENSITY_PER_UM
    pitch_cv: float = 1.0
    corner: ProcessingCorner = field(default_factory=lambda: FIG2_1_CORNERS[0])
    cnt_length_um: float = 200.0
    misalignment_sigma_deg: float = 0.0
    metallic_removal_eta: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.cnt_density_per_um, "cnt_density_per_um")
        if self.pitch_cv < 0:
            raise ValueError("pitch_cv must be non-negative")
        ensure_positive(self.cnt_length_um, "cnt_length_um")
        if self.misalignment_sigma_deg < 0:
            raise ValueError("misalignment_sigma_deg must be non-negative")
        ensure_probability(self.metallic_removal_eta, "metallic_removal_eta")

    @property
    def mean_pitch_nm(self) -> float:
        """Mean inter-CNT pitch µS = 1000/ρ in nm."""
        return 1000.0 / self.cnt_density_per_um

    @property
    def short_probability(self) -> float:
        """Per-tube surviving-short probability ``q = p_m · (1 - eta)``."""
        return self.corner.metallic_fraction * (1.0 - self.metallic_removal_eta)

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable summary of the knob values."""
        return {
            "cnt_density_per_um": self.cnt_density_per_um,
            "pitch_cv": self.pitch_cv,
            "corner": self.corner.name,
            "cnt_length_um": self.cnt_length_um,
            "misalignment_sigma_deg": self.misalignment_sigma_deg,
            "metallic_removal_eta": self.metallic_removal_eta,
        }


def process_grid(
    densities_per_um: Sequence[float] = (200.0, NOMINAL_DENSITY_PER_UM, 320.0),
    pitch_cvs: Sequence[float] = (1.0,),
    corners: Sequence[ProcessingCorner] = (),
    cnt_lengths_um: Sequence[float] = (200.0,),
    misalignments_deg: Sequence[float] = (0.0,),
    removal_etas: Sequence[float] = (1.0,),
) -> Tuple[ProcessPoint, ...]:
    """Cartesian grid of :class:`ProcessPoint` in deterministic order.

    The order is the :func:`itertools.product` order of the argument
    sequences, so two calls with identical arguments enumerate identical
    candidate indices — part of the bitwise-determinism contract.
    ``removal_etas`` is the last (fastest-varying) factor, so existing
    grids keep their enumeration order at the default ``(1.0,)``.
    """
    corner_list = tuple(corners) or (FIG2_1_CORNERS[0],)
    return tuple(
        ProcessPoint(
            cnt_density_per_um=float(rho),
            pitch_cv=float(cv),
            corner=corner,
            cnt_length_um=float(length),
            misalignment_sigma_deg=float(angle),
            metallic_removal_eta=float(eta),
        )
        for rho, cv, corner, length, angle, eta in itertools.product(
            densities_per_um, pitch_cvs, corner_list,
            cnt_lengths_um, misalignments_deg, removal_etas,
        )
    )


@dataclass(frozen=True)
class CandidatePoint:
    """One evaluated (process, per-class upsizing) configuration.

    ``thresholds_nm`` are the *applied* per-class widths after upsizing
    (``max(W_c, t_c)``), in the order of the design's width classes.
    ``chip_yield`` is the service point estimate, replaced by the exact
    closed-form value when the candidate straddled the target and was
    escalated (``escalated=True``); the lower/upper bounds always come
    from the surface's guaranteed error channel.
    """

    process: ProcessPoint
    thresholds_nm: Tuple[float, ...]
    capacitance_penalty: float
    chip_yield: float
    yield_lower: float
    yield_upper: float
    relaxation_factor: float
    escalated: bool = False

    @property
    def penalty_percent(self) -> float:
        """Penalty as a percentage (the unit of Fig. 2.2b)."""
        return 100.0 * self.capacitance_penalty

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable summary of the candidate."""
        return {
            "process": self.process.describe(),
            "thresholds_nm": list(self.thresholds_nm),
            "capacitance_penalty": self.capacitance_penalty,
            "chip_yield": self.chip_yield,
            "yield_lower": self.yield_lower,
            "yield_upper": self.yield_upper,
            "relaxation_factor": self.relaxation_factor,
            "escalated": self.escalated,
        }


@dataclass(frozen=True)
class CoOptValidation:
    """End-to-end Monte Carlo validation of one front candidate.

    A placed OpenRISC-like design is fabricated ``n_trials`` times at the
    candidate's process point.  ``z_score`` compares the Monte Carlo mean
    failing-device count against the serving tier's prediction (the sum
    of per-class pF over the placement's width classes — unbiased under
    track correlation because expectation is linear).  The timing fields
    are the joint functional/parametric yields of
    :class:`repro.timing.TimingMonteCarlo` at the same process point.
    """

    candidate: CandidatePoint
    n_trials: int
    device_count: int
    mc_chip_yield: float
    mc_mean_failing_devices: float
    mc_failing_devices_se: float
    predicted_mean_failing_devices: float
    z_score: float
    t_clk_ps: float
    functional_yield: float
    timing_yield: float
    combined_yield: float

    def describe(self) -> Dict[str, object]:
        """JSON-serialisable summary of the validation run."""
        return {
            "process": self.candidate.process.describe(),
            "n_trials": self.n_trials,
            "device_count": self.device_count,
            "mc_chip_yield": self.mc_chip_yield,
            "mc_mean_failing_devices": self.mc_mean_failing_devices,
            "mc_failing_devices_se": self.mc_failing_devices_se,
            "predicted_mean_failing_devices": self.predicted_mean_failing_devices,
            "z_score": self.z_score,
            "t_clk_ps": self.t_clk_ps,
            "functional_yield": self.functional_yield,
            "timing_yield": self.timing_yield,
            "combined_yield": self.combined_yield,
        }


@dataclass(frozen=True)
class CoOptResult:
    """Outcome of one Pareto co-optimization run.

    ``front`` is sorted by ascending capacitance penalty (and strictly
    descending yield — the Pareto property); ``best`` is the cheapest
    feasible configuration, ``None`` when nothing meets the target.
    ``uniform_penalty`` is the uniform-upsizing reference produced by
    :class:`repro.core.optimizer.CoOptimizationFlow` at the same yield
    target (with the correlation benefit); ``uniform_baseline_penalty``
    the Sec. 2 no-correlation reference.
    """

    yield_target: float
    front: Tuple[CandidatePoint, ...]
    best: Optional[CandidatePoint]
    uniform_wmin_nm: float
    uniform_penalty: float
    uniform_baseline_wmin_nm: float
    uniform_baseline_penalty: float
    candidates_evaluated: int
    candidates_pruned: int
    candidates_escalated: int
    candidates_feasible: int
    process_point_count: int
    surface_build_seconds: float
    inner_loop_seconds: float
    validations: Tuple[CoOptValidation, ...] = ()

    @property
    def evaluations_per_second(self) -> float:
        """Candidate evaluations per second through the surface tier."""
        if self.inner_loop_seconds <= 0.0:
            return float("inf")
        return self.candidates_evaluated / self.inner_loop_seconds

    @property
    def meets_target(self) -> bool:
        """Whether at least one configuration satisfies the yield target."""
        return self.best is not None

    @property
    def beats_uniform(self) -> bool:
        """Whether the best penalty is no worse than uniform upsizing."""
        return (
            self.best is not None
            and self.best.capacitance_penalty <= self.uniform_penalty + 1e-12
        )

    def summary_lines(self) -> List[str]:
        """Human-readable summary used by the CLI and benchmarks."""
        lines = [
            f"yield target              : {self.yield_target:.2%}",
            f"process points            : {self.process_point_count}",
            f"candidates evaluated      : {self.candidates_evaluated} "
            f"({self.candidates_pruned} pruned by upper bound, "
            f"{self.candidates_escalated} escalated to exact)",
            f"feasible candidates       : {self.candidates_feasible}",
            f"inner-loop throughput     : {self.evaluations_per_second:.3e} "
            "candidates/sec",
            f"uniform upsizing penalty  : {100.0 * self.uniform_penalty:.2f} % "
            f"(Wt = {self.uniform_wmin_nm:.1f} nm, with correlation)",
            f"Pareto front              : {len(self.front)} configuration(s)",
        ]
        for point in self.front:
            knobs = point.process
            lines.append(
                f"  penalty {point.penalty_percent:6.2f} %  "
                f"yield {point.chip_yield:.6f}  "
                f"rho {knobs.cnt_density_per_um:5.1f}/um  "
                f"cv {knobs.pitch_cv:.2f}  "
                f"thresholds {'/'.join(f'{t:.0f}' for t in point.thresholds_nm)} nm"
                + ("  [exact]" if point.escalated else "")
            )
        if self.best is None:
            lines.append("no configuration meets the yield target")
        for validation in self.validations:
            lines.append(
                f"validated: MC yield {validation.mc_chip_yield:.4f}, "
                f"failing devices {validation.mc_mean_failing_devices:.3f} "
                f"(predicted {validation.predicted_mean_failing_devices:.3f}, "
                f"z = {validation.z_score:+.2f}), "
                f"timing yield {validation.timing_yield:.4f}"
            )
        return lines


def pareto_front(
    penalties: np.ndarray, yields: np.ndarray
) -> np.ndarray:
    """Indices of the Pareto-optimal (min penalty, max yield) points.

    Points are scanned in (penalty ascending, yield descending) order
    with a stable sort; a point joins the front only when its yield
    strictly exceeds every cheaper point's yield, so duplicates resolve
    deterministically to the first occurrence.
    """
    penalties = np.asarray(penalties, dtype=float)
    yields = np.asarray(yields, dtype=float)
    if penalties.shape != yields.shape:
        raise ValueError("penalties and yields must have matching shapes")
    if penalties.size == 0:
        return np.empty(0, dtype=np.intp)
    order = np.lexsort((-yields, penalties))
    keep: List[int] = []
    best_yield = -np.inf
    for idx in order:
        if yields[idx] > best_yield:
            keep.append(int(idx))
            best_yield = yields[idx]
    return np.asarray(keep, dtype=np.intp)


@dataclass(frozen=True)
class _ProcessEvaluation:
    """Per-process-point inner-loop bookkeeping (front + counters)."""

    penalties: np.ndarray
    log_yields: np.ndarray
    front_flat: np.ndarray
    shape: Tuple[int, ...]
    yield_lower: np.ndarray
    yield_upper: np.ndarray
    escalated_mask: np.ndarray
    n_combos: int
    n_pruned: int
    n_escalated: int
    n_feasible: int


class ParetoCoOptimizer:
    """Deterministic Pareto driver over processing and design knobs.

    Parameters
    ----------
    setup:
        Calibrated setup supplying the yield target default, the design
        correlation parameters (Pmin-CNFET) and the Mmin bookkeeping.
    widths_nm, counts:
        The design's transistor-width histogram (bin centres and
        multiplicities), e.g. from
        :func:`repro.netlist.openrisc.openrisc_width_histogram`.
    yield_target:
        Chip-yield constraint (Eq. 2.3); defaults to ``setup.yield_target``.
    process_points:
        Processing conditions to search; defaults to a small density grid
        around the nominal point (:func:`process_grid`).
    extra_levels:
        Number of additional upsizing levels spaced geometrically between
        the smallest class width and the uniform baseline Wmin.  The
        ladder always contains each class's own width (no upsizing) and
        the two uniform Wmin values, so the uniform-upsizing plan is
        always representable — the search can never do worse than it.
    max_combos:
        Guard on the per-process-point combination count (the outer-sum
        arrays are materialised densely).
    service:
        Optional shared :class:`repro.serving.YieldService`; a private
        in-memory instance is created when omitted.
    grid_points:
        (width, density) node counts of the swept device-pF surfaces.
    surface_method, surface_mc_samples:
        Evaluation method of the swept surfaces (``"auto"`` resolves to
        the closed form whenever the pitch family supports it, which
        makes the bounds tight enough that escalation almost never
        fires; ``"tilted"`` produces statistical Monte Carlo bounds and
        exercises the bound-straddling escalation path).
    seed:
        Root seed for the spawn-keyed validation streams (the inner loop
        itself is deterministic and consumes no randomness).
    """

    def __init__(
        self,
        setup: Optional[CalibratedSetup] = None,
        widths_nm: Optional[Sequence[float]] = None,
        counts: Optional[Sequence[float]] = None,
        yield_target: Optional[float] = None,
        process_points: Optional[Sequence[ProcessPoint]] = None,
        extra_levels: int = 4,
        max_combos: int = 200_000,
        service: Optional[object] = None,
        grid_points: Tuple[int, int] = (17, 9),
        surface_method: str = "auto",
        surface_mc_samples: int = 20_000,
        seed: int = 20100613,
    ) -> None:
        self.setup = setup or CalibratedSetup()
        if widths_nm is None:
            raise ValueError("widths_nm is required (the design's width histogram)")
        self.widths_nm = np.asarray(widths_nm, dtype=float)
        if self.widths_nm.size == 0:
            raise ValueError("widths_nm must not be empty")
        if np.any(self.widths_nm <= 0):
            raise ValueError("all widths must be strictly positive")
        if counts is None:
            self.counts = np.ones_like(self.widths_nm)
        else:
            self.counts = np.asarray(counts, dtype=float)
            if self.counts.shape != self.widths_nm.shape:
                raise ValueError("counts must match widths_nm in shape")
            if np.any(self.counts < 0):
                raise ValueError("counts must be non-negative")
        if self.counts.sum() <= 0:
            raise ValueError("the design must contain at least one device")
        target = self.setup.yield_target if yield_target is None else yield_target
        self.yield_target = ensure_probability(target, "yield_target")
        if self.yield_target >= 1.0:
            raise ValueError("a yield target of exactly 1.0 cannot be met")
        if process_points is None:
            self.process_points = process_grid()
        else:
            self.process_points = tuple(process_points)
        if not self.process_points:
            raise ValueError("process_points must not be empty")
        if extra_levels < 0:
            raise ValueError("extra_levels must be non-negative")
        self.extra_levels = int(extra_levels)
        if max_combos < 1:
            raise ValueError("max_combos must be at least 1")
        self.max_combos = int(max_combos)
        self.service = service
        w_points, d_points = grid_points
        if w_points < 2 or d_points < 2:
            raise ValueError("grid_points must be at least (2, 2)")
        self.grid_points = (int(w_points), int(d_points))
        if surface_method not in ("auto", "closed_form", "tilted"):
            raise ValueError(f"unknown surface method {surface_method!r}")
        self.surface_method = surface_method
        self.surface_mc_samples = int(surface_mc_samples)
        self.seed = int(seed)

        # The uniform-upsizing reference at the *same* target: the flow's
        # simplified Eq. 2.5 thresholds seed the level ladder, anchor the
        # misalignment band geometry and provide the penalty baseline.
        self._flow = CoOptimizationFlow(
            setup=replace(self.setup, yield_target=self.yield_target),
            widths_nm=self.widths_nm,
            counts=self.counts,
        )
        self._uniform_baseline = self._flow.baseline_wmin()
        self._uniform_optimized = self._flow.optimized_wmin()
        self._levels = self._build_levels()
        self._surfaces: Dict[Tuple[float, float], object] = {}

    # ------------------------------------------------------------------
    # Search-space construction
    # ------------------------------------------------------------------

    def _build_levels(self) -> Tuple[np.ndarray, ...]:
        """Per-class ladders of applied widths (sorted, deduplicated).

        Global threshold candidates are: no upsizing, the two uniform
        Wmin anchors, and ``extra_levels`` geometric intermediates; each
        class keeps ``max(W_c, t)`` rounded to 1e-6 nm so float noise
        cannot split a level.
        """
        w_lo = float(np.min(self.widths_nm))
        w_hi = float(self._uniform_baseline.wmin_nm)
        thresholds = [0.0, self._uniform_optimized.wmin_nm, w_hi]
        if self.extra_levels > 0 and w_hi > w_lo:
            thresholds.extend(
                np.geomspace(w_lo, w_hi, self.extra_levels + 2)[1:-1].tolist()
            )
        levels: List[np.ndarray] = []
        for width in self.widths_nm:
            applied = np.round(
                np.maximum(float(width), np.asarray(thresholds, dtype=float)), 6
            )
            levels.append(np.unique(applied))
        return tuple(levels)

    @property
    def class_levels(self) -> Tuple[np.ndarray, ...]:
        """The per-class upsizing ladders (applied widths, nm)."""
        return self._levels

    def combos_per_process_point(self) -> int:
        """Size of the design-knob cross product (per process point)."""
        return int(np.prod([lv.size for lv in self._levels]))

    def relaxation_factor(self, point: ProcessPoint) -> float:
        """Correlation relaxation of one process point (Eq. 3.2, de-rated).

        The misalignment spec truncates the usable correlation length via
        the Sec. 3 band geometry (band width = the uniform optimized Wmin),
        deterministically through
        :meth:`repro.analysis.mispositioned.MisalignmentImpactModel.relaxation_for_angle`.
        """
        model = MisalignmentImpactModel(
            band_width_nm=self._uniform_optimized.wmin_nm,
            cnt_length_um=point.cnt_length_um,
            min_cnfet_density_per_um=(
                self.setup.correlation.min_cnfet_density_per_um
            ),
        )
        return model.relaxation_for_angle(point.misalignment_sigma_deg)

    # ------------------------------------------------------------------
    # Surface tier
    # ------------------------------------------------------------------

    def _surface_key(self, point: ProcessPoint) -> Tuple[float, float, float]:
        return (
            round(point.pitch_cv, 9),
            round(point.corner.per_cnt_failure_probability, 12),
            round(point.short_probability, 12),
        )

    def _ensure_service(self) -> object:
        if self.service is None:
            from repro.serving import YieldService

            self.service = YieldService()
        return self.service

    def _surface_for(self, point: ProcessPoint) -> object:
        """Build (or reuse) the device-pF surface for a pitch/corner family.

        One surface covers every density of the family: the builder
        rescales the pitch per density column, so the density axis simply
        needs to bracket the candidate densities.
        """
        key = self._surface_key(point)
        surface = self._surfaces.get(key)
        if surface is not None:
            return surface
        from repro.growth.pitch import pitch_distribution_from_cv
        from repro.surface import GridAxis, SurfaceBuilder, SweepSpec

        all_levels = np.concatenate(self._levels)
        w_lo = 0.9 * float(np.min(all_levels))
        w_hi = 1.1 * float(np.max(all_levels))
        family = [
            p.cnt_density_per_um for p in self.process_points
            if self._surface_key(p) == key
        ]
        d_lo = 0.9 * min(family)
        d_hi = 1.1 * max(family)
        spec = SweepSpec(
            scenario="device",
            width_axis=GridAxis.from_range(
                "width_nm", w_lo, w_hi, self.grid_points[0]
            ),
            density_axis=GridAxis.from_range(
                "cnt_density_per_um", d_lo, d_hi, self.grid_points[1]
            ),
            pitch=pitch_distribution_from_cv(
                self.setup.mean_pitch_nm, point.pitch_cv
            ),
            per_cnt_failure=point.corner.per_cnt_failure_probability,
            correlation=self.setup.correlation,
            method=self.surface_method,
            mc_samples=self.surface_mc_samples,
            max_refinement_rounds=2,
            seed=self.seed,
            metallic_fraction=point.corner.metallic_fraction,
            removal_eta=point.metallic_removal_eta,
        )
        surface = SurfaceBuilder(spec).build()
        self._ensure_service().register(surface)
        self._surfaces[key] = surface
        return surface

    # ------------------------------------------------------------------
    # Inner loop
    # ------------------------------------------------------------------

    def _evaluate_process_point(self, point: ProcessPoint) -> _ProcessEvaluation:
        """Evaluate the full design-knob cross product at one process point.

        The chip log-yield is additive across width classes, so the
        ``L_1 × … × L_n`` combination space costs one batched service
        query over the distinct ladder widths plus an outer-sum
        reduction.  Bounds prune: combos whose upper-bound yield misses
        the target are rejected with no further work; straddlers are
        escalated to the exact closed form.
        """
        n_combos = self.combos_per_process_point()
        if n_combos > self.max_combos:
            raise ValueError(
                f"{n_combos} design combinations per process point exceed "
                f"max_combos={self.max_combos}; reduce extra_levels or "
                "raise max_combos"
            )
        surface = self._surface_for(point)
        service = self._ensure_service()
        relaxation = self.relaxation_factor(point)
        eff_counts = self.counts / relaxation

        distinct = np.unique(np.concatenate(self._levels))
        result = service.query(
            surface,
            distinct,
            cnt_density_per_um=np.full(
                distinct.shape, point.cnt_density_per_um
            ),
            device_count=1.0,
        )
        index_of = {float(w): i for i, w in enumerate(distinct)}

        def per_class(prob: np.ndarray) -> List[np.ndarray]:
            with np.errstate(divide="ignore"):
                log_survival = np.log1p(-np.minimum(prob, 1.0))
            return [
                eff_counts[c] * log_survival[
                    [index_of[float(w)] for w in self._levels[c]]
                ]
                for c in range(self.widths_nm.size)
            ]

        logy = functools.reduce(
            np.add.outer, per_class(result.failure_probability)
        ).ravel()
        logy_lower = functools.reduce(
            np.add.outer, per_class(result.failure_upper)
        ).ravel()
        logy_upper = functools.reduce(
            np.add.outer, per_class(result.failure_lower)
        ).ravel()
        pen_terms = [
            self.counts[c] * (self._levels[c] - self.widths_nm[c])
            for c in range(self.widths_nm.size)
        ]
        penalties = (
            functools.reduce(np.add.outer, pen_terms).ravel()
            / float(np.sum(self.counts * self.widths_nm))
        )
        shape = tuple(lv.size for lv in self._levels)

        log_target = np.log(self.yield_target)
        pruned = logy_upper < log_target
        certain = logy_lower >= log_target
        straddle = ~pruned & ~certain
        n_escalated = int(np.count_nonzero(straddle))
        feasible = certain.copy()
        if n_escalated:
            # Exact escalation: closed-form pF at this density, reduced
            # only over the straddling combos.
            from repro.surface.builder import density_to_mean_pitch_nm

            pitch = self._surfaces_pitch(point)
            model = CNFETFailureModel(
                count_model_from_pitch(
                    pitch.with_mean(
                        density_to_mean_pitch_nm(point.cnt_density_per_um)
                    )
                ),
                point.corner.per_cnt_failure_probability,
                short_probability=point.short_probability,
            )
            exact_log_pf = model.log_failure_probabilities(distinct)
            with np.errstate(divide="ignore"):
                exact_survival = np.log1p(
                    -np.minimum(np.exp(exact_log_pf), 1.0)
                )
            exact_class = [
                eff_counts[c] * exact_survival[
                    [index_of[float(w)] for w in self._levels[c]]
                ]
                for c in range(self.widths_nm.size)
            ]
            flat = np.flatnonzero(straddle)
            multi = np.unravel_index(flat, shape)
            exact_logy = np.zeros(flat.size)
            for c, idx in enumerate(multi):
                exact_logy += exact_class[c][idx]
            logy = logy.copy()
            logy[flat] = exact_logy
            feasible[flat] = exact_logy >= log_target

        n_feasible = int(np.count_nonzero(feasible))
        if n_feasible:
            feasible_flat = np.flatnonzero(feasible)
            front_local = pareto_front(
                penalties[feasible_flat], logy[feasible_flat]
            )
            front_flat = feasible_flat[front_local]
        else:
            front_flat = np.empty(0, dtype=np.intp)

        return _ProcessEvaluation(
            penalties=penalties,
            log_yields=logy,
            front_flat=front_flat,
            shape=shape,
            yield_lower=np.exp(np.minimum(logy_lower, 0.0)),
            yield_upper=np.exp(np.minimum(logy_upper, 0.0)),
            escalated_mask=straddle,
            n_combos=n_combos,
            n_pruned=int(np.count_nonzero(pruned)),
            n_escalated=n_escalated,
            n_feasible=n_feasible,
        )

    def _surfaces_pitch(self, point: ProcessPoint) -> object:
        """The pitch family a process point's surface was swept with."""
        from repro.growth.pitch import pitch_distribution_from_cv

        return pitch_distribution_from_cv(
            self.setup.mean_pitch_nm, point.pitch_cv
        )

    def _candidate(
        self, point: ProcessPoint, evaluation: _ProcessEvaluation, flat: int
    ) -> CandidatePoint:
        """Materialise one flat combo index as a :class:`CandidatePoint`."""
        multi = np.unravel_index(flat, evaluation.shape)
        thresholds = tuple(
            float(self._levels[c][idx]) for c, idx in enumerate(multi)
        )
        return CandidatePoint(
            process=point,
            thresholds_nm=thresholds,
            capacitance_penalty=float(evaluation.penalties[flat]),
            chip_yield=float(np.exp(min(evaluation.log_yields[flat], 0.0))),
            yield_lower=float(evaluation.yield_lower[flat]),
            yield_upper=float(evaluation.yield_upper[flat]),
            relaxation_factor=self.relaxation_factor(point),
            escalated=bool(evaluation.escalated_mask[flat]),
        )

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run(
        self,
        validate_trials: int = 0,
        validate_top: int = 1,
        n_workers: int = 1,
        validation_scale: float = 0.05,
        t_clk_factor: float = 1.2,
    ) -> CoOptResult:
        """Search the joint space and return the Pareto front.

        Parameters
        ----------
        validate_trials:
            Monte Carlo trials per validated front candidate (0 disables
            validation).
        validate_top:
            How many front members (cheapest first) to validate.
        n_workers:
            Worker processes for the validation Monte Carlo only — the
            returned front is bitwise identical for any value.
        validation_scale:
            Scale factor of the placed OpenRISC-like validation design.
        t_clk_factor:
            Clock period of the timing validation as a multiple of the
            nominal critical path.
        """
        if validate_trials < 0:
            raise ValueError("validate_trials must be non-negative")
        if validate_top < 1:
            raise ValueError("validate_top must be at least 1")
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")

        build_start = time.perf_counter()
        for point in self.process_points:
            self._surface_for(point)
        surface_seconds = time.perf_counter() - build_start

        inner_start = time.perf_counter()
        candidates: List[CandidatePoint] = []
        totals = {"combos": 0, "pruned": 0, "escalated": 0, "feasible": 0}
        for point in self.process_points:
            evaluation = self._evaluate_process_point(point)
            totals["combos"] += evaluation.n_combos
            totals["pruned"] += evaluation.n_pruned
            totals["escalated"] += evaluation.n_escalated
            totals["feasible"] += evaluation.n_feasible
            for flat in evaluation.front_flat:
                candidates.append(self._candidate(point, evaluation, int(flat)))

        # Merge the per-process fronts into the global one.  The sort key
        # is fully deterministic: penalty, then yield (descending), then
        # the enumeration order already fixed by process_points/levels.
        if candidates:
            merged = pareto_front(
                np.array([c.capacitance_penalty for c in candidates]),
                np.array([c.chip_yield for c in candidates]),
            )
            front = tuple(candidates[i] for i in merged)
        else:
            front = ()
        inner_seconds = time.perf_counter() - inner_start

        best = front[0] if front else None
        validations: List[CoOptValidation] = []
        if best is not None and validate_trials > 0:
            for rank, candidate in enumerate(front[:validate_top]):
                validations.append(
                    self.validate(
                        candidate,
                        n_trials=validate_trials,
                        rank=rank,
                        n_workers=n_workers,
                        scale=validation_scale,
                        t_clk_factor=t_clk_factor,
                    )
                )

        report = self._flow.run()
        upsizing = report.optimized_upsizing
        baseline_upsizing = report.baseline_upsizing
        return CoOptResult(
            yield_target=self.yield_target,
            front=front,
            best=best,
            uniform_wmin_nm=float(self._uniform_optimized.wmin_nm),
            uniform_penalty=float(upsizing.capacitance_penalty),
            uniform_baseline_wmin_nm=float(self._uniform_baseline.wmin_nm),
            uniform_baseline_penalty=float(
                baseline_upsizing.capacitance_penalty
            ),
            candidates_evaluated=totals["combos"],
            candidates_pruned=totals["pruned"],
            candidates_escalated=totals["escalated"],
            candidates_feasible=totals["feasible"],
            process_point_count=len(self.process_points),
            surface_build_seconds=surface_seconds,
            inner_loop_seconds=inner_seconds,
            validations=tuple(validations),
        )

    # ------------------------------------------------------------------
    # End-to-end validation
    # ------------------------------------------------------------------

    def validate(
        self,
        candidate: CandidatePoint,
        n_trials: int,
        rank: int = 0,
        n_workers: int = 1,
        scale: float = 0.05,
        t_clk_factor: float = 1.2,
    ) -> CoOptValidation:
        """Monte Carlo validation of one candidate's process point.

        Builds the placed OpenRISC-like design, fabricates it
        ``n_trials`` times with
        :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo` at the
        candidate's pitch/density/corner, and cross-checks the mean
        failing-device count against the serving tier's per-class pF sum
        (linear expectation makes the comparison unbiased even though
        devices share tracks).  The same fabricated geometry then drives
        a :class:`~repro.timing.TimingMonteCarlo` run for the joint
        functional/timing yield.  RNG streams are spawn-keyed from the
        optimizer seed and the candidate's front rank, so validations are
        bitwise reproducible and independent of ``n_workers``.
        """
        ensure_positive(n_trials, "n_trials")
        from repro.cells.nangate45 import build_nangate45_library
        from repro.growth.pitch import pitch_distribution_from_cv
        from repro.montecarlo.chip_sim import ChipMonteCarlo
        from repro.netlist.openrisc import build_openrisc_like_design
        from repro.netlist.placement import RowPlacement
        from repro.timing import TimingMonteCarlo

        point = candidate.process
        library = build_nangate45_library()
        design = build_openrisc_like_design(library, scale=scale, seed=2010)
        placement = RowPlacement(design)
        pitch = pitch_distribution_from_cv(
            point.mean_pitch_nm, point.pitch_cv
        )
        chip = ChipMonteCarlo(
            placement,
            pitch=pitch,
            type_model=point.corner.to_type_model(
                removal_prob_metallic=point.metallic_removal_eta
            ),
        )

        chip_seq, timing_seq = np.random.SeedSequence(
            (self.seed, rank)
        ).spawn(2)
        mc = chip.run(
            n_trials, np.random.default_rng(chip_seq), n_workers=n_workers
        )

        widths, counts = chip.width_class_histogram()
        surface = self._surface_for(point)
        query = self._ensure_service().query(
            surface,
            np.asarray(widths, dtype=float),
            cnt_density_per_um=np.full(
                len(widths), point.cnt_density_per_um
            ),
            device_count=1.0,
        )
        predicted = float(
            np.sum(np.asarray(counts) * query.failure_probability)
        )
        se = (
            mc.std_failing_devices / np.sqrt(n_trials)
            if n_trials > 1 else 0.0
        )
        z_score = (
            (mc.mean_failing_devices - predicted) / se if se > 0 else 0.0
        )

        engine = TimingMonteCarlo.from_chip(chip, seed=self.seed)
        t_clk = engine.default_t_clk_ps(factor=t_clk_factor)
        timing = engine.run(
            n_trials,
            np.random.default_rng(timing_seq),
            t_clk_ps=t_clk,
            n_workers=n_workers,
        )

        return CoOptValidation(
            candidate=candidate,
            n_trials=int(n_trials),
            device_count=chip.device_count,
            mc_chip_yield=mc.chip_yield,
            mc_mean_failing_devices=mc.mean_failing_devices,
            mc_failing_devices_se=float(se),
            predicted_mean_failing_devices=predicted,
            z_score=float(z_score),
            t_clk_ps=float(t_clk),
            functional_yield=timing.functional_yield,
            timing_yield=timing.timing_yield,
            combined_yield=timing.combined_yield,
        )
