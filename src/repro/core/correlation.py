"""Row-based yield under directional CNT growth — Eq. 3.1 / 3.2 and Table 1.

Under directional growth, CNFETs laid out on the same CNT tracks within one
CNT length share their tubes, so their failures are strongly correlated.
The paper partitions the Mmin small devices into KR rows: devices in
different rows are independent, devices in the same row are correlated.  The
chip yield becomes

``Yield = Π_i (1 - pRF_i) ≈ 1 - KR · pRF``        (Eq. 3.1)

with pRF the average row failure probability.  Three layout scenarios are
compared (Table 1):

* **Uncorrelated growth** — every device is independent, so
  ``pRF = 1 - (1 - pF)^MRmin ≈ MRmin · pF``.
* **Directional growth, non-aligned layout** — devices in a row overlap
  partially in the CNT direction; pRF lies between the two extremes and is
  evaluated numerically (the paper states this case requires numerical
  methods).
* **Directional growth, aligned-active layout** — every device in the row
  covers exactly the same tracks, so a row fails exactly when one device
  fails: ``pRF = pF``.

The ratio between the first and last case, ``MRmin = LCNT · Pmin-CNFET``
(Eq. 3.2), is the paper's headline ≈350X relaxation of the device-level
failure-probability requirement.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import (
    DEFAULT_CNT_LENGTH_UM,
    DEFAULT_MIN_CNFET_DENSITY_PER_UM,
)
from repro.core.count_model import CountModel
from repro.units import (
    ensure_positive,
    ensure_probability,
    per_um_to_per_nm,
    um_to_nm,
)


class LayoutScenario(enum.Enum):
    """The three growth/layout combinations compared in Table 1."""

    UNCORRELATED_GROWTH = "uncorrelated"
    DIRECTIONAL_NON_ALIGNED = "directional_non_aligned"
    DIRECTIONAL_ALIGNED = "directional_aligned"


@dataclass(frozen=True)
class CorrelationParameters:
    """Physical and design parameters controlling the correlation benefit.

    Parameters
    ----------
    cnt_length_um:
        CNT length LCNT along the growth direction (paper: 200 µm).
    min_cnfet_density_per_um:
        Average linear density Pmin-CNFET of small-width CNFETs along a
        placement row (paper: 1.8 FETs/µm for the OpenRISC design).
    unaligned_offset_groups:
        Model of the *non-aligned* directional scenario (an unmodified cell
        library on directional growth): the critical devices of a row fall
        into this many distinct (width, y-offset) classes; devices of the
        same class already cover the same CNT tracks and fail together,
        devices of different classes are independent.  The default of 13
        matches the y-offset diversity the paper observes in the unmodified
        Nangate library (its Table 1 attributes a 13X residual gain to the
        aligned-active restriction on top of the 26.5X that directional
        growth alone provides).  Set to ``None`` to fall back to the
        shared-fraction model controlled by ``alignment_fraction``.
    alignment_fraction:
        Alternative model of the non-aligned scenario (used only when
        ``unaligned_offset_groups`` is ``None``): the fraction of each
        device's CNT tracks shared row-wide.  1.0 reproduces the aligned
        case, 0.0 the uncorrelated case.
    aligned_region_groups:
        Number of distinct aligned active-region groups per polarity.  The
        paper's baseline uses one; allowing two eliminates the cell-area
        penalty at the cost of halving the correlation benefit (Sec. 3.3).
    """

    cnt_length_um: float = DEFAULT_CNT_LENGTH_UM
    min_cnfet_density_per_um: float = DEFAULT_MIN_CNFET_DENSITY_PER_UM
    unaligned_offset_groups: Optional[float] = 13.0
    alignment_fraction: float = 0.5
    aligned_region_groups: int = 1

    def __post_init__(self) -> None:
        ensure_positive(self.cnt_length_um, "cnt_length_um")
        ensure_positive(self.min_cnfet_density_per_um, "min_cnfet_density_per_um")
        ensure_probability(self.alignment_fraction, "alignment_fraction")
        if self.unaligned_offset_groups is not None:
            ensure_positive(self.unaligned_offset_groups, "unaligned_offset_groups")
        if self.aligned_region_groups < 1:
            raise ValueError("aligned_region_groups must be at least 1")

    @property
    def cnt_length_nm(self) -> float:
        """LCNT in nanometres."""
        return um_to_nm(self.cnt_length_um)

    @property
    def min_cnfet_density_per_nm(self) -> float:
        """Pmin-CNFET in FETs per nanometre."""
        return per_um_to_per_nm(self.min_cnfet_density_per_um)

    @property
    def devices_per_row(self) -> float:
        """MRmin = LCNT · Pmin-CNFET (Eq. 3.2), per aligned-region group.

        With ``aligned_region_groups > 1`` the small devices are split across
        that many independent track groups, which divides the number of
        devices sharing any one group — and hence the correlation benefit —
        by the same factor.  The value is clamped at 1: a correlation segment
        always contains at least the device whose failure is being analysed,
        so sharing can never make things worse than full independence.
        """
        full = self.cnt_length_nm * self.min_cnfet_density_per_nm
        return max(full / self.aligned_region_groups, 1.0)


@dataclass(frozen=True)
class RowYieldResult:
    """Row-level and chip-level yield figures for one layout scenario."""

    scenario: LayoutScenario
    device_failure_probability: float
    row_failure_probability: float
    devices_per_row: float
    row_count: float
    chip_yield: float

    @property
    def chip_failure_probability(self) -> float:
        """1 - chip yield."""
        return 1.0 - self.chip_yield


@dataclass(frozen=True)
class RowYieldEstimate:
    """Chip yield propagated from a *sampled* row failure probability.

    The rare-event samplers return pRF with a standard error; pushing both
    through Eq. 3.1 (``Yield = (1 - pRF)^KR``) with the delta method gives
    the chip yield and its uncertainty, so sampled tails can be compared
    against closed forms within their reported error.
    """

    scenario: LayoutScenario
    row_failure_probability: float
    row_failure_probability_se: float
    row_count: float
    chip_yield: float
    chip_yield_se: float

    @property
    def loss_relative_error(self) -> float:
        """Chip-yield standard error relative to the yield loss."""
        loss = 1.0 - self.chip_yield
        if loss == 0:
            return float("nan")
        return self.chip_yield_se / loss


class RowYieldModel:
    """Chip yield under the three growth/layout scenarios of Table 1.

    Parameters
    ----------
    parameters:
        Correlation parameters (LCNT, Pmin-CNFET, alignment fraction).
    count_model:
        CNT count model; required for the numerically evaluated non-aligned
        scenario (which needs count statistics, not just pF) and optional for
        the two closed-form scenarios.
    rng:
        Random generator for the Monte Carlo part of the non-aligned
        scenario.  A fixed default seed keeps results reproducible.
    mc_samples:
        Monte Carlo sample count for the non-aligned scenario.
    """

    def __init__(
        self,
        parameters: Optional[CorrelationParameters] = None,
        count_model: Optional[CountModel] = None,
        rng: Optional[np.random.Generator] = None,
        mc_samples: int = 20_000,
    ) -> None:
        self.parameters = parameters or CorrelationParameters()
        self.count_model = count_model
        self.rng = rng or np.random.default_rng(20100613)
        if mc_samples <= 0:
            raise ValueError("mc_samples must be positive")
        self.mc_samples = int(mc_samples)

    # ------------------------------------------------------------------
    # Row failure probability per scenario
    # ------------------------------------------------------------------

    def row_failure_probability(
        self,
        scenario: LayoutScenario,
        device_failure_probability: float,
        width_nm: Optional[float] = None,
        per_cnt_failure: Optional[float] = None,
    ) -> float:
        """pRF for a given scenario.

        ``width_nm`` and ``per_cnt_failure`` are only needed for the
        non-aligned directional scenario, whose numerical evaluation requires
        the underlying count statistics.
        """
        p_f = ensure_probability(
            device_failure_probability, "device_failure_probability"
        )
        m_r = self.parameters.devices_per_row

        if scenario is LayoutScenario.UNCORRELATED_GROWTH:
            # Independent devices: row survives only if all survive.  Use
            # expm1/log1p so that tiny pF values do not lose precision to the
            # 1 - (1 - pF)^m cancellation.
            return -math.expm1(m_r * math.log1p(-p_f))

        if scenario is LayoutScenario.DIRECTIONAL_ALIGNED:
            # Perfect sharing: the row fails iff the shared device fails.
            return p_f

        if scenario is LayoutScenario.DIRECTIONAL_NON_ALIGNED:
            return self._non_aligned_row_failure(
                p_f, m_r, width_nm=width_nm, per_cnt_failure=per_cnt_failure
            )

        raise ValueError(f"unknown scenario {scenario!r}")

    # ------------------------------------------------------------------
    # Non-aligned directional growth (numerical)
    # ------------------------------------------------------------------

    def _non_aligned_row_failure(
        self,
        device_failure_probability: float,
        devices_per_row: float,
        width_nm: Optional[float],
        per_cnt_failure: Optional[float],
    ) -> float:
        """Row failure probability for directional growth without aligned cells.

        Two interchangeable closed-form models are provided; both lie between
        the aligned and uncorrelated extremes.

        **Offset-cluster model (default).**  In an unmodified library the
        critical devices still fall into a modest number of distinct
        (width, y-offset) classes — identical cells placed in the same row
        put their small devices on exactly the same tracks even without any
        explicit restriction.  Devices of the same class fail together,
        classes are independent, so with ``G = unaligned_offset_groups``
        effective classes per row,

        ``pRF = 1 - (1 - pF)^min(G, MRmin)``.

        The paper evaluates this case numerically; its Table 1 corresponds to
        G ≈ 13 (the residual gain it attributes to the aligned-active step).

        **Shared-fraction model** (``unaligned_offset_groups=None``).  Each
        device's tubes split into a row-wide shared core (fraction
        ``alignment_fraction`` of its width) and a private remainder;
        conditioning on the shared core gives
        ``pRF = pF^frac · (1 - (1 - pF^(1-frac))^MRmin)``.

        ``width_nm`` and ``per_cnt_failure`` are accepted for API symmetry
        with the Monte Carlo validator in :mod:`repro.montecarlo.row_sim`,
        which evaluates the same scenario by direct simulation.
        """
        del width_nm, per_cnt_failure  # closed forms need only pF and geometry
        p_f = device_failure_probability
        if p_f == 0.0:
            return 0.0
        groups = self.parameters.unaligned_offset_groups
        if groups is not None:
            effective = min(max(float(groups), 1.0), max(devices_per_row, 1.0))
            return -math.expm1(effective * math.log1p(-p_f))

        frac = self.parameters.alignment_fraction
        if frac >= 1.0:
            return p_f
        if frac <= 0.0:
            return -math.expm1(devices_per_row * math.log1p(-p_f))

        shared_fail = p_f ** frac
        private_fail = p_f ** (1.0 - frac)
        n_dev = max(devices_per_row, 1.0)
        if private_fail >= 1.0:
            row_fail_given_core_fail = 1.0
        else:
            row_fail_given_core_fail = -math.expm1(n_dev * math.log1p(-private_fail))
        return shared_fail * row_fail_given_core_fail

    # ------------------------------------------------------------------
    # Chip-level evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        scenario: LayoutScenario,
        device_failure_probability: float,
        min_size_device_count: float,
        width_nm: Optional[float] = None,
        per_cnt_failure: Optional[float] = None,
    ) -> RowYieldResult:
        """Full row/chip yield evaluation for one scenario (one Table 1 column)."""
        ensure_positive(min_size_device_count, "min_size_device_count")
        m_r = self.parameters.devices_per_row
        k_r = min_size_device_count / m_r
        p_rf = self.row_failure_probability(
            scenario,
            device_failure_probability,
            width_nm=width_nm,
            per_cnt_failure=per_cnt_failure,
        )
        if p_rf >= 1.0:
            chip = 0.0
        else:
            chip = math.exp(k_r * math.log1p(-p_rf))
        return RowYieldResult(
            scenario=scenario,
            device_failure_probability=device_failure_probability,
            row_failure_probability=p_rf,
            devices_per_row=m_r,
            row_count=k_r,
            chip_yield=chip,
        )

    def evaluate_estimate(
        self,
        scenario: LayoutScenario,
        row_failure_probability: float,
        row_failure_probability_se: float,
        min_size_device_count: float,
    ) -> RowYieldEstimate:
        """Chip yield (Eq. 3.1) from a *sampled* row failure probability.

        The Monte Carlo counterpart of :meth:`evaluate`: instead of deriving
        pRF from a device pF analytically, take a sampled pRF (for example a
        rare-event tail estimate from
        :mod:`repro.montecarlo.rare_event`) together with its standard
        error and propagate both through ``Yield = (1 - pRF)^KR`` via the
        delta method (``dY/dpRF = -KR (1 - pRF)^(KR-1)``).
        """
        p_rf = ensure_probability(
            row_failure_probability, "row_failure_probability"
        )
        if row_failure_probability_se < 0:
            raise ValueError("row_failure_probability_se must be non-negative")
        ensure_positive(min_size_device_count, "min_size_device_count")
        k_r = min_size_device_count / self.parameters.devices_per_row
        if p_rf >= 1.0:
            chip, slope = 0.0, 0.0
        else:
            chip = math.exp(k_r * math.log1p(-p_rf))
            slope = k_r * math.exp((k_r - 1.0) * math.log1p(-p_rf))
        return RowYieldEstimate(
            scenario=scenario,
            row_failure_probability=p_rf,
            row_failure_probability_se=float(row_failure_probability_se),
            row_count=k_r,
            chip_yield=chip,
            chip_yield_se=slope * float(row_failure_probability_se),
        )

    def relaxation_factor(
        self,
        device_failure_probability: float,
        width_nm: Optional[float] = None,
        per_cnt_failure: Optional[float] = None,
    ) -> float:
        """Ratio pRF(uncorrelated) / pRF(aligned) — the paper's ≈350X."""
        uncorrelated = self.row_failure_probability(
            LayoutScenario.UNCORRELATED_GROWTH, device_failure_probability
        )
        aligned = self.row_failure_probability(
            LayoutScenario.DIRECTIONAL_ALIGNED, device_failure_probability,
            width_nm=width_nm, per_cnt_failure=per_cnt_failure,
        )
        if aligned == 0.0:
            return math.inf
        return uncorrelated / aligned


def _scenario_row_map(
    scenario: LayoutScenario,
    p: np.ndarray,
    params: CorrelationParameters,
) -> np.ndarray:
    """Elementwise device-probability → row-probability map of one scenario.

    The shared core of :func:`scenario_row_failure_probabilities`: the
    same structural map applies to any per-device failure channel (joint,
    opens-only, or the marginal short channel), because it encodes only
    *which devices share tracks*, not why a device fails.
    """
    m_r = params.devices_per_row

    if scenario is LayoutScenario.DIRECTIONAL_ALIGNED:
        return p.copy()
    if scenario is LayoutScenario.UNCORRELATED_GROWTH:
        # p == 1 passes log1p(-1) = -inf through expm1; the 1.0 limit is
        # exact, so the divide warning is noise.
        with np.errstate(divide="ignore"):
            return -np.expm1(m_r * np.log1p(-p))
    if scenario is LayoutScenario.DIRECTIONAL_NON_ALIGNED:
        groups = params.unaligned_offset_groups
        if groups is not None:
            effective = min(max(float(groups), 1.0), max(m_r, 1.0))
            with np.errstate(divide="ignore"):
                return -np.expm1(effective * np.log1p(-p))
        frac = params.alignment_fraction
        if frac >= 1.0:
            return p.copy()
        if frac <= 0.0:
            with np.errstate(divide="ignore"):
                return -np.expm1(m_r * np.log1p(-p))
        n_dev = max(m_r, 1.0)
        with np.errstate(divide="ignore"):
            shared_fail = np.where(p > 0.0, p ** frac, 0.0)
            private_fail = np.where(p > 0.0, p ** (1.0 - frac), 0.0)
        row_given_core = np.where(
            private_fail >= 1.0, 1.0, -np.expm1(n_dev * np.log1p(-private_fail))
        )
        return shared_fail * row_given_core
    raise ValueError(f"unknown scenario {scenario!r}")


def scenario_row_failure_probabilities(
    scenario: LayoutScenario,
    device_failure_probabilities: np.ndarray,
    parameters: Optional[CorrelationParameters] = None,
    device_short_probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorised pRF over an array of device pF values.

    The closed forms of :meth:`RowYieldModel.row_failure_probability`
    evaluated elementwise in one pass — the yield-surface sweeps map whole
    pF grids through the Table 1 scenarios with this hook instead of a
    Python loop.  Matches the scalar path to floating-point accuracy.

    Shorts composition
    ------------------
    There are two ways to carry the metallic-short failure mode of
    :mod:`repro.device.shorts` through the row maps.  The *exact* route is
    to pass the joint opens+shorts device probability as
    ``device_failure_probabilities`` — the maps encode only which devices
    share tracks, so they compose exactly with any per-device failure
    channel.  Alternatively, ``device_short_probabilities`` accepts the
    marginal short channel (``short_only_failure_probability``) separately
    and composes the two row events as independent,
    ``1 - (1 - pRF_open)(1 - pRF_short)`` — a slight *upper bound* on the
    true row failure probability, because opens and shorts are
    anticorrelated through the shared tube count.  Use it when the two
    channels are estimated separately (e.g. from different sweeps).
    """
    params = parameters or CorrelationParameters()
    p = np.asarray(device_failure_probabilities, dtype=float)
    if p.size and (np.any(p < 0) | np.any(p > 1)):
        raise ValueError("device failure probabilities must lie in [0, 1]")
    base = _scenario_row_map(scenario, p, params)
    if device_short_probabilities is None:
        return base
    s = np.asarray(device_short_probabilities, dtype=float)
    if s.shape != p.shape:
        raise ValueError(
            "device_short_probabilities must match "
            "device_failure_probabilities in shape"
        )
    if s.size and (np.any(s < 0) | np.any(s > 1)):
        raise ValueError("device short probabilities must lie in [0, 1]")
    row_short = _scenario_row_map(scenario, s, params)
    return 1.0 - (1.0 - base) * (1.0 - row_short)


def propagate_row_failure_se(
    scenario: LayoutScenario,
    device_failure_probabilities: np.ndarray,
    device_failure_se: np.ndarray,
    parameters: Optional[CorrelationParameters] = None,
    device_short_probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Delta-method pRF standard errors from sampled device pF errors.

    ``SE(pRF) = |dpRF/dpF| · SE(pF)``, with the derivative taken as a
    central difference of :func:`scenario_row_failure_probabilities` on a
    relative step — exact enough for error *bounds* while staying correct
    for every scenario model (offset-cluster and shared-fraction alike).
    This is how Monte Carlo-built yield surfaces carry the rare-event
    sampler's :class:`~repro.core.circuit_yield.YieldEstimate`-style
    uncertainties through Eq. 3.1.  A separately-composed short channel
    (``device_short_probabilities``) is held fixed while the open channel
    is perturbed, matching the composition of the map itself.
    """
    params = parameters or CorrelationParameters()
    p = np.asarray(device_failure_probabilities, dtype=float)
    se = np.asarray(device_failure_se, dtype=float)
    if se.shape != p.shape:
        raise ValueError("device_failure_se must match probabilities in shape")
    if se.size and np.any(se < 0):
        raise ValueError("standard errors must be non-negative")
    step = np.maximum(1e-6 * p, 1e-300)
    lo = np.clip(p - step, 0.0, 1.0)
    hi = np.clip(p + step, 0.0, 1.0)
    f_lo = scenario_row_failure_probabilities(
        scenario, lo, params,
        device_short_probabilities=device_short_probabilities,
    )
    f_hi = scenario_row_failure_probabilities(
        scenario, hi, params,
        device_short_probabilities=device_short_probabilities,
    )
    span = hi - lo
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(span > 0.0, (f_hi - f_lo) / span, 0.0)
    return np.abs(slope) * se


def relaxation_factor(
    cnt_length_um: float = DEFAULT_CNT_LENGTH_UM,
    min_cnfet_density_per_um: float = DEFAULT_MIN_CNFET_DENSITY_PER_UM,
    aligned_region_groups: int = 1,
    device_failure_probability: float = 1e-8,
) -> float:
    """Headline relaxation factor from (LCNT, Pmin-CNFET).

    In the small-pF limit this reduces to MRmin = LCNT · Pmin-CNFET
    (Eq. 3.2); the exact value accounts for the higher-order terms of
    ``1 - (1 - pF)^MRmin``.  With the paper's LCNT = 200 µm and
    Pmin-CNFET = 1.8 FETs/µm it is ≈ 360, matching the ≈350X the paper
    reports (the small difference comes from the non-aligned intermediate
    rounding the paper applies).
    """
    params = CorrelationParameters(
        cnt_length_um=cnt_length_um,
        min_cnfet_density_per_um=min_cnfet_density_per_um,
        aligned_region_groups=aligned_region_groups,
    )
    model = RowYieldModel(parameters=params)
    return model.relaxation_factor(device_failure_probability)
