"""CNT count distributions Prob{N(W)}.

The probability that a CNFET of width ``W`` captures exactly ``n`` CNTs is
the central ingredient of the device failure probability (Eq. 2.2).  Counts
arise from a renewal process along the width axis: successive tubes are
separated by i.i.d. positive pitches, so

``P{N(W) >= n} = P{s_1 + ... + s_n <= W}``

with the boundary convention that the first tube sits a stationary-forward
recurrence distance from the active-region edge.  We implement three
interchangeable models behind a common :class:`CountModel` interface:

:class:`PoissonCountModel`
    Exact for exponentially distributed pitch (CV = 1), and the default
    calibration of the reproduction.

:class:`RenewalCountModel`
    General renewal counting on any :class:`~repro.growth.pitch.PitchDistribution`
    whose n-fold sum CDF is available (exact for gamma/exponential/
    deterministic, CLT-based otherwise).

:class:`EmpiricalCountModel`
    Histogram over Monte Carlo count samples, used to validate the
    analytical models against the growth simulators.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Optional

import numpy as np
from scipy import stats

from repro.growth.pitch import PitchDistribution, ExponentialPitch, pitch_distribution_from_cv
from repro.units import ensure_positive


class CountModel(abc.ABC):
    """Interface for CNT count distributions as a function of device width."""

    @abc.abstractmethod
    def pmf(self, width_nm: float, max_count: Optional[int] = None) -> np.ndarray:
        """Probability mass function of N(W).

        Returns an array ``p`` with ``p[n] = P{N(W) = n}``; the array is long
        enough that the omitted tail mass is negligible (< 1e-12) unless
        ``max_count`` truncates it explicitly.
        """

    @abc.abstractmethod
    def mean_count(self, width_nm: float) -> float:
        """Expected number of CNTs captured at the given width."""

    @abc.abstractmethod
    def sample(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` counts at the given width."""

    # ------------------------------------------------------------------
    # Shared derived quantities
    # ------------------------------------------------------------------

    def std_count(self, width_nm: float) -> float:
        """Standard deviation of the count, computed from the pmf."""
        p = self.pmf(width_nm)
        n = np.arange(p.size)
        mean = float(np.sum(n * p))
        var = float(np.sum((n - mean) ** 2 * p))
        return math.sqrt(max(var, 0.0))

    def prob_zero(self, width_nm: float) -> float:
        """P{N(W) = 0} — the open-channel probability before thinning."""
        return float(self.pmf(width_nm)[0])

    def pgf(self, width_nm: float, z: float) -> float:
        """Probability generating function E[z^N(W)].

        Evaluating the PGF at ``z = pf`` yields the device failure
        probability of Eq. 2.2 directly:
        ``pF(W) = Σ_n pf^n · P{N(W) = n} = E[pf^N]``.
        """
        if not 0.0 <= z <= 1.0:
            raise ValueError(f"z must lie in [0, 1] for a probability argument, got {z}")
        p = self.pmf(width_nm)
        n = np.arange(p.size)
        if z == 0.0:
            return float(p[0])
        # Work in log space per term to avoid underflow for large n.
        return float(np.sum(p * np.exp(n * math.log(z))))


class PoissonCountModel(CountModel):
    """Poisson CNT counts — exact for exponentially distributed pitch.

    Parameters
    ----------
    mean_pitch_nm:
        Mean inter-CNT pitch µS; the count at width W has mean W / µS.
    """

    def __init__(self, mean_pitch_nm: float) -> None:
        self.mean_pitch_nm = ensure_positive(mean_pitch_nm, "mean_pitch_nm")

    def rate(self, width_nm: float) -> float:
        """Poisson mean λ(W) = W / µS."""
        ensure_positive(width_nm, "width_nm")
        return width_nm / self.mean_pitch_nm

    def mean_count(self, width_nm: float) -> float:
        """Expected CNT count E[N(W)] = λ(W)."""
        return self.rate(width_nm)

    def pmf(self, width_nm: float, max_count: Optional[int] = None) -> np.ndarray:
        """Poisson pmf of the CNT count at width ``width_nm``."""
        lam = self.rate(width_nm)
        if max_count is None:
            max_count = int(lam + 12.0 * math.sqrt(lam) + 30)
        n = np.arange(max_count + 1)
        return stats.poisson.pmf(n, lam)

    def sample(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` Poisson counts at width ``width_nm``."""
        return rng.poisson(self.rate(width_nm), size=n_samples)

    def pgf(self, width_nm: float, z: float) -> float:
        """Probability generating function E[z^N] = exp(-λ(1 - z))."""
        if not 0.0 <= z <= 1.0:
            raise ValueError(f"z must lie in [0, 1], got {z}")
        lam = self.rate(width_nm)
        return math.exp(-lam * (1.0 - z))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PoissonCountModel(mean_pitch_nm={self.mean_pitch_nm})"


class RenewalCountModel(CountModel):
    """Renewal counting on an arbitrary pitch distribution.

    The count pmf is obtained from the n-fold sum CDF of the pitch:

    ``P{N >= n} = F_n(W)``, so ``P{N = n} = F_n(W) - F_{n+1}(W)``.

    The first tube is placed a full pitch from the window edge (ordinary
    renewal process started at the edge); this matches the sampling used by
    the growth simulators up to the stationary-phase correction, which is
    negligible for the widths of interest (W >> µS).

    Parameters
    ----------
    pitch:
        The inter-CNT pitch distribution.
    tail_tolerance:
        The pmf is extended until the remaining tail mass falls below this
        value.
    """

    def __init__(self, pitch: PitchDistribution, tail_tolerance: float = 1e-12) -> None:
        self.pitch = pitch
        if not 0 < tail_tolerance < 1:
            raise ValueError("tail_tolerance must lie in (0, 1)")
        self.tail_tolerance = float(tail_tolerance)
        self._pmf_cache: Dict[float, np.ndarray] = {}

    def mean_count(self, width_nm: float) -> float:
        """Renewal-theory first-order mean count E[N(W)] ≈ W / µS."""
        ensure_positive(width_nm, "width_nm")
        return width_nm / self.pitch.mean_nm

    def pmf(self, width_nm: float, max_count: Optional[int] = None) -> np.ndarray:
        """Count pmf from the n-fold sum CDF of the pitch (cached per width)."""
        ensure_positive(width_nm, "width_nm")
        key = round(float(width_nm), 9)
        cached = self._pmf_cache.get(key)
        if cached is not None and (max_count is None or cached.size >= max_count + 1):
            return cached if max_count is None else cached[: max_count + 1]

        mean = self.mean_count(width_nm)
        sigma = math.sqrt(max(mean, 1.0)) * max(self.pitch.cv, 0.1)
        guess_max = int(mean + 12.0 * sigma + 30)
        if max_count is not None:
            guess_max = max(max_count, 1)

        # Vectorised fast path: one batched CDF evaluation covers the range
        # the loop typically walks before its tail-stop; the rare overflow
        # beyond it falls back to scalar calls.  Loop semantics (tail stop,
        # safety stop) are unchanged.
        upper = guess_max + 2 if max_count is None else max_count + 2
        survival_block = self.pitch.sum_cdf_array(np.arange(1, upper), width_nm)

        survival_prev = 1.0  # P{N >= 0} = 1
        probs = []
        n = 0
        while True:
            survival_next = (  # P{N >= n+1}
                float(survival_block[n]) if n < survival_block.size
                else self.pitch.sum_cdf(n + 1, width_nm)
            )
            probs.append(max(survival_prev - survival_next, 0.0))
            survival_prev = survival_next
            n += 1
            if max_count is not None and n > max_count:
                break
            if max_count is None and survival_next < self.tail_tolerance and n >= guess_max:
                break
            if n > guess_max * 4 + 1000:
                # Safety stop; remaining mass is attributed to the last bin.
                probs[-1] += survival_next
                break
        pmf = np.asarray(probs, dtype=float)
        # Normalise away the tiny truncated tail so downstream sums are exact.
        total = pmf.sum()
        if total > 0:
            pmf = pmf / total
        if max_count is None:
            self._pmf_cache[key] = pmf
        return pmf

    def sample(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` counts from the tabulated renewal pmf."""
        pmf = self.pmf(width_nm)
        return rng.choice(pmf.size, size=n_samples, p=pmf)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RenewalCountModel(pitch={self.pitch!r})"


class EmpiricalCountModel(CountModel):
    """Count model backed by Monte Carlo samples at fixed widths.

    Useful to validate analytical models against the growth simulators: build
    it from simulator counts, then compare pmfs / failure probabilities.
    Queries at widths that were not sampled raise ``KeyError``.
    """

    def __init__(self) -> None:
        self._samples: Dict[float, np.ndarray] = {}

    def add_samples(self, width_nm: float, counts: np.ndarray) -> None:
        """Register Monte Carlo count samples for a width."""
        ensure_positive(width_nm, "width_nm")
        counts = np.asarray(counts, dtype=int)
        if counts.size == 0:
            raise ValueError("counts must contain at least one sample")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        key = round(float(width_nm), 9)
        existing = self._samples.get(key)
        if existing is not None:
            counts = np.concatenate([existing, counts])
        self._samples[key] = counts

    def _get(self, width_nm: float) -> np.ndarray:
        key = round(float(width_nm), 9)
        if key not in self._samples:
            raise KeyError(
                f"no samples registered for width {width_nm} nm; "
                f"available widths: {sorted(self._samples)}"
            )
        return self._samples[key]

    @property
    def widths_nm(self) -> list:
        """Widths for which samples have been registered."""
        return sorted(self._samples)

    def pmf(self, width_nm: float, max_count: Optional[int] = None) -> np.ndarray:
        """Histogram pmf of the registered samples at ``width_nm``."""
        counts = self._get(width_nm)
        upper = int(counts.max()) if max_count is None else int(max_count)
        pmf = np.bincount(np.clip(counts, 0, upper), minlength=upper + 1).astype(float)
        return pmf / pmf.sum()

    def mean_count(self, width_nm: float) -> float:
        """Sample mean of the registered counts at ``width_nm``."""
        return float(np.mean(self._get(width_nm)))

    def sample(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Bootstrap-resample ``n_samples`` counts for ``width_nm``."""
        counts = self._get(width_nm)
        return rng.choice(counts, size=n_samples, replace=True)


def count_model_from_pitch(pitch: PitchDistribution) -> CountModel:
    """Return the most appropriate count model for a pitch distribution.

    Exponential pitch maps to the exact :class:`PoissonCountModel`; all other
    families use :class:`RenewalCountModel`.
    """
    if isinstance(pitch, ExponentialPitch):
        return PoissonCountModel(mean_pitch_nm=pitch.mean_nm)
    return RenewalCountModel(pitch=pitch)


def count_model_from_cv(mean_pitch_nm: float, cv: float) -> CountModel:
    """Convenience: build a count model straight from (µS, σS/µS)."""
    return count_model_from_pitch(pitch_distribution_from_cv(mean_pitch_nm, cv))
