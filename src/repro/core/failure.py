"""Device-level CNT count failure probability pF(W) — Eq. 2.2 and Fig. 2.1.

A CNFET fails (CNT count failure) when every tube it captured fails to
provide a working channel.  With independent per-tube failures of
probability ``pf`` (Eq. 2.1) and the count distribution Prob{N(W)},

``pF(W) = Σ_n pf^n · P{N(W) = n} = E[pf^N(W)]``,

i.e. the probability generating function of the count evaluated at ``pf``.
This module wraps that computation, provides the three processing corners of
Fig. 2.1 and exposes the inverse problem (what width achieves a required
pF), which the Wmin solver builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.count_model import CountModel, PoissonCountModel
from repro.growth.types import CNTTypeModel, per_cnt_failure_probability
from repro.units import ensure_positive, ensure_probability


@dataclass(frozen=True)
class ProcessingCorner:
    """A (pm, pRs) processing condition, as plotted in Fig. 2.1.

    ``pRm`` is assumed ≈ 1 as in the paper's main analysis; it does not enter
    the count-failure probability either way.
    """

    name: str
    metallic_fraction: float
    removal_prob_semiconducting: float

    def __post_init__(self) -> None:
        ensure_probability(self.metallic_fraction, "metallic_fraction")
        ensure_probability(
            self.removal_prob_semiconducting, "removal_prob_semiconducting"
        )

    @property
    def per_cnt_failure_probability(self) -> float:
        """pf = pm + (1 - pm)·pRs for this corner."""
        return per_cnt_failure_probability(
            self.metallic_fraction, self.removal_prob_semiconducting
        )

    def to_type_model(self, removal_prob_metallic: float = 1.0) -> CNTTypeModel:
        """Materialise the corner as a full :class:`CNTTypeModel`.

        ``removal_prob_metallic`` (``eta``, the conditional removal
        probability of a metallic tube) defaults to the paper's pRm = 1
        assumption; values below 1 activate the metallic-short failure
        mode of :mod:`repro.device.shorts` downstream.
        """
        return CNTTypeModel(
            metallic_fraction=self.metallic_fraction,
            removal_prob_metallic=ensure_probability(
                removal_prob_metallic, "removal_prob_metallic"
            ),
            removal_prob_semiconducting=self.removal_prob_semiconducting,
        )


#: The three processing corners of Fig. 2.1, worst first.
FIG2_1_CORNERS: Sequence[ProcessingCorner] = (
    ProcessingCorner("pm=33%, pRs=30%", 1.0 / 3.0, 0.30),
    ProcessingCorner("pm=33%, pRs=0%", 1.0 / 3.0, 0.0),
    ProcessingCorner("pm=0%, pRs=0%", 0.0, 0.0),
)


class CNFETFailureModel:
    """CNT count failure probability of a single CNFET as a function of width.

    Parameters
    ----------
    count_model:
        CNT count distribution Prob{N(W)}.
    per_cnt_failure:
        Per-tube failure probability pf (Eq. 2.1).  Either pass it directly
        or use :meth:`from_corner` / :meth:`from_type_model`.
    short_probability:
        Per-tube probability ``b = p_m · (1 - eta)`` of a *surviving*
        metallic short (:mod:`repro.device.shorts`).  The default 0
        keeps the opens-only Eq. 2.2 model bit for bit; any positive
        value switches :meth:`failure_probability` to the joint
        opens+shorts closed form.
    min_working_tubes:
        ``N_min`` — conducting semiconducting tubes required for the
        device to function (the paper's model is ``N_min = 1``).
    """

    def __init__(
        self,
        count_model: CountModel,
        per_cnt_failure: float,
        short_probability: float = 0.0,
        min_working_tubes: int = 1,
    ) -> None:
        self.count_model = count_model
        self.per_cnt_failure = ensure_probability(per_cnt_failure, "per_cnt_failure")
        self.short_probability = ensure_probability(
            short_probability, "short_probability"
        )
        if self.short_probability > self.per_cnt_failure:
            raise ValueError(
                "short_probability must not exceed per_cnt_failure "
                "(a surviving short is a failed tube)"
            )
        if int(min_working_tubes) < 1:
            raise ValueError("min_working_tubes must be a positive integer")
        self.min_working_tubes = int(min_working_tubes)

    @property
    def _joint(self) -> bool:
        """True when the joint opens+shorts model is active."""
        return self.short_probability > 0.0 or self.min_working_tubes > 1

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_corner(
        cls,
        count_model: CountModel,
        corner: ProcessingCorner,
        removal_eta: float = 1.0,
    ) -> "CNFETFailureModel":
        """Build a failure model for one of the Fig. 2.1 processing corners.

        ``removal_eta`` is the conditional metallic-removal probability
        ``eta``; values below 1 leave surviving shorts with per-tube
        probability ``p_m · (1 - eta)`` and activate the joint model.
        """
        return cls.from_type_model(
            count_model, corner.to_type_model(removal_prob_metallic=removal_eta)
        )

    @classmethod
    def from_type_model(
        cls, count_model: CountModel, type_model: CNTTypeModel
    ) -> "CNFETFailureModel":
        """Build a failure model from a full CNT type/removal model.

        The type model's ``surviving_metallic_probability`` becomes the
        short term — zero (hence the opens-only model, bit for bit) for
        every pRm = 1 model, which is all of them before the shorts
        extension.
        """
        return cls(
            count_model,
            type_model.per_cnt_failure_probability,
            short_probability=type_model.surviving_metallic_probability,
        )

    # ------------------------------------------------------------------
    # Forward problem: pF(W)
    # ------------------------------------------------------------------

    def failure_probability(self, width_nm: float) -> float:
        """pF(W) — Eq. 2.2, or the joint opens+shorts extension.

        With ``short_probability = 0`` and ``min_working_tubes = 1`` this
        is the count PGF at pf exactly as before; otherwise it is the
        thinned joint closed form of :mod:`repro.device.shorts`.
        """
        ensure_positive(width_nm, "width_nm")
        if self._joint:
            from repro.device.shorts import joint_failure_probability

            return joint_failure_probability(
                self.count_model,
                width_nm,
                self.per_cnt_failure,
                self.short_probability,
                min_working_tubes=self.min_working_tubes,
            )
        if self.per_cnt_failure == 1.0:
            return 1.0
        if self.per_cnt_failure == 0.0:
            # Only an empty active region fails.
            return self.count_model.prob_zero(width_nm)
        return float(self.count_model.pgf(width_nm, self.per_cnt_failure))

    def failure_probabilities(self, widths_nm: Iterable[float]) -> np.ndarray:
        """Vectorised :meth:`failure_probability`."""
        return np.array([self.failure_probability(float(w)) for w in widths_nm])

    def log_failure_probabilities(self, widths_nm: Iterable[float]) -> np.ndarray:
        """Natural-log pF(W) over a width array — the sweep-grid fast path.

        The yield-surface builder tabulates log pF, where the interesting
        values (1e-9 and below) underflow a plain probability array's
        relative precision.  Poisson count models evaluate the closed form
        ``log pF = -(W/µS)·(1 - pf)`` in one vectorised expression; other
        count models fall back to per-width PGF evaluations with
        underflowed probabilities mapped to ``-inf``.
        """
        widths = np.asarray(list(widths_nm), dtype=float)
        if widths.size and np.any(widths <= 0):
            raise ValueError("widths_nm must be positive")
        if self._joint:
            from repro.device.shorts import log_joint_failure_probabilities

            return log_joint_failure_probabilities(
                self.count_model,
                widths,
                self.per_cnt_failure,
                self.short_probability,
                min_working_tubes=self.min_working_tubes,
            )
        if isinstance(self.count_model, PoissonCountModel):
            lam = widths / self.count_model.mean_pitch_nm
            return -lam * (1.0 - self.per_cnt_failure)
        out = np.empty(widths.size, dtype=float)
        for i, w in enumerate(widths):
            p = self.failure_probability(float(w))
            out[i] = math.log(p) if p > 0.0 else -math.inf
        return out

    def log10_failure_probability(self, width_nm: float) -> float:
        """log10 pF(W); uses the Poisson closed form when available to avoid
        underflow at very large widths."""
        if (
            isinstance(self.count_model, PoissonCountModel)
            and self.per_cnt_failure < 1.0
            and not self._joint
        ):
            lam = self.count_model.rate(width_nm)
            return -lam * (1.0 - self.per_cnt_failure) / math.log(10.0)
        p = self.failure_probability(width_nm)
        if p <= 0.0:
            return -math.inf
        return math.log10(p)

    def survival_probability(self, width_nm: float) -> float:
        """1 - pF(W) — probability the device has at least one working tube."""
        return 1.0 - self.failure_probability(width_nm)

    # ------------------------------------------------------------------
    # Inverse problem: width for a required pF
    # ------------------------------------------------------------------

    def width_for_failure_probability(
        self,
        target_pf: float,
        w_low_nm: float = 1.0,
        w_high_nm: Optional[float] = None,
        tolerance_nm: float = 0.01,
    ) -> float:
        """Smallest width whose failure probability is at most ``target_pf``.

        pF(W) decreases monotonically with W (more tubes on average), so a
        bisection on W suffices.  ``w_high_nm`` is grown geometrically until
        it brackets the target if not supplied.

        Raises
        ------
        ValueError
            When the short failure mode is active: with surviving shorts
            pF(W) is no longer monotone in W (wider devices capture more
            shorting tubes), so no unique inverse exists.
        """
        if self.short_probability > 0.0:
            raise ValueError(
                "width_for_failure_probability is undefined with an active "
                "short failure mode: pF(W) is not monotone decreasing in W"
            )
        target_pf = ensure_probability(target_pf, "target_pf")
        if target_pf == 0.0:
            raise ValueError("target_pf = 0 cannot be met at any finite width")
        ensure_positive(w_low_nm, "w_low_nm")

        if self.failure_probability(w_low_nm) <= target_pf:
            return w_low_nm

        if w_high_nm is None:
            w_high_nm = max(2.0 * w_low_nm, 32.0)
            for _ in range(64):
                if self.failure_probability(w_high_nm) <= target_pf:
                    break
                w_high_nm *= 2.0
            else:
                raise RuntimeError(
                    "could not bracket the target failure probability "
                    f"{target_pf} with widths up to {w_high_nm} nm"
                )
        elif self.failure_probability(w_high_nm) > target_pf:
            raise ValueError(
                f"pF({w_high_nm} nm) is still above the target {target_pf}"
            )

        low, high = w_low_nm, w_high_nm
        while high - low > tolerance_nm:
            mid = 0.5 * (low + high)
            if self.failure_probability(mid) <= target_pf:
                high = mid
            else:
                low = mid
        return high

    # ------------------------------------------------------------------
    # Reporting helper
    # ------------------------------------------------------------------

    def curve(
        self, widths_nm: Iterable[float]
    ) -> "FailureCurve":
        """Evaluate the pF(W) curve over a set of widths (for Fig. 2.1)."""
        widths = np.asarray(list(widths_nm), dtype=float)
        return FailureCurve(
            widths_nm=widths,
            failure_probabilities=self.failure_probabilities(widths),
            per_cnt_failure=self.per_cnt_failure,
        )


@dataclass(frozen=True)
class FailureCurve:
    """A sampled pF(W) curve, as plotted in Fig. 2.1."""

    widths_nm: np.ndarray
    failure_probabilities: np.ndarray
    per_cnt_failure: float

    def interpolate_width(self, target_pf: float) -> float:
        """Width at which the curve crosses ``target_pf`` (log-linear interp)."""
        target_pf = ensure_probability(target_pf, "target_pf")
        if target_pf <= 0:
            raise ValueError("target_pf must be positive")
        log_p = np.log10(np.clip(self.failure_probabilities, 1e-300, None))
        log_target = math.log10(target_pf)
        # pF decreases with W: find the first index below the target.
        below = np.where(log_p <= log_target)[0]
        if below.size == 0:
            raise ValueError("curve never reaches the target failure probability")
        idx = below[0]
        if idx == 0:
            return float(self.widths_nm[0])
        w0, w1 = self.widths_nm[idx - 1], self.widths_nm[idx]
        p0, p1 = log_p[idx - 1], log_p[idx]
        if p1 == p0:
            return float(w1)
        frac = (log_target - p0) / (p1 - p0)
        return float(w0 + frac * (w1 - w0))
