"""End-to-end processing/design co-optimization flow.

This module ties the core models together into the flow the paper describes:

1. take a design's transistor-width histogram (and total device count M),
2. compute the unrelaxed Wmin and the upsizing penalty (Sec. 2 baseline),
3. compute the correlation relaxation from the growth (LCNT) and design
   (Pmin-CNFET) parameters (Sec. 3.1),
4. recompute Wmin with the relaxed budget and the residual penalty
   (Sec. 3.3),
5. report everything needed for Table 1, Fig. 2.2b and Fig. 3.3.

The flow operates purely on width statistics, so it can be driven either by
the synthetic OpenRISC design from :mod:`repro.netlist.openrisc` or by any
user-provided histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.constants import TECHNOLOGY_NODES_NM
from repro.core.calibration import CalibratedSetup
from repro.core.correlation import LayoutScenario, RowYieldResult
from repro.core.scaling import ScalingStudy, penalty_versus_node
from repro.core.upsizing import UpsizingAnalysis, UpsizingResult
from repro.core.wmin import WminResult
from repro.units import ensure_positive


@dataclass(frozen=True)
class CoOptimizationReport:
    """Complete result of the co-optimization flow for one design.

    Attributes
    ----------
    baseline_wmin:
        Wmin without correlation (Sec. 2).
    optimized_wmin:
        Wmin with directional growth + aligned-active layout (Sec. 3).
    relaxation_factor:
        Ratio of the two failure-probability budgets (≈350X in the paper).
    scenario_results:
        Row/chip yield per layout scenario, all evaluated at the *baseline*
        Wmin operating point — one shared device pF across the three
        columns, which is the paper's Table 1 convention (and the one
        :func:`repro.reporting.tables.table1_data` and
        :func:`repro.montecarlo.experiments.compare_tail_scenarios` use):
        the table isolates the layout/growth effect on pRF, so the device
        operating point must not change between columns.
    baseline_upsizing, optimized_upsizing:
        Upsizing penalty of the design at the two Wmin values (45 nm node).
    baseline_scaling, optimized_scaling:
        Penalty-versus-node series (the two lines of Fig. 3.3).
    """

    baseline_wmin: WminResult
    optimized_wmin: WminResult
    relaxation_factor: float
    scenario_results: Dict[LayoutScenario, RowYieldResult]
    baseline_upsizing: UpsizingResult
    optimized_upsizing: UpsizingResult
    baseline_scaling: ScalingStudy
    optimized_scaling: ScalingStudy

    @property
    def wmin_reduction_nm(self) -> float:
        """Absolute reduction of the upsizing threshold."""
        return self.baseline_wmin.wmin_nm - self.optimized_wmin.wmin_nm

    @property
    def penalty_reduction(self) -> float:
        """Reduction (fraction of the original total capacitance) in penalty."""
        return (
            self.baseline_upsizing.capacitance_penalty
            - self.optimized_upsizing.capacitance_penalty
        )

    def summary_lines(self) -> Sequence[str]:
        """Human-readable summary used by examples and benchmarks."""
        lines = [
            f"Yield target                : {self.baseline_wmin.yield_target:.2%}",
            f"Mmin (minimum-size devices) : {self.baseline_wmin.min_size_device_count:.3g}",
            f"Required pF (uncorrelated)  : {self.baseline_wmin.required_pf:.3g}",
            f"Required pF (optimized)     : {self.optimized_wmin.required_pf:.3g}",
            f"Relaxation factor           : {self.relaxation_factor:.1f}X",
            f"Wmin without correlation    : {self.baseline_wmin.wmin_nm:.1f} nm",
            f"Wmin with correlation       : {self.optimized_wmin.wmin_nm:.1f} nm",
            (
                "Penalty at 45 nm            : "
                f"{self.baseline_upsizing.penalty_percent:.1f}% -> "
                f"{self.optimized_upsizing.penalty_percent:.1f}%"
            ),
        ]
        for scenario, result in self.scenario_results.items():
            lines.append(
                f"pRF [{scenario.value:<24}] : {result.row_failure_probability:.3g}"
            )
        return lines


class CoOptimizationFlow:
    """Drives the full Sec. 2 + Sec. 3 analysis for one design.

    Parameters
    ----------
    setup:
        Calibrated physical/circuit setup (count model, corner, yield target,
        correlation parameters).
    widths_nm, counts:
        The design's transistor-width histogram at the reference node.
    min_size_device_count:
        Mmin.  If omitted, it is taken from ``setup`` (33 % of M), which
        mirrors the paper's two-smallest-bins estimate.
    """

    def __init__(
        self,
        setup: Optional[CalibratedSetup] = None,
        widths_nm: Optional[Sequence[float]] = None,
        counts: Optional[Sequence[float]] = None,
        min_size_device_count: Optional[float] = None,
    ) -> None:
        self.setup = setup or CalibratedSetup()
        if widths_nm is None:
            raise ValueError("widths_nm is required (the design's width histogram)")
        self.widths_nm = np.asarray(widths_nm, dtype=float)
        if self.widths_nm.size and np.any(self.widths_nm <= 0):
            raise ValueError("all widths must be strictly positive")
        if counts is None:
            self.counts = np.ones_like(self.widths_nm)
        else:
            self.counts = np.asarray(counts, dtype=float)
            if self.counts.shape != self.widths_nm.shape:
                raise ValueError("counts must match widths_nm in shape")
            if self.counts.size and np.any(self.counts < 0):
                raise ValueError("counts must be non-negative")
        if min_size_device_count is None:
            self.min_size_device_count = self.setup.min_size_device_count
        else:
            self.min_size_device_count = ensure_positive(
                min_size_device_count, "min_size_device_count"
            )

    # ------------------------------------------------------------------
    # Flow steps
    # ------------------------------------------------------------------

    def baseline_wmin(self) -> WminResult:
        """Step 2 — Wmin without any correlation benefit."""
        return self.setup.wmin_solver.solve_simplified(self.min_size_device_count)

    def relaxation_factor(self) -> float:
        """Step 3 — the correlation relaxation factor (≈350X)."""
        return self.setup.relaxation_factor()

    def optimized_wmin(self, relaxation_factor: Optional[float] = None) -> WminResult:
        """Step 4 — Wmin with the relaxed failure-probability budget."""
        factor = (
            relaxation_factor if relaxation_factor is not None
            else self.relaxation_factor()
        )
        return self.setup.wmin_solver.solve_simplified(
            self.min_size_device_count, relaxation_factor=factor
        )

    def scenario_results(
        self, wmin_nm: float
    ) -> Dict[LayoutScenario, RowYieldResult]:
        """Table 1 — pRF per scenario at the device pF implied by ``wmin_nm``."""
        p_f = self.setup.failure_model.failure_probability(wmin_nm)
        pf_cnt = self.setup.corner.per_cnt_failure_probability
        model = self.setup.row_yield_model
        results = {}
        for scenario in LayoutScenario:
            results[scenario] = model.evaluate(
                scenario,
                p_f,
                self.min_size_device_count,
                width_nm=wmin_nm,
                per_cnt_failure=pf_cnt,
            )
        return results

    def run(
        self, nodes_nm: Optional[Sequence[float]] = None
    ) -> CoOptimizationReport:
        """Run the complete flow and return a :class:`CoOptimizationReport`."""
        nodes = list(nodes_nm) if nodes_nm is not None else list(TECHNOLOGY_NODES_NM)
        baseline = self.baseline_wmin()
        factor = self.relaxation_factor()
        optimized = self.optimized_wmin(factor)

        upsizing = UpsizingAnalysis(self.widths_nm, self.counts)
        baseline_upsizing = upsizing.analyse(baseline.wmin_nm)
        optimized_upsizing = upsizing.analyse(optimized.wmin_nm)

        baseline_scaling = penalty_versus_node(
            self.widths_nm, self.counts, baseline.wmin_nm,
            nodes_nm=nodes, label="Without CNT correlation",
        )
        optimized_scaling = penalty_versus_node(
            self.widths_nm, self.counts, optimized.wmin_nm,
            nodes_nm=nodes, label="With CNT correlation and aligned-active cells",
        )

        return CoOptimizationReport(
            baseline_wmin=baseline,
            optimized_wmin=optimized,
            relaxation_factor=factor,
            # Table 1 convention: every scenario column shares the device
            # operating point of the baseline (Sec. 2) Wmin, so the pRF
            # ratios isolate the growth/layout effect.  Evaluating at the
            # optimized Wmin would compare the uncorrelated column at a pF
            # it never operates at (see reporting.tables.table1_data).
            scenario_results=self.scenario_results(baseline.wmin_nm),
            baseline_upsizing=baseline_upsizing,
            optimized_upsizing=optimized_upsizing,
            baseline_scaling=baseline_scaling,
            optimized_scaling=optimized_scaling,
        )
