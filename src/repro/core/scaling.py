"""Technology scaling of the width distribution — Fig. 2.2b and Fig. 3.3.

The paper performs a predictive scaling analysis: the CNFET width
distribution extracted at 45 nm is assumed to scale linearly with the
technology node (so a 120 nm device at 45 nm becomes ~85 nm at 32 nm), while
the inter-CNT pitch stays fixed at 4 nm because it is a growth property, not
a lithography property.  Consequently the width Wmin required to hit a given
failure probability does not shrink with the node, and the upsizing penalty
— the relative width increase needed to pull small devices up to Wmin —
grows rapidly at scaled nodes.  Correlation-aware design (Sec. 3) relaxes
the required pF and hence Wmin, which largely removes the penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.constants import REFERENCE_NODE_NM, TECHNOLOGY_NODES_NM
from repro.core.upsizing import UpsizingAnalysis
from repro.units import ensure_positive


class TechnologyScaler:
    """Scales a width distribution between technology nodes.

    Parameters
    ----------
    reference_node_nm:
        The node at which the width distribution was extracted (45 nm).
    """

    def __init__(self, reference_node_nm: float = REFERENCE_NODE_NM) -> None:
        self.reference_node_nm = ensure_positive(reference_node_nm, "reference_node_nm")

    def scale_factor(self, target_node_nm: float) -> float:
        """Linear scale factor from the reference node to the target node."""
        ensure_positive(target_node_nm, "target_node_nm")
        return target_node_nm / self.reference_node_nm

    def scale_widths(
        self, widths_nm: Iterable[float], target_node_nm: float
    ) -> np.ndarray:
        """Scale a width population to another node."""
        factor = self.scale_factor(target_node_nm)
        widths = np.asarray(list(widths_nm), dtype=float)
        if widths.size and np.any(widths <= 0):
            raise ValueError("all widths must be strictly positive")
        return widths * factor


@dataclass(frozen=True)
class ScalingPoint:
    """Upsizing penalty at one technology node."""

    node_nm: float
    wmin_nm: float
    penalty: float
    devices_upsized_fraction: float

    @property
    def penalty_percent(self) -> float:
        """Penalty as a percentage."""
        return 100.0 * self.penalty


@dataclass(frozen=True)
class ScalingStudy:
    """Penalty-versus-node series (one line of Fig. 2.2b / Fig. 3.3)."""

    label: str
    points: Sequence[ScalingPoint]

    @property
    def nodes_nm(self) -> np.ndarray:
        """Technology nodes of the series."""
        return np.array([p.node_nm for p in self.points])

    @property
    def penalties_percent(self) -> np.ndarray:
        """Penalty (%) per node."""
        return np.array([p.penalty_percent for p in self.points])

    def penalty_at(self, node_nm: float) -> float:
        """Penalty (fraction) at a given node."""
        for p in self.points:
            if p.node_nm == node_nm:
                return p.penalty
        raise KeyError(f"node {node_nm} nm not part of this study")


def penalty_versus_node(
    widths_nm: Iterable[float],
    counts: Iterable[float],
    wmin_nm: float,
    nodes_nm: Optional[Sequence[float]] = None,
    reference_node_nm: float = REFERENCE_NODE_NM,
    label: str = "",
) -> ScalingStudy:
    """Upsizing penalty across technology nodes for a fixed Wmin (in nm).

    Wmin stays constant in nanometres across nodes because it is set by the
    CNT pitch and the failure-probability budget, neither of which scales
    with lithography; the width distribution itself scales linearly.
    """
    ensure_positive(wmin_nm, "wmin_nm")
    nodes = list(nodes_nm) if nodes_nm is not None else list(TECHNOLOGY_NODES_NM)
    widths = np.asarray(list(widths_nm), dtype=float)
    count_arr = np.asarray(list(counts), dtype=float)
    scaler = TechnologyScaler(reference_node_nm)

    points: List[ScalingPoint] = []
    for node in nodes:
        scaled = scaler.scale_widths(widths, node)
        analysis = UpsizingAnalysis(scaled, count_arr)
        result = analysis.analyse(wmin_nm)
        points.append(
            ScalingPoint(
                node_nm=float(node),
                wmin_nm=float(wmin_nm),
                penalty=result.capacitance_penalty,
                devices_upsized_fraction=result.upsized_fraction,
            )
        )
    return ScalingStudy(label=label or f"Wmin = {wmin_nm:.0f} nm", points=tuple(points))


def penalty_comparison(
    widths_nm: Iterable[float],
    counts: Iterable[float],
    wmin_uncorrelated_nm: float,
    wmin_correlated_nm: float,
    nodes_nm: Optional[Sequence[float]] = None,
    reference_node_nm: float = REFERENCE_NODE_NM,
) -> List[ScalingStudy]:
    """The two series of Fig. 3.3: penalty with and without CNT correlation."""
    widths = list(widths_nm)
    count_list = list(counts)
    without = penalty_versus_node(
        widths, count_list, wmin_uncorrelated_nm,
        nodes_nm=nodes_nm, reference_node_nm=reference_node_nm,
        label="Without CNT correlation",
    )
    with_corr = penalty_versus_node(
        widths, count_list, wmin_correlated_nm,
        nodes_nm=nodes_nm, reference_node_nm=reference_node_nm,
        label="With CNT correlation and aligned-active cells",
    )
    return [without, with_corr]
