"""Upsizing of small-width CNFETs and its cost — Sec. 2.2 and Fig. 2.2b.

Upsizing is the baseline yield fix: every device narrower than a threshold
Wt is widened to Wt, which multiplies its average CNT count and drives its
failure probability down exponentially.  The costs are:

* negligible area cost in standard-cell designs (row height is fixed and the
  smallest cells have slack), and
* a power cost proportional to the total transistor-width increase, which
  the paper reports as the percentage increase of total gate capacitance.

This module implements the upsizing operator ``U_Wt(W) = max(W, Wt)``, the
penalty metric, and a small analysis object that bundles the two together
with the width histogram of a design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.device.capacitance import GateCapacitanceModel
from repro.units import ensure_positive


def upsize_widths(
    widths_nm: Iterable[float], threshold_nm: float
) -> np.ndarray:
    """Apply the upsizing operator ``U_Wt(W) = max(W, Wt)`` element-wise."""
    ensure_positive(threshold_nm, "threshold_nm")
    widths = np.asarray(list(widths_nm), dtype=float)
    if widths.size and np.any(widths <= 0):
        raise ValueError("all widths must be strictly positive")
    return np.maximum(widths, threshold_nm)


@dataclass(frozen=True)
class UpsizingResult:
    """Outcome of upsizing a width population to a threshold."""

    threshold_nm: float
    total_width_before_nm: float
    total_width_after_nm: float
    devices_upsized: float
    device_count: float
    capacitance_penalty: float

    @property
    def penalty_percent(self) -> float:
        """Penalty as a percentage (the unit of Fig. 2.2b / Fig. 3.3)."""
        return 100.0 * self.capacitance_penalty

    @property
    def upsized_fraction(self) -> float:
        """Fraction of devices that were widened."""
        if self.device_count == 0:
            return 0.0
        return self.devices_upsized / self.device_count


class UpsizingAnalysis:
    """Computes upsizing penalties for a design's width histogram.

    Parameters
    ----------
    widths_nm:
        Device widths — either every device or histogram bin centres.
    counts:
        Optional multiplicities matching ``widths_nm`` (histogram form).
    capacitance_model:
        Gate-capacitance model; the default width-proportional model matches
        the paper's penalty definition.
    """

    def __init__(
        self,
        widths_nm: Iterable[float],
        counts: Optional[Iterable[float]] = None,
        capacitance_model: Optional[GateCapacitanceModel] = None,
    ) -> None:
        self.widths_nm = np.asarray(list(widths_nm), dtype=float)
        if self.widths_nm.size == 0:
            raise ValueError("widths_nm must not be empty")
        if np.any(self.widths_nm <= 0):
            raise ValueError("all widths must be strictly positive")
        if counts is None:
            self.counts = np.ones_like(self.widths_nm)
        else:
            self.counts = np.asarray(list(counts), dtype=float)
            if self.counts.shape != self.widths_nm.shape:
                raise ValueError("counts must match widths_nm in shape")
            if np.any(self.counts < 0):
                raise ValueError("counts must be non-negative")
        self.capacitance_model = capacitance_model or GateCapacitanceModel()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def device_count(self) -> float:
        """Total number of devices described by the histogram."""
        return float(np.sum(self.counts))

    @property
    def total_width_nm(self) -> float:
        """Total transistor width before upsizing."""
        return float(np.sum(self.widths_nm * self.counts))

    def total_width_after_nm(self, threshold_nm: float) -> float:
        """Total transistor width after upsizing to ``threshold_nm``."""
        upsized = upsize_widths(self.widths_nm, threshold_nm)
        return float(np.sum(upsized * self.counts))

    def devices_below(self, threshold_nm: float) -> float:
        """Number of devices strictly below the threshold (those upsized)."""
        ensure_positive(threshold_nm, "threshold_nm")
        return float(np.sum(self.counts[self.widths_nm < threshold_nm]))

    # ------------------------------------------------------------------
    # Penalty
    # ------------------------------------------------------------------

    def capacitance_penalty(self, threshold_nm: float) -> float:
        """Fractional gate-capacitance increase from upsizing to the threshold.

        With the width-proportional capacitance model this equals the total
        transistor-width increase ratio, exactly the paper's metric.
        """
        before = self.total_width_nm
        after = self.total_width_after_nm(threshold_nm)
        # Use the capacitance model so a non-zero fixed term, if configured,
        # is honoured; with the default model this reduces to width ratios.
        cap_before = (
            before * self.capacitance_model.capacitance_per_width_af_per_nm
            + self.device_count * self.capacitance_model.fixed_capacitance_af
        )
        cap_after = (
            after * self.capacitance_model.capacitance_per_width_af_per_nm
            + self.device_count * self.capacitance_model.fixed_capacitance_af
        )
        if cap_before == 0:
            raise ValueError("design has zero total capacitance")
        return cap_after / cap_before - 1.0

    def analyse(self, threshold_nm: float) -> UpsizingResult:
        """Full upsizing summary at a threshold."""
        ensure_positive(threshold_nm, "threshold_nm")
        return UpsizingResult(
            threshold_nm=float(threshold_nm),
            total_width_before_nm=self.total_width_nm,
            total_width_after_nm=self.total_width_after_nm(threshold_nm),
            devices_upsized=self.devices_below(threshold_nm),
            device_count=self.device_count,
            capacitance_penalty=self.capacitance_penalty(threshold_nm),
        )

    def penalty_curve(self, thresholds_nm: Iterable[float]) -> np.ndarray:
        """Penalty (fraction) for each threshold in ``thresholds_nm``."""
        return np.array(
            [self.capacitance_penalty(float(t)) for t in thresholds_nm]
        )
