"""The minimum upsizing threshold Wmin — Eq. 2.4 / 2.5.

Given a chip yield target and a transistor-width population, the paper asks:
what is the smallest threshold width Wt such that, after upsizing every
device narrower than Wt up to Wt, the chip meets the yield target?  The
simplified formulation (Eq. 2.5) observes that the yield loss is dominated
by the Mmin devices that end up at the minimum size, so Wmin is the width at
which the device failure curve crosses the per-device budget
``(1 - Yield_desired) / Mmin`` — exactly the horizontal-line construction on
Fig. 2.1.

The solver here implements both formulations:

* :meth:`WminSolver.solve_simplified` — the paper's Eq. 2.5 construction,
  optionally with a relaxation factor (the 350X of Sec. 3).
* :meth:`WminSolver.solve_exact` — bisection on Wt using the full product
  yield over the width histogram (Eq. 2.4), which also accounts for the
  yield loss of the non-minimum-size devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.circuit_yield import (
    chip_yield_from_failure_probabilities,
    required_device_failure_probability,
)
from repro.core.failure import CNFETFailureModel
from repro.units import ensure_positive, ensure_probability


@dataclass(frozen=True)
class WminResult:
    """Outcome of a Wmin computation.

    Attributes
    ----------
    wmin_nm:
        The minimum threshold width that meets the yield target.
    required_pf:
        The device-level failure-probability budget used (after relaxation).
    relaxation_factor:
        Multiplier applied to the unrelaxed budget (1.0 = no correlation
        benefit; ≈350 for the paper's optimised flow).
    yield_target:
        The chip yield requirement.
    min_size_device_count:
        Mmin used in the budget.
    achieved_yield:
        Yield predicted at the returned Wmin (None for the simplified path
        when no width population was supplied).
    """

    wmin_nm: float
    required_pf: float
    relaxation_factor: float
    yield_target: float
    min_size_device_count: float
    achieved_yield: Optional[float] = None


class WminSolver:
    """Solves for the minimum upsizing threshold Wmin.

    Parameters
    ----------
    failure_model:
        Device-level failure model pF(W).
    yield_target:
        Desired chip-level CNT-count-limited yield (e.g. 0.90).
    """

    def __init__(self, failure_model: CNFETFailureModel, yield_target: float) -> None:
        self.failure_model = failure_model
        self.yield_target = ensure_probability(yield_target, "yield_target")
        if self.yield_target >= 1.0:
            raise ValueError("a yield target of exactly 1.0 cannot be met")

    # ------------------------------------------------------------------
    # Simplified formulation (Eq. 2.5)
    # ------------------------------------------------------------------

    def required_pf(
        self, min_size_device_count: float, relaxation_factor: float = 1.0
    ) -> float:
        """Device failure budget (1 - Yield)/Mmin, scaled by the relaxation.

        The relaxation factor is the paper's correlation benefit: directional
        growth plus aligned-active layout reduce the *chip-level* failure
        probability by Mmin/KR, which is equivalent to multiplying the
        per-device budget by the same factor (capped at 1.0 — a budget can
        never exceed certainty).
        """
        ensure_positive(min_size_device_count, "min_size_device_count")
        ensure_positive(relaxation_factor, "relaxation_factor")
        budget = required_device_failure_probability(
            self.yield_target, min_size_device_count
        )
        return min(budget * relaxation_factor, 1.0)

    def solve_simplified(
        self,
        min_size_device_count: float,
        relaxation_factor: float = 1.0,
        w_low_nm: float = 1.0,
        tolerance_nm: float = 0.01,
    ) -> WminResult:
        """Wmin per Eq. 2.5: the width where pF(W) meets the (relaxed) budget."""
        budget = self.required_pf(min_size_device_count, relaxation_factor)
        wmin = self.failure_model.width_for_failure_probability(
            budget, w_low_nm=w_low_nm, tolerance_nm=tolerance_nm
        )
        return WminResult(
            wmin_nm=wmin,
            required_pf=budget,
            relaxation_factor=relaxation_factor,
            yield_target=self.yield_target,
            min_size_device_count=min_size_device_count,
        )

    # ------------------------------------------------------------------
    # Exact formulation (Eq. 2.4)
    # ------------------------------------------------------------------

    def _yield_after_upsizing(
        self,
        widths_nm: np.ndarray,
        counts: np.ndarray,
        threshold_nm: float,
    ) -> float:
        """Chip yield when every device is upsized to at least ``threshold_nm``."""
        upsized = np.maximum(widths_nm, threshold_nm)
        unique, inverse = np.unique(upsized, return_inverse=True)
        merged_counts = np.zeros(unique.size)
        np.add.at(merged_counts, inverse, counts)
        probabilities = self.failure_model.failure_probabilities(unique)
        return chip_yield_from_failure_probabilities(probabilities, counts=merged_counts)

    def solve_exact(
        self,
        widths_nm: np.ndarray,
        counts: Optional[np.ndarray] = None,
        relaxation_factor: float = 1.0,
        w_high_nm: Optional[float] = None,
        tolerance_nm: float = 0.01,
    ) -> WminResult:
        """Wmin per Eq. 2.4: smallest threshold whose post-upsizing yield passes.

        Parameters
        ----------
        widths_nm, counts:
            Width histogram of the design (every device, or bin centres with
            multiplicities).
        relaxation_factor:
            Correlation benefit applied as an effective reduction of the
            failure probability of each device class (chip failure
            probability divided by the factor, consistent with Eq. 3.1).
        """
        widths_nm = np.asarray(widths_nm, dtype=float)
        ensure_positive(relaxation_factor, "relaxation_factor")
        if widths_nm.size == 0:
            raise ValueError("widths_nm must not be empty")
        if counts is None:
            counts = np.ones_like(widths_nm)
        else:
            counts = np.asarray(counts, dtype=float)
            if counts.shape != widths_nm.shape:
                raise ValueError("counts must match widths_nm in shape")

        # The correlation benefit divides the chip-level failure probability;
        # implement it by shrinking per-class counts, which is equivalent at
        # first order and keeps the exact product well defined.
        effective_counts = counts / relaxation_factor

        def passes(threshold: float) -> bool:
            return (
                self._yield_after_upsizing(widths_nm, effective_counts, threshold)
                >= self.yield_target
            )

        w_low = float(np.min(widths_nm))
        if passes(w_low):
            # No upsizing needed at all.
            wmin = w_low
        else:
            if w_high_nm is None:
                w_high_nm = max(2.0 * w_low, 32.0)
                for _ in range(64):
                    if passes(w_high_nm):
                        break
                    w_high_nm *= 2.0
                else:
                    raise RuntimeError(
                        "could not find a threshold meeting the yield target"
                    )
            low, high = w_low, float(w_high_nm)
            while high - low > tolerance_nm:
                mid = 0.5 * (low + high)
                if passes(mid):
                    high = mid
                else:
                    low = mid
            wmin = high

        min_count = float(np.sum(counts[widths_nm <= wmin]))
        achieved = self._yield_after_upsizing(widths_nm, effective_counts, wmin)
        budget = self.required_pf(max(min_count, 1.0), relaxation_factor)
        return WminResult(
            wmin_nm=wmin,
            required_pf=budget,
            relaxation_factor=relaxation_factor,
            yield_target=self.yield_target,
            min_size_device_count=min_count,
            achieved_yield=achieved,
        )

    # ------------------------------------------------------------------
    # Consistency check used by tests and EXPERIMENTS.md tooling
    # ------------------------------------------------------------------

    def verify_min_size_count(
        self,
        widths_nm: np.ndarray,
        counts: np.ndarray,
        wmin_result: WminResult,
    ) -> float:
        """Number of devices at or below the solved Wmin.

        The paper notes that estimating Mmin is iterative: one assumes which
        histogram bins are "small", solves for Wmin, and checks that exactly
        those bins fall below it.  This helper returns the post-hoc count so
        callers can validate their initial Mmin choice.
        """
        widths_nm = np.asarray(widths_nm, dtype=float)
        counts = np.asarray(counts, dtype=float)
        return float(np.sum(counts[widths_nm <= wmin_result.wmin_nm]))
