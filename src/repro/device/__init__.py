"""CNFET device substrate.

Models of a single carbon-nanotube FET as needed by the yield analysis:

* :mod:`repro.device.active_region` — the rectangular active region that
  defines which CNTs a device captures.
* :mod:`repro.device.cnfet` — the CNFET device object combining an active
  region with a captured CNT population.
* :mod:`repro.device.current` — per-tube and per-device on-current model
  (diameter dependence, series contribution of parallel tubes).
* :mod:`repro.device.variation` — drive-current variation and the
  statistical-averaging (1/sqrt(N)) behaviour the paper builds on.
* :mod:`repro.device.capacitance` — gate-capacitance model used by the
  upsizing-penalty metric (penalty ∝ total transistor width increase).
* :mod:`repro.device.shorts` — the metallic-CNT short failure mode and
  the joint opens+shorts closed form (thinning of the count renewal
  process), the Eq. 2.2 extension for imperfect metallic removal.
"""

from repro.device.active_region import ActiveRegion, Polarity
from repro.device.cnfet import CNFET, CNFETFailure
from repro.device.current import CNTCurrentModel, device_on_current
from repro.device.variation import DriveCurrentVariationModel, VariationSummary
from repro.device.capacitance import GateCapacitanceModel
from repro.device.shorts import (
    ShortsModel,
    joint_failure_probabilities,
    joint_failure_probability,
    log_joint_failure_probabilities,
    short_only_failure_probability,
    surviving_short_probability,
)

__all__ = [
    "ActiveRegion",
    "Polarity",
    "CNFET",
    "CNFETFailure",
    "CNTCurrentModel",
    "device_on_current",
    "DriveCurrentVariationModel",
    "VariationSummary",
    "GateCapacitanceModel",
    "ShortsModel",
    "surviving_short_probability",
    "joint_failure_probability",
    "joint_failure_probabilities",
    "log_joint_failure_probabilities",
    "short_only_failure_probability",
]
