"""Active regions: the layout windows that capture CNTs.

In CNFET technology the *active region* is the rectangle that encloses the
device channel: CNTs crossing the active region between source and drain act
as channels, CNTs outside all active regions are etched away.  The paper's
central layout idea — the aligned-active restriction — is expressed entirely
in terms of the positions of these rectangles, so they get their own value
object here, shared by the device layer and the standard-cell layer.

Coordinate convention (matching Fig. 3.2 of the paper):

* ``x`` runs along the CNT growth direction (across a placement row),
* ``y`` runs along the device-width axis (the direction in which CNTs are
  counted).

A CNFET of width ``W`` therefore occupies a y-interval of extent ``W``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.units import ensure_positive


class Polarity(enum.Enum):
    """Transistor polarity of the device an active region belongs to."""

    NFET = "n"
    PFET = "p"

    @property
    def opposite(self) -> "Polarity":
        """The other polarity."""
        return Polarity.PFET if self is Polarity.NFET else Polarity.NFET


@dataclass(frozen=True)
class ActiveRegion:
    """Rectangular active region of a CNFET.

    Parameters
    ----------
    x_nm:
        Left edge along the growth direction.
    y_nm:
        Bottom edge along the width axis.
    length_nm:
        Extent along the growth direction (roughly the gate/contact pitch of
        the device stack).
    width_nm:
        Extent along the width axis — this is the CNFET width ``W`` that
        controls how many CNTs the device captures.
    polarity:
        n-type or p-type.
    """

    x_nm: float
    y_nm: float
    length_nm: float
    width_nm: float
    polarity: Polarity = Polarity.NFET

    def __post_init__(self) -> None:
        ensure_positive(self.length_nm, "length_nm")
        ensure_positive(self.width_nm, "width_nm")

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    @property
    def x_end_nm(self) -> float:
        """Right edge along the growth direction."""
        return self.x_nm + self.length_nm

    @property
    def y_end_nm(self) -> float:
        """Top edge along the width axis."""
        return self.y_nm + self.width_nm

    @property
    def y_center_nm(self) -> float:
        """Centre of the region along the width axis."""
        return self.y_nm + 0.5 * self.width_nm

    @property
    def area_nm2(self) -> float:
        """Area of the region in nm²."""
        return self.length_nm * self.width_nm

    def y_overlap_nm(self, other: "ActiveRegion") -> float:
        """Extent of overlap with ``other`` along the width axis (>= 0)."""
        low = max(self.y_nm, other.y_nm)
        high = min(self.y_end_nm, other.y_end_nm)
        return max(0.0, high - low)

    def x_overlap_nm(self, other: "ActiveRegion") -> float:
        """Extent of overlap with ``other`` along the growth direction (>= 0)."""
        low = max(self.x_nm, other.x_nm)
        high = min(self.x_end_nm, other.x_end_nm)
        return max(0.0, high - low)

    def is_aligned_with(self, other: "ActiveRegion", tolerance_nm: float = 1e-6) -> bool:
        """Whether two regions occupy exactly the same y-interval.

        Two equally sized regions that are aligned in the CNT direction share
        the same CNTs (up to the CNT length) — the condition under which the
        paper's full correlation benefit is obtained.
        """
        return (
            abs(self.y_nm - other.y_nm) <= tolerance_nm
            and abs(self.width_nm - other.width_nm) <= tolerance_nm
        )

    def shares_tracks_with(self, other: "ActiveRegion") -> bool:
        """Whether the two regions capture at least one common CNT track
        (i.e. their y-intervals overlap)."""
        return self.y_overlap_nm(other) > 0.0

    # ------------------------------------------------------------------
    # Transformations used by the aligned-active heuristic
    # ------------------------------------------------------------------

    def moved_to_y(self, new_y_nm: float) -> "ActiveRegion":
        """Return a copy translated so its bottom edge sits at ``new_y_nm``."""
        return replace(self, y_nm=float(new_y_nm))

    def widened_to(self, new_width_nm: float) -> "ActiveRegion":
        """Return a copy with its width increased to ``new_width_nm``.

        Widths can only grow (upsizing); shrinking raises ``ValueError``.
        """
        new_width_nm = float(new_width_nm)
        if new_width_nm < self.width_nm:
            raise ValueError(
                f"cannot shrink active region from {self.width_nm} nm "
                f"to {new_width_nm} nm"
            )
        return replace(self, width_nm=new_width_nm)

    def moved_by(self, dx_nm: float = 0.0, dy_nm: float = 0.0) -> "ActiveRegion":
        """Return a copy translated by ``(dx_nm, dy_nm)``."""
        return replace(self, x_nm=self.x_nm + dx_nm, y_nm=self.y_nm + dy_nm)
