"""Gate-capacitance model used by the upsizing-penalty metric.

The paper measures the power cost of upsizing small CNFETs as the percentage
increase in *total gate capacitance*, and notes that both static and dynamic
power penalties are roughly proportional to the total transistor-width
increase.  A first-order gate-capacitance model therefore suffices: each
device contributes a capacitance proportional to its width (plus an optional
width-independent fringe/overlap term), and the penalty metric is a ratio in
which the proportionality constant cancels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.units import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class GateCapacitanceModel:
    """Width-proportional gate capacitance model.

    Parameters
    ----------
    capacitance_per_width_af_per_nm:
        Gate capacitance per nanometre of device width, in attofarads/nm.
        The default is an arbitrary but physically plausible value; penalty
        metrics are ratios and do not depend on it.
    fixed_capacitance_af:
        Width-independent per-device term (fringe, overlap).  The paper's
        penalty metric corresponds to ``fixed_capacitance_af = 0``.
    """

    capacitance_per_width_af_per_nm: float = 1.0
    fixed_capacitance_af: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive(
            self.capacitance_per_width_af_per_nm, "capacitance_per_width_af_per_nm"
        )
        ensure_non_negative(self.fixed_capacitance_af, "fixed_capacitance_af")

    def device_capacitance_af(self, width_nm: float) -> float:
        """Gate capacitance of one device of the given width."""
        ensure_positive(width_nm, "width_nm")
        return (
            self.capacitance_per_width_af_per_nm * width_nm + self.fixed_capacitance_af
        )

    def total_capacitance_af(self, widths_nm: Iterable[float]) -> float:
        """Total gate capacitance of a collection of devices."""
        widths = np.asarray(list(widths_nm), dtype=float)
        if widths.size == 0:
            return 0.0
        if np.any(widths <= 0):
            raise ValueError("all widths must be strictly positive")
        return float(
            np.sum(widths) * self.capacitance_per_width_af_per_nm
            + widths.size * self.fixed_capacitance_af
        )

    def capacitance_increase_ratio(
        self,
        original_widths_nm: Iterable[float],
        upsized_widths_nm: Iterable[float],
    ) -> float:
        """Fractional increase in total gate capacitance after upsizing.

        This is the paper's "penalty" metric of Fig. 2.2b / Fig. 3.3, e.g.
        ``0.25`` means a 25 % increase.
        """
        original = self.total_capacitance_af(original_widths_nm)
        upsized = self.total_capacitance_af(upsized_widths_nm)
        if original == 0.0:
            raise ValueError("original design has no devices")
        return upsized / original - 1.0

    def dynamic_power_increase_ratio(
        self,
        original_widths_nm: Iterable[float],
        upsized_widths_nm: Iterable[float],
        activity_factor: float = 1.0,
    ) -> float:
        """Dynamic-power increase; proportional to the capacitance increase.

        The activity factor cancels in the ratio but is accepted to document
        the assumption that upsizing does not change switching activity.
        """
        ensure_positive(activity_factor, "activity_factor")
        return self.capacitance_increase_ratio(original_widths_nm, upsized_widths_nm)
