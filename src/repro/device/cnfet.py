"""The CNFET device object.

A :class:`CNFET` combines an :class:`~repro.device.active_region.ActiveRegion`
with the CNT population it captured.  It is the object the Monte Carlo layer
reasons about; the analytical layer works with width alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.device.active_region import ActiveRegion, Polarity
from repro.device.current import CNTCurrentModel
from repro.growth.cnt import CNT, CNTTrack, CNTType


class CNFETFailure(enum.Enum):
    """Failure classification of a fabricated CNFET."""

    NONE = "none"
    COUNT_FAILURE = "count_failure"
    """No semiconducting, non-removed CNT between source and drain —
    the failure mode the paper's yield model targets."""


@dataclass
class CNFET:
    """A fabricated CNFET: an active region plus its captured CNTs.

    Parameters
    ----------
    name:
        Instance name, e.g. ``"u42/mn1"``.
    active_region:
        Layout window of the device; its ``width_nm`` is the design width W.
    cnts:
        CNTs captured by the active region (post-removal flags included).
    """

    name: str
    active_region: ActiveRegion
    cnts: Tuple[CNT, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_tracks(
        cls,
        name: str,
        active_region: ActiveRegion,
        tracks: Sequence[CNTTrack],
    ) -> "CNFET":
        """Build a device by intersecting an active region with grown tracks."""
        captured = [
            t.as_cnt()
            for t in tracks
            if t.covers(
                active_region.y_nm,
                active_region.y_end_nm,
                active_region.x_nm,
                active_region.x_end_nm,
            )
        ]
        return cls(name=name, active_region=active_region, cnts=tuple(captured))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def width_nm(self) -> float:
        """Design width W of the device."""
        return self.active_region.width_nm

    @property
    def polarity(self) -> Polarity:
        """n-type or p-type."""
        return self.active_region.polarity

    @property
    def total_cnt_count(self) -> int:
        """Number of tubes captured before considering type/removal."""
        return len(self.cnts)

    @property
    def working_cnt_count(self) -> int:
        """Number of semiconducting, non-removed tubes (the channel count)."""
        return sum(1 for c in self.cnts if c.contributes_to_channel)

    @property
    def surviving_metallic_count(self) -> int:
        """Metallic tubes that escaped removal (short the device)."""
        return sum(
            1 for c in self.cnts
            if c.cnt_type is CNTType.METALLIC and not c.removed
        )

    @property
    def failure(self) -> CNFETFailure:
        """Failure classification — count failure iff no working tube."""
        if self.working_cnt_count == 0:
            return CNFETFailure.COUNT_FAILURE
        return CNFETFailure.NONE

    @property
    def failed(self) -> bool:
        """True when the device suffers CNT count failure."""
        return self.failure is CNFETFailure.COUNT_FAILURE

    # ------------------------------------------------------------------
    # Electrical summaries
    # ------------------------------------------------------------------

    def on_current_ua(self, current_model: Optional[CNTCurrentModel] = None) -> float:
        """On-current of the device under the given per-tube current model."""
        model = current_model or CNTCurrentModel()
        return model.device_on_current_ua(self.cnts)

    def off_current_ua(self, current_model: Optional[CNTCurrentModel] = None) -> float:
        """Off-state current (surviving metallic tubes only)."""
        model = current_model or CNTCurrentModel()
        return model.device_off_current_ua(self.cnts)

    def shares_tracks_with(self, other: "CNFET") -> bool:
        """Whether this device's active region overlaps ``other``'s in y.

        Overlapping y-intervals is the necessary geometric condition for two
        devices to share CNTs under directional growth.
        """
        return self.active_region.shares_tracks_with(other.active_region)
