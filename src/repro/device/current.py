"""Per-tube and per-device on-current model.

The yield analysis of the paper only needs the *count* of working CNTs, but
the prior work it builds on (statistical averaging of drive current,
σ(Ion)/µ(Ion) ∝ 1/√N) and the variation/delay extensions in
:mod:`repro.analysis` need a simple drive-current model.  We use a compact
first-order model:

* each semiconducting tube contributes an on-current that grows with its
  diameter (smaller band gap → higher current) and with the drive voltage,
* tubes conduct in parallel, so the device current is the sum of per-tube
  currents,
* metallic tubes that escaped removal contribute a gate-independent leakage
  path (used by the noise-margin extension, not by Ion).

The absolute scale is calibrated to a nominal value per tube; every consumer
of this model works with ratios, so the absolute calibration never affects
the reproduced results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.growth.cnt import CNT
from repro.units import ensure_positive


@dataclass(frozen=True)
class CNTCurrentModel:
    """First-order per-tube current model.

    Parameters
    ----------
    nominal_on_current_ua:
        On-current (µA) of a semiconducting tube at the reference diameter
        and drive voltage.
    reference_diameter_nm:
        Diameter at which the nominal current is defined.
    diameter_exponent:
        Sensitivity of the per-tube current to diameter;
        ``I ∝ (d / d_ref) ** diameter_exponent``.
    metallic_current_ua:
        Current carried by a surviving metallic tube (gate independent).
    vdd:
        Supply voltage; on-current is assumed proportional to
        ``(vdd - vt) / (vdd_ref - vt)`` through a linear overdrive factor.
    threshold_voltage:
        Device threshold voltage used for the overdrive factor.
    reference_vdd:
        Supply at which the nominal current is defined.
    """

    nominal_on_current_ua: float = 20.0
    reference_diameter_nm: float = 1.5
    diameter_exponent: float = 1.0
    metallic_current_ua: float = 40.0
    vdd: float = 0.9
    threshold_voltage: float = 0.3
    reference_vdd: float = 0.9

    def __post_init__(self) -> None:
        ensure_positive(self.nominal_on_current_ua, "nominal_on_current_ua")
        ensure_positive(self.reference_diameter_nm, "reference_diameter_nm")
        ensure_positive(self.reference_vdd, "reference_vdd")
        if self.vdd <= self.threshold_voltage:
            raise ValueError(
                "vdd must exceed the threshold voltage for the device to turn on: "
                f"vdd={self.vdd}, vt={self.threshold_voltage}"
            )

    # ------------------------------------------------------------------
    # Per-tube currents
    # ------------------------------------------------------------------

    @property
    def _overdrive_factor(self) -> float:
        return (self.vdd - self.threshold_voltage) / (
            self.reference_vdd - self.threshold_voltage
        )

    def semiconducting_on_current_ua(self, diameter_nm: float) -> float:
        """On-current (µA) of a single semiconducting tube of given diameter."""
        ensure_positive(diameter_nm, "diameter_nm")
        diameter_factor = (diameter_nm / self.reference_diameter_nm) ** self.diameter_exponent
        return self.nominal_on_current_ua * diameter_factor * self._overdrive_factor

    def metallic_leakage_ua(self) -> float:
        """Gate-independent current (µA) of a surviving metallic tube."""
        return self.metallic_current_ua

    # ------------------------------------------------------------------
    # Device-level aggregation
    # ------------------------------------------------------------------

    def device_on_current_ua(self, cnts: Iterable[CNT]) -> float:
        """Total on-current of a device given its captured tube population.

        Only semiconducting, non-removed tubes contribute; surviving metallic
        tubes also conduct when the device is on, so they are included, which
        matches how measured Ion would look.
        """
        total = 0.0
        for cnt in cnts:
            if cnt.removed:
                continue
            if cnt.cnt_type.is_semiconducting:
                total += self.semiconducting_on_current_ua(cnt.diameter_nm)
            else:
                total += self.metallic_leakage_ua()
        return total

    def device_off_current_ua(self, cnts: Iterable[CNT]) -> float:
        """Off-state current — only surviving metallic tubes conduct."""
        return sum(
            self.metallic_leakage_ua()
            for cnt in cnts
            if (not cnt.removed) and cnt.cnt_type.is_metallic
        )

    def sample_on_current_ua(
        self,
        working_count: int,
        rng: np.random.Generator,
        diameter_mean_nm: float = 1.5,
        diameter_std_nm: float = 0.2,
    ) -> float:
        """Sample a device on-current from a working-tube count.

        Diameters are drawn independently per tube from a truncated normal
        distribution (diameters below 0.5 nm are re-drawn to the boundary),
        which is the mechanism that makes σ(Ion)/µ(Ion) fall off as 1/√N.
        """
        if working_count < 0:
            raise ValueError(f"working_count must be non-negative, got {working_count}")
        if working_count == 0:
            return 0.0
        diameters = rng.normal(diameter_mean_nm, diameter_std_nm, size=working_count)
        diameters = np.clip(diameters, 0.5, None)
        currents = [self.semiconducting_on_current_ua(float(d)) for d in diameters]
        return float(np.sum(currents))

    def on_currents_from_counts(
        self,
        working_counts: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        diameter_mean_nm: float = 1.5,
        diameter_std_nm: float = 0.2,
    ) -> np.ndarray:
        """Device on-currents (µA) for an externally sampled count vector.

        Vectorised batch companion of :meth:`sample_on_current_ua`: one flat
        truncated-normal diameter draw covers every tube of every device, and
        a ``repeat``/``bincount`` pass sums the per-tube currents back into
        per-device totals — exact, and deterministic given the generator
        state.  Devices with zero working tubes get a current of 0.

        Parameters
        ----------
        working_counts:
            Integer array (any shape) of working-tube counts per device.
        rng:
            Diameter sampling stream.  ``None`` skips sampling entirely and
            gives every tube the nominal ``diameter_mean_nm`` (the
            deterministic mean-diameter current).
        diameter_mean_nm, diameter_std_nm:
            Truncated-normal tube diameter statistics (clipped at 0.5 nm,
            matching :meth:`sample_on_current_ua`).

        Returns
        -------
        numpy.ndarray
            Float array of device currents, same shape as ``working_counts``.
        """
        counts = np.asarray(working_counts)
        if np.any(counts < 0):
            raise ValueError("working_counts must be non-negative")
        flat = counts.reshape(-1).astype(np.int64)
        if rng is None:
            per_device = flat * self.semiconducting_on_current_ua(
                float(ensure_positive(diameter_mean_nm, "diameter_mean_nm"))
            )
            return per_device.astype(float).reshape(counts.shape)
        total = int(flat.sum())
        if total == 0:
            return np.zeros(counts.shape, dtype=float)
        diameters = rng.normal(diameter_mean_nm, diameter_std_nm, size=total)
        diameters = np.clip(diameters, 0.5, None)
        per_tube = (
            self.nominal_on_current_ua
            * (diameters / self.reference_diameter_nm) ** self.diameter_exponent
            * self._overdrive_factor
        )
        device_index = np.repeat(np.arange(flat.size), flat)
        sums = np.bincount(device_index, weights=per_tube, minlength=flat.size)
        return sums.reshape(counts.shape)


def device_on_current(
    working_count: int, per_tube_current_ua: float = 20.0
) -> float:
    """Idealised device on-current: ``working_count`` identical parallel tubes."""
    if working_count < 0:
        raise ValueError(f"working_count must be non-negative, got {working_count}")
    ensure_positive(per_tube_current_ua, "per_tube_current_ua")
    return working_count * per_tube_current_ua
