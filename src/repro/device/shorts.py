"""Metallic-CNT short failures and the joint opens+shorts closed form.

The paper's Eq. 2.2 counts only *open* failures: a CNFET fails when fewer
than ``N_min`` conducting semiconducting tubes survive under its gate.
Real processes also fail *closed* — imperfect metallic-CNT removal leaves
conducting metallic tubes that short the channel.  This module models
that second per-tube failure mode and derives the joint failure
probability in closed form.

Model
-----
Each grown CNT is independently metallic with probability ``p_m`` and, if
metallic, survives the removal step with probability ``1 - eta`` (``eta``
is the conditional removal probability ``pRm`` of
:class:`~repro.growth.types.CNTTypeModel`; the paper assumes ``eta ≈ 1``,
which recovers the opens-only model exactly).  A tube under the gate is
therefore in one of three states:

* a surviving *short* with probability ``b = p_m · (1 - eta)``,
* a *conducting semiconducting* tube with probability ``a = 1 - pf``
  (``pf`` the Eq. 2.1 per-CNT failure probability), or
* a removed / non-conducting *dud* with probability ``pf - b``
  (``b <= pf`` always, since a surviving metallic tube is a failed tube).

A device fails when it captures fewer than ``N_min`` conducting tubes
(open) **or** at least one surviving short.  Opens and shorts are
*anticorrelated* through the shared count ``N(W)``: trials with few tubes
fail open, trials with many tubes fail short.

Thinning derivation
-------------------
Conditioned on ``N(W) = n`` the three per-tube states are a categorical
thinning of the renewal count (``PitchDistribution.sum_cdf_array``
supplies the count pmf through
:class:`~repro.core.count_model.RenewalCountModel`, and each class count
is then binomial in ``n``).  For the default ``N_min = 1``::

    P{survive | N=n} = (1 - b)^n - (pf - b)^n
    P_fail(W)        = 1 - E[(1 - b)^N] + E[(pf - b)^N]
                     = 1 - PGF(1 - b) + PGF(pf - b)

two extra PGF evaluations on the same count model Eq. 2.2 already uses.
At ``b = 0`` this reduces *exactly* (bitwise, not just in the limit) to
the opens-only ``PGF(pf)`` path.  For ``N_min > 1`` the no-short term is
weighted by the binomial survival of the conducting-class count::

    P{survive | N=n} = (1 - b)^n · P{Binom(n, a / (1 - b)) >= N_min}

For the Poisson calibration (exponential pitch) both PGFs are
``exp(-λ(1 - z))`` and the log-space form

``log P_fail = logaddexp(log(-expm1(-λ b)), -λ (a + b))``

stays accurate down to the ``1e-300`` floor of the yield surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from repro.constants import DEFAULT_METALLIC_FRACTION, DEFAULT_REMOVAL_PROB_METALLIC
from repro.core.count_model import CountModel, PoissonCountModel
from repro.growth.types import CNTTypeModel
from repro.units import ensure_probability

__all__ = [
    "ShortsModel",
    "surviving_short_probability",
    "joint_failure_probability",
    "joint_failure_probabilities",
    "log_joint_failure_probabilities",
    "short_only_failure_probability",
]


def surviving_short_probability(metallic_fraction: float, removal_eta: float) -> float:
    """Per-tube probability ``b = p_m · (1 - eta)`` of a surviving short.

    ``removal_eta`` is the conditional removal probability of a metallic
    tube (``pRm``); ``eta = 1`` is perfect removal and gives ``b = 0``,
    the opens-only regime every pre-shorts code path assumes.
    """
    metallic_fraction = ensure_probability(metallic_fraction, "metallic_fraction")
    removal_eta = ensure_probability(removal_eta, "removal_eta")
    return metallic_fraction * (1.0 - removal_eta)


@dataclass(frozen=True)
class ShortsModel:
    """The ``(p_m, eta)`` processing knob of the short failure mode.

    Attributes
    ----------
    metallic_fraction:
        Probability ``p_m`` that a grown CNT is metallic.
    removal_eta:
        Conditional removal probability ``eta`` of a metallic tube; a
        metallic tube survives removal with probability ``1 - eta``.
    """

    metallic_fraction: float = DEFAULT_METALLIC_FRACTION
    removal_eta: float = DEFAULT_REMOVAL_PROB_METALLIC

    def __post_init__(self) -> None:
        ensure_probability(self.metallic_fraction, "metallic_fraction")
        ensure_probability(self.removal_eta, "removal_eta")

    @property
    def short_probability(self) -> float:
        """Per-tube surviving-short probability ``b = p_m · (1 - eta)``."""
        return surviving_short_probability(self.metallic_fraction, self.removal_eta)

    @classmethod
    def from_type_model(cls, type_model: CNTTypeModel) -> "ShortsModel":
        """Read ``(p_m, eta)`` off a :class:`~repro.growth.types.CNTTypeModel`."""
        return cls(
            metallic_fraction=type_model.metallic_fraction,
            removal_eta=type_model.removal_prob_metallic,
        )

    def to_type_model(self, removal_prob_semiconducting: float) -> CNTTypeModel:
        """Build the full per-tube type model at a given ``pRs``."""
        return CNTTypeModel(
            metallic_fraction=self.metallic_fraction,
            removal_prob_metallic=self.removal_eta,
            removal_prob_semiconducting=removal_prob_semiconducting,
        )


def _validate(per_cnt_failure: float, short_probability: float, min_working_tubes: int) -> None:
    """Shared argument validation of the joint closed forms."""
    ensure_probability(per_cnt_failure, "per_cnt_failure")
    ensure_probability(short_probability, "short_probability")
    if short_probability > per_cnt_failure:
        raise ValueError(
            "short_probability must not exceed per_cnt_failure "
            f"(a surviving short is a failed tube); got "
            f"{short_probability} > {per_cnt_failure}"
        )
    if int(min_working_tubes) < 1 or min_working_tubes != int(min_working_tubes):
        raise ValueError(
            f"min_working_tubes must be a positive integer, got {min_working_tubes!r}"
        )


def joint_failure_probability(
    count_model: CountModel,
    width_nm: float,
    per_cnt_failure: float,
    short_probability: float,
    min_working_tubes: int = 1,
) -> float:
    """Joint opens+shorts device failure probability at one width.

    ``P{< min_working_tubes conducting tubes or >= 1 surviving short}``
    via the thinning derivation in the module notes.  At
    ``short_probability = 0`` this is the opens-only Eq. 2.2 value
    computed through the identical code path the pre-shorts model used
    (bitwise reduction, pinned by the property suite).
    """
    _validate(per_cnt_failure, short_probability, min_working_tubes)
    pf = float(per_cnt_failure)
    b = float(short_probability)
    n_min = int(min_working_tubes)
    if pf >= 1.0:
        # No conducting tubes can exist: every device fails open (or, if
        # b > 0, possibly short first — either way it fails).
        return 1.0
    if b == 0.0 and n_min == 1:
        # Opens-only fast path, bit-identical to CNFETFailureModel.
        if pf == 0.0:
            return count_model.prob_zero(width_nm)
        return count_model.pgf(width_nm, pf)
    if n_min == 1:
        return min(
            1.0,
            max(
                0.0,
                1.0
                - count_model.pgf(width_nm, 1.0 - b)
                + count_model.pgf(width_nm, pf - b),
            ),
        )
    # General N_min: weight the no-short factor by the binomial survival
    # of the conducting-class count among the non-short tubes.
    pmf = count_model.pmf(width_nm)
    n = np.arange(pmf.size)
    one_minus_b = 1.0 - b
    ratio = (1.0 - pf) / one_minus_b if one_minus_b > 0.0 else 0.0
    survive_given_n = np.power(one_minus_b, n) * stats.binom.sf(n_min - 1, n, ratio)
    survive = float(np.sum(pmf * survive_given_n))
    return min(1.0, max(0.0, 1.0 - survive))


def joint_failure_probabilities(
    count_model: CountModel,
    widths_nm,
    per_cnt_failure: float,
    short_probability: float,
    min_working_tubes: int = 1,
) -> np.ndarray:
    """Vectorised :func:`joint_failure_probability` over a width array."""
    widths = np.atleast_1d(np.asarray(widths_nm, dtype=float))
    return np.array([
        joint_failure_probability(
            count_model, float(w), per_cnt_failure, short_probability,
            min_working_tubes=min_working_tubes,
        )
        for w in widths
    ])


def log_joint_failure_probabilities(
    count_model: CountModel,
    widths_nm,
    per_cnt_failure: float,
    short_probability: float,
    min_working_tubes: int = 1,
    log_floor: Optional[float] = None,
) -> np.ndarray:
    """Natural log of the joint failure probability over a width array.

    The exponential-pitch calibration takes a fully log-space route
    (``logaddexp`` of the short and open terms), so surfaces built on the
    Poisson closed form stay exact far below float underflow; other count
    models take per-width logs with an optional ``log_floor`` clamp.
    ``short_probability = 0`` raises — callers own that regime and must
    route it through their existing (bitwise-pinned) opens-only path.
    """
    _validate(per_cnt_failure, short_probability, min_working_tubes)
    if short_probability <= 0.0 and int(min_working_tubes) == 1:
        raise ValueError(
            "log_joint_failure_probabilities requires an active joint mode; "
            "the opens-only regime belongs to the existing Eq. 2.2 path"
        )
    widths = np.atleast_1d(np.asarray(widths_nm, dtype=float))
    pf = float(per_cnt_failure)
    b = float(short_probability)
    if (
        isinstance(count_model, PoissonCountModel)
        and int(min_working_tubes) == 1
        and pf < 1.0
    ):
        lam = widths / count_model.mean_pitch_nm
        with np.errstate(divide="ignore"):
            # log(1 - e^{-λb}) + nothing  vs  -λ(a + b): the two disjoint
            # failure routes (>=1 short; no short and no conducting tube).
            log_short = np.log(-np.expm1(-lam * b))
            log_open = -lam * ((1.0 - pf) + b)
        values = np.minimum(np.logaddexp(log_short, log_open), 0.0)
    else:
        with np.errstate(divide="ignore"):
            values = np.log(joint_failure_probabilities(
                count_model, widths, pf, b, min_working_tubes=min_working_tubes,
            ))
    if log_floor is not None:
        values = np.maximum(values, float(log_floor))
    return values


def short_only_failure_probability(
    count_model: CountModel, width_nm: float, short_probability: float
) -> float:
    """Probability ``1 - PGF(1 - b)`` of at least one surviving short.

    The marginal short-failure channel — useful for composing row-level
    short terms and for pinning the anticorrelation sign in tests (the
    joint failure probability is *below* the independent combination of
    this term with the opens-only Eq. 2.2 value).
    """
    ensure_probability(short_probability, "short_probability")
    b = float(short_probability)
    if b == 0.0:
        return 0.0
    return min(1.0, max(0.0, 1.0 - count_model.pgf(width_nm, 1.0 - b)))
