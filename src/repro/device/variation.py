"""Drive-current variation and statistical averaging.

The paper's Sec. 1 leans on the result (from [Raychowdhury 09], [Zhang 09a],
[Zhang 09b]) that the relative spread of the CNFET on-current shrinks as
1/sqrt(N) with the average CNT count N — the reason upsizing is effective
against variation, and the reason the paper focuses on the count-failure
tail rather than on parametric spread.  This module quantifies that
behaviour for our device model so the reproduction can verify the
1/sqrt(N) trend and expose it to the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.count_model import CountModel
from repro.device.current import CNTCurrentModel
from repro.growth.types import CNTTypeModel
from repro.units import ensure_positive


@dataclass(frozen=True)
class VariationSummary:
    """Monte Carlo summary of per-device drive-current variation."""

    width_nm: float
    mean_on_current_ua: float
    std_on_current_ua: float
    mean_working_count: float
    failure_fraction: float
    n_samples: int

    @property
    def relative_spread(self) -> float:
        """σ(Ion) / µ(Ion); NaN when the mean current is zero."""
        if self.mean_on_current_ua == 0:
            return float("nan")
        return self.std_on_current_ua / self.mean_on_current_ua


class DriveCurrentVariationModel:
    """Monte Carlo model of on-current variation versus device width.

    Parameters
    ----------
    count_model:
        CNT count model Prob{N(W)} (pre-removal counts).
    type_model:
        Metallic/semiconducting and removal statistics.
    current_model:
        Per-tube current model, including diameter spread.
    diameter_mean_nm, diameter_std_nm:
        Diameter distribution of grown tubes; diameter variation is the
        second imperfection contributing to drive-current spread.
    """

    def __init__(
        self,
        count_model: CountModel,
        type_model: Optional[CNTTypeModel] = None,
        current_model: Optional[CNTCurrentModel] = None,
        diameter_mean_nm: float = 1.5,
        diameter_std_nm: float = 0.2,
    ) -> None:
        self.count_model = count_model
        self.type_model = type_model or CNTTypeModel()
        self.current_model = current_model or CNTCurrentModel()
        self.diameter_mean_nm = ensure_positive(diameter_mean_nm, "diameter_mean_nm")
        self.diameter_std_nm = float(diameter_std_nm)
        if self.diameter_std_nm < 0:
            raise ValueError("diameter_std_nm must be non-negative")

    def sample_on_currents(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample ``n_samples`` device on-currents at width ``width_nm``."""
        ensure_positive(width_nm, "width_nm")
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        counts = self.count_model.sample(width_nm, n_samples, rng)
        p_success = self.type_model.per_cnt_success_probability
        working = rng.binomial(counts, p_success)
        currents = np.array(
            [
                self.current_model.sample_on_current_ua(
                    int(k), rng, self.diameter_mean_nm, self.diameter_std_nm
                )
                for k in working
            ]
        )
        return currents

    def summarise(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> VariationSummary:
        """Full variation summary (mean, spread, failure fraction) at a width."""
        counts = self.count_model.sample(width_nm, n_samples, rng)
        p_success = self.type_model.per_cnt_success_probability
        working = rng.binomial(counts, p_success)
        currents = np.array(
            [
                self.current_model.sample_on_current_ua(
                    int(k), rng, self.diameter_mean_nm, self.diameter_std_nm
                )
                for k in working
            ]
        )
        return VariationSummary(
            width_nm=float(width_nm),
            mean_on_current_ua=float(np.mean(currents)),
            std_on_current_ua=float(np.std(currents, ddof=1)) if n_samples > 1 else 0.0,
            mean_working_count=float(np.mean(working)),
            failure_fraction=float(np.mean(working == 0)),
            n_samples=int(n_samples),
        )

    def relative_spread_vs_width(
        self,
        widths_nm: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """σ(Ion)/µ(Ion) for each width — should fall off roughly as 1/sqrt(W)."""
        widths_nm = np.asarray(widths_nm, dtype=float)
        return np.array(
            [self.summarise(float(w), n_samples, rng).relative_spread for w in widths_nm]
        )
