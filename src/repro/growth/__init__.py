"""CNT growth substrate.

This package models the stochastic outcome of carbon-nanotube growth as seen
by circuit-level analysis:

* :mod:`repro.growth.cnt` — CNT and CNT-track value objects (position, type,
  diameter, length).
* :mod:`repro.growth.pitch` — inter-CNT pitch distributions (gamma,
  truncated normal, exponential, deterministic) with renewal-theory helpers.
* :mod:`repro.growth.types` — metallic / semiconducting type model and the
  per-CNT failure probability of Eq. 2.1.
* :mod:`repro.growth.removal` — the m-CNT removal (VMR-style) processing
  step, including inadvertent s-CNT removal.
* :mod:`repro.growth.directional` — directional ("aligned") growth that
  produces long parallel CNT tracks shared between devices, the physical
  source of the correlation exploited by the paper.
* :mod:`repro.growth.isotropic` — uncorrelated growth where every device
  samples its own CNT population.
* :mod:`repro.growth.density` — CNT density statistics and density-variation
  summaries.
* :mod:`repro.growth.spatial` — spatially correlated Gaussian-random-field
  variation over the wafer plane (FFT circulant-embedding sampling,
  spawn-keyed reproducibility).
* :mod:`repro.growth.wafer` — wafer-level die-to-die variation of the growth
  statistics (density drift, correlated density/misalignment fields and
  growth-direction misalignment).
"""

from repro.growth.cnt import CNT, CNTType, CNTTrack
from repro.growth.pitch import (
    PitchDistribution,
    DeterministicPitch,
    ExponentialPitch,
    GammaPitch,
    TruncatedNormalPitch,
    pitch_distribution_from_cv,
)
from repro.growth.types import CNTTypeModel, per_cnt_failure_probability
from repro.growth.removal import RemovalProcess
from repro.growth.directional import DirectionalGrowthModel, GrownRegion
from repro.growth.isotropic import IsotropicGrowthModel
from repro.growth.density import DensityStatistics, density_from_pitch
from repro.growth.spatial import GaussianRandomField, SpatialFieldSpec, sample_field
from repro.growth.wafer import DieSite, WaferGrowthModel, WaferMap

__all__ = [
    "CNT",
    "CNTType",
    "CNTTrack",
    "PitchDistribution",
    "DeterministicPitch",
    "ExponentialPitch",
    "GammaPitch",
    "TruncatedNormalPitch",
    "pitch_distribution_from_cv",
    "CNTTypeModel",
    "per_cnt_failure_probability",
    "RemovalProcess",
    "DirectionalGrowthModel",
    "GrownRegion",
    "IsotropicGrowthModel",
    "DensityStatistics",
    "density_from_pitch",
    "GaussianRandomField",
    "SpatialFieldSpec",
    "sample_field",
    "DieSite",
    "WaferGrowthModel",
    "WaferMap",
]
