"""Value objects describing individual carbon nanotubes and CNT tracks.

Two related abstractions are used by the rest of the library:

``CNT``
    A single nanotube as grown on the substrate: a position along the
    direction perpendicular to the channel ("track coordinate"), an extent
    along the growth direction, an electronic type (metallic or
    semiconducting) and a diameter.

``CNTTrack``
    In directional growth, a nanotube spans many device active regions along
    the growth direction.  From the point of view of circuit analysis, a
    track is the shared object: every CNFET whose active region covers the
    track's y-coordinate and overlaps its x-extent sees *the same* CNT, with
    the same type and the same removal outcome.  That sharing is exactly the
    correlation the paper exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CNTType(enum.Enum):
    """Electronic type of a carbon nanotube."""

    SEMICONDUCTING = "s"
    METALLIC = "m"

    @property
    def is_semiconducting(self) -> bool:
        """True when the nanotube can act as a gated channel."""
        return self is CNTType.SEMICONDUCTING

    @property
    def is_metallic(self) -> bool:
        """True when the nanotube conducts regardless of gate bias."""
        return self is CNTType.METALLIC


@dataclass(frozen=True)
class CNT:
    """A single carbon nanotube as grown on the substrate.

    Parameters
    ----------
    y_nm:
        Position of the tube along the axis perpendicular to the growth
        direction (the axis along which CNFET widths are measured), in nm.
    x_start_nm, x_end_nm:
        Extent of the tube along the growth direction, in nm.
    cnt_type:
        Metallic or semiconducting.
    diameter_nm:
        Tube diameter in nm; drives the per-tube on-current in
        :mod:`repro.device.current`.
    removed:
        Whether the tube was etched away by the m-CNT removal step.
    """

    y_nm: float
    x_start_nm: float
    x_end_nm: float
    cnt_type: CNTType
    diameter_nm: float = 1.5
    removed: bool = False

    def __post_init__(self) -> None:
        if self.x_end_nm < self.x_start_nm:
            raise ValueError(
                "CNT x-extent is inverted: "
                f"x_start_nm={self.x_start_nm}, x_end_nm={self.x_end_nm}"
            )
        if self.diameter_nm <= 0:
            raise ValueError(f"diameter_nm must be positive, got {self.diameter_nm}")

    @property
    def length_nm(self) -> float:
        """Length of the tube along the growth direction."""
        return self.x_end_nm - self.x_start_nm

    @property
    def contributes_to_channel(self) -> bool:
        """True when the tube can act as a working channel.

        A tube contributes to the CNT count of a CNFET only when it is
        semiconducting *and* survived the removal step — the definition used
        in Eq. 2.1 of the paper.
        """
        return self.cnt_type.is_semiconducting and not self.removed

    def covers_x(self, x_start_nm: float, x_end_nm: float) -> bool:
        """Whether the tube overlaps the interval ``[x_start_nm, x_end_nm]``."""
        return self.x_start_nm < x_end_nm and x_start_nm < self.x_end_nm

    def with_removed(self, removed: bool = True) -> "CNT":
        """Return a copy of this tube with its ``removed`` flag set."""
        return CNT(
            y_nm=self.y_nm,
            x_start_nm=self.x_start_nm,
            x_end_nm=self.x_end_nm,
            cnt_type=self.cnt_type,
            diameter_nm=self.diameter_nm,
            removed=removed,
        )


@dataclass
class CNTTrack:
    """A nanotube viewed as a shared resource along a placement row.

    Directional growth produces nearly parallel tubes of length ``LCNT``.
    Within that length the paper assumes perfect correlation: every CNFET
    that covers the same track sees the same count contribution and type.

    Attributes
    ----------
    y_nm:
        Track coordinate (perpendicular to the growth direction).
    x_start_nm, x_end_nm:
        Extent of the underlying tube along the growth direction.
    cnt_type:
        Electronic type shared by every device on the track.
    removed:
        Removal outcome shared by every device on the track.
    diameter_nm:
        Tube diameter.
    label:
        Optional identifier used by Monte Carlo bookkeeping.
    """

    y_nm: float
    x_start_nm: float
    x_end_nm: float
    cnt_type: CNTType
    removed: bool = False
    diameter_nm: float = 1.5
    label: Optional[int] = field(default=None, compare=False)

    @property
    def length_nm(self) -> float:
        """Track length along the growth direction."""
        return self.x_end_nm - self.x_start_nm

    @property
    def working(self) -> bool:
        """True when the track provides a usable semiconducting channel."""
        return self.cnt_type.is_semiconducting and not self.removed

    def covers(self, y_low_nm: float, y_high_nm: float,
               x_start_nm: float, x_end_nm: float) -> bool:
        """Whether this track passes through the given active-region window.

        The window spans ``[y_low_nm, y_high_nm]`` across the width axis and
        ``[x_start_nm, x_end_nm]`` along the growth direction.
        """
        in_width = y_low_nm <= self.y_nm <= y_high_nm
        in_length = self.x_start_nm < x_end_nm and x_start_nm < self.x_end_nm
        return in_width and in_length

    def as_cnt(self) -> CNT:
        """Materialise this track as an immutable :class:`CNT`."""
        return CNT(
            y_nm=self.y_nm,
            x_start_nm=self.x_start_nm,
            x_end_nm=self.x_end_nm,
            cnt_type=self.cnt_type,
            diameter_nm=self.diameter_nm,
            removed=self.removed,
        )
