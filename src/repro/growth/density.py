"""CNT density statistics and density-variation summaries.

CNT density variation is one of the CNT-specific imperfections the paper
lists; together with metallic tubes it drives CNT count failure.  This
module provides small utilities to go back and forth between pitch
statistics (the form used by the analytical models) and density statistics
(the form usually quoted by growth papers, tubes per µm), plus summary
statistics over Monte Carlo count samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.growth.pitch import PitchDistribution, pitch_distribution_from_cv
from repro.units import ensure_positive, per_nm_to_per_um


@dataclass(frozen=True)
class DensityStatistics:
    """Summary of CNT linear density over a set of sampled windows.

    Attributes
    ----------
    mean_per_um:
        Mean density in tubes per µm.
    std_per_um:
        Standard deviation of density across windows, in tubes per µm.
    window_width_nm:
        Width of the counting window the statistics were computed over.
    n_windows:
        Number of windows sampled.
    """

    mean_per_um: float
    std_per_um: float
    window_width_nm: float
    n_windows: int

    @property
    def cv(self) -> float:
        """Coefficient of variation of the window density."""
        if self.mean_per_um == 0:
            return float("nan")
        return self.std_per_um / self.mean_per_um


def density_from_pitch(pitch: PitchDistribution) -> float:
    """Long-run CNT density (tubes per µm) implied by a pitch distribution."""
    return per_nm_to_per_um(pitch.density_per_nm)


def pitch_from_density(density_per_um: float, cv: float = 1.0) -> PitchDistribution:
    """Build a pitch distribution from a target density (tubes per µm).

    Parameters
    ----------
    density_per_um:
        Desired long-run density in tubes per µm.
    cv:
        Coefficient of variation of the inter-CNT pitch.
    """
    ensure_positive(density_per_um, "density_per_um")
    mean_pitch_nm = 1000.0 / density_per_um
    return pitch_distribution_from_cv(mean_pitch_nm, cv)


def density_statistics_from_counts(
    counts: np.ndarray, window_width_nm: float
) -> DensityStatistics:
    """Summarise Monte Carlo per-window CNT counts as density statistics."""
    ensure_positive(window_width_nm, "window_width_nm")
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        raise ValueError("counts must contain at least one sample")
    width_um = window_width_nm / 1000.0
    densities = counts / width_um
    return DensityStatistics(
        mean_per_um=float(np.mean(densities)),
        std_per_um=float(np.std(densities, ddof=1)) if counts.size > 1 else 0.0,
        window_width_nm=float(window_width_nm),
        n_windows=int(counts.size),
    )


def statistical_averaging_cv(mean_count: float) -> float:
    """σ(Ion)/µ(Ion) predicted by statistical averaging, ∝ 1/sqrt(N).

    The paper cites [Raychowdhury 09, Zhang 09a, Zhang 09b] for the result
    that the relative spread of the on-current falls as the inverse square
    root of the average CNT count.  The proportionality constant depends on
    the per-tube current spread; this helper returns the idealised
    ``1/sqrt(N)`` envelope used for sanity checks and the variation analysis
    in :mod:`repro.device.variation`.
    """
    ensure_positive(mean_count, "mean_count")
    return 1.0 / float(np.sqrt(mean_count))
