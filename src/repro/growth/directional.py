"""Directional (aligned) CNT growth simulator.

Directional growth on quartz produces long, nearly parallel nanotubes
([Kang 07], [Patil 09b]).  Viewed from a placement row, the tubes form a set
of *tracks*: positions along the width axis, each extending a CNT length
``LCNT`` along the growth direction.  Every CNFET whose active region covers
a track and overlaps its extent captures the *same* tube — the same count
contribution, the same metallic/semiconducting type and the same removal
outcome.  That sharing is the correlation the paper turns into a yield
opportunity.

The simulator is deliberately one-and-a-half dimensional: the width axis
(``y``) is resolved tube by tube via the pitch distribution; the growth axis
(``x``) is resolved segment by segment with tubes of length ``LCNT`` tiling
each track.  Per the paper's simplifying assumption, correlation is perfect
within a tube and zero across tube boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_CNT_LENGTH_UM, DEFAULT_MEAN_PITCH_NM, DEFAULT_PITCH_CV
from repro.growth.cnt import CNTTrack, CNTType
from repro.growth.pitch import PitchDistribution, pitch_distribution_from_cv
from repro.growth.removal import RemovalProcess
from repro.growth.types import CNTTypeModel
from repro.units import ensure_positive, um_to_nm


@dataclass
class GrownRegion:
    """The outcome of growing CNTs over a rectangular region of the die.

    Attributes
    ----------
    width_nm:
        Extent along the width axis (perpendicular to the tubes).
    length_nm:
        Extent along the growth direction.
    tracks:
        All grown tube segments, as :class:`CNTTrack` objects.
    """

    width_nm: float
    length_nm: float
    tracks: List[CNTTrack] = field(default_factory=list)

    def tracks_in_window(
        self,
        y_low_nm: float,
        y_high_nm: float,
        x_start_nm: float,
        x_end_nm: float,
    ) -> List[CNTTrack]:
        """Tracks passing through an active-region window."""
        return [
            t for t in self.tracks
            if t.covers(y_low_nm, y_high_nm, x_start_nm, x_end_nm)
        ]

    def working_count_in_window(
        self,
        y_low_nm: float,
        y_high_nm: float,
        x_start_nm: float,
        x_end_nm: float,
    ) -> int:
        """Number of working (semiconducting, non-removed) tubes in a window."""
        return sum(
            1 for t in self.tracks_in_window(y_low_nm, y_high_nm, x_start_nm, x_end_nm)
            if t.working
        )

    @property
    def track_count(self) -> int:
        """Total number of grown tube segments."""
        return len(self.tracks)

    @property
    def working_track_count(self) -> int:
        """Number of grown tube segments that survive as working channels."""
        return sum(1 for t in self.tracks if t.working)


class DirectionalGrowthModel:
    """Simulates directional CNT growth over a region.

    Parameters
    ----------
    pitch:
        Inter-CNT pitch distribution along the width axis.  If omitted, a
        distribution with the default mean pitch and CV is used.
    type_model:
        Metallic/semiconducting statistics and removal probabilities.
    cnt_length_nm:
        Tube length ``LCNT`` along the growth direction.  Defaults to the
        paper's 200 µm.
    apply_removal:
        Whether to run the m-CNT removal step as part of :meth:`grow`.
    """

    def __init__(
        self,
        pitch: Optional[PitchDistribution] = None,
        type_model: Optional[CNTTypeModel] = None,
        cnt_length_nm: Optional[float] = None,
        apply_removal: bool = True,
    ) -> None:
        self.pitch = pitch or pitch_distribution_from_cv(
            DEFAULT_MEAN_PITCH_NM, DEFAULT_PITCH_CV
        )
        self.type_model = type_model or CNTTypeModel()
        self.cnt_length_nm = ensure_positive(
            cnt_length_nm if cnt_length_nm is not None
            else um_to_nm(DEFAULT_CNT_LENGTH_UM),
            "cnt_length_nm",
        )
        self.apply_removal = bool(apply_removal)
        self._removal = RemovalProcess.from_type_model(self.type_model)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    def _sample_track_positions(
        self, width_nm: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample track y-positions across ``width_nm`` via renewal sampling."""
        positions: List[float] = []
        # Start the renewal process a random fraction of a pitch before the
        # region so the process is (approximately) stationary at the edge.
        y = -float(rng.random()) * self.pitch.mean_nm
        mean = self.pitch.mean_nm
        # Draw pitches in blocks for efficiency.
        block = max(16, int(width_nm / mean * 1.5) + 8)
        while y <= width_nm:
            gaps = self.pitch.sample(block, rng)
            for gap in gaps:
                y += float(gap)
                if y > width_nm:
                    break
                if y >= 0.0:
                    positions.append(y)
            else:
                continue
            break
        return np.asarray(positions, dtype=float)

    def _tile_track(
        self,
        y_nm: float,
        length_nm: float,
        rng: np.random.Generator,
        label_start: int,
    ) -> List[CNTTrack]:
        """Tile one track with tubes of length ``cnt_length_nm``.

        A random phase offsets the first tube so that tube boundaries are not
        synchronised across tracks.
        """
        segments: List[CNTTrack] = []
        x = -float(rng.random()) * self.cnt_length_nm
        label = label_start
        while x < length_nm:
            x_end = x + self.cnt_length_nm
            cnt_type = (
                CNTType.METALLIC
                if rng.random() < self.type_model.metallic_fraction
                else CNTType.SEMICONDUCTING
            )
            segments.append(
                CNTTrack(
                    y_nm=y_nm,
                    x_start_nm=max(x, 0.0),
                    x_end_nm=min(x_end, length_nm),
                    cnt_type=cnt_type,
                    label=label,
                )
            )
            label += 1
            x = x_end
        return segments

    def grow(
        self,
        width_nm: float,
        length_nm: float,
        rng: np.random.Generator,
    ) -> GrownRegion:
        """Grow CNTs over a ``width_nm`` × ``length_nm`` region.

        Parameters
        ----------
        width_nm:
            Extent along the width (track) axis.
        length_nm:
            Extent along the growth direction.
        rng:
            Random generator controlling every stochastic choice.
        """
        ensure_positive(width_nm, "width_nm")
        ensure_positive(length_nm, "length_nm")
        positions = self._sample_track_positions(width_nm, rng)
        tracks: List[CNTTrack] = []
        label = 0
        for y in positions:
            segments = self._tile_track(float(y), length_nm, rng, label)
            label += len(segments)
            tracks.extend(segments)
        if self.apply_removal:
            self._removal.apply_to_tracks(tracks, rng)
        return GrownRegion(width_nm=width_nm, length_nm=length_nm, tracks=tracks)

    # ------------------------------------------------------------------
    # Convenience queries used by the Monte Carlo layer
    # ------------------------------------------------------------------

    def grow_row(
        self,
        row_width_nm: float,
        row_length_nm: float,
        rng: np.random.Generator,
    ) -> GrownRegion:
        """Alias of :meth:`grow` with row-oriented argument names."""
        return self.grow(row_width_nm, row_length_nm, rng)

    def expected_tracks(self, width_nm: float) -> float:
        """Expected number of tracks crossing a window of width ``width_nm``."""
        return width_nm / self.pitch.mean_nm

    def correlation_length_nm(self) -> float:
        """Distance along the growth axis over which devices share tubes."""
        return self.cnt_length_nm


def count_correlation_between_fets(
    region: GrownRegion,
    fet_width_nm: float,
    fet_y_low_nm: float,
    fet1_x_nm: Sequence[float],
    fet2_x_nm: Sequence[float],
) -> int:
    """Number of working tubes shared by two equally sized, aligned FETs.

    Helper used by the Fig. 3.1 benchmark: both FETs span the same y-window
    ``[fet_y_low_nm, fet_y_low_nm + fet_width_nm]`` but occupy different
    x-intervals ``fet1_x_nm`` and ``fet2_x_nm``.
    """
    y_high = fet_y_low_nm + fet_width_nm
    tracks1 = {
        t.label
        for t in region.tracks_in_window(fet_y_low_nm, y_high, *fet1_x_nm)
        if t.working
    }
    tracks2 = {
        t.label
        for t in region.tracks_in_window(fet_y_low_nm, y_high, *fet2_x_nm)
        if t.working
    }
    return len(tracks1 & tracks2)
