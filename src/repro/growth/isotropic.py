"""Uncorrelated (isotropic) CNT growth simulator.

Some CNT growth processes (e.g. solution deposition or non-directional CVD)
produce tubes with random orientations and short lengths.  From the circuit
point of view the key consequence is that different CNFETs never share a
tube: their CNT counts and types are statistically independent, which is the
baseline assumption of Sec. 2 of the paper.

The simulator therefore does not model tube geometry in detail; it samples
an *independent* tube population for every requested active region.  This is
both faithful to the paper's independence assumption and keeps the Monte
Carlo layer fast enough to estimate chip-scale failure probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import DEFAULT_MEAN_PITCH_NM, DEFAULT_PITCH_CV
from repro.growth.cnt import CNT, CNTType
from repro.growth.pitch import PitchDistribution, pitch_distribution_from_cv
from repro.growth.removal import RemovalProcess
from repro.growth.types import CNTTypeModel
from repro.units import ensure_positive


@dataclass(frozen=True)
class DeviceGrowthSample:
    """CNT population captured by one independently grown active region."""

    width_nm: float
    cnts: tuple

    @property
    def total_count(self) -> int:
        """Number of tubes crossing the active region before removal."""
        return len(self.cnts)

    @property
    def working_count(self) -> int:
        """Number of semiconducting, non-removed tubes (the channel count)."""
        return sum(1 for c in self.cnts if c.contributes_to_channel)

    @property
    def surviving_metallic_count(self) -> int:
        """Metallic tubes that escaped removal (noise-margin hazards)."""
        return sum(
            1 for c in self.cnts if c.cnt_type is CNTType.METALLIC and not c.removed
        )

    @property
    def failed(self) -> bool:
        """CNT count failure: no working channel at all."""
        return self.working_count == 0


class IsotropicGrowthModel:
    """Grows an independent CNT population per active region.

    Parameters
    ----------
    pitch:
        Inter-CNT pitch distribution along the device width axis.
    type_model:
        Metallic/semiconducting statistics and removal probabilities.
    channel_length_nm:
        Nominal channel length; stored for completeness (tube extent along
        the channel is irrelevant for count statistics under independence).
    apply_removal:
        Whether the removal step runs as part of sampling.
    """

    def __init__(
        self,
        pitch: Optional[PitchDistribution] = None,
        type_model: Optional[CNTTypeModel] = None,
        channel_length_nm: float = 32.0,
        apply_removal: bool = True,
    ) -> None:
        self.pitch = pitch or pitch_distribution_from_cv(
            DEFAULT_MEAN_PITCH_NM, DEFAULT_PITCH_CV
        )
        self.type_model = type_model or CNTTypeModel()
        self.channel_length_nm = ensure_positive(channel_length_nm, "channel_length_nm")
        self.apply_removal = bool(apply_removal)
        self._removal = RemovalProcess.from_type_model(self.type_model)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_count(self, width_nm: float, rng: np.random.Generator) -> int:
        """Sample the number of tubes crossing a device of width ``width_nm``."""
        ensure_positive(width_nm, "width_nm")
        count = 0
        y = -float(rng.random()) * self.pitch.mean_nm
        block = max(8, int(width_nm / self.pitch.mean_nm * 1.5) + 8)
        while True:
            gaps = self.pitch.sample(block, rng)
            for gap in gaps:
                y += float(gap)
                if y > width_nm:
                    return count
                if y >= 0.0:
                    count += 1

    def sample_counts(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample tube counts for ``n_samples`` independent devices."""
        return np.array(
            [self.sample_count(width_nm, rng) for _ in range(n_samples)], dtype=int
        )

    def sample_device(
        self, width_nm: float, rng: np.random.Generator
    ) -> DeviceGrowthSample:
        """Sample the full tube population for one device."""
        ensure_positive(width_nm, "width_nm")
        cnts: List[CNT] = []
        y = -float(rng.random()) * self.pitch.mean_nm
        while True:
            gap = float(self.pitch.sample(1, rng)[0])
            y += gap
            if y > width_nm:
                break
            if y < 0.0:
                continue
            cnt_type = (
                CNTType.METALLIC
                if rng.random() < self.type_model.metallic_fraction
                else CNTType.SEMICONDUCTING
            )
            cnts.append(
                CNT(
                    y_nm=y,
                    x_start_nm=0.0,
                    x_end_nm=self.channel_length_nm,
                    cnt_type=cnt_type,
                )
            )
        if self.apply_removal:
            cnts = self._removal.apply_to_cnts(cnts, rng)
        return DeviceGrowthSample(width_nm=width_nm, cnts=tuple(cnts))

    def sample_failures(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample CNT-count-failure indicators for ``n_samples`` devices.

        This uses the thinned-count shortcut: each tube independently works
        with probability ``1 - pf``, so only counts and a binomial thinning
        draw are required — far faster than materialising tube objects.
        """
        counts = self.sample_counts(width_nm, n_samples, rng)
        p_success = self.type_model.per_cnt_success_probability
        working = rng.binomial(counts, p_success)
        return working == 0

    def estimate_failure_probability(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> float:
        """Monte Carlo estimate of the device failure probability pF(W)."""
        failures = self.sample_failures(width_nm, n_samples, rng)
        return float(np.mean(failures))
