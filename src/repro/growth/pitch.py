"""Inter-CNT pitch distributions and renewal-theory helpers.

The number of CNTs captured by a CNFET of width ``W`` is a renewal count:
starting from one edge of the active region, successive CNTs are separated
by independent, identically distributed positive gaps ("pitches").  The
count distribution therefore follows directly from the distribution of the
pitch, via

``P{N(W) >= n} = P{S_n <= W}``,   ``S_n = s_1 + ... + s_n``

(plus a boundary convention for the first tube, handled by the count models
in :mod:`repro.core.count_model`).

This module provides the pitch distributions themselves.  Each distribution
exposes:

* ``mean_nm`` / ``std_nm`` — first two moments,
* ``sample(size, rng)`` — Monte Carlo samples,
* ``sum_cdf(n, w_nm)`` — the CDF of the n-fold sum evaluated at ``w_nm``
  (exact when the family is closed under summation, otherwise a central
  limit approximation is used).

The paper keeps the ratio σS/µS from [Zhang 09a] and sets µS to the
optimised 4 nm of [Deng 07]; the exact σS/µS value is a calibration knob
(see :mod:`repro.core.calibration`).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from repro.units import ensure_positive


@dataclass(frozen=True)
class GapTilt:
    """An exponential tilt of an inter-CNT gap distribution.

    Importance sampling for rare under-count events replaces the nominal gap
    density ``f`` with the tilted density ``g(s) ∝ f(s) · exp(θ s)``; for
    ``θ > 0`` gaps stretch, tubes become sparse, and open-region/under-count
    failures become common.  The log likelihood ratio of a renewal trajectory
    stopped after ``n`` gaps summing to ``S`` is *affine* in ``(n, S)`` for
    every family closed under exponential tilting:

    ``log(dP_f / dP_g) = n · log_const_per_gap + S · log_slope_per_nm``

    which is what lets the batched engine carry per-trial weights through its
    one ``cumsum`` + ``searchsorted`` pass.  Instances are produced by
    :meth:`PitchDistribution.exponential_tilt`.
    """

    nominal: "PitchDistribution"
    tilted: "PitchDistribution"
    log_const_per_gap: float
    log_slope_per_nm: float

    @property
    def mean_factor(self) -> float:
        """Ratio of tilted to nominal mean pitch (> 1 stretches gaps)."""
        return self.tilted.mean_nm / self.nominal.mean_nm

    def log_likelihood_ratio(
        self, n_gaps: np.ndarray, gap_sum_nm: np.ndarray
    ) -> np.ndarray:
        """``log(dP_f/dP_g)`` for trajectories of ``n_gaps`` gaps summing to
        ``gap_sum_nm``; vectorised over both arguments."""
        return (
            np.asarray(n_gaps, dtype=float) * self.log_const_per_gap
            + np.asarray(gap_sum_nm, dtype=float) * self.log_slope_per_nm
        )


class PitchDistribution(abc.ABC):
    """Abstract base class for positive inter-CNT pitch distributions."""

    @property
    @abc.abstractmethod
    def mean_nm(self) -> float:
        """Mean pitch µS in nm."""

    @property
    @abc.abstractmethod
    def std_nm(self) -> float:
        """Pitch standard deviation σS in nm."""

    @property
    def cv(self) -> float:
        """Coefficient of variation σS / µS."""
        return self.std_nm / self.mean_nm

    @property
    def density_per_nm(self) -> float:
        """Long-run CNT linear density (1 / µS) in tubes per nm."""
        return 1.0 / self.mean_nm

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` independent pitch samples (nm)."""

    def sample_batch(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw a batch of pitch samples with the given array ``shape``.

        The batched Monte Carlo engine draws all gaps of all trials as one
        2D array; this default delegates to :meth:`sample` and reshapes, so
        a flat draw and a batched draw of the same total size consume the
        RNG stream identically.
        """
        size = int(np.prod(shape))
        return self.sample(size, rng).reshape(shape)

    @abc.abstractmethod
    def sum_cdf(self, n: int, w_nm: float) -> float:
        """Return ``P{s_1 + ... + s_n <= w_nm}``.

        ``n = 0`` returns 1.0 for any non-negative ``w_nm`` (an empty sum is
        zero).
        """

    def sum_cdf_array(self, n_values: np.ndarray, w_nm: float) -> np.ndarray:
        """Vectorised :meth:`sum_cdf` over an array of integer ``n``.

        Subclasses whose family is closed under summation override this
        with a single vectorised CDF evaluation; the base implementation
        falls back to a per-element loop.
        """
        return np.array([self.sum_cdf(int(n), w_nm) for n in np.asarray(n_values)])

    def exponential_tilt(self, mean_factor: float) -> GapTilt:
        """Exponentially tilted copy of this distribution, as a :class:`GapTilt`.

        ``mean_factor > 1`` stretches gaps (rare under-count events become
        common); families not closed under exponential tilting raise
        ``NotImplementedError`` — the multilevel-splitting fallback in
        :mod:`repro.montecarlo.rare_event` covers those.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form exponential tilt; "
            "use the multilevel-splitting sampler instead"
        )

    def with_mean(self, mean_nm: float) -> "PitchDistribution":
        """Same family and shape (CV), rescaled to a new mean pitch.

        Pitch is a scale family in every implemented distribution, so
        rescaling the mean preserves the coefficient of variation exactly.
        The yield-surface sweeps use this to walk a CNT-density axis
        (density = 1 / µS) without re-deriving the family each time.
        """
        ensure_positive(mean_nm, "mean_nm")
        raise NotImplementedError(
            f"{type(self).__name__} does not implement with_mean"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(mean_nm={self.mean_nm:.4g}, "
            f"std_nm={self.std_nm:.4g})"
        )


@dataclass(frozen=True, repr=False)
class DeterministicPitch(PitchDistribution):
    """Perfectly regular CNT array: every gap equals ``pitch_nm``.

    This is the ideal-growth limit; with it the CNT count is simply
    ``floor(W / pitch) + 1`` and there is no density variation at all.
    """

    pitch_nm: float

    def __post_init__(self) -> None:
        ensure_positive(self.pitch_nm, "pitch_nm")

    @property
    def mean_nm(self) -> float:
        """Mean pitch µS in nm (the fixed pitch itself)."""
        return self.pitch_nm

    @property
    def std_nm(self) -> float:
        """Pitch standard deviation σS in nm (zero: no variation)."""
        return 0.0

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` identical gaps of ``pitch_nm`` nm."""
        return np.full(size, self.pitch_nm, dtype=float)

    def sum_cdf(self, n: int, w_nm: float) -> float:
        """Degenerate n-fold sum CDF: a unit step at ``n * pitch_nm``."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return 1.0 if w_nm >= 0 else 0.0
        return 1.0 if n * self.pitch_nm <= w_nm else 0.0

    def sum_cdf_array(self, n_values: np.ndarray, w_nm: float) -> np.ndarray:
        """Vectorised :meth:`sum_cdf` (a step function per ``n``)."""
        n = np.asarray(n_values)
        if np.any(n < 0):
            raise ValueError("n must be non-negative")
        return np.where(
            n == 0,
            1.0 if w_nm >= 0 else 0.0,
            (n * self.pitch_nm <= w_nm).astype(float),
        )

    def with_mean(self, mean_nm: float) -> "DeterministicPitch":
        """Deterministic pitch rescaled to a new value (CV stays 0)."""
        return DeterministicPitch(pitch_nm=mean_nm)


@dataclass(frozen=True, repr=False)
class ExponentialPitch(PitchDistribution):
    """Exponentially distributed pitch (CV = 1), i.e. Poisson CNT placement.

    This is the "completely random" growth limit and the default calibration
    of the reproduction: measured inter-CNT spacings in [Zhang 09a] show a
    spread comparable to their mean.
    """

    mean_pitch_nm: float

    def __post_init__(self) -> None:
        ensure_positive(self.mean_pitch_nm, "mean_pitch_nm")

    @property
    def mean_nm(self) -> float:
        """Mean pitch µS in nm."""
        return self.mean_pitch_nm

    @property
    def std_nm(self) -> float:
        """Pitch standard deviation σS in nm (equals the mean: CV = 1)."""
        return self.mean_pitch_nm

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` independent exponential gaps (nm)."""
        return rng.exponential(scale=self.mean_pitch_nm, size=size)

    def sum_cdf(self, n: int, w_nm: float) -> float:
        """Exact n-fold sum CDF ``P{S_n <= w_nm}`` (Erlang distribution)."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return 1.0 if w_nm >= 0 else 0.0
        if w_nm <= 0:
            return 0.0
        # Sum of n exponentials is Erlang(n, rate = 1/mean).
        return float(stats.gamma.cdf(w_nm, a=n, scale=self.mean_pitch_nm))

    def sum_cdf_array(self, n_values: np.ndarray, w_nm: float) -> np.ndarray:
        """Vectorised :meth:`sum_cdf` via one gamma-CDF call over ``n``."""
        n = np.asarray(n_values)
        if np.any(n < 0):
            raise ValueError("n must be non-negative")
        # gamma.cdf vectorises over the shape parameter; n = 0 needs the
        # empty-sum convention patched in afterwards.
        with np.errstate(invalid="ignore"):
            cdf = stats.gamma.cdf(w_nm, a=n, scale=self.mean_pitch_nm)
        return np.where(n == 0, 1.0 if w_nm >= 0 else 0.0, cdf)

    def exponential_tilt(self, mean_factor: float) -> GapTilt:
        # Tilting Exp(mean) by exp(θs) stays exponential with mean
        # mean / (1 - θ·mean); parameterised by the mean factor β the
        # per-gap log ratio is  log β − s (β − 1) / (β · mean).
        """In-family tilt: the tilted gap law stays exponential."""
        return _gamma_family_tilt(self, shape=1.0, mean_factor=mean_factor)

    def with_mean(self, mean_nm: float) -> "ExponentialPitch":
        """Exponential pitch rescaled to a new mean (CV stays 1)."""
        return ExponentialPitch(mean_pitch_nm=mean_nm)


@dataclass(frozen=True, repr=False)
class GammaPitch(PitchDistribution):
    """Gamma-distributed pitch with arbitrary coefficient of variation.

    The gamma family is closed under summation, so the n-fold sum CDF is
    exact.  ``cv < 1`` models partially ordered growth (more regular than
    Poisson), ``cv > 1`` models clumpy growth.
    """

    mean_pitch_nm: float
    cv_value: float

    def __post_init__(self) -> None:
        ensure_positive(self.mean_pitch_nm, "mean_pitch_nm")
        ensure_positive(self.cv_value, "cv_value")

    @property
    def shape(self) -> float:
        """Gamma shape parameter k = 1 / cv^2."""
        return 1.0 / (self.cv_value ** 2)

    @property
    def scale_nm(self) -> float:
        """Gamma scale parameter θ = mean / k."""
        return self.mean_pitch_nm / self.shape

    @property
    def mean_nm(self) -> float:
        """Mean pitch µS in nm."""
        return self.mean_pitch_nm

    @property
    def std_nm(self) -> float:
        """Pitch standard deviation σS in nm (mean times CV)."""
        return self.mean_pitch_nm * self.cv_value

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` independent gamma gaps (nm)."""
        return rng.gamma(shape=self.shape, scale=self.scale_nm, size=size)

    def sum_cdf(self, n: int, w_nm: float) -> float:
        """Exact n-fold sum CDF: Gamma(n·k, θ) closure under summation."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return 1.0 if w_nm >= 0 else 0.0
        if w_nm <= 0:
            return 0.0
        return float(stats.gamma.cdf(w_nm, a=n * self.shape, scale=self.scale_nm))

    def sum_cdf_array(self, n_values: np.ndarray, w_nm: float) -> np.ndarray:
        """Vectorised :meth:`sum_cdf` via one gamma-CDF call over ``n``."""
        n = np.asarray(n_values)
        if np.any(n < 0):
            raise ValueError("n must be non-negative")
        with np.errstate(invalid="ignore"):
            cdf = stats.gamma.cdf(w_nm, a=n * self.shape, scale=self.scale_nm)
        return np.where(n == 0, 1.0 if w_nm >= 0 else 0.0, cdf)

    def exponential_tilt(self, mean_factor: float) -> GapTilt:
        # Tilting Gamma(k, c) by exp(θs) stays Gamma(k, c / (1 - θc)): the
        # shape (and hence the CV) is preserved, only the scale stretches.
        """In-family tilt: shape (hence CV) preserved, scale stretched."""
        return _gamma_family_tilt(self, shape=self.shape, mean_factor=mean_factor)

    def with_mean(self, mean_nm: float) -> "GammaPitch":
        """Gamma pitch rescaled to a new mean (shape and CV preserved)."""
        return GammaPitch(mean_pitch_nm=mean_nm, cv_value=self.cv_value)


@dataclass(frozen=True, repr=False)
class TruncatedNormalPitch(PitchDistribution):
    """Normally distributed pitch truncated to positive values.

    [Zhang 09a] models the inter-CNT spacing as (approximately) Gaussian.
    The truncation at zero keeps samples physical; the nominal mean and
    standard deviation refer to the *untruncated* parent distribution, and
    the truncated moments are exposed separately.
    """

    nominal_mean_nm: float
    nominal_std_nm: float

    def __post_init__(self) -> None:
        ensure_positive(self.nominal_mean_nm, "nominal_mean_nm")
        ensure_positive(self.nominal_std_nm, "nominal_std_nm")

    @property
    def _alpha(self) -> float:
        """Lower truncation point in standard-normal units."""
        return -self.nominal_mean_nm / self.nominal_std_nm

    @property
    def _dist(self):
        return stats.truncnorm(
            a=self._alpha, b=np.inf,
            loc=self.nominal_mean_nm, scale=self.nominal_std_nm,
        )

    @property
    def mean_nm(self) -> float:
        """Mean pitch µS of the *truncated* distribution, in nm."""
        return float(self._dist.mean())

    @property
    def std_nm(self) -> float:
        """Standard deviation σS of the *truncated* distribution, in nm."""
        return float(self._dist.std())

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` independent truncated-normal gaps (nm)."""
        return self._dist.rvs(size=size, random_state=rng)

    def sum_cdf(self, n: int, w_nm: float) -> float:
        """n-fold sum CDF: exact for n <= 1, CLT approximation beyond."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if n == 0:
            return 1.0 if w_nm >= 0 else 0.0
        if w_nm <= 0:
            return 0.0
        # The truncated-normal family is not closed under convolution; use a
        # central-limit approximation on the truncated moments.  For n = 1
        # the exact single-sample CDF is available.
        if n == 1:
            return float(self._dist.cdf(w_nm))
        mean = n * self.mean_nm
        std = math.sqrt(n) * self.std_nm
        return float(stats.norm.cdf(w_nm, loc=mean, scale=std))

    def sum_cdf_array(self, n_values: np.ndarray, w_nm: float) -> np.ndarray:
        """Vectorised :meth:`sum_cdf` (exact at n = 1, CLT beyond)."""
        n = np.asarray(n_values)
        if np.any(n < 0):
            raise ValueError("n must be non-negative")
        if w_nm <= 0:
            return np.where(n == 0, 1.0 if w_nm >= 0 else 0.0, 0.0)
        safe_n = np.maximum(n, 1)
        cdf = stats.norm.cdf(
            w_nm, loc=safe_n * self.mean_nm, scale=np.sqrt(safe_n) * self.std_nm
        )
        cdf = np.where(n == 1, float(self._dist.cdf(w_nm)), cdf)
        return np.where(n == 0, 1.0, cdf)

    def exponential_tilt(self, mean_factor: float) -> GapTilt:
        # Tilting N(m, σ²)·1{s>0} by exp(θs) shifts the location to
        # m + θσ² (same σ, same truncation point).  Parameterise by the
        # *nominal-location* factor β: m' = β·m, θ = m(β−1)/σ²; for the
        # lightly-truncated pitches used here the truncated mean scales by
        # ≈ β as well.  The per-gap log ratio picks up the ratio of the
        # truncation normalisations Φ(m'/σ)/Φ(m/σ).
        """In-family tilt: location shifted, same σ and truncation point."""
        if mean_factor <= 0:
            raise ValueError(f"mean_factor must be positive, got {mean_factor}")
        m, sigma = self.nominal_mean_nm, self.nominal_std_nm
        m_tilted = m * mean_factor
        tilted = TruncatedNormalPitch(
            nominal_mean_nm=m_tilted, nominal_std_nm=sigma
        )
        z_nominal = float(stats.norm.cdf(m / sigma))
        z_tilted = float(stats.norm.cdf(m_tilted / sigma))
        return GapTilt(
            nominal=self,
            tilted=tilted,
            log_const_per_gap=(
                (m_tilted ** 2 - m ** 2) / (2.0 * sigma ** 2)
                + math.log(z_tilted / z_nominal)
            ),
            log_slope_per_nm=(m - m_tilted) / sigma ** 2,
        )

    def with_mean(self, mean_nm: float) -> "TruncatedNormalPitch":
        # Scaling both nominal parameters by the same factor scales every
        # truncated moment linearly (the truncation point stays at zero),
        # so the truncated mean hits the target exactly and the CV is kept.
        """Truncated-normal pitch rescaled so the truncated mean hits the target."""
        ensure_positive(mean_nm, "mean_nm")
        factor = mean_nm / self.mean_nm
        return TruncatedNormalPitch(
            nominal_mean_nm=self.nominal_mean_nm * factor,
            nominal_std_nm=self.nominal_std_nm * factor,
        )


def _gamma_family_tilt(
    nominal: PitchDistribution, shape: float, mean_factor: float
) -> GapTilt:
    """Exponential tilt shared by the gamma family (exponential = shape 1).

    With nominal scale ``c = mean / shape`` and tilted scale ``c·β``, the
    per-gap log density ratio is ``shape · log β + s · (1/(cβ) − 1/c)``.
    """
    if mean_factor <= 0:
        raise ValueError(f"mean_factor must be positive, got {mean_factor}")
    mean = nominal.mean_nm
    if isinstance(nominal, ExponentialPitch):
        tilted: PitchDistribution = ExponentialPitch(
            mean_pitch_nm=mean * mean_factor
        )
    else:
        tilted = GammaPitch(mean_pitch_nm=mean * mean_factor, cv_value=nominal.cv)
    scale = mean / shape
    return GapTilt(
        nominal=nominal,
        tilted=tilted,
        log_const_per_gap=shape * math.log(mean_factor),
        log_slope_per_nm=(1.0 / (scale * mean_factor) - 1.0 / scale),
    )


def pitch_distribution_from_cv(mean_pitch_nm: float, cv: float) -> PitchDistribution:
    """Build the most natural pitch distribution for a given (mean, CV) pair.

    * ``cv == 0`` → :class:`DeterministicPitch`
    * ``cv == 1`` → :class:`ExponentialPitch`
    * otherwise → :class:`GammaPitch`

    This is the factory used by the calibration layer, so the rest of the
    library never hard-codes a distributional family.
    """
    ensure_positive(mean_pitch_nm, "mean_pitch_nm")
    if cv < 0:
        raise ValueError(f"cv must be non-negative, got {cv}")
    if cv == 0.0:
        return DeterministicPitch(pitch_nm=mean_pitch_nm)
    if abs(cv - 1.0) < 1e-12:
        return ExponentialPitch(mean_pitch_nm=mean_pitch_nm)
    return GammaPitch(mean_pitch_nm=mean_pitch_nm, cv_value=cv)
