"""m-CNT removal processing step (VMR-style).

After growth, metallic CNTs must be removed because they short the source
and drain of every CNFET they cross.  The paper models the removal step
([Patil 09c]) with two conditional probabilities:

* ``pRm`` — probability that a metallic tube is removed (> 99.99 % needed
  for VLSI; the paper's analysis assumes pRm ≈ 1),
* ``pRs`` — probability that a semiconducting tube is removed as collateral
  damage.

This module applies that step to concrete tube populations produced by the
growth simulators, and reports process statistics that the analytical layer
can be validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.growth.cnt import CNT, CNTTrack, CNTType
from repro.growth.types import CNTTypeModel
from repro.units import ensure_probability


@dataclass(frozen=True)
class RemovalOutcome:
    """Summary statistics of one removal-pass over a tube population."""

    total_cnts: int
    metallic_before: int
    semiconducting_before: int
    metallic_removed: int
    semiconducting_removed: int

    @property
    def metallic_surviving(self) -> int:
        """Metallic tubes that escaped removal (noise-margin hazards)."""
        return self.metallic_before - self.metallic_removed

    @property
    def semiconducting_surviving(self) -> int:
        """Semiconducting tubes that survived (working channels)."""
        return self.semiconducting_before - self.semiconducting_removed

    @property
    def removal_rate_metallic(self) -> float:
        """Empirical pRm of this pass (NaN when no metallic tube was grown)."""
        if self.metallic_before == 0:
            return float("nan")
        return self.metallic_removed / self.metallic_before

    @property
    def removal_rate_semiconducting(self) -> float:
        """Empirical pRs of this pass (NaN when no semiconducting tube)."""
        if self.semiconducting_before == 0:
            return float("nan")
        return self.semiconducting_removed / self.semiconducting_before


class RemovalProcess:
    """Applies the m-CNT removal step to tubes or tracks.

    Parameters
    ----------
    removal_prob_metallic:
        pRm — conditional removal probability for metallic tubes.
    removal_prob_semiconducting:
        pRs — conditional removal probability for semiconducting tubes.
    """

    def __init__(
        self,
        removal_prob_metallic: float = 1.0,
        removal_prob_semiconducting: float = 0.0,
    ) -> None:
        self.removal_prob_metallic = ensure_probability(
            removal_prob_metallic, "removal_prob_metallic"
        )
        self.removal_prob_semiconducting = ensure_probability(
            removal_prob_semiconducting, "removal_prob_semiconducting"
        )

    @classmethod
    def from_type_model(cls, type_model: CNTTypeModel) -> "RemovalProcess":
        """Build a removal process matching the probabilities of a type model."""
        return cls(
            removal_prob_metallic=type_model.removal_prob_metallic,
            removal_prob_semiconducting=type_model.removal_prob_semiconducting,
        )

    # ------------------------------------------------------------------
    # Application to concrete populations
    # ------------------------------------------------------------------

    def _removal_draws(
        self, types: Sequence[CNTType], rng: np.random.Generator
    ) -> np.ndarray:
        """Vector of removal decisions for a sequence of tube types."""
        u = rng.random(len(types))
        thresholds = np.array(
            [
                self.removal_prob_metallic
                if t is CNTType.METALLIC
                else self.removal_prob_semiconducting
                for t in types
            ]
        )
        return u < thresholds

    def apply_to_cnts(
        self, cnts: Iterable[CNT], rng: np.random.Generator
    ) -> List[CNT]:
        """Return new :class:`CNT` objects with removal flags applied."""
        cnts = list(cnts)
        if not cnts:
            return []
        removed = self._removal_draws([c.cnt_type for c in cnts], rng)
        return [c.with_removed(bool(r)) if r else c for c, r in zip(cnts, removed)]

    def apply_to_tracks(
        self, tracks: Iterable[CNTTrack], rng: np.random.Generator
    ) -> List[CNTTrack]:
        """Apply removal in place to a list of tracks and return it.

        Removal happens once per physical tube; because every CNFET covering
        a track shares the tube, the removal outcome is shared too — this is
        part of the correlation the paper exploits.
        """
        tracks = list(tracks)
        if not tracks:
            return []
        removed = self._removal_draws([t.cnt_type for t in tracks], rng)
        for track, is_removed in zip(tracks, removed):
            track.removed = bool(is_removed)
        return tracks

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def summarise(cnts: Iterable[CNT]) -> RemovalOutcome:
        """Compute a :class:`RemovalOutcome` for an already-processed population."""
        cnts = list(cnts)
        metallic = [c for c in cnts if c.cnt_type is CNTType.METALLIC]
        semi = [c for c in cnts if c.cnt_type is CNTType.SEMICONDUCTING]
        return RemovalOutcome(
            total_cnts=len(cnts),
            metallic_before=len(metallic),
            semiconducting_before=len(semi),
            metallic_removed=sum(1 for c in metallic if c.removed),
            semiconducting_removed=sum(1 for c in semi if c.removed),
        )
