"""Spatially correlated growth-variation fields over the wafer plane.

The wafer tier of :mod:`repro.growth.wafer` originally modelled die-to-die
variation as a radial drift plus independent per-die noise.  Real CNT
growth additionally shows *2-D spatially correlated* structure: catalyst
density, furnace temperature and gas-flow gradients vary smoothly across
the wafer, so neighbouring dies see correlated CNT densities and
correlated growth-direction misalignment (cf. Hills et al., "Rapid
Co-optimization of Processing and Circuit Design to Overcome Carbon
Nanotube Variations").  This module samples such structure as stationary
Gaussian random fields (GRFs) on a regular grid covering the wafer,
using FFT-based circulant embedding.

Model
-----
A field is specified by a :class:`SpatialFieldSpec` — marginal standard
deviation ``sigma``, correlation length ``correlation_length_mm`` and a
covariance kernel (``"gaussian"`` squared-exponential or
``"exponential"``).  :func:`sample_field` draws one realisation as a
:class:`GaussianRandomField`:

* the field lives on a regular grid of spacing ``resolution_mm`` covering
  the requested square extent; evaluation (:meth:`GaussianRandomField.at`)
  is nearest-grid-node, so the field is piecewise constant at the
  resolution scale and every evaluation point has the *exact* marginal
  variance ``sigma**2``;
* sampling uses circulant embedding: the kernel is evaluated on a torus
  at least twice the extent, its FFT gives the embedding eigenvalues, and
  one pair of standard-normal grids pushed through the inverse FFT yields
  a realisation with the target covariance (tiny negative eigenvalues of
  the embedding are clipped; the padding keeps them negligible for the
  supported kernels);
* ``correlation_length_mm = 0`` is the white-noise (nugget) limit: grid
  nodes are independent ``N(0, sigma**2)`` draws, which reproduces the
  legacy independent per-die noise of the wafer model;
* ``sigma = 0`` degenerates to the identically-zero field, which makes
  any composition with a radial profile reduce *bitwise* to the
  radial-only result.

Determinism / spawn-key contract
--------------------------------
:func:`sample_field` derives its generator as
``np.random.default_rng([*seed_key, FIELD_STREAM_TAG, tag])`` and draws a
fixed-shape normal grid, so a field realisation is a pure function of
``(spec, extent, seed_key, tag)``.  Because dies merely *read* the field
at their centre coordinates, every per-die value is bitwise invariant to
the order in which dies are generated or evaluated — the same invariance
contract the stacked wafer runner gives per-die streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.units import ensure_positive

__all__ = [
    "FIELD_STREAM_TAG",
    "SpatialFieldSpec",
    "GaussianRandomField",
    "sample_field",
]

#: Domain-separation tag mixed into every field stream's spawn key, so
#: field draws can never collide with the wafer runner's die streams or
#: the engine's chunk streams under a shared root seed.
FIELD_STREAM_TAG = 0xF1E1D

#: Kernels accepted by :class:`SpatialFieldSpec`.
_KERNELS = ("gaussian", "exponential")

#: Hard cap on grid nodes per axis (the embedding grid is twice this);
#: keeps one field draw below ~64 MB however fine the requested
#: resolution is.
MAX_GRID_NODES = 1 << 10


@dataclass(frozen=True)
class SpatialFieldSpec:
    """Specification of a stationary Gaussian random field over the wafer.

    Parameters
    ----------
    sigma:
        Marginal standard deviation of the field.  ``0`` gives the
        identically-zero field (exact radial-only reduction).
    correlation_length_mm:
        Correlation length of the kernel in mm.  ``0`` is the white-noise
        limit: grid nodes are independent draws (the legacy independent
        per-die noise).
    kernel:
        ``"gaussian"`` — squared-exponential ``exp(-(d/l)**2)`` — or
        ``"exponential"`` — ``exp(-d/l)``.
    resolution_mm:
        Grid spacing.  ``None`` (default) picks ``correlation_length_mm/4``
        clamped into ``[1, 5]`` mm, so the grid resolves the kernel without
        exploding for short correlation lengths.
    """

    sigma: float
    correlation_length_mm: float
    kernel: str = "gaussian"
    resolution_mm: float | None = None

    def __post_init__(self) -> None:
        """Validate the spec (non-negative sigma/length, known kernel)."""
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.correlation_length_mm < 0:
            raise ValueError("correlation_length_mm must be non-negative")
        if self.kernel not in _KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {_KERNELS}"
            )
        if self.resolution_mm is not None:
            ensure_positive(self.resolution_mm, "resolution_mm")

    def grid_resolution_mm(self) -> float:
        """Grid spacing actually used: explicit, or ``l/4`` clamped to [1, 5]."""
        if self.resolution_mm is not None:
            return float(self.resolution_mm)
        if self.correlation_length_mm == 0.0:
            return 1.0
        return float(min(5.0, max(1.0, self.correlation_length_mm / 4.0)))

    def covariance(self, distance_mm) -> np.ndarray:
        """Kernel covariance ``sigma**2 * rho(d)`` at the given distances.

        Vectorised over ``distance_mm``.  For ``correlation_length_mm = 0``
        the covariance is a pure nugget: ``sigma**2`` at distance zero and
        ``0`` elsewhere.
        """
        d = np.asarray(distance_mm, dtype=float)
        if self.sigma == 0.0:
            return np.zeros_like(d)
        if self.correlation_length_mm == 0.0:
            return np.where(d == 0.0, self.sigma ** 2, 0.0)
        r = d / self.correlation_length_mm
        if self.kernel == "gaussian":
            rho = np.exp(-(r ** 2))
        else:
            rho = np.exp(-r)
        return self.sigma ** 2 * rho


@dataclass(frozen=True)
class GaussianRandomField:
    """One sampled realisation of a :class:`SpatialFieldSpec` on a grid.

    Attributes
    ----------
    spec:
        The specification the field was drawn from.
    origin_mm:
        Coordinate of grid node ``(0, 0)`` (the grid is centred on the
        wafer, so this is negative).
    resolution_mm:
        Grid spacing in mm.
    values:
        ``(n, n)`` field values; ``values[i, j]`` sits at
        ``(origin + i * resolution, origin + j * resolution)``.
    """

    spec: SpatialFieldSpec
    origin_mm: float
    resolution_mm: float
    values: np.ndarray

    @property
    def grid_nodes(self) -> int:
        """Number of grid nodes per axis."""
        return int(self.values.shape[0])

    def at(self, x_mm, y_mm) -> np.ndarray:
        """Field value at wafer coordinates, nearest-grid-node lookup.

        Vectorised over ``x_mm`` / ``y_mm``.  Nearest-node evaluation keeps
        the marginal variance exactly ``sigma**2`` everywhere (interpolation
        would shrink it between nodes) and makes evaluation a pure function
        of the coordinates — the order of evaluation points can never
        change any value.  Coordinates outside the grid clamp to the edge
        node.
        """
        n = self.grid_nodes
        i = np.clip(np.rint(
            (np.asarray(x_mm, dtype=float) - self.origin_mm) / self.resolution_mm
        ).astype(np.int64), 0, n - 1)
        j = np.clip(np.rint(
            (np.asarray(y_mm, dtype=float) - self.origin_mm) / self.resolution_mm
        ).astype(np.int64), 0, n - 1)
        return self.values[i, j]


def _embedding_eigenvalues(
    spec: SpatialFieldSpec, n_embed: int, resolution_mm: float
) -> np.ndarray:
    """Eigenvalues of the circulant embedding of the kernel on the torus.

    The covariance between torus nodes depends only on the wrap-around
    displacement; its 2-D FFT diagonalises the circulant covariance
    operator.  Small negative eigenvalues (the embedding of a smooth
    kernel on a finite torus need not be exactly non-negative definite)
    are clipped to zero — with the factor-2 padding used by
    :func:`sample_field` the clipped mass is negligible for the supported
    kernels.
    """
    k = np.arange(n_embed)
    wrap = np.minimum(k, n_embed - k) * resolution_mm
    dist = np.hypot(wrap[:, None], wrap[None, :])
    cov = spec.covariance(dist)
    eig = np.fft.fft2(cov).real
    return np.maximum(eig, 0.0)


def sample_field(
    spec: SpatialFieldSpec,
    extent_mm: float,
    seed_key: Sequence[int],
    tag: int = 0,
) -> GaussianRandomField:
    """Draw one field realisation covering a centred square of ``extent_mm``.

    Parameters
    ----------
    spec:
        Field specification (sigma, correlation length, kernel,
        resolution).
    extent_mm:
        Edge length of the covered square, centred on the origin — pass
        the wafer diameter so every die centre lies on the grid.
    seed_key:
        Root spawn key of the wafer run; the field stream is derived from
        it (plus :data:`FIELD_STREAM_TAG` and ``tag``), never from global
        state.
    tag:
        Distinguishes multiple fields of one wafer run (density vs
        misalignment) under the same ``seed_key``.

    Returns
    -------
    GaussianRandomField
        The sampled field; reproducible as a pure function of the
        arguments, and bitwise identical however many dies later read it.
    """
    ensure_positive(extent_mm, "extent_mm")
    resolution = spec.grid_resolution_mm()
    n = int(math.ceil(extent_mm / resolution)) + 1
    if n > MAX_GRID_NODES:
        raise ValueError(
            f"field grid of {n} nodes per axis exceeds the cap "
            f"{MAX_GRID_NODES}; coarsen resolution_mm"
        )
    origin = -0.5 * (n - 1) * resolution
    rng = np.random.default_rng(
        [int(part) for part in seed_key] + [FIELD_STREAM_TAG, int(tag)]
    )
    if spec.sigma == 0.0:
        # Exact radial-only reduction: no draws at all, identically zero.
        return GaussianRandomField(
            spec=spec, origin_mm=origin, resolution_mm=resolution,
            values=np.zeros((n, n)),
        )
    if spec.correlation_length_mm == 0.0:
        # White-noise (nugget) limit: independent nodes, no embedding.
        values = spec.sigma * rng.standard_normal((n, n))
        return GaussianRandomField(
            spec=spec, origin_mm=origin, resolution_mm=resolution,
            values=values,
        )
    # Circulant embedding on a torus at least twice the extent (and wide
    # enough that the kernel has decayed across the pad, which keeps the
    # clipped-eigenvalue mass negligible).
    pad = int(math.ceil(3.0 * spec.correlation_length_mm / resolution))
    n_embed = 2 * (n + pad)
    eig = _embedding_eigenvalues(spec, n_embed, resolution)
    noise = rng.standard_normal((n_embed, n_embed)) \
        + 1j * rng.standard_normal((n_embed, n_embed))
    modes = np.sqrt(eig / (n_embed * n_embed)) * noise
    field = np.fft.fft2(modes).real[:n, :n]
    return GaussianRandomField(
        spec=spec, origin_mm=origin, resolution_mm=resolution,
        values=field,
    )


def field_correlation(
    spec: SpatialFieldSpec, distance_mm: float
) -> float:
    """Kernel correlation ``rho(d)`` at one distance (1 at d=0, ≤1 beyond).

    Convenience for tests and docs: the normalised covariance the sampled
    fields are held to by the variogram checks.
    """
    if spec.sigma == 0.0:
        return 1.0 if distance_mm == 0.0 else 0.0
    return float(
        spec.covariance(distance_mm) / spec.covariance(0.0)
    )


def variogram(
    field_values: np.ndarray,
    coords_mm: np.ndarray,
    bin_edges_mm: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical semivariogram of field samples at scattered coordinates.

    Parameters
    ----------
    field_values:
        ``(n_points,)`` or ``(n_realisations, n_points)`` field values.
    coords_mm:
        ``(n_points, 2)`` evaluation coordinates.
    bin_edges_mm:
        Distance bin edges, shape ``(n_bins + 1,)``.

    Returns
    -------
    gamma, counts:
        Per-bin semivariance ``0.5 * E[(Z(p) - Z(q))**2]`` and the number
        of point pairs (times realisations) that fell in each bin.  For a
        stationary field, ``gamma(d) = sigma**2 * (1 - rho(d))`` — the
        statistical check the spatial-field tests pin the sampler to.
    """
    values = np.atleast_2d(np.asarray(field_values, dtype=float))
    coords = np.asarray(coords_mm, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError("coords_mm must have shape (n_points, 2)")
    if values.shape[1] != coords.shape[0]:
        raise ValueError("field_values and coords_mm disagree on n_points")
    edges = np.asarray(bin_edges_mm, dtype=float)
    iu, ju = np.triu_indices(coords.shape[0], k=1)
    dist = np.hypot(*(coords[iu] - coords[ju]).T)
    sq = (values[:, iu] - values[:, ju]) ** 2
    which = np.digitize(dist, edges) - 1
    n_bins = edges.size - 1
    gamma = np.full(n_bins, np.nan)
    counts = np.zeros(n_bins, dtype=np.int64)
    for b in range(n_bins):
        mask = which == b
        counts[b] = int(mask.sum()) * values.shape[0]
        if counts[b]:
            gamma[b] = 0.5 * float(sq[:, mask].mean())
    return gamma, counts
