"""CNT electronic-type model and the per-CNT failure probability (Eq. 2.1).

During growth each nanotube is metallic with probability ``pm`` and
semiconducting with probability ``ps = 1 - pm``.  A subsequent m-CNT removal
step (see :mod:`repro.growth.removal`) removes a metallic tube with
conditional probability ``pRm`` and — as collateral damage — removes a
semiconducting tube with conditional probability ``pRs``.

For the *CNT count failure* mechanism studied by the paper, a tube is useful
only if it is semiconducting and not removed, so the probability that a
single tube fails to contribute to the channel is

``pf = pm + ps * pRs``                                          (Eq. 2.1)

which notably does not depend on ``pRm``: a metallic tube never contributes
to the channel whether or not it is removed.  (Non-removed metallic tubes do
matter for the noise-margin extension in :mod:`repro.analysis.noise_margin`.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_METALLIC_FRACTION,
    DEFAULT_REMOVAL_PROB_METALLIC,
    DEFAULT_REMOVAL_PROB_SEMICONDUCTING,
)
from repro.growth.cnt import CNTType
from repro.units import ensure_probability


def per_cnt_failure_probability(pm: float, p_rs: float) -> float:
    """Probability that a single grown CNT does not contribute to the channel.

    Implements Eq. 2.1 of the paper: ``pf = pm + (1 - pm) * pRs``.

    Parameters
    ----------
    pm:
        Probability of a grown CNT being metallic.
    p_rs:
        Conditional probability that a semiconducting CNT is inadvertently
        removed by the m-CNT removal step.
    """
    pm = ensure_probability(pm, "pm")
    p_rs = ensure_probability(p_rs, "p_rs")
    return pm + (1.0 - pm) * p_rs


@dataclass(frozen=True)
class CNTTypeModel:
    """Joint model of CNT type and removal outcome for a single tube.

    Parameters
    ----------
    metallic_fraction:
        pm — probability of a grown tube being metallic.
    removal_prob_metallic:
        pRm — conditional probability of removing a metallic tube.
    removal_prob_semiconducting:
        pRs — conditional probability of (inadvertently) removing a
        semiconducting tube.
    """

    metallic_fraction: float = DEFAULT_METALLIC_FRACTION
    removal_prob_metallic: float = DEFAULT_REMOVAL_PROB_METALLIC
    removal_prob_semiconducting: float = DEFAULT_REMOVAL_PROB_SEMICONDUCTING

    def __post_init__(self) -> None:
        ensure_probability(self.metallic_fraction, "metallic_fraction")
        ensure_probability(self.removal_prob_metallic, "removal_prob_metallic")
        ensure_probability(
            self.removal_prob_semiconducting, "removal_prob_semiconducting"
        )

    # ------------------------------------------------------------------
    # Derived probabilities
    # ------------------------------------------------------------------

    @property
    def semiconducting_fraction(self) -> float:
        """ps = 1 - pm."""
        return 1.0 - self.metallic_fraction

    @property
    def per_cnt_failure_probability(self) -> float:
        """pf of Eq. 2.1 — probability a tube yields no working channel."""
        return per_cnt_failure_probability(
            self.metallic_fraction, self.removal_prob_semiconducting
        )

    @property
    def per_cnt_success_probability(self) -> float:
        """1 - pf — probability a tube yields a working channel."""
        return 1.0 - self.per_cnt_failure_probability

    @property
    def surviving_metallic_probability(self) -> float:
        """Probability a tube ends up as a *surviving* metallic tube.

        Surviving metallic tubes short source to drain and degrade noise
        margins ([Zhang 09b]); this quantity feeds the noise-margin
        extension.
        """
        return self.metallic_fraction * (1.0 - self.removal_prob_metallic)

    @property
    def removed_probability(self) -> float:
        """Unconditional probability that a tube is removed."""
        return (
            self.metallic_fraction * self.removal_prob_metallic
            + self.semiconducting_fraction * self.removal_prob_semiconducting
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_types(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``size`` tube types; returns an array of :class:`CNTType`."""
        metallic = rng.random(size) < self.metallic_fraction
        return np.where(metallic, CNTType.METALLIC, CNTType.SEMICONDUCTING)

    def sample_removed(
        self, types: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample removal outcomes conditioned on the tube types.

        Parameters
        ----------
        types:
            Array of :class:`CNTType` values.
        rng:
            Random generator.

        Returns
        -------
        numpy.ndarray of bool
            True where the tube is removed.
        """
        types = np.asarray(types, dtype=object)
        is_metallic = np.array([t is CNTType.METALLIC for t in types])
        u = rng.random(types.shape[0])
        removed = np.where(
            is_metallic,
            u < self.removal_prob_metallic,
            u < self.removal_prob_semiconducting,
        )
        return removed

    def sample_working(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Sample whether each of ``size`` tubes provides a working channel.

        Equivalent to sampling types and removal and combining them, but in
        one Bernoulli draw with success probability ``1 - pf``.
        """
        return rng.random(size) >= self.per_cnt_failure_probability

    def with_perfect_removal(self) -> "CNTTypeModel":
        """Return a copy with pRm = 1 (the paper's main-analysis assumption)."""
        return CNTTypeModel(
            metallic_fraction=self.metallic_fraction,
            removal_prob_metallic=1.0,
            removal_prob_semiconducting=self.removal_prob_semiconducting,
        )

    def with_removal_eta(self, removal_eta: float) -> "CNTTypeModel":
        """Return a copy with pRm = ``removal_eta`` (imperfect removal).

        ``removal_eta`` below 1 leaves surviving metallic tubes with
        per-tube probability :attr:`surviving_metallic_probability`,
        which activates the short failure mode of
        :mod:`repro.device.shorts` in every consumer that threads it.
        """
        return CNTTypeModel(
            metallic_fraction=self.metallic_fraction,
            removal_prob_metallic=ensure_probability(removal_eta, "removal_eta"),
            removal_prob_semiconducting=self.removal_prob_semiconducting,
        )

    def with_no_processing(self) -> "CNTTypeModel":
        """Return a copy describing growth with no removal step at all."""
        return CNTTypeModel(
            metallic_fraction=self.metallic_fraction,
            removal_prob_metallic=0.0,
            removal_prob_semiconducting=0.0,
        )


#: Processing corners used repeatedly in Fig. 2.1 of the paper.
IDEAL_CORNER = CNTTypeModel(
    metallic_fraction=0.0,
    removal_prob_metallic=1.0,
    removal_prob_semiconducting=0.0,
)
"""pm = 0 %, pRs = 0 % — the lowest curve of Fig. 2.1."""

PERFECT_REMOVAL_CORNER = CNTTypeModel(
    metallic_fraction=1.0 / 3.0,
    removal_prob_metallic=1.0,
    removal_prob_semiconducting=0.0,
)
"""pm = 33 %, pRs = 0 % — the middle curve of Fig. 2.1."""

PESSIMISTIC_CORNER = CNTTypeModel(
    metallic_fraction=1.0 / 3.0,
    removal_prob_metallic=1.0,
    removal_prob_semiconducting=0.30,
)
"""pm = 33 %, pRs = 30 % — the top (worst) curve of Fig. 2.1, used for the
Wmin case study."""
