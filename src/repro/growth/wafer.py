"""Wafer-level growth variation and die-to-die yield maps.

The paper's analysis works at the chip level with a single set of growth
statistics.  Real directional-growth wafers additionally show die-to-die
variation: the mean CNT density drifts across the wafer (growth temperature
and catalyst gradients), and the growth direction is misaligned from the
layout row direction by a small, slowly varying angle.  This module models
both effects so users can ask wafer-level questions — how many dies meet the
yield target, and how the aligned-active benefit degrades towards the wafer
edge — which is the natural next step after the paper's chip-level result.

Model
-----
* The wafer is a grid of square dies inside a circular usable radius.
* Each die gets a mean CNT pitch drawn from a radial drift profile plus a
  random component, and a growth-direction misalignment angle drawn from a
  normal distribution whose spread grows with the distance from the wafer
  centre.
* Per die, the chip-level yield model of :mod:`repro.core` is evaluated with
  that die's pitch; the misalignment angle feeds the mis-positioned-CNT
  analysis of :mod:`repro.analysis.mispositioned` (a misaligned tube leaves
  the aligned active band after a finite run length, which truncates the
  effective correlation length).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.units import ensure_positive


@dataclass(frozen=True)
class DieSite:
    """One die position on the wafer with its local growth statistics."""

    column: int
    row: int
    x_mm: float
    y_mm: float
    mean_pitch_nm: float
    misalignment_deg: float

    @property
    def radius_mm(self) -> float:
        """Distance of the die centre from the wafer centre."""
        return math.hypot(self.x_mm, self.y_mm)


@dataclass(frozen=True)
class WaferMap:
    """A populated wafer: die sites plus the parameters that generated them."""

    wafer_diameter_mm: float
    die_size_mm: float
    sites: Sequence[DieSite]

    @property
    def die_count(self) -> int:
        """Number of usable dies on the wafer."""
        return len(self.sites)

    def pitches_nm(self) -> np.ndarray:
        """Mean pitch per die."""
        return np.array([site.mean_pitch_nm for site in self.sites])

    def misalignments_deg(self) -> np.ndarray:
        """Growth misalignment angle per die."""
        return np.array([site.misalignment_deg for site in self.sites])

    def yield_map(self, die_yield: Callable[[DieSite], float]) -> np.ndarray:
        """Evaluate a per-die yield function across the wafer."""
        return np.array([die_yield(site) for site in self.sites])

    def good_die_fraction(
        self, die_yield: Callable[[DieSite], float], threshold: float = 0.5
    ) -> float:
        """Fraction of dies whose yield estimate exceeds ``threshold``.

        With the CNT-count failure model a die either comfortably meets the
        yield target or collapses to ~0, so a 0.5 threshold robustly counts
        "good" dies.
        """
        yields = self.yield_map(die_yield)
        if yields.size == 0:
            return 0.0
        return float(np.mean(yields >= threshold))


class WaferGrowthModel:
    """Generates die-to-die growth statistics across a wafer.

    Parameters
    ----------
    wafer_diameter_mm:
        Usable wafer diameter.
    die_size_mm:
        Edge length of the (square) dies.
    center_pitch_nm:
        Mean inter-CNT pitch at the wafer centre.
    edge_pitch_drift:
        Relative increase of the mean pitch at the wafer edge (sparser
        growth); 0.15 means the edge dies grow 15 % sparser than the centre.
    pitch_noise_sigma:
        Die-to-die random component of the mean pitch (relative).
    center_misalignment_deg, edge_misalignment_deg:
        Standard deviation of the growth-direction misalignment angle at the
        centre and at the edge; the local spread interpolates linearly in the
        radius.
    """

    def __init__(
        self,
        wafer_diameter_mm: float = 100.0,
        die_size_mm: float = 10.0,
        center_pitch_nm: float = 4.0,
        edge_pitch_drift: float = 0.15,
        pitch_noise_sigma: float = 0.02,
        center_misalignment_deg: float = 0.2,
        edge_misalignment_deg: float = 1.0,
    ) -> None:
        self.wafer_diameter_mm = ensure_positive(wafer_diameter_mm, "wafer_diameter_mm")
        self.die_size_mm = ensure_positive(die_size_mm, "die_size_mm")
        if die_size_mm > wafer_diameter_mm:
            raise ValueError("die_size_mm cannot exceed the wafer diameter")
        self.center_pitch_nm = ensure_positive(center_pitch_nm, "center_pitch_nm")
        if edge_pitch_drift < 0:
            raise ValueError("edge_pitch_drift must be non-negative")
        self.edge_pitch_drift = float(edge_pitch_drift)
        if pitch_noise_sigma < 0:
            raise ValueError("pitch_noise_sigma must be non-negative")
        self.pitch_noise_sigma = float(pitch_noise_sigma)
        if center_misalignment_deg < 0 or edge_misalignment_deg < 0:
            raise ValueError("misalignment spreads must be non-negative")
        self.center_misalignment_deg = float(center_misalignment_deg)
        self.edge_misalignment_deg = float(edge_misalignment_deg)

    # ------------------------------------------------------------------
    # Die-site generation
    # ------------------------------------------------------------------

    def _die_centres(self) -> List[tuple]:
        """Grid of die centres whose full outline fits the usable radius."""
        radius = 0.5 * self.wafer_diameter_mm
        half_die_diag = self.die_size_mm / math.sqrt(2.0)
        n_half = int(radius // self.die_size_mm) + 1
        centres = []
        for i in range(-n_half, n_half + 1):
            for j in range(-n_half, n_half + 1):
                x = (i + 0.5) * self.die_size_mm
                y = (j + 0.5) * self.die_size_mm
                if math.hypot(x, y) + half_die_diag <= radius:
                    centres.append((i + n_half, j + n_half, x, y))
        return centres

    def _local_pitch(self, radius_mm: float, rng: np.random.Generator) -> float:
        radius_fraction = radius_mm / (0.5 * self.wafer_diameter_mm)
        drift = 1.0 + self.edge_pitch_drift * radius_fraction
        noise = rng.normal(0.0, self.pitch_noise_sigma)
        return self.center_pitch_nm * drift * max(1.0 + noise, 0.5)

    def _local_misalignment(self, radius_mm: float, rng: np.random.Generator) -> float:
        radius_fraction = radius_mm / (0.5 * self.wafer_diameter_mm)
        sigma = (
            self.center_misalignment_deg
            + (self.edge_misalignment_deg - self.center_misalignment_deg)
            * radius_fraction
        )
        return float(rng.normal(0.0, sigma))

    def generate(self, rng: Optional[np.random.Generator] = None) -> WaferMap:
        """Generate a :class:`WaferMap` with per-die growth statistics."""
        rng = rng or np.random.default_rng(20100616)
        sites = []
        for column, row, x, y in self._die_centres():
            radius = math.hypot(x, y)
            sites.append(
                DieSite(
                    column=column,
                    row=row,
                    x_mm=x,
                    y_mm=y,
                    mean_pitch_nm=self._local_pitch(radius, rng),
                    misalignment_deg=self._local_misalignment(radius, rng),
                )
            )
        return WaferMap(
            wafer_diameter_mm=self.wafer_diameter_mm,
            die_size_mm=self.die_size_mm,
            sites=tuple(sites),
        )
