"""Wafer-level growth variation and die-to-die yield maps.

The paper's analysis works at the chip level with a single set of growth
statistics.  Real directional-growth wafers additionally show die-to-die
variation: the mean CNT density drifts across the wafer (growth temperature
and catalyst gradients), and the growth direction is misaligned from the
layout row direction by a small, slowly varying angle.  This module models
both effects so users can ask wafer-level questions — how many dies meet the
yield target, and how the aligned-active benefit degrades towards the wafer
edge — which is the natural next step after the paper's chip-level result.

Model
-----
* The wafer is a grid of square dies inside a circular usable radius.
* Each die gets a mean CNT pitch drawn from a radial drift profile plus a
  random component, and a growth-direction misalignment angle drawn from a
  normal distribution whose spread grows with the distance from the wafer
  centre.
* Per die, the chip-level yield model of :mod:`repro.core` is evaluated with
  that die's pitch; the misalignment angle feeds the mis-positioned-CNT
  analysis of :mod:`repro.analysis.mispositioned` (a misaligned tube leaves
  the aligned active band after a finite run length, which truncates the
  effective correlation length).

Spatially correlated fields
---------------------------
Real growth is not purely radial: catalyst and temperature gradients give
the density (and the growth direction) 2-D spatially *correlated*
structure.  Passing :class:`~repro.growth.spatial.SpatialFieldSpec`
instances as ``density_field`` / ``misalignment_field`` composes such
Gaussian-random-field draws with the radial profile:

* the per-die density is the radial profile times a lognormal factor
  ``exp(Z - sigma**2/2)`` (mean one, so the wafer-average density is
  preserved) with ``Z`` read from one spawn-keyed field realisation;
* the per-die misalignment angle is the radial spread profile times a
  *unit-variance* correlated draw, so neighbouring dies are misaligned
  the same way;
* field draws are keyed by ``seed_key`` (see
  :mod:`repro.growth.spatial`), never by die order, so per-die values are
  bitwise invariant to the order dies are generated in;
* a field with ``sigma = 0`` (or no field at all with
  ``pitch_noise_sigma = 0``) reduces *bitwise* to the radial-only
  profile, and ``correlation_length_mm = 0`` is the independent-per-die
  (white-noise) limit of the legacy noise model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.growth.spatial import GaussianRandomField, SpatialFieldSpec, sample_field
from repro.units import ensure_positive

#: Field-stream tags separating the two per-wafer field draws under one
#: ``seed_key`` (mixed in after :data:`repro.growth.spatial.FIELD_STREAM_TAG`).
DENSITY_FIELD_TAG = 0
MISALIGNMENT_FIELD_TAG = 1

#: Default root spawn key of field draws when the caller does not pass one
#: (the paper's publication date, like the Monte Carlo tiers).
DEFAULT_SEED_KEY = (20100616,)


@dataclass(frozen=True)
class DieSite:
    """One die position on the wafer with its local growth statistics."""

    column: int
    row: int
    x_mm: float
    y_mm: float
    mean_pitch_nm: float
    misalignment_deg: float

    @property
    def radius_mm(self) -> float:
        """Distance of the die centre from the wafer centre."""
        return math.hypot(self.x_mm, self.y_mm)

    @property
    def cnt_density_per_um(self) -> float:
        """Local CNT density (tubes per µm) implied by the die's mean pitch."""
        return 1.0e3 / self.mean_pitch_nm


@dataclass(frozen=True)
class WaferMap:
    """A populated wafer: die sites plus the parameters that generated them.

    ``density_field`` / ``misalignment_field`` record the spatially
    correlated field realisations the sites were drawn from (``None`` for
    the legacy radial + independent-noise model), so wafer-level studies
    can inspect or re-evaluate the underlying fields.
    """

    wafer_diameter_mm: float
    die_size_mm: float
    sites: Sequence[DieSite]
    density_field: Optional[GaussianRandomField] = None
    misalignment_field: Optional[GaussianRandomField] = None

    @property
    def die_count(self) -> int:
        """Number of usable dies on the wafer."""
        return len(self.sites)

    def pitches_nm(self) -> np.ndarray:
        """Mean pitch per die."""
        return np.array([site.mean_pitch_nm for site in self.sites])

    def misalignments_deg(self) -> np.ndarray:
        """Growth misalignment angle per die."""
        return np.array([site.misalignment_deg for site in self.sites])

    def yield_map(self, die_yield: Callable[[DieSite], float]) -> np.ndarray:
        """Evaluate a per-die yield function across the wafer."""
        return np.array([die_yield(site) for site in self.sites])

    def good_die_fraction(
        self, die_yield: Callable[[DieSite], float], threshold: float = 0.5
    ) -> float:
        """Fraction of dies whose yield estimate exceeds ``threshold``.

        With the CNT-count failure model a die either comfortably meets the
        yield target or collapses to ~0, so a 0.5 threshold robustly counts
        "good" dies.
        """
        yields = self.yield_map(die_yield)
        if yields.size == 0:
            return 0.0
        return float(np.mean(yields >= threshold))


class WaferGrowthModel:
    """Generates die-to-die growth statistics across a wafer.

    Parameters
    ----------
    wafer_diameter_mm:
        Usable wafer diameter.
    die_size_mm:
        Edge length of the (square) dies.
    center_pitch_nm:
        Mean inter-CNT pitch at the wafer centre.
    edge_pitch_drift:
        Relative increase of the mean pitch at the wafer edge (sparser
        growth); 0.15 means the edge dies grow 15 % sparser than the centre.
    pitch_noise_sigma:
        Die-to-die random component of the mean pitch (relative).
    center_misalignment_deg, edge_misalignment_deg:
        Standard deviation of the growth-direction misalignment angle at the
        centre and at the edge; the local spread interpolates linearly in the
        radius.
    density_field:
        Optional :class:`~repro.growth.spatial.SpatialFieldSpec` for a
        spatially correlated CNT-density field.  When set, the per-die
        density is the radial profile times the lognormal factor
        ``exp(Z - sigma**2/2)`` with ``Z`` a spawn-keyed field draw, and
        the independent ``pitch_noise_sigma`` component is *not* applied
        (the field's ``correlation_length_mm = 0`` limit is its
        replacement).
    misalignment_field:
        Optional :class:`~repro.growth.spatial.SpatialFieldSpec` for the
        correlation *structure* of the misalignment angle.  The angle
        magnitude still comes from the radial
        ``center/edge_misalignment_deg`` profile; the field draw is
        normalised to unit variance before scaling, so pass ``sigma=1``
        (a ``sigma=0`` spec pins every angle to zero).  When set, the
        independent per-die normal draw is not applied.
    """

    def __init__(
        self,
        wafer_diameter_mm: float = 100.0,
        die_size_mm: float = 10.0,
        center_pitch_nm: float = 4.0,
        edge_pitch_drift: float = 0.15,
        pitch_noise_sigma: float = 0.02,
        center_misalignment_deg: float = 0.2,
        edge_misalignment_deg: float = 1.0,
        density_field: Optional[SpatialFieldSpec] = None,
        misalignment_field: Optional[SpatialFieldSpec] = None,
    ) -> None:
        self.wafer_diameter_mm = ensure_positive(wafer_diameter_mm, "wafer_diameter_mm")
        self.die_size_mm = ensure_positive(die_size_mm, "die_size_mm")
        if die_size_mm > wafer_diameter_mm:
            raise ValueError("die_size_mm cannot exceed the wafer diameter")
        self.center_pitch_nm = ensure_positive(center_pitch_nm, "center_pitch_nm")
        if edge_pitch_drift < 0:
            raise ValueError("edge_pitch_drift must be non-negative")
        self.edge_pitch_drift = float(edge_pitch_drift)
        if pitch_noise_sigma < 0:
            raise ValueError("pitch_noise_sigma must be non-negative")
        self.pitch_noise_sigma = float(pitch_noise_sigma)
        if center_misalignment_deg < 0 or edge_misalignment_deg < 0:
            raise ValueError("misalignment spreads must be non-negative")
        self.center_misalignment_deg = float(center_misalignment_deg)
        self.edge_misalignment_deg = float(edge_misalignment_deg)
        self.density_field = density_field
        self.misalignment_field = misalignment_field

    # ------------------------------------------------------------------
    # Die-site generation
    # ------------------------------------------------------------------

    def _die_centres(self) -> List[tuple]:
        """Grid of die centres whose full outline fits the usable radius."""
        radius = 0.5 * self.wafer_diameter_mm
        half_die_diag = self.die_size_mm / math.sqrt(2.0)
        n_half = int(radius // self.die_size_mm) + 1
        centres = []
        for i in range(-n_half, n_half + 1):
            for j in range(-n_half, n_half + 1):
                x = (i + 0.5) * self.die_size_mm
                y = (j + 0.5) * self.die_size_mm
                if math.hypot(x, y) + half_die_diag <= radius:
                    centres.append((i + n_half, j + n_half, x, y))
        return centres

    def radial_pitch_nm(self, radius_mm: float) -> float:
        """Deterministic radial pitch profile (no noise, no field)."""
        radius_fraction = radius_mm / (0.5 * self.wafer_diameter_mm)
        return self.center_pitch_nm * (1.0 + self.edge_pitch_drift * radius_fraction)

    def radial_misalignment_sigma_deg(self, radius_mm: float) -> float:
        """Misalignment-angle spread at a radius (linear centre→edge ramp)."""
        radius_fraction = radius_mm / (0.5 * self.wafer_diameter_mm)
        return (
            self.center_misalignment_deg
            + (self.edge_misalignment_deg - self.center_misalignment_deg)
            * radius_fraction
        )

    def _local_pitch(self, radius_mm: float, rng: np.random.Generator) -> float:
        """Radial profile times the legacy independent noise factor."""
        noise = rng.normal(0.0, self.pitch_noise_sigma)
        return self.radial_pitch_nm(radius_mm) * max(1.0 + noise, 0.5)

    def _local_misalignment(self, radius_mm: float, rng: np.random.Generator) -> float:
        """Legacy independent per-die misalignment draw at the radial spread."""
        return float(rng.normal(0.0, self.radial_misalignment_sigma_deg(radius_mm)))

    def generate(
        self,
        rng: Optional[np.random.Generator] = None,
        seed_key: Sequence[int] = DEFAULT_SEED_KEY,
    ) -> WaferMap:
        """Generate a :class:`WaferMap` with per-die growth statistics.

        Parameters
        ----------
        rng:
            Generator for the legacy independent per-die draws (pitch
            noise, misalignment); defaults to a fixed-seed generator.
            Components driven by a spatial field do not consume it.
        seed_key:
            Root spawn key of the correlated field draws (ignored when no
            field spec is configured).  Fields are keyed by
            ``(seed_key, field tag)``, never by die order, so per-die
            values are bitwise invariant to generation order.

        Returns
        -------
        WaferMap
            Usable dies with their local growth statistics, plus the
            field realisations that produced them (``None`` when the
            legacy independent-noise model was used).
        """
        rng = rng or np.random.default_rng(20100616)
        density_field = None
        misalignment_field = None
        if self.density_field is not None:
            density_field = sample_field(
                self.density_field, self.wafer_diameter_mm, seed_key,
                tag=DENSITY_FIELD_TAG,
            )
        if self.misalignment_field is not None:
            misalignment_field = sample_field(
                self.misalignment_field, self.wafer_diameter_mm, seed_key,
                tag=MISALIGNMENT_FIELD_TAG,
            )
        sites = []
        for column, row, x, y in self._die_centres():
            radius = math.hypot(x, y)
            if density_field is None:
                pitch = self._local_pitch(radius, rng)
            else:
                # Lognormal density factor with mean one: the field
                # perturbs density, so it divides the pitch.  sigma = 0
                # gives factor exactly 1.0 — the bitwise radial-only
                # reduction the composition tests pin down.
                sigma = density_field.spec.sigma
                z = float(density_field.at(x, y))
                pitch = self.radial_pitch_nm(radius) / math.exp(
                    z - 0.5 * sigma * sigma
                )
            if misalignment_field is None:
                angle = self._local_misalignment(radius, rng)
            else:
                sigma = misalignment_field.spec.sigma
                unit = float(misalignment_field.at(x, y)) / sigma if sigma > 0 else 0.0
                angle = self.radial_misalignment_sigma_deg(radius) * unit
            sites.append(
                DieSite(
                    column=column,
                    row=row,
                    x_mm=x,
                    y_mm=y,
                    mean_pitch_nm=pitch,
                    misalignment_deg=angle,
                )
            )
        return WaferMap(
            wafer_diameter_mm=self.wafer_diameter_mm,
            die_size_mm=self.die_size_mm,
            sites=tuple(sites),
            density_field=density_field,
            misalignment_field=misalignment_field,
        )
