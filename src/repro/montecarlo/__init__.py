"""Monte Carlo validation of the analytical yield models.

The analytical layer (Sec. 2 and Sec. 3 of the paper) rests on closed-form
or semi-numerical expressions.  This package validates them by simulating
fabrication outcomes directly:

* :mod:`repro.montecarlo.device_sim` — per-device failure probability pF(W)
  estimated by sampling CNT counts and per-tube outcomes; validates Eq. 2.2.
* :mod:`repro.montecarlo.row_sim` — full placement rows under the three
  growth/layout scenarios of Table 1, with CNT tracks shared between aligned
  devices; validates Eq. 3.1 / 3.2 and the ≈350X relaxation.
* :mod:`repro.montecarlo.chip_sim` — full-chip simulation of a placed design
  (tracks shared by devices in the same row), used to compare the original
  and aligned-active libraries end to end.
* :mod:`repro.montecarlo.experiments` — packaged experiments comparing
  analytic and Monte Carlo numbers, used by tests and benchmarks.
"""

from repro.montecarlo.device_sim import DeviceMonteCarlo, DeviceMCResult
from repro.montecarlo.row_sim import RowMonteCarlo, RowMCResult, RowScenarioConfig
from repro.montecarlo.chip_sim import ChipMonteCarlo, ChipMCResult, compare_libraries
from repro.montecarlo.experiments import (
    compare_device_failure,
    compare_row_scenarios,
    ComparisonRecord,
)

__all__ = [
    "DeviceMonteCarlo",
    "DeviceMCResult",
    "RowMonteCarlo",
    "RowMCResult",
    "RowScenarioConfig",
    "ChipMonteCarlo",
    "ChipMCResult",
    "compare_libraries",
    "compare_device_failure",
    "compare_row_scenarios",
    "ComparisonRecord",
]
