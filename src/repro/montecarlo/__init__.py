"""Monte Carlo validation of the analytical yield models.

The analytical layer (Sec. 2 and Sec. 3 of the paper) rests on closed-form
or semi-numerical expressions.  This package validates them by simulating
fabrication outcomes directly:

* :mod:`repro.montecarlo.engine` — the vectorized batched engine: all
  trials' CNT tracks from one 2D gap draw + ``cumsum``, all device windows
  answered by one batched ``searchsorted``/prefix-sum pass, deterministic
  trial chunking with ``spawn_key``-derived RNG streams and an opt-in
  process pool.
* :mod:`repro.montecarlo.device_sim` — per-device failure probability pF(W)
  estimated by sampling CNT counts and per-tube outcomes; validates Eq. 2.2.
* :mod:`repro.montecarlo.row_sim` — full placement rows under the three
  growth/layout scenarios of Table 1, with CNT tracks shared between aligned
  devices; validates Eq. 3.1 / 3.2 and the ≈350X relaxation.
* :mod:`repro.montecarlo.chip_sim` — full-chip simulation of a placed design
  (tracks shared by devices in the same row), used to compare the original
  and aligned-active libraries end to end.
* :mod:`repro.montecarlo.rare_event` — rare-event layer: exponentially
  tilted importance sampling with stopped likelihood-ratio weights and an
  adaptive multilevel-splitting fallback; reaches the paper's 1e8-device,
  1e-9-failure-probability operating point directly.
* :mod:`repro.montecarlo.wafer_sim` — wafer tier: every die of a
  :class:`~repro.growth.wafer.WaferMap` simulated in stacked
  (die × trial × track) passes with spawn-keyed per-die streams,
  analytic misalignment de-rating, and whole-placement per-die chip runs
  (:func:`~repro.montecarlo.wafer_sim.run_chip_wafer`).
* :mod:`repro.montecarlo.experiments` — packaged experiments comparing
  analytic and Monte Carlo numbers, used by tests and benchmarks.
"""

from repro.montecarlo.device_sim import DeviceMonteCarlo, DeviceMCResult
from repro.montecarlo.engine import (
    TrackBatch,
    count_in_windows,
    count_in_windows_flat,
    sample_track_batch,
    sample_track_counts,
    spawn_streams,
)
from repro.montecarlo.rare_event import (
    SplittingResult,
    WeightedEstimate,
    default_tilt_factor,
    estimate_device_failure_grid,
    estimate_device_failure_tilted,
    max_stable_tilt,
    multilevel_splitting,
    weighted_estimate,
)
from repro.montecarlo.row_sim import RowMonteCarlo, RowMCResult, RowScenarioConfig
from repro.montecarlo.chip_sim import (
    ChipMonteCarlo,
    ChipMCResult,
    ChipTailResult,
    compare_libraries,
)
from repro.montecarlo.wafer_sim import (
    ChipDieYield,
    ChipWaferResult,
    DieYieldEstimate,
    WaferYieldResult,
    chip_per_die_loop,
    per_die_loop,
    run_chip_wafer,
    simulate_die,
    simulate_wafer,
)
from repro.montecarlo.experiments import (
    compare_chip_engines,
    compare_device_failure,
    compare_row_scenarios,
    compare_tail_scenarios,
    ComparisonRecord,
)

__all__ = [
    "DeviceMonteCarlo",
    "DeviceMCResult",
    "TrackBatch",
    "count_in_windows",
    "count_in_windows_flat",
    "sample_track_batch",
    "sample_track_counts",
    "spawn_streams",
    "WeightedEstimate",
    "weighted_estimate",
    "default_tilt_factor",
    "max_stable_tilt",
    "estimate_device_failure_tilted",
    "estimate_device_failure_grid",
    "multilevel_splitting",
    "SplittingResult",
    "RowMonteCarlo",
    "RowMCResult",
    "RowScenarioConfig",
    "ChipMonteCarlo",
    "ChipMCResult",
    "ChipTailResult",
    "compare_libraries",
    "DieYieldEstimate",
    "WaferYieldResult",
    "ChipDieYield",
    "ChipWaferResult",
    "simulate_die",
    "simulate_wafer",
    "per_die_loop",
    "run_chip_wafer",
    "chip_per_die_loop",
    "compare_chip_engines",
    "compare_device_failure",
    "compare_row_scenarios",
    "compare_tail_scenarios",
    "ComparisonRecord",
]
