"""Full-chip Monte Carlo: placed design + directional growth + device capture.

The device- and row-level simulators validate the analytical formulas in
isolation.  This module closes the loop at the design level: it takes a
*placed* concrete design (cells packed into rows by
:class:`~repro.netlist.placement.RowPlacement`), grows CNT tracks over every
row, materialises each transistor as a y-window over those tracks, and
counts CNT-count failures.  Because devices in the same row that share a
y-band capture the *same* tracks, the correlation the paper exploits emerges
from the geometry rather than being assumed — so comparing an original
library against its aligned-active variant directly demonstrates the yield
benefit.

Batched engine
--------------
:meth:`ChipMonteCarlo.run` is an array program built on
:mod:`repro.montecarlo.engine`: every (trial, row) pair of a chunk becomes
one renewal trial of a single :func:`~repro.montecarlo.engine.sample_track_batch`
call (one 2D gap draw + ``cumsum``), and every device window of every trial
is answered by one batched ``searchsorted``/prefix-sum pass.  Trials are
processed in fixed-size chunks whose boundaries depend only on the trial
count, and each chunk consumes its own ``spawn_key``-derived RNG stream —
so a run is bitwise reproducible for any ``n_workers``, and ``n_workers > 1``
distributes the same chunks over a process pool for multi-core scaling.
The pre-vectorisation per-trial loop is retained as
:meth:`ChipMonteCarlo.run_scalar` as a cross-check oracle for the
statistical-equivalence tests.

The simulator targets small blocks (thousands of devices) at elevated
failure probabilities where the statistics are measurable; the analytical
model extrapolates to the 1e8-device, 1e-9-probability regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

import repro.montecarlo.rare_event as rare_event
from repro.backend import ArrayBackend, default_backend
from repro.growth.pitch import GapTilt, PitchDistribution, pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.montecarlo.engine import (
    count_in_windows_flat,
    default_trial_chunk,
    estimate_gap_count,
    run_chunked,
    sample_track_batch,
)
from repro.netlist.placement import PlacedInstance, RowPlacement
from repro.resilience.guards import check_finite
from repro.units import ensure_positive


@dataclass(frozen=True)
class ChipMCResult:
    """Aggregate outcome of a chip-level Monte Carlo run."""

    n_trials: int
    device_count: int
    small_device_count: int
    chip_yield: float
    mean_failing_devices: float
    std_failing_devices: float
    mean_failing_rows: float
    device_failure_rate: float

    @property
    def failure_clustering_index(self) -> float:
        """Variance-to-mean ratio of the failing-device count.

        Independent device failures give a ratio near 1 (Poisson-like);
        correlated failures (shared tubes) push it well above 1 because
        failures arrive in row-sized bursts.
        """
        if self.mean_failing_devices == 0:
            return float("nan")
        return self.std_failing_devices ** 2 / self.mean_failing_devices


@dataclass(frozen=True)
class ChipTailResult:
    """Importance-sampled tail estimate of a placed design's chip yield.

    Produced by :meth:`ChipMonteCarlo.run` with ``sampler="tilted"``.  The
    per-window device failure probabilities are Rao-Blackwellised
    (``pf ** N_window`` given the sampled tracks) and weighted by
    likelihood ratios stopped at each window's own upper bound; the chip
    yield is assembled as ``Π_rows (1 - Σ_windows pF_window)`` — rows are
    independent and the within-row union bound is first-order exact in the
    rare-failure regime this sampler targets (the same approximation
    Eq. 3.1 makes analytically).
    """

    n_trials: int
    device_count: int
    small_device_count: int
    chip_yield: float
    yield_standard_error: float
    expected_failing_devices: float
    expected_failing_devices_se: float
    effective_sample_size: float
    tilt_factor: float

    @property
    def device_failure_rate(self) -> float:
        """Mean per-device failure probability implied by the estimate."""
        if self.device_count == 0:
            return float("nan")
        return self.expected_failing_devices / self.device_count

    @property
    def yield_relative_error(self) -> float:
        """Standard error of the yield-loss, relative to the yield-loss."""
        loss = 1.0 - self.chip_yield
        if loss == 0:
            return float("nan")
        return self.yield_standard_error / loss


@dataclass(frozen=True)
class _DeviceWindow:
    """Pre-computed geometry of one device inside its row."""

    y_low_nm: float
    y_high_nm: float


@dataclass(frozen=True)
class _ChipGeometry:
    """Picklable snapshot of everything a chunk worker needs.

    Device windows are flattened across the rows that contain at least one
    transistor, after per-row deduplication: cells repeat along a row, so
    many transistors cover the *same* y-band and therefore capture exactly
    the same tracks.  One query per distinct ``(y_low, y_high)`` window with
    a multiplicity weight gives bit-identical failure counts at a fraction
    of the lookups.  ``window_lo/hi[w]`` bound distinct window ``w``,
    ``window_weight[w]`` is how many devices share it, ``window_row[w]``
    names its row, and ``row_starts`` delimits each row's contiguous slice
    (for ``np.add.reduceat``).  ``short_probability`` is the per-tube
    surviving-short probability ``q`` of :mod:`repro.device.shorts` and
    ``min_working_tubes`` the open threshold ``N_min``; at the defaults
    (``q = 0``, ``N_min = 1``) every kernel reduces bitwise to the
    pre-shorts opens-only behaviour.
    """

    pitch: PitchDistribution
    per_cnt_failure: float
    row_height_nm: float
    n_rows: int
    window_lo: np.ndarray
    window_hi: np.ndarray
    window_weight: np.ndarray
    window_row: np.ndarray
    row_starts: np.ndarray
    backend: Optional[ArrayBackend] = None
    short_probability: float = 0.0
    min_working_tubes: int = 1


def _width_class_matrix(
    geometry: _ChipGeometry,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Width-class structure of a placement geometry — the single source.

    Returns ``(widths_nm, class_matrix, class_counts)``: the sorted
    distinct window spans (each window's ``y_high - y_low``, rounded to
    6 decimals so float noise cannot split a class), the dense
    ``(n_windows, Q)`` matrix whose entry ``(w, q)`` is the device
    multiplicity of window ``w`` if it belongs to class ``q`` (else 0),
    and the per-class device totals.  One matmul of a per-trial failing
    mask against ``class_matrix`` yields every class's failing-device
    count.  Both :meth:`ChipMonteCarlo.width_class_histogram` and the
    wafer tier's Eq. 2.3 assembly derive their classes here, so the two
    views can never diverge.
    """
    spans = np.round(geometry.window_hi - geometry.window_lo, 6)
    widths = np.unique(spans)
    class_matrix = (
        (spans[:, None] == widths[None, :])
        * geometry.window_weight[:, None].astype(float)
    )
    return widths, class_matrix, class_matrix.sum(axis=0)


def _chip_window_counts_joint(
    geometry: _ChipGeometry, n_chunk: int, rng: np.random.Generator
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-(trial, distinct window) working and short tube counts.

    Every (trial, row) pair is one renewal trial; flat trial ``t * n_rows + r``
    carries row ``r`` of chip trial ``t``.  Returns ``(working, shorts)``
    count matrices of shape ``(n_chunk, n_windows)``; ``shorts`` is ``None``
    in the opens-only regime (``short_probability = 0``).  Both failure
    modes are decided by *one* uniform per tube — the three per-tube states
    partition ``[0, 1)`` as ``[0, q)`` short, ``[q, pf)`` dud and
    ``[pf, 1)`` working — so the joint mode consumes exactly the RNG stream
    of the opens-only mode and ``q = 0`` runs are bitwise unchanged, as are
    the shared-kernel consumers (wafer tier, timing tier).
    """
    xp = geometry.backend if geometry.backend is not None else default_backend()
    n_rows = geometry.n_rows
    batch = sample_track_batch(
        geometry.pitch, geometry.row_height_nm, n_chunk * n_rows, rng,
        backend=xp,
    )
    u = xp.uniform(rng, batch.positions.shape)
    working = (u >= geometry.per_cnt_failure) & batch.valid

    n_windows = geometry.window_lo.size
    trial_index = (
        np.repeat(np.arange(n_chunk) * n_rows, n_windows)
        + np.tile(geometry.window_row, n_chunk)
    )
    lo = np.tile(geometry.window_lo, n_chunk)
    hi = np.tile(geometry.window_hi, n_chunk)
    good = xp.to_numpy(count_in_windows_flat(
        batch.positions,
        working,
        geometry.row_height_nm,
        lo,
        hi,
        trial_index,
        backend=xp,
    )).reshape(n_chunk, n_windows)
    if geometry.short_probability <= 0.0:
        return good, None
    shorting = (u < geometry.short_probability) & batch.valid
    shorts = xp.to_numpy(count_in_windows_flat(
        batch.positions,
        shorting,
        geometry.row_height_nm,
        lo,
        hi,
        trial_index,
        backend=xp,
    )).reshape(n_chunk, n_windows)
    return good, shorts


def _chip_window_counts(
    geometry: _ChipGeometry, n_chunk: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-(trial, distinct window) working-tube counts for one chunk.

    The working-count view of :func:`_chip_window_counts_joint`.  This is
    the shared sampling kernel of :func:`_simulate_chip_chunk`, the wafer
    tier's per-die chip runs
    (:func:`repro.montecarlo.wafer_sim.run_chip_wafer`) and the timing
    tier (:mod:`repro.timing.parametric`) — all consume the generator
    identically, which is what keeps functional and parametric yield
    answerable from the *same* per-trial tracks.
    """
    return _chip_window_counts_joint(geometry, n_chunk, rng)[0]


def _chip_window_failures(
    geometry: _ChipGeometry, n_chunk: int, rng: np.random.Generator
) -> np.ndarray:
    """Boolean failing matrix ``(n_chunk, n_windows)``.

    A window fails with fewer than ``min_working_tubes`` working tubes
    (open) or at least one surviving short.  Thin view over
    :func:`_chip_window_counts_joint`; retained as the kernel the
    functional-yield consumers call.  The opens-only predicate is kept as
    the literal ``== 0`` comparison so the default configuration stays
    bitwise identical to the pre-shorts engine.
    """
    good, shorts = _chip_window_counts_joint(geometry, n_chunk, rng)
    if geometry.min_working_tubes <= 1:
        failing = good == 0
    else:
        failing = good < geometry.min_working_tubes
    if shorts is not None:
        failing = failing | (shorts > 0)
    return failing


def _simulate_chip_chunk(
    geometry: _ChipGeometry, n_chunk: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate one chunk of whole-chip trials, fully vectorised.

    Returns the per-trial failing device and failing row counts; the
    per-row reduction is a host-side ``reduceat`` over the (small)
    per-window results of :func:`_chip_window_failures`.
    """
    failing = _chip_window_failures(geometry, n_chunk, rng)
    failing_devices = (failing * geometry.window_weight).sum(axis=1).astype(float)
    per_row = np.add.reduceat(failing, geometry.row_starts, axis=1)
    failing_rows = (per_row > 0).sum(axis=1).astype(float)
    return failing_devices, failing_rows


@dataclass(frozen=True)
class _TiltedChipPayload:
    """Picklable chunk payload for the importance-sampled chip estimator."""

    geometry: _ChipGeometry
    tilt: GapTilt


def _simulate_chip_chunk_tilted(
    payload: _TiltedChipPayload, n_chunk: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """One chunk of tilted chip trials.

    Every (trial, row) pair is one tilted renewal trial.  Each distinct
    device window contributes the Rao-Blackwellised value
    ``pf ** N_window`` times the likelihood ratio of the trajectory stopped
    at the window's upper bound (stopping per window keeps the weight noise
    proportional to the window's altitude in the row, not the full row
    span).  Returns per-trial per-row window sums (union-bound row failure
    probabilities) and per-trial failing-device expectations.
    """
    geometry = payload.geometry
    xp = geometry.backend if geometry.backend is not None else default_backend()
    n_rows = geometry.n_rows
    batch = sample_track_batch(
        payload.tilt.tilted,
        geometry.row_height_nm,
        n_chunk * n_rows,
        rng,
        offset_mean_nm=payload.tilt.nominal.mean_nm,
        backend=xp,
    )
    n_windows = geometry.window_lo.size
    trial_index = (
        np.repeat(np.arange(n_chunk) * n_rows, n_windows)
        + np.tile(geometry.window_row, n_chunk)
    )
    hi = np.tile(geometry.window_hi, n_chunk)
    counts, stop_index = count_in_windows_flat(
        batch.positions,
        xp.asarray(batch.valid, dtype=xp.dtype),
        geometry.row_height_nm,
        np.tile(geometry.window_lo, n_chunk),
        hi,
        trial_index,
        return_stop_index=True,
        backend=xp,
    )
    log_w = rare_event.window_stopped_log_weights(
        batch, payload.tilt, hi, trial_index, stop_index=stop_index,
        backend=xp,
    )
    values = xp.to_numpy(
        xp.power(geometry.per_cnt_failure, counts) * xp.exp(log_w)
    ).reshape(n_chunk, n_windows)
    row_sums = np.add.reduceat(values, geometry.row_starts, axis=1)
    device_sums = (values * geometry.window_weight).sum(axis=1)
    return row_sums, device_sums


class ChipMonteCarlo:
    """Monte Carlo CNT-count-yield simulation of a placed design.

    Placement geometry is materialised exactly once at construction:
    ``placement.run()`` is executed a single time, and the device windows,
    device counts and small-device counts are all derived from that cached
    result.

    Parameters
    ----------
    placement:
        A row placement of the design to simulate.
    pitch:
        Inter-CNT pitch distribution along the device-width (y) axis.
    type_model:
        Metallic/semiconducting and removal statistics.
    row_height_nm:
        Height of the placement row (the span tracks are grown over); taken
        from the first cell when omitted.
    small_width_threshold_nm:
        Devices at or below this width are counted as "small" in the
        statistics (mirrors the Mmin bookkeeping of the analytical model).
    backend:
        Array backend for the batched passes (see :mod:`repro.backend`).
        ``None`` resolves the environment default at chunk-execution time
        (``REPRO_BACKEND`` / ``REPRO_DTYPE``); an explicit backend pins the
        run to it regardless of the environment.
    min_working_tubes:
        Open threshold ``N_min``: a device fails open with fewer working
        tubes than this.  The short failure mode needs no extra knob here —
        it activates whenever ``type_model.surviving_metallic_probability``
        is positive (imperfect metallic removal).
    """

    def __init__(
        self,
        placement: RowPlacement,
        pitch: Optional[PitchDistribution] = None,
        type_model: Optional[CNTTypeModel] = None,
        row_height_nm: Optional[float] = None,
        small_width_threshold_nm: float = 160.0,
        backend: Optional[ArrayBackend] = None,
        min_working_tubes: int = 1,
    ) -> None:
        self.placement = placement
        self.backend = backend
        self.pitch = pitch or pitch_distribution_from_cv(4.0, 1.0)
        self.type_model = type_model or CNTTypeModel()
        if int(min_working_tubes) < 1 or min_working_tubes != int(min_working_tubes):
            raise ValueError(
                f"min_working_tubes must be a positive integer, got {min_working_tubes!r}"
            )
        self.min_working_tubes = int(min_working_tubes)
        self.small_width_threshold_nm = ensure_positive(
            small_width_threshold_nm, "small_width_threshold_nm"
        )
        self._rows = placement.run()
        if row_height_nm is None:
            first_cell = next(
                (p.cell for row in self._rows for p in row.placed
                 if p.cell.transistors),
                None,
            )
            if first_cell is None:
                raise ValueError("placement contains no transistors to simulate")
            row_height_nm = first_cell.height_nm
        self.row_height_nm = ensure_positive(row_height_nm, "row_height_nm")
        self._row_windows = self._collect_device_windows()
        self._device_count = sum(len(w) for w in self._row_windows)
        self._small_device_count = sum(
            1
            for row in self._rows
            for placed in row.placed
            for w in placed.cell.transistor_widths_nm()
            if w <= self.small_width_threshold_nm
        )
        self._geometry = self._build_geometry()

    # ------------------------------------------------------------------
    # Geometry pre-computation
    # ------------------------------------------------------------------

    def _collect_device_windows(self) -> List[List[_DeviceWindow]]:
        """Per row, the y-window of every transistor's active region."""
        rows: List[List[_DeviceWindow]] = []
        for row in self._rows:
            windows: List[_DeviceWindow] = []
            for placed in row.placed:
                for cell_region in placed.cell.active_regions(x_origin_nm=placed.x_nm):
                    region = cell_region.region
                    # Clamp both ends into the grown span: tracks only exist
                    # in [0, row_height], and the batched window counter
                    # requires in-span queries.  A region entirely outside
                    # the span collapses to a zero-width window that
                    # captures no tracks (the device always fails).
                    y_low = min(max(region.y_nm, 0.0), self.row_height_nm)
                    y_high = min(max(region.y_end_nm, y_low), self.row_height_nm)
                    windows.append(
                        _DeviceWindow(y_low_nm=y_low, y_high_nm=y_high)
                    )
            rows.append(windows)
        return rows

    def _build_geometry(self) -> _ChipGeometry:
        """Flatten the device windows of non-empty rows into engine arrays.

        Windows are deduplicated per row: devices covering the same y-band
        capture the same tracks, so one weighted query answers all of them.
        """
        lo: List[float] = []
        hi: List[float] = []
        weight: List[int] = []
        row_of_window: List[int] = []
        row_starts: List[int] = []
        sim_row = 0
        for windows in self._row_windows:
            if not windows:
                # Rows without transistors cannot fail; dropping them keeps
                # every simulated row non-empty (reduceat needs that).
                continue
            distinct: Dict[Tuple[float, float], int] = {}
            for window in windows:
                key = (window.y_low_nm, window.y_high_nm)
                distinct[key] = distinct.get(key, 0) + 1
            row_starts.append(len(lo))
            for (y_low, y_high), count in distinct.items():
                lo.append(y_low)
                hi.append(y_high)
                weight.append(count)
                row_of_window.append(sim_row)
            sim_row += 1
        return _ChipGeometry(
            pitch=self.pitch,
            per_cnt_failure=self.type_model.per_cnt_failure_probability,
            row_height_nm=self.row_height_nm,
            n_rows=sim_row,
            window_lo=np.asarray(lo, dtype=float),
            window_hi=np.asarray(hi, dtype=float),
            window_weight=np.asarray(weight, dtype=np.int64),
            window_row=np.asarray(row_of_window, dtype=np.int64),
            row_starts=np.asarray(row_starts, dtype=np.int64),
            backend=self.backend,
            short_probability=self.type_model.surviving_metallic_probability,
            min_working_tubes=self.min_working_tubes,
        )

    @property
    def device_count(self) -> int:
        """Number of transistors simulated."""
        return self._device_count

    def chip_geometry(self) -> _ChipGeometry:
        """The cached, picklable geometry snapshot of the placed design.

        One snapshot serves every run of this simulator; the wafer tier
        (:func:`repro.montecarlo.wafer_sim.run_chip_wafer`) substitutes a
        per-die pitch into copies of it (``dataclasses.replace``) instead
        of re-materialising the placement once per die — the structural
        saving its benchmark measures.
        """
        return self._geometry

    def instance_windows(self) -> List[Tuple["PlacedInstance", List[int]]]:
        """Per placed instance, the distinct-window index of each transistor.

        Replays the exact clamping of :meth:`_collect_device_windows` and the
        per-row insertion-ordered deduplication of :meth:`_build_geometry`,
        so the returned indices address columns of the count matrices the
        chunk kernels produce (:func:`_chip_window_counts`).  Instances are
        returned in placement order; an instance without transistors (filler
        cells) gets an empty index list.  This is the bridge the timing tier
        uses to read each gate's captured-tube count out of the same sampled
        tracks that decide functional yield.
        """
        result: List[Tuple[PlacedInstance, List[int]]] = []
        next_global = 0
        for row, windows in zip(self._rows, self._row_windows):
            if not windows:
                for placed in row.placed:
                    result.append((placed, []))
                continue
            distinct: Dict[Tuple[float, float], int] = {}
            for placed in row.placed:
                indices: List[int] = []
                for cell_region in placed.cell.active_regions(x_origin_nm=placed.x_nm):
                    region = cell_region.region
                    y_low = min(max(region.y_nm, 0.0), self.row_height_nm)
                    y_high = min(max(region.y_end_nm, y_low), self.row_height_nm)
                    key = (y_low, y_high)
                    if key not in distinct:
                        distinct[key] = next_global
                        next_global += 1
                    indices.append(distinct[key])
                result.append((placed, indices))
        return result

    def width_class_histogram(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Distinct device-width classes of the placement and their counts.

        Returns
        -------
        widths_nm, device_counts:
            Sorted distinct device widths (each window's ``y_high - y_low``
            span, in nm) and how many transistors of the whole placement
            carry each width.  This is the width-class view the wafer
            tier's Eq. 2.3 product runs over: all classes of a die are
            answered from the same sampled tracks.
        """
        widths, _, counts = _width_class_matrix(self._geometry)
        return tuple(float(w) for w in widths), tuple(float(c) for c in counts)

    @property
    def small_device_count(self) -> int:
        """Number of transistors at or below the small-width threshold."""
        return self._small_device_count

    #: Minimum number of chunks a default-chunked run is split into (when it
    #: has that many trials), so process pools up to this size always receive
    #: work.  A constant — never the worker count — keeps the chunk layout,
    #: and hence the per-chunk RNG streams, independent of ``n_workers``.
    DEFAULT_PARALLEL_GRAIN = 16

    def _default_trial_chunk(self, n_trials: int) -> int:
        """Trials per batch: bounded by the engine's element budget and small
        enough that at least :attr:`DEFAULT_PARALLEL_GRAIN` chunks exist."""
        est_slots = estimate_gap_count(self.pitch, self.row_height_nm)
        per_trial = max(1, self._geometry.n_rows * est_slots)
        return default_trial_chunk(
            per_trial, n_trials, grain=self.DEFAULT_PARALLEL_GRAIN
        )

    # ------------------------------------------------------------------
    # Scalar reference implementation (pre-vectorisation oracle)
    # ------------------------------------------------------------------

    def _sample_tracks(
        self, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample track y-positions, working and shorting flags for one row.

        Deliberately does NOT use the batched engine: this is the
        independent implementation of the renewal convention (first track
        one uniformly-offset pitch below the origin, gaps accumulated until
        the span is cleared) that the equivalence tests check the engine
        against.  One uniform per track decides both failure modes (the
        same three-interval partition the batched kernel uses), so the
        joint oracle consumes exactly the opens-only RNG stream.
        """
        mean = self.pitch.mean_nm
        block = max(16, int(self.row_height_nm / mean * 1.5) + 8)
        positions: List[float] = []
        y = -float(rng.random()) * mean
        done = False
        while not done:
            for gap in self.pitch.sample(block, rng):
                y += float(gap)
                if y > self.row_height_nm:
                    done = True
                    break
                if y >= 0.0:
                    positions.append(y)
        pos = np.asarray(positions, dtype=float)
        u = rng.random(pos.size)
        working = u >= self.type_model.per_cnt_failure_probability
        shorting = u < self.type_model.surviving_metallic_probability
        return pos, working, shorting

    def _row_failing_devices(
        self,
        windows: Sequence[_DeviceWindow],
        rng: np.random.Generator,
    ) -> int:
        """Number of failing devices in one row for one trial.

        A device fails open (fewer than ``min_working_tubes`` working
        tubes) or short (at least one surviving metallic tube in its
        window).
        """
        positions, working, shorting = self._sample_tracks(rng)
        if positions.size == 0:
            return len(windows)
        # Prefix sums of working tubes let each device query its y-window in
        # O(log n) instead of scanning every track.
        prefix = np.concatenate([[0], np.cumsum(working.astype(int))])
        joint = self.type_model.surviving_metallic_probability > 0.0
        short_prefix = (
            np.concatenate([[0], np.cumsum(shorting.astype(int))]) if joint else None
        )
        n_min = self.min_working_tubes
        failing = 0
        for window in windows:
            lo = np.searchsorted(positions, window.y_low_nm, side="left")
            hi = np.searchsorted(positions, window.y_high_nm, side="right")
            good = prefix[hi] - prefix[lo]
            fails = good == 0 if n_min <= 1 else good < n_min
            if not fails and joint:
                fails = short_prefix[hi] - short_prefix[lo] > 0
            if fails:
                failing += 1
        return failing

    def run_scalar(self, n_trials: int, rng: np.random.Generator) -> ChipMCResult:
        """Per-trial/per-row reference implementation of :meth:`run`.

        Draws the same distribution as the batched engine but walks every
        trial, row and window in Python; kept as the oracle for the
        statistical-equivalence tests and as readable documentation of the
        sampling process.
        """
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        failing_devices = np.zeros(n_trials, dtype=float)
        failing_rows = np.zeros(n_trials, dtype=float)
        for trial in range(n_trials):
            total_failing = 0
            rows_failing = 0
            for windows in self._row_windows:
                if not windows:
                    continue
                row_failures = self._row_failing_devices(windows, rng)
                total_failing += row_failures
                if row_failures > 0:
                    rows_failing += 1
            failing_devices[trial] = total_failing
            failing_rows[trial] = rows_failing
        return self._result(failing_devices, failing_rows)

    # ------------------------------------------------------------------
    # Batched simulation
    # ------------------------------------------------------------------

    def run(
        self,
        n_trials: int,
        rng: np.random.Generator,
        n_workers: int = 1,
        trial_chunk: Optional[int] = None,
        sampler: str = "naive",
        tilt_factor: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = True,
        policy=None,
        faults=None,
    ) -> Union["ChipMCResult", "ChipTailResult"]:
        """Simulate ``n_trials`` fabrications of the placed design.

        Parameters
        ----------
        n_trials:
            Number of whole-chip fabrication trials.
        rng:
            Root generator; each trial chunk consumes its own child stream
            spawned from it, so results do not depend on ``n_workers``.
        n_workers:
            Processes to spread the trial chunks over.  ``1`` (default)
            runs in-process; larger values use a process pool and produce
            bitwise-identical statistics.
        trial_chunk:
            Trials per batch.  The default keeps one batched gap matrix
            near the engine's element budget (~32 MB) while still splitting
            the run into at least :attr:`DEFAULT_PARALLEL_GRAIN` chunks so
            that ``n_workers > 1`` always has work to distribute.
        sampler:
            ``"naive"`` (default) returns a :class:`ChipMCResult` from
            direct indicator sampling.  ``"tilted"`` importance-samples the
            failure tail under an exponentially tilted gap distribution and
            returns a :class:`ChipTailResult`; use it when per-device
            failures are too rare for indicators to resolve.
        tilt_factor:
            Mean-pitch stretch factor for ``sampler="tilted"``.  The
            default balances the ``pf``-cancellation rule against the
            stopped-weight stability budget of the row span (see
            :mod:`repro.montecarlo.rare_event`).
        checkpoint_dir:
            When given, completed trial chunks persist under this
            directory (content-hashed, atomically written) and a rerun
            with the same configuration and root generator resumes from
            them bitwise-identically.  ``resume=False`` discards any
            previous units first.
        resume:
            Whether an existing checkpoint for this campaign is loaded
            (default) or cleared.
        policy:
            A :class:`~repro.resilience.supervise.RetryPolicy` enabling
            supervised execution (per-chunk timeouts, bounded retries on
            worker death) even without a checkpoint.
        faults:
            A :class:`~repro.resilience.faults.FaultPlan` for chaos
            testing; never set in production runs.
        """
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        if sampler not in ("naive", "tilted"):
            raise ValueError(
                f"unknown sampler {sampler!r}; expected 'naive' or 'tilted'"
            )
        if sampler == "tilted":
            if (
                self._geometry.short_probability > 0.0
                or self._geometry.min_working_tubes > 1
            ):
                raise ValueError(
                    "sampler='tilted' supports only the opens-only regime: "
                    "its Rao-Blackwellised pf ** N values have no joint "
                    "opens+shorts counterpart (use the naive sampler or the "
                    "closed form of repro.device.shorts)"
                )
            return self._run_tilted(n_trials, rng, n_workers, trial_chunk,
                                    tilt_factor, checkpoint_dir=checkpoint_dir,
                                    resume=resume, policy=policy, faults=faults)
        if self._geometry.n_rows == 0:
            # No row carries a transistor window: nothing can fail (matches
            # the scalar oracle, which skips empty rows).
            zeros = np.zeros(n_trials)
            return self._result(zeros, zeros)
        if trial_chunk is None:
            trial_chunk = self._default_trial_chunk(n_trials)
        checkpoint = self._open_checkpoint(
            checkpoint_dir, "chip-naive", n_trials, trial_chunk, rng, resume
        )
        chunks = run_chunked(
            _simulate_chip_chunk,
            self._geometry,
            n_trials,
            rng,
            trial_chunk=trial_chunk,
            n_workers=n_workers,
            policy=policy,
            checkpoint=checkpoint,
            faults=faults,
        )
        failing_devices = np.concatenate([c[0] for c in chunks])
        failing_rows = np.concatenate([c[1] for c in chunks])
        return self._result(failing_devices, failing_rows)

    def _open_checkpoint(
        self,
        checkpoint_dir: Optional[str],
        campaign: str,
        n_trials: int,
        trial_chunk: int,
        rng: np.random.Generator,
        resume: bool,
    ):
        """Open the chunk-level campaign checkpoint, or ``None`` without one.

        The fingerprint binds the checkpoint to the placement geometry,
        the sampling configuration and the root generator (stream state
        plus spawn counter), so resuming with *anything* different is a
        :class:`~repro.resilience.checkpoint.CheckpointError` instead of
        silently mixed results.
        """
        if checkpoint_dir is None:
            return None
        from repro.montecarlo.engine import chunk_sizes
        from repro.resilience.checkpoint import CheckpointStore, fingerprint_parts

        geometry = self._geometry
        fingerprint = fingerprint_parts(
            campaign,
            int(n_trials),
            int(trial_chunk),
            float(geometry.per_cnt_failure),
            float(geometry.short_probability),
            int(geometry.min_working_tubes),
            float(geometry.row_height_nm),
            int(geometry.n_rows),
            geometry.window_lo,
            geometry.window_hi,
            geometry.window_weight,
            geometry.window_row,
            repr(self.pitch),
            rng.bit_generator.state,
            int(rng.bit_generator.seed_seq.n_children_spawned),
        )
        return CheckpointStore(checkpoint_dir).campaign(
            campaign,
            fingerprint,
            len(chunk_sizes(n_trials, trial_chunk)),
            resume=resume,
        )

    def default_chip_tilt_factor(self) -> float:
        """Default tilt for :meth:`run` with ``sampler="tilted"``.

        The ``pf``-cancellation rule fixes the in-window weight noise; the
        stability budget over the full row span bounds the below-window
        noise that the per-window stopped weights still accumulate.  The
        smaller of the two wins.
        """
        pf = self._geometry.per_cnt_failure
        return min(
            rare_event.default_tilt_factor(self.pitch, self.row_height_nm, pf),
            rare_event.max_stable_tilt(self.pitch, self.row_height_nm),
        )

    def _run_tilted(
        self,
        n_trials: int,
        rng: np.random.Generator,
        n_workers: int,
        trial_chunk: Optional[int],
        tilt_factor: Optional[float],
        checkpoint_dir: Optional[str] = None,
        resume: bool = True,
        policy=None,
        faults=None,
    ) -> ChipTailResult:
        if self._geometry.n_rows == 0:
            return ChipTailResult(
                n_trials=int(n_trials),
                device_count=self.device_count,
                small_device_count=self.small_device_count,
                chip_yield=1.0,
                yield_standard_error=0.0,
                expected_failing_devices=0.0,
                expected_failing_devices_se=0.0,
                effective_sample_size=float(n_trials),
                tilt_factor=1.0,
            )
        if tilt_factor is None:
            tilt_factor = self.default_chip_tilt_factor()
        tilt = self.pitch.exponential_tilt(tilt_factor)
        if trial_chunk is None:
            # Size chunks from the *tilted* pitch actually sampled: its
            # stretched mean means ~tilt_factor fewer gaps per row, so the
            # nominal-pitch estimate would leave most of the element budget
            # unused.
            est_slots = estimate_gap_count(tilt.tilted, self.row_height_nm)
            trial_chunk = default_trial_chunk(
                max(1, self._geometry.n_rows * est_slots),
                n_trials,
                grain=self.DEFAULT_PARALLEL_GRAIN,
            )
        checkpoint = self._open_checkpoint(
            checkpoint_dir, "chip-tilted", n_trials, trial_chunk, rng, resume
        )
        chunks = run_chunked(
            _simulate_chip_chunk_tilted,
            _TiltedChipPayload(geometry=self._geometry, tilt=tilt),
            n_trials,
            rng,
            trial_chunk=trial_chunk,
            n_workers=n_workers,
            policy=policy,
            checkpoint=checkpoint,
            faults=faults,
        )
        row_sums = np.vstack([c[0] for c in chunks])
        # Importance weights may legitimately overflow to inf under extreme
        # tilts (reported as infinite uncertainty below); NaN never is.
        check_finite(row_sums, "chip_mc.tilted.row_sums", allow_inf=True)
        device_summary = rare_event.weighted_estimate(
            np.concatenate([c[1] for c in chunks])
        )
        p_row = row_sums.mean(axis=0)
        se_row = (
            row_sums.std(axis=0, ddof=1) / np.sqrt(n_trials)
            if n_trials > 1 else np.zeros_like(p_row)
        )
        p_clipped = np.clip(p_row, 0.0, 1.0)
        chip_yield = float(np.prod(1.0 - p_clipped))
        survive = 1.0 - p_clipped
        if np.all(survive > 0.0):
            yield_se = chip_yield * float(
                np.sqrt(np.sum((se_row / survive) ** 2))
            )
        else:
            # A row's union-bound probability clipped at 1: the sampler is
            # outside its rare-failure regime (or a weight outlier hit) and
            # the yield estimate carries no information — report infinite
            # uncertainty rather than a falsely exact zero.
            yield_se = float("inf")
        return ChipTailResult(
            n_trials=int(n_trials),
            device_count=self.device_count,
            small_device_count=self.small_device_count,
            chip_yield=chip_yield,
            yield_standard_error=yield_se,
            expected_failing_devices=device_summary.estimate,
            expected_failing_devices_se=device_summary.standard_error,
            effective_sample_size=device_summary.effective_sample_size,
            tilt_factor=float(tilt_factor),
        )

    def _result(
        self, failing_devices: np.ndarray, failing_rows: np.ndarray
    ) -> ChipMCResult:
        check_finite(failing_devices, "chip_mc.failing_devices")
        check_finite(failing_rows, "chip_mc.failing_rows")
        n_trials = failing_devices.size
        device_count = self.device_count
        return ChipMCResult(
            n_trials=int(n_trials),
            device_count=device_count,
            small_device_count=self.small_device_count,
            chip_yield=float(np.mean(failing_devices == 0)),
            mean_failing_devices=float(np.mean(failing_devices)),
            std_failing_devices=(
                float(np.std(failing_devices, ddof=1)) if n_trials > 1 else 0.0
            ),
            mean_failing_rows=float(np.mean(failing_rows)),
            device_failure_rate=(
                float(np.mean(failing_devices) / device_count)
                if device_count else float("nan")
            ),
        )


def compare_libraries(
    original_placement: RowPlacement,
    aligned_placement: RowPlacement,
    type_model: Optional[CNTTypeModel] = None,
    pitch: Optional[PitchDistribution] = None,
    n_trials: int = 50,
    seed: int = 2010,
    n_workers: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, ChipMCResult]:
    """Simulate the same netlist on the original and aligned-active libraries.

    Returns a dictionary with keys ``"original"`` and ``"aligned"``; the
    aligned variant should show both a lower device failure rate (devices
    were upsized to Wmin) and a higher failure-clustering index (failures
    concentrate on shared tracks), which together produce the chip-yield
    benefit the paper reports.

    An externally supplied ``rng`` takes precedence over ``seed``: each
    library consumes its own child stream spawned from it, so callers can
    coordinate this comparison with other estimators through shared spawn
    keys instead of ad-hoc reseeding.
    """
    if rng is not None:
        streams = rng.spawn(2)
    else:
        streams = [np.random.default_rng(seed), np.random.default_rng(seed)]
    results: Dict[str, ChipMCResult] = {}
    for stream, (label, placement) in zip(
        streams,
        (("original", original_placement), ("aligned", aligned_placement)),
    ):
        simulator = ChipMonteCarlo(placement, pitch=pitch, type_model=type_model)
        results[label] = simulator.run(n_trials, stream, n_workers=n_workers)
    return results
