"""Full-chip Monte Carlo: placed design + directional growth + device capture.

The device- and row-level simulators validate the analytical formulas in
isolation.  This module closes the loop at the design level: it takes a
*placed* concrete design (cells packed into rows by
:class:`~repro.netlist.placement.RowPlacement`), grows CNT tracks over every
row, materialises each transistor as a :class:`~repro.device.cnfet.CNFET`
capturing the tracks its active region covers, and counts CNT-count
failures.  Because devices in the same row that share a y-band capture the
*same* track objects, the correlation the paper exploits emerges from the
geometry rather than being assumed — so comparing an original library
against its aligned-active variant directly demonstrates the yield benefit.

The simulator is meant for small blocks (thousands of devices) at elevated
failure probabilities where the statistics are measurable; the analytical
model extrapolates to the 1e8-device, 1e-9-probability regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.growth.pitch import PitchDistribution, pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.netlist.placement import RowPlacement
from repro.units import ensure_positive


@dataclass(frozen=True)
class ChipMCResult:
    """Aggregate outcome of a chip-level Monte Carlo run."""

    n_trials: int
    device_count: int
    small_device_count: int
    chip_yield: float
    mean_failing_devices: float
    std_failing_devices: float
    mean_failing_rows: float
    device_failure_rate: float

    @property
    def failure_clustering_index(self) -> float:
        """Variance-to-mean ratio of the failing-device count.

        Independent device failures give a ratio near 1 (Poisson-like);
        correlated failures (shared tubes) push it well above 1 because
        failures arrive in row-sized bursts.
        """
        if self.mean_failing_devices == 0:
            return float("nan")
        return self.std_failing_devices ** 2 / self.mean_failing_devices


@dataclass(frozen=True)
class _DeviceWindow:
    """Pre-computed geometry of one device inside its row."""

    y_low_nm: float
    y_high_nm: float


class ChipMonteCarlo:
    """Monte Carlo CNT-count-yield simulation of a placed design.

    Parameters
    ----------
    placement:
        A row placement of the design to simulate.
    pitch:
        Inter-CNT pitch distribution along the device-width (y) axis.
    type_model:
        Metallic/semiconducting and removal statistics.
    row_height_nm:
        Height of the placement row (the span tracks are grown over); taken
        from the first cell when omitted.
    small_width_threshold_nm:
        Devices at or below this width are counted as "small" in the
        statistics (mirrors the Mmin bookkeeping of the analytical model).
    """

    def __init__(
        self,
        placement: RowPlacement,
        pitch: Optional[PitchDistribution] = None,
        type_model: Optional[CNTTypeModel] = None,
        row_height_nm: Optional[float] = None,
        small_width_threshold_nm: float = 160.0,
    ) -> None:
        self.placement = placement
        self.pitch = pitch or pitch_distribution_from_cv(4.0, 1.0)
        self.type_model = type_model or CNTTypeModel()
        self.small_width_threshold_nm = ensure_positive(
            small_width_threshold_nm, "small_width_threshold_nm"
        )
        rows = placement.run()
        if row_height_nm is None:
            first_cell = next(
                (p.cell for row in rows for p in row.placed if p.cell.transistors),
                None,
            )
            if first_cell is None:
                raise ValueError("placement contains no transistors to simulate")
            row_height_nm = first_cell.height_nm
        self.row_height_nm = ensure_positive(row_height_nm, "row_height_nm")
        self._row_windows = self._collect_device_windows()

    # ------------------------------------------------------------------
    # Geometry pre-computation
    # ------------------------------------------------------------------

    def _collect_device_windows(self) -> List[List[_DeviceWindow]]:
        """Per row, the y-window of every transistor's active region."""
        rows: List[List[_DeviceWindow]] = []
        for row in self.placement.run():
            windows: List[_DeviceWindow] = []
            for placed in row.placed:
                for cell_region in placed.cell.active_regions(x_origin_nm=placed.x_nm):
                    region = cell_region.region
                    windows.append(
                        _DeviceWindow(
                            y_low_nm=region.y_nm,
                            y_high_nm=min(region.y_end_nm, self.row_height_nm),
                        )
                    )
            rows.append(windows)
        return rows

    @property
    def device_count(self) -> int:
        """Number of transistors simulated."""
        return sum(len(windows) for windows in self._row_windows)

    @property
    def small_device_count(self) -> int:
        """Number of transistors at or below the small-width threshold."""
        count = 0
        for row in self.placement.run():
            for placed in row.placed:
                count += sum(
                    1 for w in placed.cell.transistor_widths_nm()
                    if w <= self.small_width_threshold_nm
                )
        return count

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def _sample_tracks(self, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Sample track y-positions and working flags for one row trial."""
        positions: List[float] = []
        y = -float(rng.random()) * self.pitch.mean_nm
        mean = self.pitch.mean_nm
        block = max(16, int(self.row_height_nm / mean * 1.5) + 8)
        while y <= self.row_height_nm:
            gaps = self.pitch.sample(block, rng)
            for gap in gaps:
                y += float(gap)
                if y > self.row_height_nm:
                    break
                if y >= 0.0:
                    positions.append(y)
            else:
                continue
            break
        pos = np.asarray(positions, dtype=float)
        working = rng.random(pos.size) >= self.type_model.per_cnt_failure_probability
        return pos, working

    def _row_failing_devices(
        self,
        windows: Sequence[_DeviceWindow],
        rng: np.random.Generator,
    ) -> int:
        """Number of devices in one row with zero working tubes (one trial)."""
        positions, working = self._sample_tracks(rng)
        if positions.size == 0:
            return len(windows)
        order = np.argsort(positions)
        positions = positions[order]
        working = working[order]
        # Prefix sums of working tubes let each device query its y-window in
        # O(log n) instead of scanning every track.
        prefix = np.concatenate([[0], np.cumsum(working.astype(int))])
        failing = 0
        for window in windows:
            lo = np.searchsorted(positions, window.y_low_nm, side="left")
            hi = np.searchsorted(positions, window.y_high_nm, side="right")
            if prefix[hi] - prefix[lo] == 0:
                failing += 1
        return failing

    def run(self, n_trials: int, rng: np.random.Generator) -> ChipMCResult:
        """Simulate ``n_trials`` fabrications of the placed design."""
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        failing_devices = np.zeros(n_trials, dtype=float)
        failing_rows = np.zeros(n_trials, dtype=float)
        for trial in range(n_trials):
            total_failing = 0
            rows_failing = 0
            for windows in self._row_windows:
                row_failures = self._row_failing_devices(windows, rng)
                total_failing += row_failures
                if row_failures > 0:
                    rows_failing += 1
            failing_devices[trial] = total_failing
            failing_rows[trial] = rows_failing

        device_count = self.device_count
        return ChipMCResult(
            n_trials=int(n_trials),
            device_count=device_count,
            small_device_count=self.small_device_count,
            chip_yield=float(np.mean(failing_devices == 0)),
            mean_failing_devices=float(np.mean(failing_devices)),
            std_failing_devices=(
                float(np.std(failing_devices, ddof=1)) if n_trials > 1 else 0.0
            ),
            mean_failing_rows=float(np.mean(failing_rows)),
            device_failure_rate=float(np.mean(failing_devices) / device_count),
        )


def compare_libraries(
    original_placement: RowPlacement,
    aligned_placement: RowPlacement,
    type_model: Optional[CNTTypeModel] = None,
    pitch: Optional[PitchDistribution] = None,
    n_trials: int = 50,
    seed: int = 2010,
) -> Dict[str, ChipMCResult]:
    """Simulate the same netlist on the original and aligned-active libraries.

    Returns a dictionary with keys ``"original"`` and ``"aligned"``; the
    aligned variant should show both a lower device failure rate (devices
    were upsized to Wmin) and a higher failure-clustering index (failures
    concentrate on shared tracks), which together produce the chip-yield
    benefit the paper reports.
    """
    results: Dict[str, ChipMCResult] = {}
    for label, placement in (("original", original_placement),
                             ("aligned", aligned_placement)):
        simulator = ChipMonteCarlo(placement, pitch=pitch, type_model=type_model)
        rng = np.random.default_rng(seed)
        results[label] = simulator.run(n_trials, rng)
    return results
