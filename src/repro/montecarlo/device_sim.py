"""Monte Carlo estimation of the device failure probability pF(W).

Validates the analytical Eq. 2.2 pipeline (count model + per-tube failure
probability) against direct simulation of growth, typing and removal for a
single device.  Because practically relevant pF values are tiny (1e-6 and
below), the simulator also supports an importance-style "conditional"
estimator: it computes the failure probability exactly for each sampled CNT
count (``pf ** count``), averaging those conditional probabilities instead
of averaging 0/1 failure indicators.  This keeps the estimator unbiased
while reducing its variance by orders of magnitude, making validation of
small probabilities feasible.

Counts can come from three sources: the analytical count model (keeps the
comparison apples-to-apples with Eq. 2.2), the isotropic growth simulator,
or — via ``pitch`` — the batched renewal engine of
:mod:`repro.montecarlo.engine`, which simulates the gap-by-gap track
placement itself (one 2D gap draw + ``cumsum`` for all samples at once,
memory-bounded by internal chunking).  The engine source is what the
device-level statistical-equivalence tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.montecarlo.rare_event as rare_event
from repro.core.count_model import CountModel
from repro.growth.isotropic import IsotropicGrowthModel
from repro.growth.pitch import PitchDistribution
from repro.growth.types import CNTTypeModel
from repro.montecarlo.engine import sample_track_counts
from repro.units import ensure_positive


@dataclass(frozen=True)
class DeviceMCResult:
    """Monte Carlo estimate of a device failure probability."""

    width_nm: float
    n_samples: int
    failure_probability: float
    standard_error: float
    mean_cnt_count: float
    mean_working_count: float

    @property
    def relative_error(self) -> float:
        """Standard error relative to the estimate (NaN when estimate is 0)."""
        if self.failure_probability == 0:
            return float("nan")
        return self.standard_error / self.failure_probability


class DeviceMonteCarlo:
    """Estimates pF(W) by simulating individual devices.

    Parameters
    ----------
    count_model:
        Analytical count model used for count sampling (keeps the comparison
        apples-to-apples with the analytical pF); alternatively a full
        :class:`~repro.growth.isotropic.IsotropicGrowthModel` can be passed
        via ``growth_model`` to sample counts from the growth process itself.
    type_model:
        CNT type / removal statistics.
    growth_model:
        Optional growth simulator; when provided, counts come from it instead
        of the count model.
    pitch:
        Optional pitch distribution; when provided, counts come from the
        batched renewal engine (direct simulation of the inter-CNT gaps).
        Precedence when several sources are given: ``growth_model``, then
        ``pitch``, then ``count_model``.
    """

    def __init__(
        self,
        count_model: Optional[CountModel] = None,
        type_model: Optional[CNTTypeModel] = None,
        growth_model: Optional[IsotropicGrowthModel] = None,
        pitch: Optional[PitchDistribution] = None,
    ) -> None:
        if count_model is None and growth_model is None and pitch is None:
            raise ValueError(
                "one of count_model, growth_model or pitch must be provided"
            )
        self.count_model = count_model
        self.type_model = type_model or CNTTypeModel()
        self.growth_model = growth_model
        self.pitch = pitch

    # ------------------------------------------------------------------
    # Count sampling
    # ------------------------------------------------------------------

    def _sample_counts(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.growth_model is not None:
            return self.growth_model.sample_counts(width_nm, n_samples, rng)
        if self.pitch is not None:
            return sample_track_counts(self.pitch, width_nm, n_samples, rng)
        assert self.count_model is not None
        return self.count_model.sample(width_nm, n_samples, rng)

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------

    def estimate_naive(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> DeviceMCResult:
        """Plain 0/1 estimator: thin counts per tube and check for zero survivors.

        Only practical when pF is not too small (wide confidence intervals
        otherwise); primarily used to cross-check the conditional estimator.
        With surviving metallic tubes
        (``type_model.surviving_metallic_probability > 0``) the per-count
        thinning becomes two-stage — shorts first, then conducting tubes
        among the non-shorts — and a device also fails with any short.
        """
        ensure_positive(width_nm, "width_nm")
        counts = self._sample_counts(width_nm, n_samples, rng)
        p_success = self.type_model.per_cnt_success_probability
        q = self.type_model.surviving_metallic_probability
        if q > 0.0:
            shorts = rng.binomial(counts, q)
            working = rng.binomial(counts - shorts, p_success / (1.0 - q))
            failures = ((shorts > 0) | (working == 0)).astype(float)
        else:
            working = rng.binomial(counts, p_success)
            failures = (working == 0).astype(float)
        estimate = float(np.mean(failures))
        stderr = float(np.std(failures, ddof=1) / np.sqrt(n_samples)) if n_samples > 1 else 0.0
        return DeviceMCResult(
            width_nm=float(width_nm),
            n_samples=int(n_samples),
            failure_probability=estimate,
            standard_error=stderr,
            mean_cnt_count=float(np.mean(counts)),
            mean_working_count=float(np.mean(working)),
        )

    def estimate_conditional(
        self, width_nm: float, n_samples: int, rng: np.random.Generator
    ) -> DeviceMCResult:
        """Rao-Blackwellised estimator: average ``pf ** count`` over sampled counts.

        Conditioning on the count and integrating the per-tube outcomes
        analytically removes the inner binomial noise, so small failure
        probabilities can be estimated with modest sample counts.  In the
        joint opens+shorts regime the conditional value is the thinned
        ``1 - (1 - q)**N + (pf - q)**N`` of :mod:`repro.device.shorts`;
        at ``q = 0`` the opens-only ``pf ** N`` path is untouched.
        """
        ensure_positive(width_nm, "width_nm")
        counts = self._sample_counts(width_nm, n_samples, rng)
        pf = self.type_model.per_cnt_failure_probability
        q = self.type_model.surviving_metallic_probability
        n = counts.astype(float)
        if q > 0.0:
            conditional = 1.0 - np.power(1.0 - q, n) + np.power(pf - q, n)
        else:
            conditional = np.power(pf, n)
        estimate = float(np.mean(conditional))
        stderr = (
            float(np.std(conditional, ddof=1) / np.sqrt(n_samples))
            if n_samples > 1 else 0.0
        )
        p_success = self.type_model.per_cnt_success_probability
        return DeviceMCResult(
            width_nm=float(width_nm),
            n_samples=int(n_samples),
            failure_probability=estimate,
            standard_error=stderr,
            mean_cnt_count=float(np.mean(counts)),
            mean_working_count=float(np.mean(counts)) * p_success,
        )

    def estimate_tilted(
        self,
        width_nm: float,
        n_samples: int,
        rng: np.random.Generator,
        tilt_factor: Optional[float] = None,
        n_workers: int = 1,
    ) -> DeviceMCResult:
        """Importance-sampled tail estimator of pF(W).

        Requires a ``pitch`` count source (the tilt acts on the inter-CNT
        gap distribution itself).  Combines the conditional ``pf ** N``
        value with per-trial likelihood-ratio weights from the exponentially
        tilted renewal engine; reaches pF values of 1e-9 and below with
        modest sample counts.  The mean-count fields report the nominal-law
        renewal approximation ``W / µS`` (the sampled counts follow the
        tilted law and would need reweighting to be comparable).
        """
        if self.pitch is None:
            raise ValueError(
                "estimate_tilted requires a pitch count source; "
                "growth- and count-model sources have no gap law to tilt"
            )
        if self.type_model.surviving_metallic_probability > 0.0:
            raise ValueError(
                "estimate_tilted supports only the opens-only regime: the "
                "pf ** N cancellation that stabilises the tilted weights "
                "has no joint opens+shorts counterpart"
            )
        ensure_positive(width_nm, "width_nm")
        pf = self.type_model.per_cnt_failure_probability
        summary = rare_event.estimate_device_failure_tilted(
            self.pitch, pf, width_nm, n_samples, rng,
            tilt_factor=tilt_factor, n_workers=n_workers,
        )
        mean_count = width_nm / self.pitch.mean_nm
        return DeviceMCResult(
            width_nm=float(width_nm),
            n_samples=int(n_samples),
            failure_probability=summary.estimate,
            standard_error=summary.standard_error,
            mean_cnt_count=mean_count,
            mean_working_count=mean_count * self.type_model.per_cnt_success_probability,
        )

    def estimate(
        self,
        width_nm: float,
        n_samples: int,
        rng: np.random.Generator,
        conditional: bool = True,
        sampler: str = "naive",
        tilt_factor: Optional[float] = None,
    ) -> DeviceMCResult:
        """Estimate pF(W); uses the conditional estimator by default.

        ``sampler="tilted"`` switches to the importance-sampled tail
        estimator (pitch count source required).
        """
        if sampler not in ("naive", "tilted"):
            raise ValueError(
                f"unknown sampler {sampler!r}; expected 'naive' or 'tilted'"
            )
        if sampler == "tilted":
            return self.estimate_tilted(
                width_nm, n_samples, rng, tilt_factor=tilt_factor
            )
        if conditional:
            return self.estimate_conditional(width_nm, n_samples, rng)
        return self.estimate_naive(width_nm, n_samples, rng)
