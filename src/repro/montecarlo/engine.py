"""Vectorized batched Monte Carlo engine for CNT track simulation.

The scalar simulators in :mod:`repro.montecarlo` build each trial with
Python loops: sample one gap, advance the cursor, test one device window at
a time.  That caps validation at tens of trials of small blocks.  This
module provides the batched primitives that replace those loops with NumPy
array programs over a leading ``(n_trials, ...)`` batch axis:

* :func:`sample_track_batch` — grow the CNT tracks of *all* trials at once:
  one 2D gap draw per batch, a single ``cumsum`` along the gap axis, and a
  validity mask marking the tracks that landed inside the span.  The
  renewal convention matches the scalar samplers exactly (the first track
  sits one uniformly-offset pitch below the span origin), so the batched
  and scalar engines draw from the same distribution.
* :func:`count_in_windows` / :func:`count_in_windows_flat` — answer "how
  many (working) tracks does window ``[lo, hi]`` of trial ``t`` capture?"
  for every window of every trial in one pass.  Each trial's track row is
  already sorted (a ``cumsum`` of positive gaps), so shifting trial ``t``
  by ``t * stride`` makes the whole batch globally sorted and two
  ``searchsorted`` calls plus a prefix sum answer every query at once.
* :func:`sample_track_counts` — memory-bounded helper returning only the
  per-trial track counts (used when the positions themselves are not
  needed, e.g. device-level failure estimation).
* :func:`spawn_streams` / :func:`chunk_sizes` — deterministic RNG
  sub-streams and trial chunking.  Chunk boundaries depend only on the
  trial count and chunk size — never on the worker count — so a run with
  ``n_workers=4`` consumes exactly the same per-chunk streams as a serial
  run and produces bitwise-identical statistics.

Workers receive ``(payload, n_chunk, stream)`` tuples through
:func:`run_chunked`; the payload must be picklable (the simulators pass
small dataclasses of NumPy arrays plus the pitch/type models).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.growth.pitch import PitchDistribution
from repro.units import ensure_positive

__all__ = [
    "TrackBatch",
    "estimate_gap_count",
    "sample_track_batch",
    "sample_track_counts",
    "count_in_windows",
    "count_in_windows_flat",
    "spawn_streams",
    "chunk_sizes",
    "run_chunked",
]

#: Soft cap on the number of elements of one batched gap matrix.  Callers
#: chunk their trial axis so ``n_trials * gaps_per_trial`` stays near this
#: (≈32 MB of float64 per matrix), keeping peak memory flat regardless of
#: the requested trial count.
DEFAULT_BATCH_ELEMENTS: int = 1 << 22


@dataclass(frozen=True)
class TrackBatch:
    """CNT track positions for a batch of independent row trials.

    ``positions`` is ``(n_trials, n_slots)`` and sorted ascending along the
    slot axis (it is a cumulative sum of positive gaps).  Slots whose track
    fell outside ``[0, span_nm]`` are retained for shape regularity and
    masked out by ``valid``.
    """

    positions: np.ndarray
    valid: np.ndarray
    span_nm: float

    @property
    def n_trials(self) -> int:
        return self.positions.shape[0]

    def counts(self) -> np.ndarray:
        """Number of in-span tracks per trial, shape ``(n_trials,)``."""
        return self.valid.sum(axis=1)


def estimate_gap_count(pitch: PitchDistribution, span_nm: float) -> int:
    """Gap draws per trial so the cumulative sum almost surely clears the span.

    The renewal count over ``span + mean`` fluctuates with standard
    deviation ≈ ``cv * sqrt(n)``; an 8-sigma margin plus a constant floor
    makes the top-up loop in :func:`sample_track_batch` a rare event rather
    than the common path.  Callers use this as the per-trial element
    estimate when sizing memory-bounded chunks.
    """
    mean = pitch.mean_nm
    n_mean = (span_nm + mean) / mean
    cv = pitch.std_nm / mean if mean > 0 else 0.0
    return int(n_mean + 8.0 * cv * math.sqrt(n_mean + 1.0)) + 16


def sample_track_batch(
    pitch: PitchDistribution,
    span_nm: float,
    n_trials: int,
    rng: np.random.Generator,
) -> TrackBatch:
    """Sample the CNT tracks of ``n_trials`` independent rows in one pass.

    Matches the scalar samplers' convention: each trial starts a renewal
    process at ``-u`` with ``u ~ U(0, mean_pitch)`` and keeps the track
    positions that land inside ``[0, span_nm]``.
    """
    ensure_positive(span_nm, "span_nm")
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    start_offsets = rng.random(n_trials) * pitch.mean_nm
    n_gaps = estimate_gap_count(pitch, span_nm)
    gaps = pitch.sample_batch((n_trials, n_gaps), rng)
    positions = np.cumsum(gaps, axis=1)
    positions -= start_offsets[:, None]
    # Top up the rare trials whose gap budget did not clear the span.  The
    # extra draws are appended for every trial (keeping the array
    # rectangular); out-of-span tracks are masked below either way.
    while np.any(positions[:, -1] <= span_nm):
        block = max(16, n_gaps // 4)
        extra = pitch.sample_batch((n_trials, block), rng)
        tail = positions[:, -1][:, None] + np.cumsum(extra, axis=1)
        positions = np.concatenate([positions, tail], axis=1)
    valid = (positions >= 0.0) & (positions <= span_nm)
    return TrackBatch(positions=positions, valid=valid, span_nm=float(span_nm))


def sample_track_counts(
    pitch: PitchDistribution,
    span_nm: float,
    n_trials: int,
    rng: np.random.Generator,
    batch_elements: int = DEFAULT_BATCH_ELEMENTS,
) -> np.ndarray:
    """Per-trial count of tracks captured by a span, shape ``(n_trials,)``.

    Internally chunks the trial axis so peak memory stays bounded by
    ``batch_elements`` regardless of ``n_trials``.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    per_trial = max(1, estimate_gap_count(pitch, span_nm))
    chunk = max(1, batch_elements // per_trial)
    counts = np.empty(n_trials, dtype=np.int64)
    done = 0
    while done < n_trials:
        n = min(chunk, n_trials - done)
        counts[done:done + n] = sample_track_batch(pitch, span_nm, n, rng).counts()
        done += n
    return counts


def count_in_windows_flat(
    positions: np.ndarray,
    weights: np.ndarray,
    span_nm: float,
    lo: np.ndarray,
    hi: np.ndarray,
    trial_index: np.ndarray,
) -> np.ndarray:
    """Weighted track counts for an arbitrary flat list of window queries.

    Parameters
    ----------
    positions:
        ``(n_trials, n_slots)`` track positions, sorted along the slot axis
        (as produced by :func:`sample_track_batch`).
    weights:
        Per-slot weights, same shape; must already be zero on slots that
        should not count (out-of-span tracks, failed tubes).
    span_nm:
        Span of the trials; queries must lie inside ``[0, span_nm]``.
    lo, hi:
        Query bounds, shape ``(n_queries,)``.  Both ends are inclusive,
        matching the scalar simulators.
    trial_index:
        ``(n_queries,)`` index of the trial each query interrogates.

    Returns the weighted count per query, shape ``(n_queries,)``.
    """
    n_trials = positions.shape[0]
    # Shift trial t by t * stride: each row is sorted, the shifted rows are
    # disjoint, so the flattened batch is globally sorted and two
    # searchsorted calls answer every (trial, window) query at once.
    # Positions are clipped just outside the query range first — clipping
    # is monotone, preserves sortedness, and never moves a track across a
    # query boundary (queries live inside [0, span]).
    pad = 1.0
    stride = span_nm + 4.0 * pad
    clipped = np.clip(positions, -pad, span_nm + pad)
    offsets = np.arange(n_trials, dtype=float) * stride
    flat = (clipped + offsets[:, None]).ravel()
    prefix = np.zeros(flat.size + 1)
    np.cumsum(weights.ravel(), out=prefix[1:])
    shift = offsets[trial_index]
    left = np.searchsorted(flat, np.asarray(lo, dtype=float) + shift, side="left")
    right = np.searchsorted(flat, np.asarray(hi, dtype=float) + shift, side="right")
    return prefix[right] - prefix[left]


def count_in_windows(
    batch: TrackBatch,
    weights: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Weighted track counts on a regular ``(n_trials, n_windows)`` grid.

    ``lo`` / ``hi`` may be ``(n_windows,)`` (the same windows for every
    trial) or ``(n_trials, n_windows)`` (per-trial windows, e.g. random
    device offsets).  Returns counts of shape ``(n_trials, n_windows)``.
    """
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if lo.ndim == 1:
        lo = np.broadcast_to(lo, (batch.n_trials, lo.size))
    if hi.ndim == 1:
        hi = np.broadcast_to(hi, (batch.n_trials, hi.size))
    if lo.shape != hi.shape or lo.shape[0] != batch.n_trials:
        raise ValueError(
            f"window bounds {lo.shape} do not match batch of {batch.n_trials} trials"
        )
    n_trials, n_windows = lo.shape
    trial_index = np.repeat(np.arange(n_trials), n_windows)
    counts = count_in_windows_flat(
        batch.positions,
        weights,
        batch.span_nm,
        lo.ravel(),
        hi.ravel(),
        trial_index,
    )
    return counts.reshape(n_trials, n_windows)


# ----------------------------------------------------------------------
# RNG streams and chunked (optionally multi-process) execution
# ----------------------------------------------------------------------


def spawn_streams(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses ``Generator.spawn`` (NumPy ≥ 1.25) when available and falls back
    to spawning the underlying ``SeedSequence`` otherwise.  Either way the
    children are keyed by the parent's ``spawn_key``, so repeated calls on
    identically-seeded parents yield identical stream families.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if hasattr(rng, "spawn"):
        return list(rng.spawn(n))
    seed_seq = rng.bit_generator.seed_seq  # pragma: no cover - old NumPy
    return [np.random.Generator(type(rng.bit_generator)(s))
            for s in seed_seq.spawn(n)]


def chunk_sizes(n_trials: int, trial_chunk: int) -> List[int]:
    """Split ``n_trials`` into deterministic chunks of ``trial_chunk``.

    The split depends only on its arguments — in particular not on the
    worker count — which is what makes multi-worker runs bitwise
    reproducible against serial runs.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if trial_chunk <= 0:
        raise ValueError("trial_chunk must be positive")
    full, rest = divmod(n_trials, trial_chunk)
    return [trial_chunk] * full + ([rest] if rest else [])


def run_chunked(
    worker: Callable[..., Tuple[np.ndarray, ...]],
    payload,
    n_trials: int,
    rng: np.random.Generator,
    trial_chunk: int,
    n_workers: int = 1,
) -> List[Tuple[np.ndarray, ...]]:
    """Run ``worker(payload, n_chunk, stream)`` over deterministic chunks.

    One RNG stream is spawned per chunk up front; with ``n_workers > 1``
    the chunks are dispatched to a process pool (``worker`` and
    ``payload`` must be picklable), otherwise they run in-process.  The
    returned list is ordered by chunk, so results are identical for any
    worker count.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    sizes = chunk_sizes(n_trials, trial_chunk)
    streams = spawn_streams(rng, len(sizes))
    if n_workers == 1 or len(sizes) == 1:
        return [worker(payload, n, stream) for n, stream in zip(sizes, streams)]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(sizes))) as pool:
        futures = [
            pool.submit(worker, payload, n, stream)
            for n, stream in zip(sizes, streams)
        ]
        return [f.result() for f in futures]
