"""Vectorized batched Monte Carlo engine for CNT track simulation.

The scalar simulators in :mod:`repro.montecarlo` build each trial with
Python loops: sample one gap, advance the cursor, test one device window at
a time.  That caps validation at tens of trials of small blocks.  This
module provides the batched primitives that replace those loops with NumPy
array programs over a leading ``(n_trials, ...)`` batch axis:

* :func:`sample_track_batch` — grow the CNT tracks of *all* trials at once:
  one 2D gap draw per batch, a single ``cumsum`` along the gap axis, and a
  validity mask marking the tracks that landed inside the span.  The
  renewal convention matches the scalar samplers exactly (the first track
  sits one uniformly-offset pitch below the span origin), so the batched
  and scalar engines draw from the same distribution.
* :func:`count_in_windows` / :func:`count_in_windows_flat` — answer "how
  many (working) tracks does window ``[lo, hi]`` of trial ``t`` capture?"
  for every window of every trial in one pass.  Each trial's track row is
  already sorted (a ``cumsum`` of positive gaps), so shifting trial ``t``
  by ``t * stride`` makes the whole batch globally sorted and two
  ``searchsorted`` calls plus a prefix sum answer every query at once.
* :func:`sample_track_counts` — memory-bounded helper returning only the
  per-trial track counts (used when the positions themselves are not
  needed, e.g. device-level failure estimation).
* :func:`spawn_streams` / :func:`chunk_sizes` — deterministic RNG
  sub-streams and trial chunking.  Chunk boundaries depend only on the
  trial count and chunk size — never on the worker count — so a run with
  ``n_workers=4`` consumes exactly the same per-chunk streams as a serial
  run and produces bitwise-identical statistics.

Backend dispatch
----------------
Every array kernel takes an optional ``backend``
(:class:`repro.backend.ArrayBackend`); ``None`` resolves the
environment-selected default (``REPRO_BACKEND`` / ``REPRO_DTYPE``, NumPy
float64 out of the box).  The NumPy float64 path maps one-to-one onto the
pre-dispatch implementation and is bit-identical to it; float32 and GPU
policies are held to tolerance by the conformance suite under
``tests/backend/``.  Search operands are explicitly cast to the positions
dtype (:meth:`~repro.backend.ArrayBackend.cast_like`) — NumPy would
silently promote a float32 haystack to float64 on every query batch, and
torch refuses mixed-dtype searches outright — and band offsets are built
in the positions dtype for the same reason.

Workers receive ``(payload, n_chunk, stream)`` tuples through
:func:`run_chunked`; the payload must be picklable (the simulators pass
small dataclasses of NumPy arrays plus the pitch/type models).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.backend import ArrayBackend, default_backend
from repro.growth.pitch import PitchDistribution
from repro.units import ensure_positive

__all__ = [
    "TrackBatch",
    "estimate_gap_count",
    "sample_track_batch",
    "sample_track_counts",
    "count_in_windows",
    "count_in_windows_flat",
    "window_stop_indices",
    "spawn_streams",
    "chunk_sizes",
    "default_trial_chunk",
    "run_chunked",
]

#: Soft cap on the number of elements of one batched gap matrix.  Callers
#: chunk their trial axis so ``n_trials * gaps_per_trial`` stays near this
#: (≈32 MB of float64 per matrix), keeping peak memory flat regardless of
#: the requested trial count.
DEFAULT_BATCH_ELEMENTS: int = 1 << 22


@dataclass(frozen=True)
class TrackBatch:
    """CNT track positions for a batch of independent row trials.

    ``positions`` is ``(n_trials, n_slots)`` and sorted ascending along the
    slot axis (it is a cumulative sum of positive gaps).  Slots whose track
    fell outside ``[0, span_nm]`` are retained for shape regularity and
    masked out by ``valid``.  ``start_offsets`` records each trial's uniform
    renewal offset ``u`` (position ``j`` sits at ``S_j - u`` with ``S_j`` the
    cumulative gap sum); the rare-event layer needs it to reconstruct the
    gap sums that enter the likelihood-ratio weights.
    """

    positions: np.ndarray
    valid: np.ndarray
    span_nm: float
    start_offsets: Optional[np.ndarray] = None

    @property
    def n_trials(self) -> int:
        return self.positions.shape[0]

    @property
    def dtype(self):
        """Storage dtype of the track positions (the backend's policy dtype)."""
        return self.positions.dtype

    def counts(self) -> np.ndarray:
        """Number of in-span tracks per trial, shape ``(n_trials,)``."""
        return self.valid.sum(axis=1)


def estimate_gap_count(pitch: PitchDistribution, span_nm: float) -> int:
    """Gap draws per trial so the cumulative sum almost surely clears the span.

    The renewal count over ``span + mean`` fluctuates with standard
    deviation ≈ ``cv * sqrt(n)``; an 8-sigma margin plus a constant floor
    makes the top-up loop in :func:`sample_track_batch` a rare event rather
    than the common path.  Callers use this as the per-trial element
    estimate when sizing memory-bounded chunks.
    """
    mean = pitch.mean_nm
    n_mean = (span_nm + mean) / mean
    cv = pitch.std_nm / mean if mean > 0 else 0.0
    return int(n_mean + 8.0 * cv * math.sqrt(n_mean + 1.0)) + 16


def sample_track_batch(
    pitch: PitchDistribution,
    span_nm: float,
    n_trials: int,
    rng: np.random.Generator,
    offset_mean_nm: Optional[float] = None,
    backend: Optional[ArrayBackend] = None,
) -> TrackBatch:
    """Sample the CNT tracks of ``n_trials`` independent rows in one pass.

    Matches the scalar samplers' convention: each trial starts a renewal
    process at ``-u`` with ``u ~ U(0, mean_pitch)`` and keeps the track
    positions that land inside ``[0, span_nm]``.

    ``offset_mean_nm`` overrides the mean used for the uniform start offset
    ``u``.  The rare-event importance sampler passes the *nominal* pitch mean
    here while ``pitch`` itself is the tilted distribution, so the offset law
    is common to both measures and only the gaps enter the likelihood ratio.
    """
    xp = backend if backend is not None else default_backend()
    ensure_positive(span_nm, "span_nm")
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if offset_mean_nm is None:
        offset_mean_nm = pitch.mean_nm
    ensure_positive(offset_mean_nm, "offset_mean_nm")
    start_offsets = xp.uniform(rng, n_trials) * offset_mean_nm
    n_gaps = estimate_gap_count(pitch, span_nm)
    gaps = xp.sample_gaps(pitch, (n_trials, n_gaps), rng)
    positions = xp.cumsum(gaps, axis=1)
    positions -= start_offsets[:, None]
    # Top up the rare trials whose gap budget did not clear the span.  The
    # extra draws are appended for every trial (keeping the array
    # rectangular); out-of-span tracks are masked below either way.
    while xp.any(positions[:, -1] <= span_nm):
        block = max(16, n_gaps // 4)
        extra = xp.sample_gaps(pitch, (n_trials, block), rng)
        tail = positions[:, -1][:, None] + xp.cumsum(extra, axis=1)
        positions = xp.concatenate([positions, tail], axis=1)
    valid = (positions >= 0.0) & (positions <= span_nm)
    return TrackBatch(
        positions=positions,
        valid=valid,
        span_nm=float(span_nm),
        start_offsets=start_offsets,
    )


def sample_track_counts(
    pitch: PitchDistribution,
    span_nm: float,
    n_trials: int,
    rng: np.random.Generator,
    batch_elements: int = DEFAULT_BATCH_ELEMENTS,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Per-trial count of tracks captured by a span, shape ``(n_trials,)``.

    Internally chunks the trial axis so peak memory stays bounded by
    ``batch_elements`` regardless of ``n_trials``.  Counts are returned on
    the host (NumPy int64) whatever the backend.
    """
    xp = backend if backend is not None else default_backend()
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    per_trial = max(1, estimate_gap_count(pitch, span_nm))
    chunk = max(1, batch_elements // per_trial)
    counts = np.empty(n_trials, dtype=np.int64)
    done = 0
    while done < n_trials:
        n = min(chunk, n_trials - done)
        counts[done:done + n] = xp.to_numpy(
            sample_track_batch(pitch, span_nm, n, rng, backend=xp).counts()
        )
        done += n
    return counts


def _banded_positions(
    positions: np.ndarray, span_nm: float, xp: ArrayBackend
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten sorted trial rows into one globally sorted banded array.

    Shifting trial ``t`` by ``t * stride`` makes the (clipped) rows
    disjoint, so one ``searchsorted`` on the flattened array answers every
    (trial, query) pair at once.  Clipping just outside the query range is
    monotone, preserves sortedness, and never moves a track across a query
    boundary (queries live inside ``[0, span]``).  Returns the flattened
    array and the per-trial band offsets, both in the positions dtype (an
    implicit float64 band would silently promote every float32 search) —
    except when a float32 band would be *inaccurate*: offsets grow with
    the trial count, and once the float32 ulp at the top band exceeds a
    fraction of the pad, rounding of ``position + offset`` can move
    tracks across window edges.  Such batches are banded in float64
    (correctness beats the bandwidth saving; float64 batches never hit
    this, their ulp at any realistic band is sub-femtometre).
    """
    pad = 1.0
    stride = span_nm + 4.0 * pad
    band_dtype = positions.dtype
    if xp.dtype == np.dtype(np.float32):
        top_offset = np.float32((positions.shape[0] - 1) * stride)
        if np.spacing(top_offset) > pad / 8.0:
            band_dtype = np.dtype(np.float64)
            positions = xp.asarray(positions, dtype=band_dtype)
    offsets = xp.arange(positions.shape[0], dtype=band_dtype) * stride
    flat = xp.ravel(xp.clip(positions, -pad, span_nm + pad) + offsets[:, None])
    return flat, offsets


def window_stop_indices(
    positions: np.ndarray,
    span_nm: float,
    hi: np.ndarray,
    trial_index: np.ndarray,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Per-query slot index of the first track strictly above ``hi``.

    The rare-event layer stops each query's likelihood-ratio weight at this
    slot; :func:`sample_track_batch` guarantees the index exists for any
    bound inside the span (the last slot always clears it).
    """
    xp = backend if backend is not None else default_backend()
    flat, offsets = _banded_positions(positions, span_nm, xp)
    right = xp.searchsorted(
        flat, xp.cast_like(hi, flat) + xp.take(offsets, trial_index),
        side="right",
    )
    return right - trial_index * positions.shape[1]


def count_in_windows_flat(
    positions: np.ndarray,
    weights: np.ndarray,
    span_nm: float,
    lo: np.ndarray,
    hi: np.ndarray,
    trial_index: np.ndarray,
    return_stop_index: bool = False,
    backend: Optional[ArrayBackend] = None,
):
    """Weighted track counts for an arbitrary flat list of window queries.

    Parameters
    ----------
    positions:
        ``(n_trials, n_slots)`` track positions, sorted along the slot axis
        (as produced by :func:`sample_track_batch`).
    weights:
        Per-slot weights, same shape; must already be zero on slots that
        should not count (out-of-span tracks, failed tubes).
    span_nm:
        Span of the trials; queries must lie inside ``[0, span_nm]``.
    lo, hi:
        Query bounds, shape ``(n_queries,)``.  Both ends are inclusive,
        matching the scalar simulators.
    trial_index:
        ``(n_queries,)`` index of the trial each query interrogates.
    return_stop_index:
        When True also return each query's per-trial slot index of the
        first track strictly above ``hi`` (as :func:`window_stop_indices`,
        but sharing this pass's searchsorted work — the rare-event chip
        sampler needs both).

    Returns the weighted count per query, shape ``(n_queries,)`` (plus the
    stop indices when requested).  Counts accumulate in the backend's
    ``accum_dtype`` (float64 by default, even under a float32 policy).
    """
    xp = backend if backend is not None else default_backend()
    flat, offsets = _banded_positions(positions, span_nm, xp)
    prefix = xp.prefix_sum(xp.ravel(weights))
    shift = xp.take(offsets, trial_index)
    left = xp.searchsorted(flat, xp.cast_like(lo, flat) + shift, side="left")
    right = xp.searchsorted(flat, xp.cast_like(hi, flat) + shift, side="right")
    counts = xp.take(prefix, right) - xp.take(prefix, left)
    if return_stop_index:
        return counts, right - trial_index * positions.shape[1]
    return counts


def count_in_windows(
    batch: TrackBatch,
    weights: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Weighted track counts on a regular ``(n_trials, n_windows)`` grid.

    ``lo`` / ``hi`` may be ``(n_windows,)`` (the same windows for every
    trial) or ``(n_trials, n_windows)`` (per-trial windows, e.g. random
    device offsets).  Returns counts of shape ``(n_trials, n_windows)``.
    """
    xp = backend if backend is not None else default_backend()
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    if lo.ndim == 1:
        lo = np.broadcast_to(lo, (batch.n_trials, lo.size))
    if hi.ndim == 1:
        hi = np.broadcast_to(hi, (batch.n_trials, hi.size))
    if lo.shape != hi.shape or lo.shape[0] != batch.n_trials:
        raise ValueError(
            f"window bounds {lo.shape} do not match batch of {batch.n_trials} trials"
        )
    n_trials, n_windows = lo.shape
    trial_index = np.repeat(np.arange(n_trials), n_windows)
    counts = count_in_windows_flat(
        batch.positions,
        weights,
        batch.span_nm,
        lo.ravel(),
        hi.ravel(),
        trial_index,
        backend=xp,
    )
    return xp.reshape(counts, (n_trials, n_windows))


# ----------------------------------------------------------------------
# RNG streams and chunked (optionally multi-process) execution
# ----------------------------------------------------------------------


def spawn_streams(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Uses ``Generator.spawn`` (NumPy ≥ 1.25) when available and falls back
    to spawning the underlying ``SeedSequence`` otherwise.  Either way the
    children are keyed by the parent's ``spawn_key``, so repeated calls on
    identically-seeded parents yield identical stream families.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if hasattr(rng, "spawn"):
        return list(rng.spawn(n))
    seed_seq = rng.bit_generator.seed_seq  # pragma: no cover - old NumPy
    return [np.random.Generator(type(rng.bit_generator)(s))
            for s in seed_seq.spawn(n)]


def default_trial_chunk(
    per_trial_elements: int, n_trials: int, grain: int = 16
) -> int:
    """Trials per batch under the engine's element budget.

    Bounded by :data:`DEFAULT_BATCH_ELEMENTS` (so one gap matrix stays near
    ~32 MB) and small enough that at least ``grain`` chunks exist, so
    process pools up to that size always receive work.  This is the single
    chunk-sizing policy shared by the chip simulator and the rare-event
    estimators.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    budget = max(1, DEFAULT_BATCH_ELEMENTS // max(1, per_trial_elements))
    spread = -(-n_trials // grain)
    return max(1, min(budget, spread))


def chunk_sizes(n_trials: int, trial_chunk: int) -> List[int]:
    """Split ``n_trials`` into deterministic chunks of ``trial_chunk``.

    The split depends only on its arguments — in particular not on the
    worker count — which is what makes multi-worker runs bitwise
    reproducible against serial runs.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if trial_chunk <= 0:
        raise ValueError("trial_chunk must be positive")
    full, rest = divmod(n_trials, trial_chunk)
    return [trial_chunk] * full + ([rest] if rest else [])


def run_chunked(
    worker: Callable[..., Tuple[np.ndarray, ...]],
    payload,
    n_trials: int,
    rng: np.random.Generator,
    trial_chunk: int,
    n_workers: int = 1,
    policy=None,
    checkpoint=None,
    faults=None,
) -> List[Tuple[np.ndarray, ...]]:
    """Run ``worker(payload, n_chunk, stream)`` over deterministic chunks.

    One RNG stream is spawned per chunk up front; with ``n_workers > 1``
    the chunks are dispatched to a process pool (``worker`` and
    ``payload`` must be picklable), otherwise they run in-process.  The
    returned list is ordered by chunk, so results are identical for any
    worker count.

    Passing any of ``policy`` (a
    :class:`~repro.resilience.supervise.RetryPolicy`), ``checkpoint`` (a
    :class:`~repro.resilience.checkpoint.CampaignCheckpoint`) or
    ``faults`` (a :class:`~repro.resilience.faults.FaultPlan`) routes
    execution through the supervised runner: failed chunks are retried
    from rebuilt seed sequences, completed chunks persist to the
    checkpoint, and results stay bitwise identical to the fast path
    because the chunk streams derive from the same spawn keys.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    sizes = chunk_sizes(n_trials, trial_chunk)
    if policy is not None or checkpoint is not None or faults is not None:
        from repro.resilience.supervise import (
            SeededChunk,
            run_supervised,
            seed_sequences_for,
        )

        seeds, bit_generator = seed_sequences_for(rng, len(sizes))
        tasks = [
            SeededChunk(worker, payload, n, seed, bit_generator)
            for n, seed in zip(sizes, seeds)
        ]
        return run_supervised(
            tasks,
            n_workers=n_workers,
            policy=policy,
            checkpoint=checkpoint,
            faults=faults,
        )
    streams = spawn_streams(rng, len(sizes))
    if n_workers == 1 or len(sizes) == 1:
        return [worker(payload, n, stream) for n, stream in zip(sizes, streams)]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(sizes))) as pool:
        futures = [
            pool.submit(worker, payload, n, stream)
            for n, stream in zip(sizes, streams)
        ]
        return [f.result() for f in futures]
