"""Packaged analytic-versus-Monte-Carlo comparison experiments.

These helpers bundle the validation experiments used by the test suite, the
examples and the benchmarks: they run the analytical model and the Monte
Carlo simulator on the same configuration and report both numbers side by
side with the sampling error, so agreement can be asserted quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.correlation import (
    CorrelationParameters,
    LayoutScenario,
    RowYieldModel,
)
from repro.core.count_model import CountModel, count_model_from_pitch
from repro.core.failure import CNFETFailureModel
from repro.growth.pitch import PitchDistribution, pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.montecarlo.chip_sim import ChipMonteCarlo
from repro.montecarlo.device_sim import DeviceMonteCarlo
from repro.montecarlo.row_sim import RowMonteCarlo, RowScenarioConfig
from repro.netlist.placement import RowPlacement


@dataclass(frozen=True)
class ComparisonRecord:
    """One analytic-versus-Monte-Carlo comparison."""

    label: str
    analytic: float
    monte_carlo: float
    standard_error: float

    @property
    def absolute_difference(self) -> float:
        """|analytic - monte_carlo|."""
        return abs(self.analytic - self.monte_carlo)

    @property
    def within_sigma(self) -> float:
        """Difference expressed in Monte Carlo standard errors (inf if SE=0)."""
        if self.standard_error == 0:
            return float("inf") if self.absolute_difference > 0 else 0.0
        return self.absolute_difference / self.standard_error

    def agrees(self, n_sigma: float = 4.0, rtol: float = 0.15) -> bool:
        """True when the two numbers agree within ``n_sigma`` or ``rtol``."""
        if self.absolute_difference <= rtol * max(abs(self.analytic), 1e-300):
            return True
        return self.within_sigma <= n_sigma


def compare_device_failure(
    width_nm: float,
    pitch: Optional[PitchDistribution] = None,
    type_model: Optional[CNTTypeModel] = None,
    n_samples: int = 20_000,
    seed: int = 7,
    rng: Optional[np.random.Generator] = None,
) -> ComparisonRecord:
    """Compare analytical pF(W) (Eq. 2.2) with its Monte Carlo estimate.

    An externally supplied ``rng`` takes precedence over ``seed`` so this
    experiment can share spawn keys with the other estimators.
    """
    pitch = pitch or pitch_distribution_from_cv(4.0, 1.0)
    type_model = type_model or CNTTypeModel()
    count_model: CountModel = count_model_from_pitch(pitch)
    failure_model = CNFETFailureModel.from_type_model(count_model, type_model)
    analytic = failure_model.failure_probability(width_nm)

    if rng is None:
        rng = np.random.default_rng(seed)
    mc = DeviceMonteCarlo(count_model=count_model, type_model=type_model)
    result = mc.estimate(width_nm, n_samples, rng)
    return ComparisonRecord(
        label=f"pF(W={width_nm:.0f} nm)",
        analytic=analytic,
        monte_carlo=result.failure_probability,
        standard_error=result.standard_error,
    )


def compare_row_scenarios(
    device_width_nm: float = 40.0,
    devices_per_segment: int = 20,
    pitch: Optional[PitchDistribution] = None,
    type_model: Optional[CNTTypeModel] = None,
    n_samples: int = 4_000,
    seed: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> Dict[LayoutScenario, ComparisonRecord]:
    """Compare the row failure probabilities of Eq. 3.1 with simulation.

    The default configuration uses a deliberately narrow device and a small
    segment so the probabilities are large enough for tight Monte Carlo
    confidence intervals; the analytical/Monte-Carlo agreement is scale-free
    in these parameters.
    """
    pitch = pitch or pitch_distribution_from_cv(4.0, 1.0)
    type_model = type_model or CNTTypeModel()
    count_model = count_model_from_pitch(pitch)
    failure_model = CNFETFailureModel.from_type_model(count_model, type_model)
    p_f = failure_model.failure_probability(device_width_nm)

    # Analytic side: a RowYieldModel whose MRmin equals devices_per_segment.
    params = CorrelationParameters(
        cnt_length_um=float(devices_per_segment),
        min_cnfet_density_per_um=1.0,
        alignment_fraction=0.5,
    )
    analytic_model = RowYieldModel(parameters=params, count_model=count_model)

    mc = RowMonteCarlo(pitch=pitch, type_model=type_model)
    config = RowScenarioConfig(
        device_width_nm=device_width_nm,
        devices_per_segment=devices_per_segment,
    )
    if rng is None:
        rng = np.random.default_rng(seed)

    records: Dict[LayoutScenario, ComparisonRecord] = {}
    for scenario in LayoutScenario:
        analytic = analytic_model.row_failure_probability(
            scenario,
            p_f,
            width_nm=device_width_nm,
            per_cnt_failure=type_model.per_cnt_failure_probability,
        )
        result = mc.estimate(scenario, config, n_samples, rng)
        records[scenario] = ComparisonRecord(
            label=f"pRF[{scenario.value}]",
            analytic=analytic,
            monte_carlo=result.row_failure_probability,
            standard_error=result.standard_error,
        )
    return records


def compare_chip_engines(
    placement: RowPlacement,
    pitch: Optional[PitchDistribution] = None,
    type_model: Optional[CNTTypeModel] = None,
    n_trials: int = 30,
    seed: int = 2010,
    n_workers: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> ComparisonRecord:
    """Compare the scalar and vectorized chip engines on one placed design.

    Both engines draw from the same distribution but consume the RNG
    differently, so agreement is statistical: the record carries the
    combined standard error of the two mean-failing-device estimates.
    The ``analytic`` slot holds the scalar (oracle) mean so the generic
    :meth:`ComparisonRecord.agrees` tolerance machinery applies.  With an
    externally supplied ``rng`` each engine consumes its own spawned child
    stream instead of an ad-hoc reseed.
    """
    simulator = ChipMonteCarlo(placement, pitch=pitch, type_model=type_model)
    if rng is not None:
        scalar_rng, vector_rng = rng.spawn(2)
    else:
        scalar_rng = np.random.default_rng(seed)
        vector_rng = np.random.default_rng(seed)
    scalar = simulator.run_scalar(n_trials, scalar_rng)
    vectorized = simulator.run(n_trials, vector_rng, n_workers=n_workers)
    combined_se = float(np.sqrt(
        (scalar.std_failing_devices ** 2 + vectorized.std_failing_devices ** 2)
        / n_trials
    ))
    return ComparisonRecord(
        label="chip mean failing devices (scalar vs vectorized)",
        analytic=scalar.mean_failing_devices,
        monte_carlo=vectorized.mean_failing_devices,
        standard_error=combined_se,
    )


def compare_tail_scenarios(
    device_width_nm: float = 160.0,
    devices_per_segment: int = 360,
    mean_pitch_nm: float = 4.0,
    type_model: Optional[CNTTypeModel] = None,
    n_samples: int = 20_000,
    splitting_particles: int = 3_000,
    seed: int = 17,
    rng: Optional[np.random.Generator] = None,
) -> Dict[LayoutScenario, ComparisonRecord]:
    """Compare Eq. 3.1 closed forms with *rare-event* sampled tails.

    The deep-tail counterpart of :func:`compare_row_scenarios`: the default
    width puts the device failure probability near 1e-8 — far beyond
    indicator sampling — and the three Table 1 scenarios are estimated with
    the rare-event layer (exponential tilting for the closed-form aligned /
    uncorrelated scenarios, multilevel splitting for the non-aligned one).
    The pitch is exponential so that the engine's uniform-offset renewal
    convention matches the analytic Poisson count model *exactly*; with any
    other family the two sides differ by a boundary-condition term that the
    tail magnifies.

    The default ``devices_per_segment=360`` is the paper's MRmin
    (LCNT · Pmin-CNFET = 200 µm · 1.8 /µm), so the ratio of the
    uncorrelated and aligned records reproduces the headline ≈350X
    relaxation.  The non-aligned record's analytic slot carries the
    offset-cluster model, which is itself approximate — callers should
    assert bracketing between the two extremes rather than agreement.
    """
    from repro.growth.pitch import ExponentialPitch

    pitch = ExponentialPitch(mean_pitch_nm)
    type_model = type_model or CNTTypeModel()
    count_model = count_model_from_pitch(pitch)
    failure_model = CNFETFailureModel.from_type_model(count_model, type_model)
    p_f = failure_model.failure_probability(device_width_nm)

    params = CorrelationParameters(
        cnt_length_um=float(devices_per_segment),
        min_cnfet_density_per_um=1.0,
    )
    analytic_model = RowYieldModel(parameters=params, count_model=count_model)

    mc = RowMonteCarlo(pitch=pitch, type_model=type_model)
    config = RowScenarioConfig(
        device_width_nm=device_width_nm,
        devices_per_segment=devices_per_segment,
    )
    if rng is None:
        rng = np.random.default_rng(seed)

    records: Dict[LayoutScenario, ComparisonRecord] = {}
    for scenario in LayoutScenario:
        analytic = analytic_model.row_failure_probability(
            scenario,
            p_f,
            width_nm=device_width_nm,
            per_cnt_failure=type_model.per_cnt_failure_probability,
        )
        if scenario is LayoutScenario.DIRECTIONAL_NON_ALIGNED:
            result = mc.estimate(
                scenario, config, splitting_particles, rng, sampler="splitting"
            )
        else:
            result = mc.estimate(
                scenario, config, n_samples, rng, sampler="tilted"
            )
        records[scenario] = ComparisonRecord(
            label=f"tail pRF[{scenario.value}]",
            analytic=analytic,
            monte_carlo=result.row_failure_probability,
            standard_error=result.standard_error,
        )
    return records


def relaxation_factor_comparison(
    device_width_nm: float = 40.0,
    devices_per_segment: int = 20,
    n_samples: int = 4_000,
    seed: int = 13,
) -> ComparisonRecord:
    """Compare the analytic and simulated relaxation factors (Table 1 ratio)."""
    records = compare_row_scenarios(
        device_width_nm=device_width_nm,
        devices_per_segment=devices_per_segment,
        n_samples=n_samples,
        seed=seed,
    )
    uncorrelated = records[LayoutScenario.UNCORRELATED_GROWTH]
    aligned = records[LayoutScenario.DIRECTIONAL_ALIGNED]
    analytic_ratio = (
        uncorrelated.analytic / aligned.analytic if aligned.analytic > 0 else np.inf
    )
    mc_ratio = (
        uncorrelated.monte_carlo / aligned.monte_carlo
        if aligned.monte_carlo > 0 else np.inf
    )
    # First-order error propagation on the ratio.
    if aligned.monte_carlo > 0 and uncorrelated.monte_carlo > 0:
        rel_err = np.sqrt(
            (uncorrelated.standard_error / uncorrelated.monte_carlo) ** 2
            + (aligned.standard_error / aligned.monte_carlo) ** 2
        )
        ratio_err = mc_ratio * rel_err
    else:
        ratio_err = float("inf")
    return ComparisonRecord(
        label="relaxation factor",
        analytic=float(analytic_ratio),
        monte_carlo=float(mc_ratio),
        standard_error=float(ratio_err),
    )
