"""Rare-event estimation for the batched Monte Carlo engine.

The paper's headline claims live deep in the tail: ~1e8 minimum-size CNFETs
whose per-device failure probability must drop to ~1e-9 for 90 % chip yield.
Direct (even Rao-Blackwellised) sampling needs ~1e6+ trials per digit of
relative error there; this module provides two complementary rare-event
layers on top of :mod:`repro.montecarlo.engine`:

**Exponentially tilted importance sampling** (:func:`sample_weighted_track_batch`,
:func:`estimate_device_failure_tilted`).  The inter-CNT gap distribution is
replaced by its exponentially tilted sibling (same family, stretched mean;
see :meth:`repro.growth.pitch.PitchDistribution.exponential_tilt`), which
makes under-count failures common.  Each renewal trial carries the exact
likelihood ratio of its trajectory *stopped at the first track beyond the
queried span* — a stopping time, so Wald's likelihood-ratio identity keeps
the weighted estimator unbiased — and the weight is an affine function of
(number of gaps, gap sum), both of which fall out of the engine's existing
``cumsum`` + ``searchsorted`` pass for free.

**How to pick a tilt.**  For the Rao-Blackwellised device value
``pf ** N(W)`` the near-optimal mean factor is ``1 / pf``: with exponential
gaps the count integrand ``pf^n · Poisson(λ)(n)`` is proportional to a
Poisson(λ·pf) pmf, so stretching the mean pitch by ``1/pf`` samples exactly
the dominant tail counts and the weight cancels the ``pf^N`` value up to an
O(1) overshoot term.  :func:`default_tilt_factor` encodes this rule (falling
back to "about one expected tube" when ``pf = 0``).  For *indicator* values
(no cancellation) the weight noise grows with the number of gaps covered by
the stopped trajectory — ``Var(log w) ≈ (span/(β·mean)) · k · ln²β`` — so
long spans need milder tilts; :func:`max_stable_tilt` returns the largest
factor whose log-weight variance stays inside a budget, and the chip-level
sampler clips its default to it.

**Multilevel splitting** (:func:`multilevel_splitting`) is the fallback for
scenarios with no closed-form tilt — the non-aligned layout, whose failure
event couples shared tubes with random per-device offsets, and pitch
families that are not closed under exponential tilting.  It is a standard
adaptive subset simulation: particles are states of the full trial
randomness, levels are quantiles of a severity function (the minimum
working-tube count over the row's devices), and between levels the particles
are rejuvenated by a Metropolis kernel that refreshes a random subset of
each particle's coordinates from the prior (acceptance = the constraint
itself, because the proposal is prior-reversible).

The weighted-estimator API (:class:`WeightedEstimate`) reports the yield
estimate, its relative error and the *contribution* effective sample size
``(Σ v)² / Σ v²`` — the honest diagnostic when the value cancels part of
the weight, unlike the raw-weight ESS which is pessimistic by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import ArrayBackend, default_backend
from repro.growth.pitch import GapTilt, PitchDistribution
from repro.montecarlo.engine import (
    DEFAULT_BATCH_ELEMENTS,
    TrackBatch,
    count_in_windows,
    default_trial_chunk,
    estimate_gap_count,
    run_chunked,
    sample_track_batch,
    window_stop_indices,
)
from repro.units import ensure_positive

__all__ = [
    "WeightedEstimate",
    "weighted_estimate",
    "default_tilt_factor",
    "max_stable_tilt",
    "resolve_tilt",
    "sample_weighted_track_batch",
    "window_stopped_log_weights",
    "sample_tilted_contributions",
    "estimate_device_failure_tilted",
    "estimate_device_failure_grid",
    "SplittingModel",
    "AlignedRowModel",
    "UncorrelatedRowModel",
    "NonAlignedRowModel",
    "SplittingResult",
    "multilevel_splitting",
]


# ----------------------------------------------------------------------
# Weighted estimator API
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WeightedEstimate:
    """An importance-sampled estimate with its error diagnostics.

    ``effective_sample_size`` is computed on the per-trial *contributions*
    ``v_i = h_i · w_i`` (value times likelihood ratio), i.e. how many equal
    contributions would carry the same estimate; it honours the cancellation
    between value and weight that a raw-weight ESS would ignore.
    """

    estimate: float
    standard_error: float
    n_samples: int
    effective_sample_size: float

    @property
    def relative_error(self) -> float:
        """Standard error over estimate (NaN when the estimate is zero)."""
        if self.estimate == 0:
            return float("nan")
        return self.standard_error / self.estimate

    @property
    def variance_per_sample(self) -> float:
        """Per-sample variance implied by the standard error."""
        return self.standard_error ** 2 * self.n_samples


def weighted_estimate(contributions: np.ndarray) -> WeightedEstimate:
    """Summarise per-trial contributions ``v_i = h_i · w_i`` into an estimate.

    The contributions must already carry their likelihood-ratio weights;
    the estimate is their plain mean (unbiased under the sampling measure
    they were drawn from).
    """
    v = np.asarray(contributions, dtype=float).ravel()
    if v.size == 0:
        raise ValueError("contributions must contain at least one sample")
    n = v.size
    estimate = float(np.mean(v))
    stderr = float(np.std(v, ddof=1) / math.sqrt(n)) if n > 1 else 0.0
    sum_v = float(np.sum(np.abs(v)))
    sum_v2 = float(np.sum(v * v))
    ess = sum_v ** 2 / sum_v2 if sum_v2 > 0 else 0.0
    return WeightedEstimate(
        estimate=estimate,
        standard_error=stderr,
        n_samples=int(n),
        effective_sample_size=float(ess),
    )


# ----------------------------------------------------------------------
# Tilt selection
# ----------------------------------------------------------------------


def default_tilt_factor(
    pitch: PitchDistribution, span_nm: float, per_cnt_failure: float
) -> float:
    """Near-optimal mean factor for the Rao-Blackwellised ``pf ** N`` value.

    The weighted value of a trial stopped after ``τ`` gaps is
    ``pf^(τ-1) · exp(τ·c(β) + S_τ·slope)`` with ``c(β)`` the per-gap log
    constant of the tilt; choosing ``β`` so that ``c(β) = -ln pf`` cancels
    the ``τ`` dependence exactly and leaves only the O(1) overshoot noise.
    For exponential pitch that root is ``1/pf``; for gamma shape ``k`` it is
    ``pf^(-1/k)``; in general it is found by bisection on the family's tilt.
    The factor is capped so the tilted span still expects about one tube —
    stretching further buys nothing — and with ``pf = 0`` (pure open-region
    events) the cap itself is the answer.
    """
    ensure_positive(span_nm, "span_nm")
    if not 0.0 <= per_cnt_failure <= 1.0:
        raise ValueError(
            f"per_cnt_failure must lie in [0, 1], got {per_cnt_failure}"
        )
    mean_count = span_nm / pitch.mean_nm
    cap = max(mean_count, 1.0)
    if per_cnt_failure <= 0.0:
        return cap
    if per_cnt_failure >= 1.0 or cap <= 1.0:
        return 1.0
    target = -math.log(per_cnt_failure)

    def log_const(beta: float) -> float:
        return pitch.exponential_tilt(beta).log_const_per_gap

    if log_const(cap) <= target:
        return cap
    lo, hi = 1.0, cap
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if log_const(mid) <= target:
            lo = mid
        else:
            hi = mid
    return lo


def max_stable_tilt(
    pitch: PitchDistribution,
    span_nm: float,
    log_weight_variance_budget: float = 2.0,
) -> float:
    """Largest mean factor whose stopped-trajectory weights stay usable.

    For indicator-style values the log-weight variance over a span ``H`` is
    approximately ``(H / (β·mean)) · k · ln²β`` (``k`` the gamma shape, 1 for
    exponential pitch): the count of the stopped trajectory fluctuates by
    ``≈ √(cv²·H/(β·mean))`` gaps and each gap contributes ``k·lnβ`` of
    log-weight.  This returns the largest ``β ≤ e²`` keeping that variance
    inside the budget (``β = e²`` maximises ``ln²β/β``; beyond it the
    approximation stops being monotone and no sane tilt lives there).
    """
    ensure_positive(span_nm, "span_nm")
    ensure_positive(log_weight_variance_budget, "log_weight_variance_budget")
    mean = pitch.mean_nm
    cv = pitch.cv
    shape = 1.0 / (cv * cv) if cv > 0 else float("inf")
    if not math.isfinite(shape):
        return 1.0  # deterministic pitch: no tilt is meaningful

    def log_weight_variance(beta: float) -> float:
        return (span_nm / (beta * mean)) * shape * math.log(beta) ** 2

    upper = math.e ** 2
    if log_weight_variance(upper) <= log_weight_variance_budget:
        return upper
    lo, hi = 1.0, upper
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if log_weight_variance(mid) <= log_weight_variance_budget:
            lo = mid
        else:
            hi = mid
    return lo


def resolve_tilt(
    pitch: PitchDistribution,
    span_nm: float,
    per_cnt_failure: float,
    tilt_factor: Optional[float] = None,
) -> GapTilt:
    """Build the :class:`GapTilt` for a sampler, defaulting the factor.

    Raises ``NotImplementedError`` (from the pitch family) when no
    closed-form tilt exists; callers surface that as "use splitting".
    """
    if tilt_factor is None:
        tilt_factor = default_tilt_factor(pitch, span_nm, per_cnt_failure)
    return pitch.exponential_tilt(tilt_factor)


# ----------------------------------------------------------------------
# Tilted renewal sampling with stopped likelihood ratios
# ----------------------------------------------------------------------


def _affine_log_weights(
    tilt: GapTilt, n_gaps, gap_sum, xp: ArrayBackend
):
    """``log dP_nominal/dP_tilted`` as the tilt's affine form, on-backend.

    Mirrors :meth:`repro.growth.pitch.GapTilt.log_likelihood_ratio` but
    accumulates in the backend's ``accum_dtype`` (likelihood-ratio
    accumulation is the float32 policy's most rounding-sensitive step, so
    it stays in float64 unless explicitly lowered).
    """
    return (
        xp.asarray(n_gaps, dtype=xp.accum_dtype) * tilt.log_const_per_gap
        + xp.asarray(gap_sum, dtype=xp.accum_dtype) * tilt.log_slope_per_nm
    )


def sample_weighted_track_batch(
    tilt: GapTilt,
    span_nm: float,
    n_trials: int,
    rng: np.random.Generator,
    backend: Optional[ArrayBackend] = None,
) -> Tuple[TrackBatch, np.ndarray]:
    """Sample tilted renewal trials and their full-span log weights.

    The batch is drawn from the *tilted* gap distribution with the start
    offset drawn from the *nominal* uniform law (so the offset cancels in
    the likelihood ratio).  The returned per-trial log weight is the exact
    ``log dP_nominal/dP_tilted`` of the trajectory stopped at the first
    track strictly beyond ``span_nm`` — a stopping time of the gap
    filtration, hence unbiased for any functional of the in-span tracks.
    """
    xp = backend if backend is not None else default_backend()
    batch = sample_track_batch(
        tilt.tilted,
        span_nm,
        n_trials,
        rng,
        offset_mean_nm=tilt.nominal.mean_nm,
        backend=xp,
    )
    positions = batch.positions
    # First slot strictly beyond the span: rows are sorted and the engine
    # guarantees the last slot cleared the span, so the index always exists.
    stop_index = xp.sum(positions <= span_nm, axis=1)
    rows = xp.arange(positions.shape[0])
    gap_sum = xp.take_pairs(positions, rows, stop_index) + batch.start_offsets
    n_gaps = stop_index + 1
    log_w = _affine_log_weights(tilt, n_gaps, gap_sum, xp)
    return batch, log_w


def window_stopped_log_weights(
    batch: TrackBatch,
    tilt: GapTilt,
    hi: np.ndarray,
    trial_index: np.ndarray,
    stop_index: Optional[np.ndarray] = None,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Per-query log weights stopped at each query's own upper bound.

    For a flat list of window queries (as in
    :func:`repro.montecarlo.engine.count_in_windows_flat`) the unbiased
    weight for a functional of the tracks below ``hi[q]`` only needs the
    trajectory up to the first track beyond ``hi[q]`` — stopping there keeps
    the weight noise proportional to the window's altitude instead of the
    whole span, which is what makes per-device values usable on full
    placement rows.

    ``stop_index`` lets callers reuse indices already produced by the
    counting pass (``count_in_windows_flat(..., return_stop_index=True)``)
    instead of paying a second banded searchsorted.
    """
    xp = backend if backend is not None else default_backend()
    positions = batch.positions
    if batch.start_offsets is None:
        raise ValueError("batch must carry start_offsets (engine-sampled)")
    hi = np.asarray(hi, dtype=float)
    if np.any(hi > batch.span_nm):
        raise ValueError("window upper bounds must lie inside the span")
    if stop_index is None:
        stop_index = window_stop_indices(
            positions, batch.span_nm, hi, trial_index, backend=xp
        )
    gap_sum = (xp.take_pairs(positions, trial_index, stop_index)
               + xp.take(batch.start_offsets, trial_index))
    n_gaps = stop_index + 1
    return _affine_log_weights(tilt, n_gaps, gap_sum, xp)


# ----------------------------------------------------------------------
# Chunked device-level tail estimator
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _TiltedDevicePayload:
    """Picklable chunk payload for the tilted device estimator."""

    tilt: GapTilt
    width_nm: float
    per_cnt_failure: float
    backend: Optional[ArrayBackend] = None


def _device_tilted_chunk(
    payload: _TiltedDevicePayload, n_chunk: int, rng: np.random.Generator
) -> Tuple[np.ndarray]:
    """One chunk of tilted device trials: per-trial contributions."""
    xp = payload.backend if payload.backend is not None else default_backend()
    batch, log_w = sample_weighted_track_batch(
        payload.tilt, payload.width_nm, n_chunk, rng, backend=xp
    )
    values = xp.power(
        payload.per_cnt_failure, xp.asarray(batch.counts(), dtype=xp.accum_dtype)
    )
    return (xp.to_numpy(values * xp.exp(log_w)),)


def _default_trial_chunk(
    pitch: PitchDistribution, span_nm: float, n_trials: int
) -> int:
    """Engine chunk-sizing policy with the renewal gap count per trial."""
    return default_trial_chunk(
        max(1, estimate_gap_count(pitch, span_nm)), n_trials
    )


def sample_tilted_contributions(
    tilt: GapTilt,
    span_nm: float,
    per_cnt_failure: float,
    n_samples: int,
    rng: np.random.Generator,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Per-trial contributions ``pf^N · w`` for ``n_samples`` tilted trials.

    The sequential building block shared by the row-level samplers: same
    per-chunk computation as the chunk worker of
    :func:`estimate_device_failure_tilted`, but drawing from one caller
    stream (memory-bounded by the engine chunk policy) instead of spawned
    per-chunk streams.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    payload = _TiltedDevicePayload(
        tilt=tilt, width_nm=float(span_nm),
        per_cnt_failure=float(per_cnt_failure), backend=backend,
    )
    chunk = _default_trial_chunk(tilt.tilted, span_nm, n_samples)
    contributions = np.empty(n_samples)
    done = 0
    while done < n_samples:
        n = min(chunk, n_samples - done)
        contributions[done:done + n] = _device_tilted_chunk(payload, n, rng)[0]
        done += n
    return contributions


def estimate_device_failure_tilted(
    pitch: PitchDistribution,
    per_cnt_failure: float,
    width_nm: float,
    n_samples: int,
    rng: np.random.Generator,
    tilt_factor: Optional[float] = None,
    trial_chunk: Optional[int] = None,
    n_workers: int = 1,
    backend: Optional[ArrayBackend] = None,
) -> WeightedEstimate:
    """Importance-sampled device failure probability pF(W) — the tail path.

    Samples renewal trials under the exponentially tilted gap law and
    averages ``pf^N · w`` with the stopped likelihood-ratio weight ``w``.
    Runs through the engine's deterministic chunking, so results are
    bitwise independent of ``n_workers`` exactly like the naive engine.
    """
    ensure_positive(width_nm, "width_nm")
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    tilt = resolve_tilt(pitch, width_nm, per_cnt_failure, tilt_factor)
    if trial_chunk is None:
        trial_chunk = _default_trial_chunk(tilt.tilted, width_nm, n_samples)
    payload = _TiltedDevicePayload(
        tilt=tilt, width_nm=float(width_nm),
        per_cnt_failure=float(per_cnt_failure), backend=backend,
    )
    chunks = run_chunked(
        _device_tilted_chunk,
        payload,
        n_samples,
        rng,
        trial_chunk=trial_chunk,
        n_workers=n_workers,
    )
    contributions = np.concatenate([c[0] for c in chunks])
    return weighted_estimate(contributions)


def estimate_device_failure_grid(
    pitch: PitchDistribution,
    per_cnt_failure: float,
    widths_nm: np.ndarray,
    n_samples: int,
    seed_key: Sequence[int],
    tilt_factor: Optional[float] = None,
    n_workers: int = 1,
) -> List[WeightedEstimate]:
    """Tilted tail estimates over a width grid — the yield-surface MC path.

    Every grid point gets its own stream seeded by ``seed_key`` extended
    with the width *coordinate* (rounded to 1e-6 nm), not the grid index:
    a point's estimate is therefore independent of grid order and of how
    the sweep was batched — evaluating ``[a, b]`` and later ``[b]`` alone
    under the same ``seed_key`` yields bitwise-identical results for
    ``b``, which is what lets the surface builder's refinement cache mix
    batches freely.  Within a point the estimate stays bitwise
    independent of ``n_workers``, exactly like the single-point
    estimator.
    """
    widths = np.asarray(widths_nm, dtype=float)
    base_key = [int(part) for part in seed_key]
    return [
        estimate_device_failure_tilted(
            pitch,
            per_cnt_failure,
            float(width),
            n_samples,
            np.random.default_rng(base_key + [int(round(width * 1e6))]),
            tilt_factor=tilt_factor,
            n_workers=n_workers,
        )
        for width in widths
    ]


# ----------------------------------------------------------------------
# Multilevel splitting (adaptive subset simulation)
# ----------------------------------------------------------------------


class SplittingModel:
    """State space of one splitting particle.

    A particle is a dict of coordinate arrays whose leading axis indexes
    particles; every coordinate is i.i.d. under the prior, which is what
    makes the refresh-a-random-subset Metropolis kernel correct (the
    proposal is prior-reversible, so acceptance reduces to the level
    constraint).  Subclasses declare the coordinate blocks and map a state
    to its severity — failure is the event ``severity <= 0``, and severity
    must be monotone: conditioning on ``severity <= level`` for decreasing
    levels walks toward the failure set.
    """

    def component_shapes(self, n_particles: int) -> Dict[str, Tuple[int, ...]]:
        raise NotImplementedError

    def sample_component(
        self, name: str, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    def severity(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    # -- generic machinery ------------------------------------------------

    def sample(self, n_particles: int, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        return {
            name: self.sample_component(name, shape, rng)
            for name, shape in self.component_shapes(n_particles).items()
        }

    def mutate(
        self,
        state: Dict[str, np.ndarray],
        rng: np.random.Generator,
        refresh_fraction: float,
    ) -> Dict[str, np.ndarray]:
        """Propose a state with a random subset of coordinates refreshed."""
        proposal: Dict[str, np.ndarray] = {}
        for name, arr in state.items():
            mask = rng.random(arr.shape) < refresh_fraction
            fresh = self.sample_component(name, arr.shape, rng)
            proposal[name] = np.where(mask, fresh, arr)
        return proposal


class _RowModelBase(SplittingModel):
    """Shared geometry bookkeeping for the row-scenario splitting models."""

    def __init__(
        self,
        pitch: PitchDistribution,
        per_cnt_failure: float,
        device_width_nm: float,
        devices_per_segment: int,
        span_nm: float,
    ) -> None:
        self.pitch = pitch
        self.per_cnt_failure = float(per_cnt_failure)
        self.device_width_nm = ensure_positive(device_width_nm, "device_width_nm")
        if devices_per_segment < 1:
            raise ValueError("devices_per_segment must be at least 1")
        self.devices_per_segment = int(devices_per_segment)
        self.span_nm = ensure_positive(span_nm, "span_nm")
        # 8-sigma renewal margin: the truncation probability of the fixed
        # gap budget is negligible against any estimable failure level.
        self.n_slots = max(1, estimate_gap_count(pitch, span_nm))

    def _positions(
        self, gaps: np.ndarray, offset_u: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        positions = np.cumsum(gaps, axis=-1)
        positions = positions - (offset_u * self.pitch.mean_nm)[..., None]
        valid = (positions >= 0.0) & (positions <= self.span_nm)
        return positions, valid

    def sample_component(
        self, name: str, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        if name == "gaps":
            return self.pitch.sample_batch(shape, rng)
        # offset_u / tube_u / dev_u are all uniform(0, 1) coordinates.
        return rng.random(shape)


class AlignedRowModel(_RowModelBase):
    """Aligned-active segment: one shared track set, severity = working count."""

    def __init__(
        self,
        pitch: PitchDistribution,
        per_cnt_failure: float,
        device_width_nm: float,
    ) -> None:
        super().__init__(
            pitch, per_cnt_failure, device_width_nm,
            devices_per_segment=1, span_nm=device_width_nm,
        )

    def component_shapes(self, n: int) -> Dict[str, Tuple[int, ...]]:
        return {
            "gaps": (n, self.n_slots),
            "offset_u": (n,),
            "tube_u": (n, self.n_slots),
        }

    def severity(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        _, valid = self._positions(state["gaps"], state["offset_u"])
        working = (state["tube_u"] >= self.per_cnt_failure) & valid
        return working.sum(axis=1)


class UncorrelatedRowModel(_RowModelBase):
    """Uncorrelated segment: independent tracks per device, severity = min count.

    The particle state scales as ``n_particles × devices × slots``, so this
    model is a *cross-check* tool for modest segments; paper-scale segments
    (hundreds of devices) have the closed-form tilt and should use the
    tilted sampler instead.  :meth:`component_shapes` enforces a memory
    budget to fail fast rather than thrash.
    """

    def __init__(
        self,
        pitch: PitchDistribution,
        per_cnt_failure: float,
        device_width_nm: float,
        devices_per_segment: int,
    ) -> None:
        super().__init__(
            pitch, per_cnt_failure, device_width_nm,
            devices_per_segment=devices_per_segment, span_nm=device_width_nm,
        )

    def component_shapes(self, n: int) -> Dict[str, Tuple[int, ...]]:
        d = self.devices_per_segment
        if n * d * self.n_slots > 8 * DEFAULT_BATCH_ELEMENTS:
            raise ValueError(
                f"uncorrelated splitting state ({n} particles × {d} devices "
                f"× {self.n_slots} slots) exceeds the memory budget; this "
                "scenario has a closed-form tilt — use sampler='tilted' or "
                "reduce the particle count"
            )
        return {
            "gaps": (n, d, self.n_slots),
            "offset_u": (n, d),
            "tube_u": (n, d, self.n_slots),
        }

    def severity(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        _, valid = self._positions(state["gaps"], state["offset_u"])
        working = (state["tube_u"] >= self.per_cnt_failure) & valid
        return working.sum(axis=2).min(axis=1)


class NonAlignedRowModel(_RowModelBase):
    """Non-aligned segment: shared tubes, random per-device y offsets.

    This is the scenario the paper itself evaluates numerically and the one
    with no closed-form tilt: the failure event couples the shared tube
    outcomes with every device's random offset window.  Severity is the
    minimum working-tube count over the segment's device windows.
    """

    def __init__(
        self,
        pitch: PitchDistribution,
        per_cnt_failure: float,
        device_width_nm: float,
        devices_per_segment: int,
        cell_height_window_nm: float,
    ) -> None:
        if cell_height_window_nm < 0:
            raise ValueError("cell_height_window_nm must be non-negative")
        super().__init__(
            pitch, per_cnt_failure, device_width_nm,
            devices_per_segment=devices_per_segment,
            span_nm=cell_height_window_nm + device_width_nm,
        )
        self.cell_height_window_nm = float(cell_height_window_nm)

    def component_shapes(self, n: int) -> Dict[str, Tuple[int, ...]]:
        return {
            "gaps": (n, self.n_slots),
            "offset_u": (n,),
            "tube_u": (n, self.n_slots),
            "dev_u": (n, self.devices_per_segment),
        }

    def severity(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        positions, valid = self._positions(state["gaps"], state["offset_u"])
        working = (state["tube_u"] >= self.per_cnt_failure) & valid
        batch = TrackBatch(
            positions=positions, valid=valid, span_nm=self.span_nm
        )
        lo = state["dev_u"] * self.cell_height_window_nm
        counts = count_in_windows(
            batch, working.astype(float), lo, lo + self.device_width_nm
        )
        return counts.min(axis=1)


@dataclass(frozen=True)
class SplittingResult:
    """Outcome of one adaptive multilevel-splitting run.

    ``relative_error`` uses the standard independent-level approximation
    ``Σ_l (1 - p_l) / (p_l · n)``; level-to-level particle correlation makes
    it a mild underestimate, which the statistical tests absorb in their
    n-sigma margins.
    """

    probability: float
    relative_error: float
    n_particles: int
    level_probabilities: Tuple[float, ...]
    levels: Tuple[float, ...]

    @property
    def standard_error(self) -> float:
        if not math.isfinite(self.relative_error):
            return float("inf")
        return self.probability * self.relative_error

    @property
    def n_levels(self) -> int:
        return len(self.level_probabilities)


def multilevel_splitting(
    model: SplittingModel,
    n_particles: int,
    rng: np.random.Generator,
    level_fraction: float = 0.25,
    n_mutation_sweeps: int = 3,
    refresh_fraction: float = 0.2,
    max_levels: int = 64,
) -> SplittingResult:
    """Estimate ``P{severity <= 0}`` by adaptive subset simulation.

    Levels are picked as the running ``level_fraction`` quantile of the
    particle severities (floored to the integer grid and forced strictly
    decreasing), survivors are bootstrap-resampled back to ``n_particles``
    and rejuvenated by ``n_mutation_sweeps`` prior-refresh Metropolis
    sweeps.  The product of per-level survival fractions estimates the
    failure probability.
    """
    if n_particles < 8:
        raise ValueError("n_particles must be at least 8")
    if not 0.0 < level_fraction < 1.0:
        raise ValueError("level_fraction must lie in (0, 1)")
    if not 0.0 < refresh_fraction <= 1.0:
        raise ValueError("refresh_fraction must lie in (0, 1]")
    state = model.sample(n_particles, rng)
    sev = np.asarray(model.severity(state), dtype=float)
    level_probs: List[float] = []
    levels: List[float] = []
    prev_level = math.inf
    for _ in range(max_levels):
        candidate = math.floor(float(np.quantile(sev, level_fraction)))
        level = min(candidate, prev_level - 1.0)
        if level <= 0.0:
            p_final = float(np.mean(sev <= 0.0))
            level_probs.append(p_final)
            levels.append(0.0)
            break
        p_l = float(np.mean(sev <= level))
        if p_l <= 0.0:
            # The floor-and-decrement rule left no survivors: the estimate
            # collapses to zero with no error information.
            return SplittingResult(
                probability=0.0,
                relative_error=float("inf"),
                n_particles=n_particles,
                level_probabilities=tuple(level_probs),
                levels=tuple(levels),
            )
        level_probs.append(p_l)
        levels.append(level)
        prev_level = level
        survivors = np.flatnonzero(sev <= level)
        take = survivors[rng.integers(0, survivors.size, n_particles)]
        state = {name: arr[take] for name, arr in state.items()}
        sev = sev[take]
        for _ in range(n_mutation_sweeps):
            proposal = model.mutate(state, rng, refresh_fraction)
            prop_sev = np.asarray(model.severity(proposal), dtype=float)
            accept = prop_sev <= level
            for name in state:
                state[name][accept] = proposal[name][accept]
            sev[accept] = prop_sev[accept]
    else:
        raise RuntimeError(
            f"splitting did not reach severity 0 within {max_levels} levels; "
            "the failure probability is too small for this particle budget"
        )
    probability = float(np.prod(level_probs))
    if probability > 0.0:
        re2 = sum((1.0 - p) / (p * n_particles) for p in level_probs)
        relative_error = math.sqrt(re2)
    else:
        relative_error = float("inf")
    return SplittingResult(
        probability=probability,
        relative_error=relative_error,
        n_particles=int(n_particles),
        level_probabilities=tuple(level_probs),
        levels=tuple(levels),
    )
