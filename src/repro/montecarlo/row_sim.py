"""Monte Carlo simulation of placement rows under the three Table 1 scenarios.

The analytical row yield model (Eq. 3.1) relies on two idealisations: perfect
track sharing for aligned devices within a CNT length, and complete
independence beyond it.  This simulator checks the resulting row failure
probabilities by building rows device by device:

* **Uncorrelated growth** — every device draws its own independent set of
  tubes.
* **Directional growth, aligned layout** — one set of CNT tracks is drawn
  for the whole row segment (one CNT length); every device covers exactly
  the same y-band, hence the same tracks.
* **Directional growth, non-aligned layout** — one set of tracks per
  segment, but each device sits at a random y offset within the cell
  height, so it covers a partially different subset of tracks.

Because realistic row failure probabilities (1e-8) are too small for direct
0/1 Monte Carlo, the simulator follows the same Rao-Blackwellisation idea as
:mod:`repro.montecarlo.device_sim`: tube *positions* are sampled, while the
per-tube type/removal outcome is integrated analytically wherever devices do
not share tubes, and sampled only for the shared tracks.  For validation at
moderate probabilities the plain indicator estimator is available as well.

The default estimators are batched array programs over the sample axis,
built on :mod:`repro.montecarlo.engine`: all track sets of all samples come
from one 2D gap draw + ``cumsum`` (:func:`~repro.montecarlo.engine.sample_track_batch`),
and the non-aligned scenario resolves every (sample, device-offset) window
with one batched ``searchsorted``/prefix-sum pass.  The original per-sample
scalar samplers are retained (``vectorized=False``) as the oracle for the
statistical-equivalence tests.

Rare-event sampling
-------------------
Realistic row failure probabilities sit far below what indicator sampling
can resolve; :meth:`RowMonteCarlo.estimate` therefore accepts an opt-in
``sampler=`` strategy backed by :mod:`repro.montecarlo.rare_event`:
``"tilted"`` runs the closed-form scenarios (aligned, uncorrelated) under
an exponentially tilted gap distribution with per-sample likelihood-ratio
weights, and ``"splitting"`` runs adaptive multilevel splitting — the
fallback for the non-aligned layout, whose failure event has no closed-form
tilt.  Both reach row failure probabilities of 1e-9 and below directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

import repro.montecarlo.rare_event as rare_event
from repro.core.correlation import LayoutScenario
from repro.growth.pitch import PitchDistribution, pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.montecarlo.engine import (
    DEFAULT_BATCH_ELEMENTS,
    count_in_windows,
    estimate_gap_count,
    sample_track_batch,
    sample_track_counts,
)
from repro.units import ensure_positive, um_to_nm


@dataclass(frozen=True)
class RowScenarioConfig:
    """Geometry of one simulated row segment.

    Parameters
    ----------
    device_width_nm:
        Width W of every (minimum-size, post-upsizing) device in the row.
    devices_per_segment:
        Number of small devices sharing one CNT length (MRmin).
    cell_height_window_nm:
        Vertical span within which non-aligned devices may be offset; the
        aligned scenario uses a zero offset.
    """

    device_width_nm: float
    devices_per_segment: int
    cell_height_window_nm: float = 400.0

    def __post_init__(self) -> None:
        ensure_positive(self.device_width_nm, "device_width_nm")
        if self.devices_per_segment < 1:
            raise ValueError("devices_per_segment must be at least 1")
        if self.cell_height_window_nm < 0:
            raise ValueError("cell_height_window_nm must be non-negative")


@dataclass(frozen=True)
class RowMCResult:
    """Monte Carlo estimate of a row failure probability.

    ``sampler`` names the strategy that produced the estimate and
    ``effective_sample_size`` carries the contribution ESS for the
    importance-sampled strategies (``None`` for naive and splitting runs).
    """

    scenario: LayoutScenario
    config: RowScenarioConfig
    n_samples: int
    row_failure_probability: float
    standard_error: float
    sampler: str = "naive"
    effective_sample_size: Optional[float] = None


class RowMonteCarlo:
    """Simulates row segments under the three growth/layout scenarios.

    Parameters
    ----------
    pitch:
        Inter-CNT pitch distribution along the device-width axis.
    type_model:
        CNT type and removal statistics.
    """

    def __init__(
        self,
        pitch: Optional[PitchDistribution] = None,
        type_model: Optional[CNTTypeModel] = None,
    ) -> None:
        self.pitch = pitch or pitch_distribution_from_cv(4.0, 1.0)
        self.type_model = type_model or CNTTypeModel()

    # ------------------------------------------------------------------
    # Track sampling helpers
    # ------------------------------------------------------------------

    def _sample_track_positions(
        self, span_nm: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample CNT track y-positions across a vertical span."""
        positions: List[float] = []
        y = -float(rng.random()) * self.pitch.mean_nm
        while True:
            gap = float(self.pitch.sample(1, rng)[0])
            y += gap
            if y > span_nm:
                break
            if y >= 0.0:
                positions.append(y)
        return np.asarray(positions, dtype=float)

    # ------------------------------------------------------------------
    # Per-scenario estimators (Rao-Blackwellised)
    # ------------------------------------------------------------------

    def _device_conditional_failures(self, counts: np.ndarray) -> np.ndarray:
        """Per-device failure probability conditioned on captured counts.

        The opens-only ``pf ** N`` of the Rao-Blackwellised estimators, or
        the joint thinned ``1 - (1 - q)**N + (pf - q)**N`` of
        :mod:`repro.device.shorts` when the type model leaves surviving
        metallic tubes; the ``q = 0`` branch is the untouched pre-shorts
        expression (bitwise contract).
        """
        pf = self.type_model.per_cnt_failure_probability
        q = self.type_model.surviving_metallic_probability
        n = np.asarray(counts, dtype=float)
        if q > 0.0:
            return 1.0 - np.power(1.0 - q, n) + np.power(pf - q, n)
        return np.power(pf, n)

    def _segment_failure_uncorrelated(
        self, config: RowScenarioConfig, rng: np.random.Generator
    ) -> float:
        """P{segment fails} conditioned on sampled per-device counts."""
        survive = 1.0
        for _ in range(config.devices_per_segment):
            tracks = self._sample_track_positions(config.device_width_nm, rng)
            p_dev_fail = float(self._device_conditional_failures(tracks.size))
            survive *= 1.0 - p_dev_fail
        return 1.0 - survive

    def _segment_failure_aligned(
        self, config: RowScenarioConfig, rng: np.random.Generator
    ) -> float:
        """Aligned devices all share the same tracks: one device's fate decides."""
        tracks = self._sample_track_positions(config.device_width_nm, rng)
        # All devices see the same working/failed tubes, so the segment fails
        # exactly when those shared tubes all fail (open) or any surviving
        # short sits among them.
        return float(self._device_conditional_failures(tracks.size))

    def _segment_failure_non_aligned(
        self, config: RowScenarioConfig, rng: np.random.Generator
    ) -> float:
        """Devices at random y offsets cover overlapping subsets of the tracks.

        Tube outcomes are sampled once per track (they are shared), and each
        device fails iff every track it covers failed or any covered track
        is a surviving short; the segment fails when any device fails.  One
        uniform per track decides both modes, so the joint sampler consumes
        exactly the opens-only RNG stream.
        """
        span = config.cell_height_window_nm + config.device_width_nm
        tracks = self._sample_track_positions(span, rng)
        if tracks.size == 0:
            return 1.0
        u = rng.random(tracks.size)
        working = u >= self.type_model.per_cnt_failure_probability
        q = self.type_model.surviving_metallic_probability
        shorting = u < q if q > 0.0 else None
        offsets = rng.random(config.devices_per_segment) * config.cell_height_window_nm
        for offset in offsets:
            in_window = (tracks >= offset) & (tracks <= offset + config.device_width_nm)
            if not np.any(working[in_window]):
                return 1.0
            if shorting is not None and np.any(shorting[in_window]):
                return 1.0
        return 0.0

    # ------------------------------------------------------------------
    # Batched per-scenario estimators (default path)
    # ------------------------------------------------------------------

    def _segment_failures_uncorrelated_batch(
        self, config: RowScenarioConfig, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """All samples at once: every device draws its own track set."""
        counts = sample_track_counts(
            self.pitch,
            config.device_width_nm,
            n_samples * config.devices_per_segment,
            rng,
        ).reshape(n_samples, config.devices_per_segment)
        p_dev_fail = self._device_conditional_failures(counts)
        return 1.0 - np.prod(1.0 - p_dev_fail, axis=1)

    def _segment_failures_aligned_batch(
        self, config: RowScenarioConfig, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """All samples at once: one shared track set decides each segment."""
        counts = sample_track_counts(
            self.pitch, config.device_width_nm, n_samples, rng
        )
        return self._device_conditional_failures(counts)

    def _segment_failures_non_aligned_batch(
        self, config: RowScenarioConfig, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """All samples at once: shared tubes, per-device random y offsets.

        Tube outcomes are sampled once per track (they are shared); the
        batched window counter then answers every (sample, device) window
        in one pass, and a segment fails when any of its devices captured
        zero working tubes (or, with surviving metallic tubes, captured at
        least one short).  The sample axis is chunked so peak memory
        stays near the engine's element budget for any ``n_samples``.
        """
        pf = self.type_model.per_cnt_failure_probability
        q = self.type_model.surviving_metallic_probability
        span = config.cell_height_window_nm + config.device_width_nm
        per_sample = max(1, estimate_gap_count(self.pitch, span))
        chunk = max(1, DEFAULT_BATCH_ELEMENTS // per_sample)
        failures = np.empty(n_samples)
        done = 0
        while done < n_samples:
            n = min(chunk, n_samples - done)
            batch = sample_track_batch(self.pitch, span, n, rng)
            u = rng.random(batch.positions.shape)
            working = (u >= pf) & batch.valid
            offsets = (
                rng.random((n, config.devices_per_segment))
                * config.cell_height_window_nm
            )
            counts = count_in_windows(
                batch, working, offsets, offsets + config.device_width_nm
            )
            failing = np.any(counts == 0, axis=1)
            if q > 0.0:
                shorting = (u < q) & batch.valid
                short_counts = count_in_windows(
                    batch, shorting, offsets, offsets + config.device_width_nm
                )
                failing = failing | np.any(short_counts > 0, axis=1)
            failures[done:done + n] = failing
            done += n
        return failures

    # ------------------------------------------------------------------
    # Rare-event samplers (importance sampling / multilevel splitting)
    # ------------------------------------------------------------------

    def _segment_contributions_aligned_tilted(
        self,
        config: RowScenarioConfig,
        n_samples: int,
        rng: np.random.Generator,
        tilt: rare_event.GapTilt,
    ) -> np.ndarray:
        """Weighted per-sample contributions ``pf^N · w`` for aligned rows."""
        return rare_event.sample_tilted_contributions(
            tilt,
            config.device_width_nm,
            self.type_model.per_cnt_failure_probability,
            n_samples,
            rng,
        )

    def _segment_contributions_uncorrelated_tilted(
        self,
        config: RowScenarioConfig,
        n_samples: int,
        rng: np.random.Generator,
        tilt: rare_event.GapTilt,
    ) -> np.ndarray:
        """Weighted contributions for independent-device segments.

        Each device draws its own tilted track set; ``pf^N_d · w_d`` is an
        unbiased estimate of that device's failure probability, the devices
        are independent, so ``1 - Π_d (1 - pf^N_d · w_d)`` is unbiased for
        the segment failure probability.
        """
        d = config.devices_per_segment
        z = self._segment_contributions_aligned_tilted(
            config, n_samples * d, rng, tilt
        ).reshape(n_samples, d)
        # log1p/expm1 keep the deep tail (Σz far below 1e-15) exact; rows
        # with a weight outlier pushing some z past 1 fall back to the
        # direct product, which stays unbiased either way.
        contributions = np.empty(n_samples)
        in_range = np.all(z < 1.0, axis=1)
        contributions[in_range] = -np.expm1(
            np.sum(np.log1p(-z[in_range]), axis=1)
        )
        rest = ~in_range
        if np.any(rest):
            contributions[rest] = 1.0 - np.prod(1.0 - z[rest], axis=1)
        return contributions

    def _splitting_model(
        self, scenario: LayoutScenario, config: RowScenarioConfig
    ) -> rare_event.SplittingModel:
        pf = self.type_model.per_cnt_failure_probability
        if scenario is LayoutScenario.DIRECTIONAL_ALIGNED:
            return rare_event.AlignedRowModel(
                self.pitch, pf, config.device_width_nm
            )
        if scenario is LayoutScenario.UNCORRELATED_GROWTH:
            return rare_event.UncorrelatedRowModel(
                self.pitch, pf, config.device_width_nm,
                config.devices_per_segment,
            )
        return rare_event.NonAlignedRowModel(
            self.pitch, pf, config.device_width_nm,
            config.devices_per_segment, config.cell_height_window_nm,
        )

    def _estimate_tilted(
        self,
        scenario: LayoutScenario,
        config: RowScenarioConfig,
        n_samples: int,
        rng: np.random.Generator,
        tilt_factor: Optional[float],
    ) -> RowMCResult:
        if scenario is LayoutScenario.DIRECTIONAL_NON_ALIGNED:
            raise ValueError(
                "the non-aligned layout has no closed-form tilt (shared "
                "tubes couple with random device offsets); use "
                "sampler='splitting'"
            )
        pf = self.type_model.per_cnt_failure_probability
        tilt = rare_event.resolve_tilt(
            self.pitch, config.device_width_nm, pf, tilt_factor
        )
        if scenario is LayoutScenario.DIRECTIONAL_ALIGNED:
            contributions = self._segment_contributions_aligned_tilted(
                config, n_samples, rng, tilt
            )
        else:
            contributions = self._segment_contributions_uncorrelated_tilted(
                config, n_samples, rng, tilt
            )
        summary = rare_event.weighted_estimate(contributions)
        return RowMCResult(
            scenario=scenario,
            config=config,
            n_samples=int(n_samples),
            row_failure_probability=summary.estimate,
            standard_error=summary.standard_error,
            sampler="tilted",
            effective_sample_size=summary.effective_sample_size,
        )

    def _estimate_splitting(
        self,
        scenario: LayoutScenario,
        config: RowScenarioConfig,
        n_samples: int,
        rng: np.random.Generator,
    ) -> RowMCResult:
        model = self._splitting_model(scenario, config)
        result = rare_event.multilevel_splitting(model, n_samples, rng)
        return RowMCResult(
            scenario=scenario,
            config=config,
            n_samples=int(n_samples),
            row_failure_probability=result.probability,
            standard_error=result.standard_error,
            sampler="splitting",
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def estimate(
        self,
        scenario: LayoutScenario,
        config: RowScenarioConfig,
        n_samples: int,
        rng: np.random.Generator,
        vectorized: bool = True,
        sampler: str = "naive",
        tilt_factor: Optional[float] = None,
    ) -> RowMCResult:
        """Estimate the segment (row) failure probability for one scenario.

        ``vectorized=True`` (default) evaluates all samples as one batched
        array program; ``vectorized=False`` runs the original per-sample
        scalar loop, which draws from the same distribution and serves as
        the equivalence oracle.

        ``sampler`` selects the estimation strategy: ``"naive"`` (default)
        is direct sampling at the nominal gap law, ``"tilted"`` importance
        sampling under an exponentially tilted gap distribution (closed-form
        scenarios only; ``tilt_factor`` overrides the automatic mean factor),
        and ``"splitting"`` adaptive multilevel splitting (``n_samples``
        becomes the particle count).  The rare-event strategies resolve
        failure probabilities far below ``1/n_samples``.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if sampler not in ("naive", "tilted", "splitting"):
            raise ValueError(
                f"unknown sampler {sampler!r}; "
                "expected 'naive', 'tilted' or 'splitting'"
            )
        if (
            sampler in ("tilted", "splitting")
            and self.type_model.surviving_metallic_probability > 0.0
        ):
            raise ValueError(
                f"sampler={sampler!r} supports only the opens-only regime: "
                "the rare-event machinery is built around the pf ** N "
                "cancellation, which has no joint opens+shorts counterpart "
                "(use the naive sampler or the closed form of "
                "repro.device.shorts)"
            )
        if sampler == "tilted":
            return self._estimate_tilted(
                scenario, config, n_samples, rng, tilt_factor
            )
        if sampler == "splitting":
            return self._estimate_splitting(scenario, config, n_samples, rng)
        scalar_samplers = {
            LayoutScenario.UNCORRELATED_GROWTH: self._segment_failure_uncorrelated,
            LayoutScenario.DIRECTIONAL_ALIGNED: self._segment_failure_aligned,
            LayoutScenario.DIRECTIONAL_NON_ALIGNED: self._segment_failure_non_aligned,
        }
        batch_samplers = {
            LayoutScenario.UNCORRELATED_GROWTH: self._segment_failures_uncorrelated_batch,
            LayoutScenario.DIRECTIONAL_ALIGNED: self._segment_failures_aligned_batch,
            LayoutScenario.DIRECTIONAL_NON_ALIGNED: self._segment_failures_non_aligned_batch,
        }
        if scenario not in scalar_samplers:  # pragma: no cover - defensive
            raise ValueError(f"unknown scenario {scenario!r}")

        if vectorized:
            samples = batch_samplers[scenario](config, n_samples, rng)
        else:
            sampler = scalar_samplers[scenario]
            samples = np.array([sampler(config, rng) for _ in range(n_samples)])
        estimate = float(np.mean(samples))
        stderr = (
            float(np.std(samples, ddof=1) / math.sqrt(n_samples))
            if n_samples > 1 else 0.0
        )
        return RowMCResult(
            scenario=scenario,
            config=config,
            n_samples=int(n_samples),
            row_failure_probability=estimate,
            standard_error=stderr,
        )

    def estimate_all(
        self,
        config: RowScenarioConfig,
        n_samples: int,
        rng: np.random.Generator,
        vectorized: bool = True,
        sampler: str = "naive",
    ) -> List[RowMCResult]:
        """Estimate all three scenarios with the same configuration.

        With a rare-event ``sampler`` the non-aligned scenario automatically
        falls back to multilevel splitting (it has no closed-form tilt).
        """
        results = []
        for scenario in LayoutScenario:
            effective = sampler
            if (sampler == "tilted"
                    and scenario is LayoutScenario.DIRECTIONAL_NON_ALIGNED):
                effective = "splitting"
            results.append(
                self.estimate(
                    scenario, config, n_samples, rng,
                    vectorized=vectorized, sampler=effective,
                )
            )
        return results

    @staticmethod
    def devices_per_segment_from_parameters(
        cnt_length_um: float, min_cnfet_density_per_um: float
    ) -> int:
        """MRmin = LCNT · Pmin-CNFET rounded to the nearest device count."""
        ensure_positive(cnt_length_um, "cnt_length_um")
        ensure_positive(min_cnfet_density_per_um, "min_cnfet_density_per_um")
        return max(int(round(cnt_length_um * min_cnfet_density_per_um)), 1)
