"""Wafer-level batched Monte Carlo: every die of a wafer in one stacked pass.

:mod:`repro.growth.wafer` models die-to-die growth variation — each die of
a :class:`~repro.growth.wafer.WaferMap` carries its own mean CNT pitch —
which makes every die a *distinct* simulation: a different gap law, hence
a different renewal process, hence a separate Monte Carlo run.  Looping
the single-die estimator over a wafer wastes most of its time on per-die
overheads and on the engine's conservative 8-sigma gap budget.  This
module simulates the whole wafer as one stacked 3D array program
(die × trial × track):

* every die's trials are drawn from a *spawn-keyed stream* derived from
  the die's grid coordinates (:func:`die_stream`) — never from the die's
  position in a loop — so per-die results are bitwise independent of die
  ordering, of how dies are grouped into batches, and of ``n_workers``;
* per-die gap budgets carry a tight 2-sigma margin instead of the
  engine's 8-sigma one; the rare trials whose budget does not clear the
  widest window are *topped up exactly* from the same die stream;
* window counts are answered by a two-level blocked scan
  (:func:`_blocked_count_leq`): block sums + a block-prefix ``cumsum``
  locate each trial's crossing block, and a gather + short inner
  ``cumsum`` refines it — O(tracks / BLOCK) prefix work instead of a
  dense cumulative sum over every gap, and no banded ``searchsorted``;
* all device-width classes of a die are answered from the *same* sampled
  tracks (they physically share them — the paper's correlation insight),
  where the per-die loop must re-sample per width.

Per die the estimator is the Rao-Blackwellised conditional
``pf ** N(W)`` of :mod:`repro.montecarlo.device_sim`; per-die chip yield
is assembled through the Eq. 2.3 product over width classes with a full
delta-method covariance (the width classes share tracks, so their
estimates are correlated — the covariance keeps the reported standard
error honest).  Aggregates are computed in canonical die order
(sorted by grid coordinates), so they too are order-invariant.

The retained per-die reference path (:func:`per_die_loop`) drives
:class:`~repro.montecarlo.device_sim.DeviceMonteCarlo` die by die and
width by width; it is the statistical oracle for the equivalence tests
and the baseline for ``benchmarks/bench_wafer.py``.

Misalignment de-rating
----------------------
Each die of a :class:`~repro.growth.wafer.WaferMap` carries a
growth-direction misalignment angle.  Passing a
:class:`~repro.analysis.mispositioned.MisalignmentImpactModel` as
``misalignment`` applies the Sec. 3 analytic relaxation *inside* the
stacked pass: every die's Rao-Blackwellised failure values are divided by
the relaxation factor at that die's own angle
(:meth:`~repro.analysis.mispositioned.MisalignmentImpactModel.relaxation_for_angle`),
so the per-device failure budget is relaxed exactly as the aligned-active
optimisation assumes, de-rated by how far the local growth direction has
drifted.  The factor is a pure function of the die site, so de-rated runs
keep every bitwise-invariance guarantee.

Whole-placement chip runs
-------------------------
:func:`run_chip_wafer` closes the loop at the design level: it drives the
batched :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo` kernel over
every die of a wafer under the wafer stream convention — per-die
spawn-keyed streams (:func:`chip_die_stream`), the placement geometry
materialised *once* and re-pitched per die, and every device-width class
of the placement answered from each trial's shared tracks.  Per die it
reports both the direct indicator yield (which captures the row-level
failure correlation the paper exploits) and the Eq. 2.3 product over the
placement's width classes with full delta-method covariance.  The
retained reference (:func:`chip_per_die_loop`) constructs a fresh
:class:`~repro.montecarlo.chip_sim.ChipMonteCarlo` per die; it is the
bitwise oracle for the equivalence tests and the baseline
``benchmarks/bench_wafer.py`` measures the shared-geometry pass against.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.mispositioned import MisalignmentImpactModel
from repro.backend import ArrayBackend, default_backend
from repro.montecarlo.chip_sim import (
    ChipMonteCarlo,
    _ChipGeometry,
    _chip_window_failures,
    _width_class_matrix,
)
from repro.growth.pitch import PitchDistribution
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import DieSite, WaferMap
from repro.montecarlo.engine import (
    DEFAULT_BATCH_ELEMENTS,
    default_trial_chunk,
    estimate_gap_count,
    run_chunked,
)
from repro.resilience.guards import check_finite
from repro.units import ensure_positive

__all__ = [
    "DieYieldEstimate",
    "WaferYieldResult",
    "ChipDieYield",
    "ChipWaferResult",
    "die_stream",
    "chip_die_stream",
    "simulate_die",
    "simulate_wafer",
    "per_die_loop",
    "run_chip_wafer",
    "chip_per_die_loop",
]

#: Domain-separation tag mixed into every die stream's spawn key, so wafer
#: streams can never collide with the engine's chunk streams or the
#: surface sweep's grid streams under a shared root seed.
DIE_STREAM_TAG = 0x57A6ED

#: Domain-separation tag of the whole-placement chip runs, distinct from
#: :data:`DIE_STREAM_TAG` so a width-class wafer run and a chip-wafer run
#: sharing one root seed key never consume the same streams.
CHIP_STREAM_TAG = 0xC417

#: Tracks per block of the two-level count scan.  8 keeps the inner refine
#: cumsum tiny while cutting the prefix work 8x versus a dense cumsum.
BLOCK = 8


def die_stream(seed_key: Sequence[int], site: DieSite) -> np.random.Generator:
    """The RNG stream owned by one die under a wafer-run seed key.

    Keyed by the die's *grid coordinates*, not its index in any
    particular ordering — this is what makes wafer results invariant to
    die ordering and to how dies are batched across workers.
    """
    return np.random.default_rng(
        [int(part) for part in seed_key]
        + [DIE_STREAM_TAG, int(site.column), int(site.row)]
    )


def chip_die_stream(seed_key: Sequence[int], site: DieSite) -> np.random.Generator:
    """The RNG stream owned by one die's whole-placement chip run.

    Same grid-coordinate keying as :func:`die_stream` (hence the same
    order/grouping/``n_workers`` invariance), under a separate domain tag
    so chip runs and width-class runs can share a root seed key without
    stream collisions.
    """
    return np.random.default_rng(
        [int(part) for part in seed_key]
        + [CHIP_STREAM_TAG, int(site.column), int(site.row)]
    )


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DieYieldEstimate:
    """Monte Carlo yield estimate of one die at its local growth statistics.

    ``failure_probabilities`` are the *effective* per-width failure
    probabilities that enter the Eq. 2.3 chip yield: under misalignment
    de-rating they are the raw Rao-Blackwellised estimates divided by
    ``relaxation_factor`` (1.0 when no de-rating was requested, in which
    case they are the raw estimates bit for bit).
    """

    column: int
    row: int
    x_mm: float
    y_mm: float
    mean_pitch_nm: float
    n_trials: int
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    failure_probabilities: Tuple[float, ...]
    failure_standard_errors: Tuple[float, ...]
    chip_yield: float
    chip_yield_se: float
    misalignment_deg: float = 0.0
    relaxation_factor: float = 1.0

    @property
    def radius_mm(self) -> float:
        """Distance of the die centre from the wafer centre."""
        return math.hypot(self.x_mm, self.y_mm)

    @property
    def cnt_density_per_um(self) -> float:
        """Local CNT density implied by the die's mean pitch."""
        return 1.0e3 / self.mean_pitch_nm


@dataclass(frozen=True)
class WaferYieldResult:
    """Per-die and wafer-aggregate outcome of one wafer simulation.

    ``dice`` is sorted canonically by (column, row); every aggregate is
    computed over that order, so results are bitwise invariant to the
    ordering of the input :class:`~repro.growth.wafer.WaferMap` sites.
    """

    wafer_diameter_mm: float
    die_size_mm: float
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    n_trials: int
    good_die_threshold: float
    dice: Tuple[DieYieldEstimate, ...]

    @property
    def die_count(self) -> int:
        """Number of dies simulated."""
        return len(self.dice)

    def die_yields(self) -> np.ndarray:
        """Chip yield per die, canonical order."""
        return np.array([d.chip_yield for d in self.dice])

    @property
    def mean_chip_yield(self) -> float:
        """Wafer-average chip yield (the expected per-die yield)."""
        return float(np.mean(self.die_yields())) if self.dice else float("nan")

    @property
    def good_die_fraction(self) -> float:
        """Fraction of dies whose yield estimate clears the threshold."""
        if not self.dice:
            return 0.0
        return float(np.mean(self.die_yields() >= self.good_die_threshold))

    @property
    def expected_good_dice(self) -> float:
        """Expected number of good dies on the wafer, Σ_die yield_die."""
        return float(np.sum(self.die_yields()))


# ----------------------------------------------------------------------
# The stacked kernel
# ----------------------------------------------------------------------


def _tight_gap_budget(pitch: PitchDistribution, span_nm: float) -> int:
    """Initial gaps per trial: 2-sigma renewal margin, rounded to blocks.

    Deliberately tighter than the engine's 8-sigma
    :func:`~repro.montecarlo.engine.estimate_gap_count`: the stacked pass
    tops up the few uncleared trials exactly, so the budget only has to
    make top-ups *uncommon*, not negligible.
    """
    mean = pitch.mean_nm
    n_mean = (span_nm + mean) / mean
    cv = pitch.std_nm / mean if mean > 0 else 0.0
    n0 = int(n_mean + 2.0 * cv * math.sqrt(n_mean + 1.0)) + 4
    return BLOCK * (-(-n0 // BLOCK))


def _blocked_count_leq(g3, prefix, bounds, xp: ArrayBackend):
    """Per-row count of renewal positions ``<= bound`` via a two-level scan.

    ``g3`` is the gap cube reshaped ``(rows, K, BLOCK)``, ``prefix`` the
    inclusive block-prefix sums ``(rows, K)``, ``bounds`` one bound per
    row.  The crossing block of each row is located on the block prefix,
    then refined with a gather and a BLOCK-wide inner cumsum.  The count
    is exact for the blockwise-evaluated positions (track ``t`` of block
    ``j`` sits at ``prefix[j-1] + inner_cumsum``), including rows whose
    whole budget lies below the bound (returns the full slot count) and
    rows padded with ``inf`` (padding never counts).
    """
    n_blocks = prefix.shape[1]
    if not xp.any(prefix[:, 0] <= bounds):
        # Every bound sits inside the first block (true for the renewal
        # convention's lower bounds, which live below one mean pitch):
        # no crossing-block search, no gather — same result bitwise.
        inner = xp.cumsum(g3[:, 0], axis=1)
        return xp.sum(inner <= bounds[:, None], axis=1)
    below = prefix <= bounds[:, None]
    m = xp.clip(xp.sum(below, axis=1), 0, n_blocks - 1)
    rows = xp.arange(prefix.shape[0])
    start = xp.where(
        m > 0, xp.take_pairs(prefix, rows, xp.clip(m - 1, 0, n_blocks - 1)), 0.0
    )
    inner = xp.cumsum(xp.take_pairs(g3, rows, m), axis=1)
    return m * BLOCK + xp.sum(inner <= (bounds - start)[:, None], axis=1)


@dataclass(frozen=True)
class _WaferPayload:
    """Picklable spec of a wafer run, shared by every die group.

    ``short_probability`` is the per-tube surviving-short probability
    ``q`` of :mod:`repro.device.shorts`; at the default 0 every value
    pass reduces bitwise to the opens-only ``pf ** N`` conditional.
    """

    pitch: PitchDistribution
    per_cnt_failure: float
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    n_trials: int
    seed_key: Tuple[int, ...]
    backend: Optional[ArrayBackend] = None
    misalignment: Optional[MisalignmentImpactModel] = None
    short_probability: float = 0.0


def _die_relaxations(
    misalignment: Optional[MisalignmentImpactModel], sites: Sequence[DieSite]
) -> Optional[np.ndarray]:
    """Per-die Sec. 3 relaxation factors at each die's misalignment angle.

    ``None`` when de-rating is off — callers must then skip the division
    entirely (dividing by an all-ones array would already be a no-op in
    IEEE arithmetic, but skipping keeps the contract self-evident).
    """
    if misalignment is None:
        return None
    return np.array([
        misalignment.relaxation_for_angle(site.misalignment_deg)
        for site in sites
    ])


def _simulate_die_group(
    payload: _WaferPayload, sites: Sequence[DieSite]
) -> List[DieYieldEstimate]:
    """Simulate one group of dies as a single stacked (die·trial, track) pass.

    Per die only the draws (offsets, gaps, rare exact top-ups) touch the
    Python level; block prefixes and the per-width counts run once over
    the whole stack.  Every per-die quantity depends only on that die's
    own stream and budget, so group composition cannot change results.
    """
    xp = payload.backend if payload.backend is not None else default_backend()
    n_trials = payload.n_trials
    widths = payload.widths_nm
    w_max = max(widths)
    n_dies = len(sites)

    pitches = [payload.pitch.with_mean(site.mean_pitch_nm) for site in sites]
    budgets = [_tight_gap_budget(p, w_max) for p in pitches]
    s_max = max(budgets)
    n_rows = n_dies * n_trials

    gaps = xp.empty((n_rows, s_max))
    lo = xp.zeros(n_rows)
    streams = []
    for i, (site, pitch) in enumerate(zip(sites, pitches)):
        rng = die_stream(payload.seed_key, site)
        rows = slice(i * n_trials, (i + 1) * n_trials)
        lo[rows] = xp.uniform(rng, n_trials) * pitch.mean_nm
        if budgets[i] == s_max:
            # Contiguous destination: the backend may draw straight into
            # the stack without an intermediate allocation.
            view = gaps[rows]
            drawn = xp.sample_gaps(pitch, (n_trials, s_max), rng, out=view)
            if drawn is not view:
                gaps[rows] = drawn
        else:
            gaps[rows, : budgets[i]] = xp.sample_gaps(
                pitch, (n_trials, budgets[i]), rng
            )
            # Padding slots never count: +inf sits above every bound.
            gaps[rows, budgets[i]:] = np.inf
        streams.append(rng)

    g3 = xp.reshape(gaps, (n_rows, s_max // BLOCK, BLOCK))
    # Block sums as a matvec with ones: same reduction, ~3x faster than a
    # short-axis ``sum`` (NumPy's reduce is slow on 8-wide inner loops).
    prefix = xp.cumsum(g3 @ xp.full((BLOCK,), 1.0), axis=1)

    n_lo = xp.to_numpy(_blocked_count_leq(g3, prefix, lo, xp))
    n_hi = np.empty((len(widths), n_rows), dtype=np.int64)
    for q, width in enumerate(widths):
        n_hi[q] = xp.to_numpy(
            _blocked_count_leq(g3, prefix, lo + width, xp)
        )

    # Exact top-up: trials whose budget did not clear their widest window
    # continue drawing BLOCK-wide chunks from their own die stream.  Extra
    # tracks sit strictly above the die's cleared total, so adding
    # ``#(extra <= hi_q) - #(extra <= lo)`` is a no-op for every window
    # the main budget already cleared.
    lo_np = xp.to_numpy(lo).astype(float)
    for i, site in enumerate(sites):
        rows = slice(i * n_trials, (i + 1) * n_trials)
        k_i = budgets[i] // BLOCK
        total = xp.to_numpy(prefix[rows, k_i - 1]).astype(float)
        hi_max = lo_np[rows] + w_max
        alive = np.flatnonzero(total <= hi_max)
        run = total[alive]
        while alive.size:
            extra = np.cumsum(
                xp.to_numpy(
                    xp.sample_gaps(pitches[i], (alive.size, BLOCK), streams[i])
                ).astype(float),
                axis=1,
            ) + run[:, None]
            sel = i * n_trials + alive
            for q, width in enumerate(widths):
                n_hi[q, sel] += (
                    extra <= (lo_np[sel] + width)[:, None]
                ).sum(axis=1)
            n_lo[sel] += (extra <= lo_np[sel][:, None]).sum(axis=1)
            run = extra[:, -1]
            keep = run <= hi_max[alive]
            alive = alive[keep]
            run = run[keep]

    counts = (n_hi - n_lo[None, :]).reshape(len(widths), n_dies, n_trials)
    n = counts.astype(float)
    q = payload.short_probability
    if q > 0.0:
        # Joint opens+shorts conditional of repro.device.shorts:
        # 1 - (1 - q)**N + (pf - q)**N given the sampled counts.
        values = (
            1.0 - np.power(1.0 - q, n)
            + np.power(payload.per_cnt_failure - q, n)
        )
    else:
        values = np.power(payload.per_cnt_failure, n)
    return _assemble_group(sites, values, payload)


def _class_mean_covariance(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-die mean and covariance-of-the-mean of per-trial class values.

    ``values`` has shape ``(n_classes, n_dies, n_trials)``; returns the
    class means ``(Q, D)`` and the per-die covariance of those means
    ``(D, Q, Q)``.  The classes share tracks, so their estimates are
    correlated — downstream yield errors must use the full covariance.
    """
    n_classes, n_dies, n_trials = values.shape
    p = values.mean(axis=2)  # (Q, D)
    if n_trials > 1:
        centred = values - p[:, :, None]
        # (D, Q, T) @ (D, T, Q) -> per-die covariance of the means.
        cov = (
            np.matmul(centred.transpose(1, 0, 2), centred.transpose(1, 2, 0))
            / (n_trials - 1) / n_trials
        )
    else:
        cov = np.zeros((n_dies, n_classes, n_classes))
    return p, cov


def _eq23_chip_yield(
    p: np.ndarray, cov: np.ndarray, counts_q: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 2.3 chip yield per die with full delta-method covariance.

    ``p`` is ``(Q, D)`` per-class failure probabilities, ``cov`` the
    ``(D, Q, Q)`` covariance of those estimates, ``counts_q`` the device
    count per class.  Returns per-die ``(yield, standard error)``; a die
    whose survival collapses to zero reports yield 0 with infinite SE
    (the estimate carries no information there).
    """
    n_classes = p.shape[0]
    n_dies = p.shape[1]
    survive = 1.0 - np.clip(p, 0.0, 1.0)
    ok = np.all(survive > 0.0, axis=0)
    with np.errstate(divide="ignore"):
        chip_yield = np.where(
            ok, np.exp(np.sum(counts_q[:, None] * np.log(
                np.where(survive > 0.0, survive, 1.0)), axis=0)), 0.0
        )
    grad = counts_q[:, None] / np.where(survive > 0.0, survive, 1.0)  # (Q, D)
    # Quadratic form Σ_qr grad_q · cov_qr · grad_r in a fixed accumulation
    # order: einsum picks different contraction paths for different die
    # counts, which would break the bitwise group-vs-single-die contract
    # by an ulp.
    var = np.zeros(n_dies)
    for qi in range(n_classes):
        for ri in range(n_classes):
            var += grad[qi] * cov[:, qi, ri] * grad[ri]
    chip_yield_se = np.where(
        ok, chip_yield * np.sqrt(np.maximum(var, 0.0)), np.inf
    )
    return chip_yield, chip_yield_se


def _assemble_group(
    sites: Sequence[DieSite], values: np.ndarray, payload: _WaferPayload
) -> List[DieYieldEstimate]:
    """Fold per-trial ``pf ** N`` values, shape (widths, dies, trials), into
    per-die yield estimates.

    The width classes share tracks, so their pF estimates are correlated;
    the Eq. 2.3 chip-yield standard error therefore uses the full
    delta-method covariance of the per-width means instead of treating
    them as independent.  All statistics are batched over the die axis
    (per-(width, die) reductions run over each die's own contiguous trial
    slice, so a group's estimates match a single-die run bit for bit).
    Misalignment de-rating divides every die's per-trial values by that
    die's analytic relaxation factor before any statistic is formed, so
    mean, covariance and Eq. 2.3 yield stay mutually consistent.
    """
    relaxations = _die_relaxations(payload.misalignment, sites)
    if relaxations is not None:
        values = values / relaxations[None, :, None]
    # A NaN here (poisoned draw, corrupt backend buffer) would silently
    # spread through every per-die statistic; fail loudly instead.
    check_finite(values, "wafer.die_group.values")
    n_trials = values.shape[2]
    p, cov = _class_mean_covariance(values)
    se = np.sqrt(np.diagonal(cov, axis1=1, axis2=2)).T  # (Q, D)
    counts_q = np.asarray(payload.device_counts, dtype=float)
    chip_yield, chip_yield_se = _eq23_chip_yield(p, cov, counts_q)
    return [
        DieYieldEstimate(
            column=site.column,
            row=site.row,
            x_mm=site.x_mm,
            y_mm=site.y_mm,
            mean_pitch_nm=site.mean_pitch_nm,
            n_trials=int(n_trials),
            widths_nm=payload.widths_nm,
            device_counts=payload.device_counts,
            failure_probabilities=tuple(float(x) for x in p[:, i]),
            failure_standard_errors=tuple(float(x) for x in se[:, i]),
            chip_yield=float(chip_yield[i]),
            chip_yield_se=float(chip_yield_se[i]),
            misalignment_deg=float(site.misalignment_deg),
            relaxation_factor=(
                float(relaxations[i]) if relaxations is not None else 1.0
            ),
        )
        for i, site in enumerate(sites)
    ]


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _normalise_classes(widths_nm, device_counts) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    widths = np.atleast_1d(np.asarray(widths_nm, dtype=float))
    if widths.size == 0:
        raise ValueError("widths_nm must contain at least one width")
    for w in widths:
        ensure_positive(float(w), "widths_nm")
    if device_counts is None:
        counts = np.ones_like(widths)
    else:
        counts = np.atleast_1d(np.asarray(device_counts, dtype=float))
        if counts.shape != widths.shape:
            raise ValueError(
                f"device_counts shape {counts.shape} does not match "
                f"widths shape {widths.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("device_counts must be non-negative")
    return tuple(float(w) for w in widths), tuple(float(c) for c in counts)


def _canonical_sites(wafer: WaferMap) -> List[DieSite]:
    return sorted(wafer.sites, key=lambda s: (s.column, s.row))


#: Minimum number of die groups a wafer run is split into (when it has
#: that many dies), so process pools up to this size always receive work.
#: A constant — never the worker count — which, together with per-die
#: streams, keeps results bitwise independent of ``n_workers``.
DEFAULT_PARALLEL_GRAIN = 8


def _dies_per_group(n_dies: int, payload: _WaferPayload, s_max_hint: int) -> int:
    """Dies per stacked pass: element-budget bounded, grain-split."""
    per_die = max(1, payload.n_trials * s_max_hint)
    budget = max(1, DEFAULT_BATCH_ELEMENTS // per_die)
    spread = -(-n_dies // DEFAULT_PARALLEL_GRAIN)
    return max(1, min(budget, spread))


# ----------------------------------------------------------------------
# Resilient-campaign plumbing (checkpointed / supervised wafer runs)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _DieGroupTask:
    """Picklable zero-arg task simulating one die group (supervised runs).

    Die streams are derived inside the kernel from stateless spawn keys,
    so re-executing the task after a worker death reproduces its results
    bit for bit with no supervisor-side state.
    """

    payload: _WaferPayload
    sites: Tuple[DieSite, ...]

    def __call__(self) -> List[DieYieldEstimate]:
        return _simulate_die_group(self.payload, list(self.sites))


@dataclass(frozen=True)
class _ChipDieTask:
    """Picklable zero-arg task for one die's whole-placement chip run."""

    payload: "_ChipWaferPayload"
    site: DieSite

    def __call__(self) -> "ChipDieYield":
        return _simulate_chip_die(self.payload, self.site)


def _estimate_from_json(cls, payload: Dict[str, object]):
    """Rebuild a frozen result dataclass from its JSON round-trip.

    JSON turns the tuple fields into lists; everything else (ints,
    ``repr``-round-tripping floats, ±inf under Python's JSON dialect)
    comes back exactly, so the reconstruction is bitwise faithful.
    """
    return cls(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.items()
    })


def _die_group_encode(results):
    """Checkpoint codec: die-group results as a JSON meta payload."""
    return {}, [asdict(est) for est in results]


def _die_group_decode(arrays, meta):
    """Inverse of :func:`_die_group_encode`."""
    del arrays
    return [_estimate_from_json(DieYieldEstimate, d) for d in meta]


def _chip_die_encode(result):
    """Checkpoint codec: one chip-die result as a JSON meta payload."""
    return {}, asdict(result)


def _chip_die_decode(arrays, meta):
    """Inverse of :func:`_chip_die_encode`."""
    del arrays
    return _estimate_from_json(ChipDieYield, meta)


def _site_signature(sites: Sequence[DieSite]) -> List[Tuple]:
    """Canonical per-site tuple list entering campaign fingerprints."""
    return [
        (s.column, s.row, s.x_mm, s.y_mm, s.mean_pitch_nm, s.misalignment_deg)
        for s in sites
    ]


def simulate_die(
    site: DieSite,
    pitch: PitchDistribution,
    type_model: CNTTypeModel,
    widths_nm,
    device_counts=None,
    n_trials: int = 1024,
    seed_key: Sequence[int] = (20100616,),
    backend: Optional[ArrayBackend] = None,
    misalignment: Optional[MisalignmentImpactModel] = None,
) -> DieYieldEstimate:
    """Simulate one die independently — the per-die reference of the runner.

    Runs the *same* stacked kernel on a single die with the same
    spawn-keyed stream, so a die's estimate here is bitwise identical to
    its estimate inside any :func:`simulate_wafer` run sharing the seed
    key (the wafer-combination property tests pin this).

    Parameters
    ----------
    site:
        The die position and local growth statistics to simulate.
    pitch, type_model, widths_nm, device_counts, n_trials, seed_key, backend:
        As for :func:`simulate_wafer`.
    misalignment:
        Optional analytic de-rating model; when given, the die's failure
        values are divided by the Sec. 3 relaxation factor at the die's
        misalignment angle (see the module notes).

    Returns
    -------
    DieYieldEstimate
        The die's per-width failure probabilities and Eq. 2.3 chip yield.
    """
    widths, counts = _normalise_classes(widths_nm, device_counts)
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    payload = _WaferPayload(
        pitch=pitch,
        per_cnt_failure=type_model.per_cnt_failure_probability,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
        backend=backend,
        misalignment=misalignment,
        short_probability=type_model.surviving_metallic_probability,
    )
    return _simulate_die_group(payload, [site])[0]


def simulate_wafer(
    wafer: WaferMap,
    pitch: PitchDistribution,
    type_model: CNTTypeModel,
    widths_nm,
    device_counts=None,
    n_trials: int = 1024,
    seed_key: Sequence[int] = (20100616,),
    good_die_threshold: float = 0.5,
    n_workers: int = 1,
    backend: Optional[ArrayBackend] = None,
    misalignment: Optional[MisalignmentImpactModel] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = True,
    policy=None,
    faults=None,
) -> WaferYieldResult:
    """Simulate every die of ``wafer`` in stacked (die × trial × track) passes.

    Parameters
    ----------
    wafer:
        Die map with per-die growth statistics; each die's gap law is
        ``pitch.with_mean(site.mean_pitch_nm)`` (same family and CV,
        rescaled to the local density).
    type_model:
        Metallic/semiconducting and removal statistics (fixes the per-CNT
        failure probability of the conditional estimator).
    widths_nm, device_counts:
        Device-width classes evaluated per die and how many devices of
        each class a die carries; all classes are answered from the same
        sampled tracks.  ``device_counts=None`` means one device per
        class.
    n_trials:
        Renewal trials per die (each trial grows one shared track set).
    seed_key:
        Root spawn key; die streams derive from it and the die's grid
        coordinates, so per-die results are reproducible and independent
        of ordering, grouping and ``n_workers``.
    n_workers:
        Processes to spread die groups over (groups are element-budget
        bounded either way; results are bitwise identical for any value).
    backend:
        Array backend for the stacked passes (``None`` = environment
        default).
    misalignment:
        Optional :class:`~repro.analysis.mispositioned.MisalignmentImpactModel`.
        When given, every die's failure values are divided by the Sec. 3
        analytic relaxation factor at that die's misalignment angle,
        inside the stacked pass (see the module notes).  ``None`` (the
        default) leaves results bitwise identical to a run without the
        parameter.
    checkpoint_dir:
        When given, each completed die group persists under this
        directory (content-hashed, atomically written); a rerun with the
        same configuration resumes from the verified units and is
        bitwise identical to an uninterrupted run.  Corrupt units are
        quarantined and recomputed.
    resume:
        Whether an existing checkpoint for this campaign is loaded
        (default) or discarded first.
    policy:
        A :class:`~repro.resilience.supervise.RetryPolicy` routing the
        run through the supervised executor (bounded retries on worker
        death, per-group timeouts) even without a checkpoint.
    faults:
        A :class:`~repro.resilience.faults.FaultPlan` for chaos tests;
        never set in production runs.

    Returns
    -------
    WaferYieldResult
        Per-die estimates in canonical (column, row) order plus wafer
        aggregates; bitwise invariant to die order, grouping and
        ``n_workers``.
    """
    widths, counts = _normalise_classes(widths_nm, device_counts)
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if not 0.0 <= good_die_threshold <= 1.0:
        raise ValueError("good_die_threshold must lie in [0, 1]")
    payload = _WaferPayload(
        pitch=pitch,
        per_cnt_failure=type_model.per_cnt_failure_probability,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
        backend=backend,
        misalignment=misalignment,
        short_probability=type_model.surviving_metallic_probability,
    )
    sites = _canonical_sites(wafer)
    dice: List[DieYieldEstimate] = []
    if sites:
        s_max_hint = max(
            _tight_gap_budget(pitch.with_mean(s.mean_pitch_nm), max(widths))
            for s in sites
        )
        group = _dies_per_group(len(sites), payload, s_max_hint)
        groups = [sites[i:i + group] for i in range(0, len(sites), group)]
        if checkpoint_dir is not None or policy is not None or faults is not None:
            from repro.resilience.checkpoint import (
                CheckpointStore,
                fingerprint_parts,
            )
            from repro.resilience.supervise import run_supervised

            checkpoint = None
            if checkpoint_dir is not None:
                fingerprint = fingerprint_parts(
                    "wafer-sim",
                    repr(payload.pitch),
                    payload.per_cnt_failure,
                    payload.widths_nm,
                    payload.device_counts,
                    payload.n_trials,
                    payload.seed_key,
                    repr(payload.backend),
                    repr(payload.misalignment),
                    float(payload.short_probability),
                    int(group),
                    _site_signature(sites),
                )
                checkpoint = CheckpointStore(checkpoint_dir).campaign(
                    "wafer", fingerprint, len(groups), resume=resume
                )
            group_results = run_supervised(
                [_DieGroupTask(payload, tuple(g)) for g in groups],
                n_workers=n_workers,
                policy=policy,
                checkpoint=checkpoint,
                faults=faults,
                encode=_die_group_encode,
                decode=_die_group_decode,
            )
            for result in group_results:
                dice.extend(result)
        elif n_workers == 1 or len(groups) == 1:
            for g in groups:
                dice.extend(_simulate_die_group(payload, g))
        else:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(groups))
            ) as pool:
                futures = [
                    pool.submit(_simulate_die_group, payload, g) for g in groups
                ]
                for future in futures:
                    dice.extend(future.result())
    return WaferYieldResult(
        wafer_diameter_mm=wafer.wafer_diameter_mm,
        die_size_mm=wafer.die_size_mm,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        good_die_threshold=float(good_die_threshold),
        dice=tuple(dice),
    )


def per_die_loop(
    wafer: WaferMap,
    pitch: PitchDistribution,
    type_model: CNTTypeModel,
    widths_nm,
    device_counts=None,
    n_trials: int = 1024,
    seed_key: Sequence[int] = (20100616,),
    good_die_threshold: float = 0.5,
    misalignment: Optional[MisalignmentImpactModel] = None,
) -> WaferYieldResult:
    """Reference wafer evaluation: the pre-stacked die-by-die loop.

    Drives :class:`~repro.montecarlo.device_sim.DeviceMonteCarlo` once per
    (die, width class) — fresh tracks per width, engine gap budget, per-die
    Python overhead.  Statistically equivalent to :func:`simulate_wafer`
    at equal ``n_trials`` (the equivalence tests pin that down) and the
    baseline that ``benchmarks/bench_wafer.py`` measures the stacked pass
    against.  Per-width streams extend the die spawn key with the class
    index, so this path is deterministic and order-invariant too.
    Misalignment de-rating divides each die's estimates by the same
    analytic relaxation factor the stacked pass applies.
    """
    from repro.montecarlo.device_sim import DeviceMonteCarlo

    widths, counts = _normalise_classes(widths_nm, device_counts)
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    payload = _WaferPayload(
        pitch=pitch,
        per_cnt_failure=type_model.per_cnt_failure_probability,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
        short_probability=type_model.surviving_metallic_probability,
    )
    dice: List[DieYieldEstimate] = []
    for site in _canonical_sites(wafer):
        die_pitch = pitch.with_mean(site.mean_pitch_nm)
        mc = DeviceMonteCarlo(pitch=die_pitch, type_model=type_model)
        p = np.empty(len(widths))
        se = np.empty(len(widths))
        for q, width in enumerate(widths):
            stream = np.random.default_rng(
                list(payload.seed_key)
                + [DIE_STREAM_TAG, int(site.column), int(site.row), q]
            )
            result = mc.estimate_conditional(width, n_trials, stream)
            p[q] = result.failure_probability
            se[q] = result.standard_error
        if misalignment is not None:
            relaxation = misalignment.relaxation_for_angle(site.misalignment_deg)
            p = p / relaxation
            se = se / relaxation
        else:
            relaxation = 1.0
        counts_q = np.asarray(counts, dtype=float)
        survive = 1.0 - np.clip(p, 0.0, 1.0)
        if np.all(survive > 0.0):
            chip_yield = float(np.exp(np.sum(counts_q * np.log(survive))))
            chip_yield_se = chip_yield * float(
                np.sqrt(np.sum((counts_q * se / survive) ** 2))
            )
        else:
            chip_yield, chip_yield_se = 0.0, float("inf")
        dice.append(DieYieldEstimate(
            column=site.column,
            row=site.row,
            x_mm=site.x_mm,
            y_mm=site.y_mm,
            mean_pitch_nm=site.mean_pitch_nm,
            n_trials=int(n_trials),
            widths_nm=widths,
            device_counts=counts,
            failure_probabilities=tuple(float(x) for x in p),
            failure_standard_errors=tuple(float(x) for x in se),
            chip_yield=chip_yield,
            chip_yield_se=chip_yield_se,
            misalignment_deg=float(site.misalignment_deg),
            relaxation_factor=float(relaxation),
        ))
    return WaferYieldResult(
        wafer_diameter_mm=wafer.wafer_diameter_mm,
        die_size_mm=wafer.die_size_mm,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        good_die_threshold=float(good_die_threshold),
        dice=tuple(dice),
    )


# ----------------------------------------------------------------------
# Whole-placement chip runs per die
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChipDieYield:
    """Whole-placement Monte Carlo outcome of one die of a chip wafer.

    Two yield views are reported per die:

    * the *direct* indicator yield — the fraction of trials in which no
      device of the placed design failed; it captures the row-level
      failure correlation (shared tubes) the paper exploits;
    * the *Eq. 2.3* product over the placement's device-width classes —
      the independent-device chip yield at the sampled per-class failure
      probabilities, with full delta-method covariance (classes share
      tracks, so their estimates are correlated).  Under misalignment
      de-rating the class probabilities are divided by
      ``relaxation_factor`` first.

    The direct yield exceeding the Eq. 2.3 product — often by orders of
    magnitude — is the paper's correlation benefit made measurable:
    failures arrive in row-sized bursts on shared tubes, so far fewer
    *chips* fail than the independent-device product predicts.  The
    reference :func:`chip_per_die_loop` reports only the direct view
    (its class fields are empty / NaN).
    """

    column: int
    row: int
    x_mm: float
    y_mm: float
    mean_pitch_nm: float
    misalignment_deg: float
    n_trials: int
    chip_yield: float
    mean_failing_devices: float
    std_failing_devices: float
    mean_failing_rows: float
    device_failure_rate: float
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    class_failure_probabilities: Tuple[float, ...]
    class_failure_standard_errors: Tuple[float, ...]
    eq23_chip_yield: float
    eq23_chip_yield_se: float
    relaxation_factor: float = 1.0

    @property
    def radius_mm(self) -> float:
        """Distance of the die centre from the wafer centre."""
        return math.hypot(self.x_mm, self.y_mm)

    @property
    def cnt_density_per_um(self) -> float:
        """Local CNT density implied by the die's mean pitch."""
        return 1.0e3 / self.mean_pitch_nm


@dataclass(frozen=True)
class ChipWaferResult:
    """Per-die and wafer-aggregate outcome of a whole-placement wafer run.

    ``dice`` is sorted canonically by (column, row), so aggregates are
    bitwise invariant to the ordering of the input wafer's sites — the
    same contract as :class:`WaferYieldResult` (and the radial summary
    table of :func:`repro.reporting.tables.wafer_summary_rows` accepts
    either result type).
    """

    wafer_diameter_mm: float
    die_size_mm: float
    device_count: int
    small_device_count: int
    n_trials: int
    good_die_threshold: float
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    dice: Tuple[ChipDieYield, ...]

    @property
    def die_count(self) -> int:
        """Number of dies simulated."""
        return len(self.dice)

    def die_yields(self) -> np.ndarray:
        """Direct chip yield per die, canonical order."""
        return np.array([d.chip_yield for d in self.dice])

    @property
    def mean_chip_yield(self) -> float:
        """Wafer-average direct chip yield."""
        return float(np.mean(self.die_yields())) if self.dice else float("nan")

    @property
    def good_die_fraction(self) -> float:
        """Fraction of dies whose direct yield clears the threshold."""
        if not self.dice:
            return 0.0
        return float(np.mean(self.die_yields() >= self.good_die_threshold))

    @property
    def expected_good_dice(self) -> float:
        """Expected number of good dies on the wafer, Σ_die yield_die."""
        return float(np.sum(self.die_yields()))


@dataclass(frozen=True)
class _ChipWaferPayload:
    """Picklable spec of a chip-wafer run, shared by every die job."""

    geometry: _ChipGeometry
    pitch: PitchDistribution
    class_matrix: np.ndarray
    class_counts: np.ndarray
    widths_nm: Tuple[float, ...]
    n_trials: int
    seed_key: Tuple[int, ...]
    trial_chunk: Optional[int]
    misalignment: Optional[MisalignmentImpactModel]


def _chip_die_trial_chunk(
    die_pitch: PitchDistribution, geometry: _ChipGeometry, n_trials: int
) -> int:
    """Per-die trial chunk, identical to the policy of a per-die simulator.

    Mirrors :meth:`ChipMonteCarlo._default_trial_chunk` evaluated at the
    die's local pitch, so a shared-geometry die run consumes exactly the
    chunk layout (hence the RNG streams) a fresh per-die
    :class:`ChipMonteCarlo` would — the bitwise contract the equivalence
    tests pin down.
    """
    est_slots = estimate_gap_count(die_pitch, geometry.row_height_nm)
    per_trial = max(1, geometry.n_rows * est_slots)
    return default_trial_chunk(
        per_trial, n_trials, grain=ChipMonteCarlo.DEFAULT_PARALLEL_GRAIN
    )


def _chip_die_chunk(
    payload: Tuple[_ChipGeometry, np.ndarray],
    n_chunk: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One chunk of whole-placement trials plus per-width-class reductions.

    Draws exactly what :func:`~repro.montecarlo.chip_sim._simulate_chip_chunk`
    draws (the shared :func:`~repro.montecarlo.chip_sim._chip_window_failures`
    kernel consumes the generator identically), then reduces the failing
    mask three ways: failing devices, failing rows, and failing devices
    per width class (one matmul against the class matrix).
    """
    geometry, class_matrix = payload
    failing = _chip_window_failures(geometry, n_chunk, rng)
    failing_devices = (failing * geometry.window_weight).sum(axis=1).astype(float)
    per_row = np.add.reduceat(failing, geometry.row_starts, axis=1)
    failing_rows = (per_row > 0).sum(axis=1).astype(float)
    class_failing = failing.astype(float) @ class_matrix
    return failing_devices, failing_rows, class_failing


def _simulate_chip_die(payload: _ChipWaferPayload, site: DieSite) -> ChipDieYield:
    """Run one die's whole-placement trials on the shared geometry.

    The die's gap law is the nominal pitch rescaled to the local density
    (``with_mean``); its trials consume the die's own
    :func:`chip_die_stream`, chunked by the same policy a fresh per-die
    simulator would use, so the result is bitwise identical to
    :func:`chip_per_die_loop` on that die — while skipping the per-die
    placement materialisation entirely.
    """
    die_pitch = payload.pitch.with_mean(site.mean_pitch_nm)
    geometry = replace(payload.geometry, pitch=die_pitch)
    trial_chunk = payload.trial_chunk
    if trial_chunk is None:
        trial_chunk = _chip_die_trial_chunk(die_pitch, geometry, payload.n_trials)
    rng = chip_die_stream(payload.seed_key, site)
    chunks = run_chunked(
        _chip_die_chunk,
        (geometry, payload.class_matrix),
        payload.n_trials,
        rng,
        trial_chunk=trial_chunk,
        n_workers=1,
    )
    failing_devices = np.concatenate([c[0] for c in chunks])
    failing_rows = np.concatenate([c[1] for c in chunks])
    class_failing = np.vstack([c[2] for c in chunks])
    n_trials = failing_devices.size
    device_count = float(payload.class_counts.sum())

    if payload.misalignment is not None:
        relaxation = payload.misalignment.relaxation_for_angle(
            site.misalignment_deg
        )
    else:
        relaxation = 1.0
    # Per-trial per-class failure fractions feed the Eq. 2.3 product; the
    # de-rating divides the per-trial values (not just the means) so the
    # covariance stays consistent with the estimate.
    values = (class_failing / payload.class_counts[None, :]).T[:, None, :]
    if payload.misalignment is not None:
        values = values / relaxation
    p, cov = _class_mean_covariance(values)
    se = np.sqrt(np.diagonal(cov, axis1=1, axis2=2)).T
    eq23_yield, eq23_se = _eq23_chip_yield(
        p, cov, np.asarray(payload.class_counts, dtype=float)
    )
    return ChipDieYield(
        column=site.column,
        row=site.row,
        x_mm=site.x_mm,
        y_mm=site.y_mm,
        mean_pitch_nm=site.mean_pitch_nm,
        misalignment_deg=float(site.misalignment_deg),
        n_trials=int(n_trials),
        chip_yield=float(np.mean(failing_devices == 0)),
        mean_failing_devices=float(np.mean(failing_devices)),
        std_failing_devices=(
            float(np.std(failing_devices, ddof=1)) if n_trials > 1 else 0.0
        ),
        mean_failing_rows=float(np.mean(failing_rows)),
        device_failure_rate=(
            float(np.mean(failing_devices) / device_count)
            if device_count else float("nan")
        ),
        widths_nm=payload.widths_nm,
        device_counts=tuple(float(c) for c in payload.class_counts),
        class_failure_probabilities=tuple(float(x) for x in p[:, 0]),
        class_failure_standard_errors=tuple(float(x) for x in se[:, 0]),
        eq23_chip_yield=float(eq23_yield[0]),
        eq23_chip_yield_se=float(eq23_se[0]),
        relaxation_factor=float(relaxation),
    )


def run_chip_wafer(
    wafer: WaferMap,
    chip: ChipMonteCarlo,
    n_trials: int = 256,
    seed_key: Sequence[int] = (20100616,),
    good_die_threshold: float = 0.5,
    n_workers: int = 1,
    trial_chunk: Optional[int] = None,
    misalignment: Optional[MisalignmentImpactModel] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = True,
    policy=None,
    faults=None,
) -> ChipWaferResult:
    """Yield-map a placed design across every die of a wafer in one run.

    Drives the batched :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo`
    kernel under the wafer stream convention: the placement geometry is
    materialised once (by ``chip``) and re-pitched per die, each die's
    trials consume the die's own spawn-keyed :func:`chip_die_stream`, and
    every device-width class of the placement is answered from each
    trial's shared tracks.

    Parameters
    ----------
    wafer:
        Die map with per-die growth statistics; each die's gap law is
        ``chip.pitch.with_mean(site.mean_pitch_nm)``.
    chip:
        The placed-design simulator whose geometry (and nominal pitch,
        type model, backend) the wafer run shares.
    n_trials:
        Whole-chip fabrication trials per die.
    seed_key:
        Root spawn key; die streams derive from it and the die's grid
        coordinates (under :data:`CHIP_STREAM_TAG`), so per-die results
        are bitwise invariant to die order, grouping and ``n_workers``.
    good_die_threshold:
        Direct yield above which a die counts as good.
    n_workers:
        Processes to spread whole dies over (per-die results identical
        for any value).
    trial_chunk:
        Trials per batched pass; ``None`` applies the per-die simulator's
        chunk policy at each die's local pitch (the bitwise-equivalence
        contract with :func:`chip_per_die_loop`).
    misalignment:
        Optional analytic de-rating of the Eq. 2.3 view (the direct
        indicator yield is a realised count and is never de-rated).
    checkpoint_dir:
        When given, every completed die persists under this directory
        (content-hashed, atomically written); a rerun with the same
        configuration resumes from the verified dies bitwise-identically
        — the per-die :func:`chip_die_stream` spawn keys make a resumed
        die indistinguishable from an uninterrupted one.
    resume:
        Whether an existing checkpoint for this campaign is loaded
        (default) or discarded first.
    policy:
        A :class:`~repro.resilience.supervise.RetryPolicy` routing the
        run through the supervised executor (bounded retries on worker
        death, per-die timeouts) even without a checkpoint.
    faults:
        A :class:`~repro.resilience.faults.FaultPlan` for chaos tests;
        never set in production runs.

    Returns
    -------
    ChipWaferResult
        Per-die direct and Eq. 2.3 yields in canonical (column, row)
        order plus wafer aggregates.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if not 0.0 <= good_die_threshold <= 1.0:
        raise ValueError("good_die_threshold must lie in [0, 1]")
    geometry = chip.chip_geometry()
    widths, class_matrix, class_counts = _width_class_matrix(geometry)
    payload = _ChipWaferPayload(
        geometry=geometry,
        pitch=chip.pitch,
        class_matrix=class_matrix,
        class_counts=class_counts,
        widths_nm=tuple(float(w) for w in widths),
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
        trial_chunk=trial_chunk,
        misalignment=misalignment,
    )
    sites = _canonical_sites(wafer)
    if checkpoint_dir is not None or policy is not None or faults is not None:
        from repro.resilience.checkpoint import CheckpointStore, fingerprint_parts
        from repro.resilience.supervise import run_supervised

        checkpoint = None
        if checkpoint_dir is not None and sites:
            fingerprint = fingerprint_parts(
                "chip-wafer",
                repr(payload.pitch),
                payload.widths_nm,
                tuple(float(c) for c in class_counts),
                payload.n_trials,
                payload.seed_key,
                payload.trial_chunk,
                repr(payload.misalignment),
                repr(geometry.backend),
                float(geometry.per_cnt_failure),
                float(geometry.short_probability),
                int(geometry.min_working_tubes),
                geometry.window_lo,
                geometry.window_hi,
                geometry.window_weight,
                geometry.window_row,
                _site_signature(sites),
            )
            checkpoint = CheckpointStore(checkpoint_dir).campaign(
                "chip-wafer", fingerprint, len(sites), resume=resume
            )
        dice = run_supervised(
            [_ChipDieTask(payload, site) for site in sites],
            n_workers=n_workers,
            policy=policy,
            checkpoint=checkpoint,
            faults=faults,
            encode=_chip_die_encode,
            decode=_chip_die_decode,
        )
    elif n_workers == 1 or len(sites) <= 1:
        dice = [_simulate_chip_die(payload, site) for site in sites]
    else:
        with ProcessPoolExecutor(max_workers=min(n_workers, len(sites))) as pool:
            futures = [
                pool.submit(_simulate_chip_die, payload, site) for site in sites
            ]
            dice = [future.result() for future in futures]
    return ChipWaferResult(
        wafer_diameter_mm=wafer.wafer_diameter_mm,
        die_size_mm=wafer.die_size_mm,
        device_count=chip.device_count,
        small_device_count=chip.small_device_count,
        n_trials=int(n_trials),
        good_die_threshold=float(good_die_threshold),
        widths_nm=payload.widths_nm,
        device_counts=tuple(float(c) for c in class_counts),
        dice=tuple(dice),
    )


def chip_per_die_loop(
    wafer: WaferMap,
    chip: ChipMonteCarlo,
    n_trials: int = 256,
    seed_key: Sequence[int] = (20100616,),
    good_die_threshold: float = 0.5,
) -> ChipWaferResult:
    """Reference chip-wafer evaluation: a fresh simulator per die.

    Constructs a new :class:`~repro.montecarlo.chip_sim.ChipMonteCarlo`
    for every die — re-running the placement, re-collecting the device
    windows and re-building the engine geometry each time — and runs it
    on the die's :func:`chip_die_stream`.  Its direct statistics are
    bitwise identical to :func:`run_chip_wafer` (same streams, same chunk
    policy, same kernel); the width-class / Eq. 2.3 fields are not
    computed (empty tuples, NaN yields).  This is the baseline
    ``benchmarks/bench_wafer.py`` measures the shared-geometry pass
    against.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    dice: List[ChipDieYield] = []
    for site in _canonical_sites(wafer):
        mc = ChipMonteCarlo(
            chip.placement,
            pitch=chip.pitch.with_mean(site.mean_pitch_nm),
            type_model=chip.type_model,
            row_height_nm=chip.row_height_nm,
            small_width_threshold_nm=chip.small_width_threshold_nm,
            backend=chip.backend,
            min_working_tubes=chip.min_working_tubes,
        )
        result = mc.run(n_trials, chip_die_stream(seed_key, site))
        dice.append(ChipDieYield(
            column=site.column,
            row=site.row,
            x_mm=site.x_mm,
            y_mm=site.y_mm,
            mean_pitch_nm=site.mean_pitch_nm,
            misalignment_deg=float(site.misalignment_deg),
            n_trials=int(result.n_trials),
            chip_yield=result.chip_yield,
            mean_failing_devices=result.mean_failing_devices,
            std_failing_devices=result.std_failing_devices,
            mean_failing_rows=result.mean_failing_rows,
            device_failure_rate=result.device_failure_rate,
            widths_nm=(),
            device_counts=(),
            class_failure_probabilities=(),
            class_failure_standard_errors=(),
            eq23_chip_yield=float("nan"),
            eq23_chip_yield_se=float("nan"),
        ))
    return ChipWaferResult(
        wafer_diameter_mm=wafer.wafer_diameter_mm,
        die_size_mm=wafer.die_size_mm,
        device_count=chip.device_count,
        small_device_count=chip.small_device_count,
        n_trials=int(n_trials),
        good_die_threshold=float(good_die_threshold),
        widths_nm=(),
        device_counts=(),
        dice=tuple(dice),
    )
