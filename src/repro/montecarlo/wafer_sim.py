"""Wafer-level batched Monte Carlo: every die of a wafer in one stacked pass.

:mod:`repro.growth.wafer` models die-to-die growth variation — each die of
a :class:`~repro.growth.wafer.WaferMap` carries its own mean CNT pitch —
which makes every die a *distinct* simulation: a different gap law, hence
a different renewal process, hence a separate Monte Carlo run.  Looping
the single-die estimator over a wafer wastes most of its time on per-die
overheads and on the engine's conservative 8-sigma gap budget.  This
module simulates the whole wafer as one stacked 3D array program
(die × trial × track):

* every die's trials are drawn from a *spawn-keyed stream* derived from
  the die's grid coordinates (:func:`die_stream`) — never from the die's
  position in a loop — so per-die results are bitwise independent of die
  ordering, of how dies are grouped into batches, and of ``n_workers``;
* per-die gap budgets carry a tight 2-sigma margin instead of the
  engine's 8-sigma one; the rare trials whose budget does not clear the
  widest window are *topped up exactly* from the same die stream;
* window counts are answered by a two-level blocked scan
  (:func:`_blocked_count_leq`): block sums + a block-prefix ``cumsum``
  locate each trial's crossing block, and a gather + short inner
  ``cumsum`` refines it — O(tracks / BLOCK) prefix work instead of a
  dense cumulative sum over every gap, and no banded ``searchsorted``;
* all device-width classes of a die are answered from the *same* sampled
  tracks (they physically share them — the paper's correlation insight),
  where the per-die loop must re-sample per width.

Per die the estimator is the Rao-Blackwellised conditional
``pf ** N(W)`` of :mod:`repro.montecarlo.device_sim`; per-die chip yield
is assembled through the Eq. 2.3 product over width classes with a full
delta-method covariance (the width classes share tracks, so their
estimates are correlated — the covariance keeps the reported standard
error honest).  Aggregates are computed in canonical die order
(sorted by grid coordinates), so they too are order-invariant.

The retained per-die reference path (:func:`per_die_loop`) drives
:class:`~repro.montecarlo.device_sim.DeviceMonteCarlo` die by die and
width by width; it is the statistical oracle for the equivalence tests
and the baseline for ``benchmarks/bench_wafer.py``.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import ArrayBackend, default_backend
from repro.growth.pitch import PitchDistribution
from repro.growth.types import CNTTypeModel
from repro.growth.wafer import DieSite, WaferMap
from repro.montecarlo.engine import DEFAULT_BATCH_ELEMENTS
from repro.units import ensure_positive

__all__ = [
    "DieYieldEstimate",
    "WaferYieldResult",
    "die_stream",
    "simulate_die",
    "simulate_wafer",
    "per_die_loop",
]

#: Domain-separation tag mixed into every die stream's spawn key, so wafer
#: streams can never collide with the engine's chunk streams or the
#: surface sweep's grid streams under a shared root seed.
DIE_STREAM_TAG = 0x57A6ED

#: Tracks per block of the two-level count scan.  8 keeps the inner refine
#: cumsum tiny while cutting the prefix work 8x versus a dense cumsum.
BLOCK = 8


def die_stream(seed_key: Sequence[int], site: DieSite) -> np.random.Generator:
    """The RNG stream owned by one die under a wafer-run seed key.

    Keyed by the die's *grid coordinates*, not its index in any
    particular ordering — this is what makes wafer results invariant to
    die ordering and to how dies are batched across workers.
    """
    return np.random.default_rng(
        [int(part) for part in seed_key]
        + [DIE_STREAM_TAG, int(site.column), int(site.row)]
    )


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DieYieldEstimate:
    """Monte Carlo yield estimate of one die at its local growth statistics."""

    column: int
    row: int
    x_mm: float
    y_mm: float
    mean_pitch_nm: float
    n_trials: int
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    failure_probabilities: Tuple[float, ...]
    failure_standard_errors: Tuple[float, ...]
    chip_yield: float
    chip_yield_se: float

    @property
    def radius_mm(self) -> float:
        """Distance of the die centre from the wafer centre."""
        return math.hypot(self.x_mm, self.y_mm)

    @property
    def cnt_density_per_um(self) -> float:
        """Local CNT density implied by the die's mean pitch."""
        return 1.0e3 / self.mean_pitch_nm


@dataclass(frozen=True)
class WaferYieldResult:
    """Per-die and wafer-aggregate outcome of one wafer simulation.

    ``dice`` is sorted canonically by (column, row); every aggregate is
    computed over that order, so results are bitwise invariant to the
    ordering of the input :class:`~repro.growth.wafer.WaferMap` sites.
    """

    wafer_diameter_mm: float
    die_size_mm: float
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    n_trials: int
    good_die_threshold: float
    dice: Tuple[DieYieldEstimate, ...]

    @property
    def die_count(self) -> int:
        return len(self.dice)

    def die_yields(self) -> np.ndarray:
        """Chip yield per die, canonical order."""
        return np.array([d.chip_yield for d in self.dice])

    @property
    def mean_chip_yield(self) -> float:
        """Wafer-average chip yield (the expected per-die yield)."""
        return float(np.mean(self.die_yields())) if self.dice else float("nan")

    @property
    def good_die_fraction(self) -> float:
        """Fraction of dies whose yield estimate clears the threshold."""
        if not self.dice:
            return 0.0
        return float(np.mean(self.die_yields() >= self.good_die_threshold))

    @property
    def expected_good_dice(self) -> float:
        """Expected number of good dies on the wafer, Σ_die yield_die."""
        return float(np.sum(self.die_yields()))


# ----------------------------------------------------------------------
# The stacked kernel
# ----------------------------------------------------------------------


def _tight_gap_budget(pitch: PitchDistribution, span_nm: float) -> int:
    """Initial gaps per trial: 2-sigma renewal margin, rounded to blocks.

    Deliberately tighter than the engine's 8-sigma
    :func:`~repro.montecarlo.engine.estimate_gap_count`: the stacked pass
    tops up the few uncleared trials exactly, so the budget only has to
    make top-ups *uncommon*, not negligible.
    """
    mean = pitch.mean_nm
    n_mean = (span_nm + mean) / mean
    cv = pitch.std_nm / mean if mean > 0 else 0.0
    n0 = int(n_mean + 2.0 * cv * math.sqrt(n_mean + 1.0)) + 4
    return BLOCK * (-(-n0 // BLOCK))


def _blocked_count_leq(g3, prefix, bounds, xp: ArrayBackend):
    """Per-row count of renewal positions ``<= bound`` via a two-level scan.

    ``g3`` is the gap cube reshaped ``(rows, K, BLOCK)``, ``prefix`` the
    inclusive block-prefix sums ``(rows, K)``, ``bounds`` one bound per
    row.  The crossing block of each row is located on the block prefix,
    then refined with a gather and a BLOCK-wide inner cumsum.  The count
    is exact for the blockwise-evaluated positions (track ``t`` of block
    ``j`` sits at ``prefix[j-1] + inner_cumsum``), including rows whose
    whole budget lies below the bound (returns the full slot count) and
    rows padded with ``inf`` (padding never counts).
    """
    n_blocks = prefix.shape[1]
    if not xp.any(prefix[:, 0] <= bounds):
        # Every bound sits inside the first block (true for the renewal
        # convention's lower bounds, which live below one mean pitch):
        # no crossing-block search, no gather — same result bitwise.
        inner = xp.cumsum(g3[:, 0], axis=1)
        return xp.sum(inner <= bounds[:, None], axis=1)
    below = prefix <= bounds[:, None]
    m = xp.clip(xp.sum(below, axis=1), 0, n_blocks - 1)
    rows = xp.arange(prefix.shape[0])
    start = xp.where(
        m > 0, xp.take_pairs(prefix, rows, xp.clip(m - 1, 0, n_blocks - 1)), 0.0
    )
    inner = xp.cumsum(xp.take_pairs(g3, rows, m), axis=1)
    return m * BLOCK + xp.sum(inner <= (bounds - start)[:, None], axis=1)


@dataclass(frozen=True)
class _WaferPayload:
    """Picklable spec of a wafer run, shared by every die group."""

    pitch: PitchDistribution
    per_cnt_failure: float
    widths_nm: Tuple[float, ...]
    device_counts: Tuple[float, ...]
    n_trials: int
    seed_key: Tuple[int, ...]
    backend: Optional[ArrayBackend] = None


def _simulate_die_group(
    payload: _WaferPayload, sites: Sequence[DieSite]
) -> List[DieYieldEstimate]:
    """Simulate one group of dies as a single stacked (die·trial, track) pass.

    Per die only the draws (offsets, gaps, rare exact top-ups) touch the
    Python level; block prefixes and the per-width counts run once over
    the whole stack.  Every per-die quantity depends only on that die's
    own stream and budget, so group composition cannot change results.
    """
    xp = payload.backend if payload.backend is not None else default_backend()
    n_trials = payload.n_trials
    widths = payload.widths_nm
    w_max = max(widths)
    n_dies = len(sites)

    pitches = [payload.pitch.with_mean(site.mean_pitch_nm) for site in sites]
    budgets = [_tight_gap_budget(p, w_max) for p in pitches]
    s_max = max(budgets)
    n_rows = n_dies * n_trials

    gaps = xp.empty((n_rows, s_max))
    lo = xp.zeros(n_rows)
    streams = []
    for i, (site, pitch) in enumerate(zip(sites, pitches)):
        rng = die_stream(payload.seed_key, site)
        rows = slice(i * n_trials, (i + 1) * n_trials)
        lo[rows] = xp.uniform(rng, n_trials) * pitch.mean_nm
        if budgets[i] == s_max:
            # Contiguous destination: the backend may draw straight into
            # the stack without an intermediate allocation.
            view = gaps[rows]
            drawn = xp.sample_gaps(pitch, (n_trials, s_max), rng, out=view)
            if drawn is not view:
                gaps[rows] = drawn
        else:
            gaps[rows, : budgets[i]] = xp.sample_gaps(
                pitch, (n_trials, budgets[i]), rng
            )
            # Padding slots never count: +inf sits above every bound.
            gaps[rows, budgets[i]:] = np.inf
        streams.append(rng)

    g3 = xp.reshape(gaps, (n_rows, s_max // BLOCK, BLOCK))
    # Block sums as a matvec with ones: same reduction, ~3x faster than a
    # short-axis ``sum`` (NumPy's reduce is slow on 8-wide inner loops).
    prefix = xp.cumsum(g3 @ xp.full((BLOCK,), 1.0), axis=1)

    n_lo = xp.to_numpy(_blocked_count_leq(g3, prefix, lo, xp))
    n_hi = np.empty((len(widths), n_rows), dtype=np.int64)
    for q, width in enumerate(widths):
        n_hi[q] = xp.to_numpy(
            _blocked_count_leq(g3, prefix, lo + width, xp)
        )

    # Exact top-up: trials whose budget did not clear their widest window
    # continue drawing BLOCK-wide chunks from their own die stream.  Extra
    # tracks sit strictly above the die's cleared total, so adding
    # ``#(extra <= hi_q) - #(extra <= lo)`` is a no-op for every window
    # the main budget already cleared.
    lo_np = xp.to_numpy(lo).astype(float)
    for i, site in enumerate(sites):
        rows = slice(i * n_trials, (i + 1) * n_trials)
        k_i = budgets[i] // BLOCK
        total = xp.to_numpy(prefix[rows, k_i - 1]).astype(float)
        hi_max = lo_np[rows] + w_max
        alive = np.flatnonzero(total <= hi_max)
        run = total[alive]
        while alive.size:
            extra = np.cumsum(
                xp.to_numpy(
                    xp.sample_gaps(pitches[i], (alive.size, BLOCK), streams[i])
                ).astype(float),
                axis=1,
            ) + run[:, None]
            sel = i * n_trials + alive
            for q, width in enumerate(widths):
                n_hi[q, sel] += (
                    extra <= (lo_np[sel] + width)[:, None]
                ).sum(axis=1)
            n_lo[sel] += (extra <= lo_np[sel][:, None]).sum(axis=1)
            run = extra[:, -1]
            keep = run <= hi_max[alive]
            alive = alive[keep]
            run = run[keep]

    counts = (n_hi - n_lo[None, :]).reshape(len(widths), n_dies, n_trials)
    values = np.power(payload.per_cnt_failure, counts.astype(float))
    return _assemble_group(sites, values, payload)


def _assemble_group(
    sites: Sequence[DieSite], values: np.ndarray, payload: _WaferPayload
) -> List[DieYieldEstimate]:
    """Fold per-trial ``pf ** N`` values, shape (widths, dies, trials), into
    per-die yield estimates.

    The width classes share tracks, so their pF estimates are correlated;
    the Eq. 2.3 chip-yield standard error therefore uses the full
    delta-method covariance of the per-width means instead of treating
    them as independent.  All statistics are batched over the die axis
    (per-(width, die) reductions run over each die's own contiguous trial
    slice, so a group's estimates match a single-die run bit for bit).
    """
    n_widths, n_dies, n_trials = values.shape
    p = values.mean(axis=2)  # (Q, D)
    if n_trials > 1:
        centred = values - p[:, :, None]
        # (D, Q, T) @ (D, T, Q) -> per-die covariance of the means.
        cov = (
            np.matmul(centred.transpose(1, 0, 2), centred.transpose(1, 2, 0))
            / (n_trials - 1) / n_trials
        )
    else:
        cov = np.zeros((n_dies, n_widths, n_widths))
    se = np.sqrt(np.diagonal(cov, axis1=1, axis2=2)).T  # (Q, D)
    counts_q = np.asarray(payload.device_counts, dtype=float)
    survive = 1.0 - np.clip(p, 0.0, 1.0)
    ok = np.all(survive > 0.0, axis=0)
    with np.errstate(divide="ignore"):
        chip_yield = np.where(
            ok, np.exp(np.sum(counts_q[:, None] * np.log(
                np.where(survive > 0.0, survive, 1.0)), axis=0)), 0.0
        )
    grad = counts_q[:, None] / np.where(survive > 0.0, survive, 1.0)  # (Q, D)
    # Quadratic form Σ_qr grad_q · cov_qr · grad_r in a fixed accumulation
    # order: einsum picks different contraction paths for different die
    # counts, which would break the bitwise group-vs-single-die contract
    # by an ulp.
    var = np.zeros(n_dies)
    for qi in range(n_widths):
        for ri in range(n_widths):
            var += grad[qi] * cov[:, qi, ri] * grad[ri]
    chip_yield_se = np.where(
        ok, chip_yield * np.sqrt(np.maximum(var, 0.0)), np.inf
    )
    return [
        DieYieldEstimate(
            column=site.column,
            row=site.row,
            x_mm=site.x_mm,
            y_mm=site.y_mm,
            mean_pitch_nm=site.mean_pitch_nm,
            n_trials=int(n_trials),
            widths_nm=payload.widths_nm,
            device_counts=payload.device_counts,
            failure_probabilities=tuple(float(x) for x in p[:, i]),
            failure_standard_errors=tuple(float(x) for x in se[:, i]),
            chip_yield=float(chip_yield[i]),
            chip_yield_se=float(chip_yield_se[i]),
        )
        for i, site in enumerate(sites)
    ]


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _normalise_classes(widths_nm, device_counts) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    widths = np.atleast_1d(np.asarray(widths_nm, dtype=float))
    if widths.size == 0:
        raise ValueError("widths_nm must contain at least one width")
    for w in widths:
        ensure_positive(float(w), "widths_nm")
    if device_counts is None:
        counts = np.ones_like(widths)
    else:
        counts = np.atleast_1d(np.asarray(device_counts, dtype=float))
        if counts.shape != widths.shape:
            raise ValueError(
                f"device_counts shape {counts.shape} does not match "
                f"widths shape {widths.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("device_counts must be non-negative")
    return tuple(float(w) for w in widths), tuple(float(c) for c in counts)


def _canonical_sites(wafer: WaferMap) -> List[DieSite]:
    return sorted(wafer.sites, key=lambda s: (s.column, s.row))


#: Minimum number of die groups a wafer run is split into (when it has
#: that many dies), so process pools up to this size always receive work.
#: A constant — never the worker count — which, together with per-die
#: streams, keeps results bitwise independent of ``n_workers``.
DEFAULT_PARALLEL_GRAIN = 8


def _dies_per_group(n_dies: int, payload: _WaferPayload, s_max_hint: int) -> int:
    """Dies per stacked pass: element-budget bounded, grain-split."""
    per_die = max(1, payload.n_trials * s_max_hint)
    budget = max(1, DEFAULT_BATCH_ELEMENTS // per_die)
    spread = -(-n_dies // DEFAULT_PARALLEL_GRAIN)
    return max(1, min(budget, spread))


def simulate_die(
    site: DieSite,
    pitch: PitchDistribution,
    type_model: CNTTypeModel,
    widths_nm,
    device_counts=None,
    n_trials: int = 1024,
    seed_key: Sequence[int] = (20100616,),
    backend: Optional[ArrayBackend] = None,
) -> DieYieldEstimate:
    """Simulate one die independently — the per-die reference of the runner.

    Runs the *same* stacked kernel on a single die with the same
    spawn-keyed stream, so a die's estimate here is bitwise identical to
    its estimate inside any :func:`simulate_wafer` run sharing the seed
    key (the wafer-combination property tests pin this).
    """
    widths, counts = _normalise_classes(widths_nm, device_counts)
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    payload = _WaferPayload(
        pitch=pitch,
        per_cnt_failure=type_model.per_cnt_failure_probability,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
        backend=backend,
    )
    return _simulate_die_group(payload, [site])[0]


def simulate_wafer(
    wafer: WaferMap,
    pitch: PitchDistribution,
    type_model: CNTTypeModel,
    widths_nm,
    device_counts=None,
    n_trials: int = 1024,
    seed_key: Sequence[int] = (20100616,),
    good_die_threshold: float = 0.5,
    n_workers: int = 1,
    backend: Optional[ArrayBackend] = None,
) -> WaferYieldResult:
    """Simulate every die of ``wafer`` in stacked (die × trial × track) passes.

    Parameters
    ----------
    wafer:
        Die map with per-die growth statistics; each die's gap law is
        ``pitch.with_mean(site.mean_pitch_nm)`` (same family and CV,
        rescaled to the local density).
    type_model:
        Metallic/semiconducting and removal statistics (fixes the per-CNT
        failure probability of the conditional estimator).
    widths_nm, device_counts:
        Device-width classes evaluated per die and how many devices of
        each class a die carries; all classes are answered from the same
        sampled tracks.  ``device_counts=None`` means one device per
        class.
    n_trials:
        Renewal trials per die (each trial grows one shared track set).
    seed_key:
        Root spawn key; die streams derive from it and the die's grid
        coordinates, so per-die results are reproducible and independent
        of ordering, grouping and ``n_workers``.
    n_workers:
        Processes to spread die groups over (groups are element-budget
        bounded either way; results are bitwise identical for any value).
    backend:
        Array backend for the stacked passes (``None`` = environment
        default).
    """
    widths, counts = _normalise_classes(widths_nm, device_counts)
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if not 0.0 <= good_die_threshold <= 1.0:
        raise ValueError("good_die_threshold must lie in [0, 1]")
    payload = _WaferPayload(
        pitch=pitch,
        per_cnt_failure=type_model.per_cnt_failure_probability,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
        backend=backend,
    )
    sites = _canonical_sites(wafer)
    dice: List[DieYieldEstimate] = []
    if sites:
        s_max_hint = max(
            _tight_gap_budget(pitch.with_mean(s.mean_pitch_nm), max(widths))
            for s in sites
        )
        group = _dies_per_group(len(sites), payload, s_max_hint)
        groups = [sites[i:i + group] for i in range(0, len(sites), group)]
        if n_workers == 1 or len(groups) == 1:
            for g in groups:
                dice.extend(_simulate_die_group(payload, g))
        else:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(groups))
            ) as pool:
                futures = [
                    pool.submit(_simulate_die_group, payload, g) for g in groups
                ]
                for future in futures:
                    dice.extend(future.result())
    return WaferYieldResult(
        wafer_diameter_mm=wafer.wafer_diameter_mm,
        die_size_mm=wafer.die_size_mm,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        good_die_threshold=float(good_die_threshold),
        dice=tuple(dice),
    )


def per_die_loop(
    wafer: WaferMap,
    pitch: PitchDistribution,
    type_model: CNTTypeModel,
    widths_nm,
    device_counts=None,
    n_trials: int = 1024,
    seed_key: Sequence[int] = (20100616,),
    good_die_threshold: float = 0.5,
) -> WaferYieldResult:
    """Reference wafer evaluation: the pre-stacked die-by-die loop.

    Drives :class:`~repro.montecarlo.device_sim.DeviceMonteCarlo` once per
    (die, width class) — fresh tracks per width, engine gap budget, per-die
    Python overhead.  Statistically equivalent to :func:`simulate_wafer`
    at equal ``n_trials`` (the equivalence tests pin that down) and the
    baseline that ``benchmarks/bench_wafer.py`` measures the stacked pass
    against.  Per-width streams extend the die spawn key with the class
    index, so this path is deterministic and order-invariant too.
    """
    from repro.montecarlo.device_sim import DeviceMonteCarlo

    widths, counts = _normalise_classes(widths_nm, device_counts)
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    payload = _WaferPayload(
        pitch=pitch,
        per_cnt_failure=type_model.per_cnt_failure_probability,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        seed_key=tuple(int(part) for part in seed_key),
    )
    dice: List[DieYieldEstimate] = []
    for site in _canonical_sites(wafer):
        die_pitch = pitch.with_mean(site.mean_pitch_nm)
        mc = DeviceMonteCarlo(pitch=die_pitch, type_model=type_model)
        p = np.empty(len(widths))
        se = np.empty(len(widths))
        for q, width in enumerate(widths):
            stream = np.random.default_rng(
                list(payload.seed_key)
                + [DIE_STREAM_TAG, int(site.column), int(site.row), q]
            )
            result = mc.estimate_conditional(width, n_trials, stream)
            p[q] = result.failure_probability
            se[q] = result.standard_error
        counts_q = np.asarray(counts, dtype=float)
        survive = 1.0 - np.clip(p, 0.0, 1.0)
        if np.all(survive > 0.0):
            chip_yield = float(np.exp(np.sum(counts_q * np.log(survive))))
            chip_yield_se = chip_yield * float(
                np.sqrt(np.sum((counts_q * se / survive) ** 2))
            )
        else:
            chip_yield, chip_yield_se = 0.0, float("inf")
        dice.append(DieYieldEstimate(
            column=site.column,
            row=site.row,
            x_mm=site.x_mm,
            y_mm=site.y_mm,
            mean_pitch_nm=site.mean_pitch_nm,
            n_trials=int(n_trials),
            widths_nm=widths,
            device_counts=counts,
            failure_probabilities=tuple(float(x) for x in p),
            failure_standard_errors=tuple(float(x) for x in se),
            chip_yield=chip_yield,
            chip_yield_se=chip_yield_se,
        ))
    return WaferYieldResult(
        wafer_diameter_mm=wafer.wafer_diameter_mm,
        die_size_mm=wafer.die_size_mm,
        widths_nm=widths,
        device_counts=counts,
        n_trials=int(n_trials),
        good_die_threshold=float(good_die_threshold),
        dice=tuple(dice),
    )
