"""Circuit / netlist substrate.

The chip-level analyses of the paper consume a handful of design-level
quantities: the transistor-width histogram of a synthesized design, the
total transistor count, the number of minimum-size devices, and the linear
density of small CNFETs along placement rows.  This package provides:

* :mod:`repro.netlist.design` — gate instances, concrete designs
  (instantiated netlists) and statistical designs (width histograms scaled
  to arbitrary transistor counts).
* :mod:`repro.netlist.synthesis` — a small load-driven sizing pass that maps
  a technology-independent gate network onto library drive strengths.
* :mod:`repro.netlist.openrisc` — a synthetic OpenRISC-like processor-core
  generator and the statistical width distribution of Fig. 2.2a.
* :mod:`repro.netlist.placement` — row-based placement and the extraction of
  the small-CNFET density Pmin-CNFET used by Eq. 3.2.
* :mod:`repro.netlist.verilog` — structural Verilog-style netlist emission
  and parsing for the synthetic designs.
"""

from repro.netlist.design import (
    CellInstance,
    Design,
    StatisticalDesign,
    WidthHistogram,
)
from repro.netlist.synthesis import GateNetwork, LogicalGate, SizingPass
from repro.netlist.openrisc import (
    build_openrisc_like_design,
    openrisc_width_histogram,
    OPENRISC_WIDTH_BINS_NM,
    OPENRISC_WIDTH_FRACTIONS,
)
from repro.netlist.placement import PlacementRow, RowPlacement, PlacementStatistics
from repro.netlist.verilog import (
    export_structural_netlist,
    parse_structural_netlist,
)

__all__ = [
    "CellInstance",
    "Design",
    "StatisticalDesign",
    "WidthHistogram",
    "GateNetwork",
    "LogicalGate",
    "SizingPass",
    "build_openrisc_like_design",
    "openrisc_width_histogram",
    "OPENRISC_WIDTH_BINS_NM",
    "OPENRISC_WIDTH_FRACTIONS",
    "PlacementRow",
    "RowPlacement",
    "PlacementStatistics",
    "export_structural_netlist",
    "parse_structural_netlist",
]
