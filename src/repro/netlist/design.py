"""Designs: concrete netlists and statistical width populations.

Two complementary representations are provided:

:class:`Design`
    A concrete netlist of standard-cell instances, each referring to a cell
    of a :class:`~repro.cells.library.CellLibrary`.  Used for the synthetic
    OpenRISC-like core, for placement (Pmin-CNFET extraction) and for the
    Monte Carlo chip simulation of small blocks.

:class:`StatisticalDesign`
    A width histogram plus a total transistor count, the form in which the
    paper reasons about a 100-million-transistor chip without materialising
    every device.  It can be produced from a concrete design
    (``Design.to_statistical(scaled_to=...)``) or defined directly from
    published histogram data (Fig. 2.2a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.cell import StandardCell
from repro.cells.library import CellLibrary
from repro.device.active_region import Polarity
from repro.units import ensure_positive


@dataclass(frozen=True)
class CellInstance:
    """One placed-or-unplaced instance of a library cell."""

    name: str
    cell_name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("instance name must be non-empty")
        if not self.cell_name:
            raise ValueError("cell name must be non-empty")


@dataclass(frozen=True)
class WidthHistogram:
    """A transistor-width histogram: bin centres, counts and helpers."""

    bin_centers_nm: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        centers = np.asarray(self.bin_centers_nm, dtype=float)
        counts = np.asarray(self.counts, dtype=float)
        if centers.shape != counts.shape:
            raise ValueError("bin_centers_nm and counts must have the same shape")
        if centers.size == 0:
            raise ValueError("histogram must have at least one bin")
        if np.any(centers <= 0):
            raise ValueError("bin centres must be strictly positive")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        object.__setattr__(self, "bin_centers_nm", centers)
        object.__setattr__(self, "counts", counts)

    @property
    def total_count(self) -> float:
        """Total number of devices in the histogram."""
        return float(np.sum(self.counts))

    @property
    def fractions(self) -> np.ndarray:
        """Per-bin fraction of devices."""
        total = self.total_count
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / total

    def fraction_below(self, width_nm: float) -> float:
        """Fraction of devices with width ≤ ``width_nm``."""
        mask = self.bin_centers_nm <= width_nm
        return float(np.sum(self.fractions[mask]))

    def count_below(self, width_nm: float) -> float:
        """Number of devices with width ≤ ``width_nm``."""
        mask = self.bin_centers_nm <= width_nm
        return float(np.sum(self.counts[mask]))

    def mean_width_nm(self) -> float:
        """Device-count-weighted mean width."""
        total = self.total_count
        if total == 0:
            raise ValueError("histogram is empty")
        return float(np.sum(self.bin_centers_nm * self.counts) / total)

    def scaled_counts(self, total_count: float) -> "WidthHistogram":
        """Same shape, rescaled so the counts sum to ``total_count``."""
        ensure_positive(total_count, "total_count")
        return WidthHistogram(
            bin_centers_nm=self.bin_centers_nm.copy(),
            counts=self.fractions * total_count,
        )


class Design:
    """A concrete netlist of standard-cell instances.

    Parameters
    ----------
    name:
        Design name.
    library:
        The standard-cell library the instances refer to.
    instances:
        Optional initial instance list.
    """

    def __init__(
        self,
        name: str,
        library: CellLibrary,
        instances: Optional[Iterable[CellInstance]] = None,
    ) -> None:
        self.name = name
        self.library = library
        self._instances: List[CellInstance] = []
        self._instance_names: set = set()
        for instance in instances or ():
            self.add_instance(instance)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_instance(self, instance: CellInstance) -> None:
        """Add an instance, validating the cell exists and the name is unique."""
        if instance.name in self._instance_names:
            raise ValueError(f"duplicate instance name {instance.name!r}")
        if instance.cell_name not in self.library:
            raise KeyError(
                f"instance {instance.name!r} refers to unknown cell "
                f"{instance.cell_name!r}"
            )
        self._instances.append(instance)
        self._instance_names.add(instance.name)

    def add(self, instance_name: str, cell_name: str) -> CellInstance:
        """Create and add an instance in one call."""
        instance = CellInstance(name=instance_name, cell_name=cell_name)
        self.add_instance(instance)
        return instance

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def instances(self) -> Sequence[CellInstance]:
        """All instances in insertion order."""
        return tuple(self._instances)

    @property
    def instance_count(self) -> int:
        """Number of cell instances."""
        return len(self._instances)

    def cell_of(self, instance: CellInstance) -> StandardCell:
        """The library cell an instance refers to."""
        return self.library.get(instance.cell_name)

    def instance_counts_by_cell(self) -> Dict[str, int]:
        """Histogram of instances per library cell."""
        counts: Dict[str, int] = {}
        for instance in self._instances:
            counts[instance.cell_name] = counts.get(instance.cell_name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Transistor statistics
    # ------------------------------------------------------------------

    def transistor_widths_nm(
        self, polarity: Optional[Polarity] = None
    ) -> np.ndarray:
        """Widths of every transistor in the design (instance-weighted)."""
        widths: List[float] = []
        cell_cache: Dict[str, List[float]] = {}
        for instance in self._instances:
            cached = cell_cache.get(instance.cell_name)
            if cached is None:
                cell = self.cell_of(instance)
                cached = cell.transistor_widths_nm(polarity)
                cell_cache[instance.cell_name] = cached
            widths.extend(cached)
        return np.asarray(widths, dtype=float)

    @property
    def transistor_count(self) -> int:
        """Total number of transistors across all instances."""
        return int(self.transistor_widths_nm().size)

    def width_histogram(self, bin_width_nm: float = 80.0) -> WidthHistogram:
        """Histogram of transistor widths on a regular grid of bins.

        Bins are centred on multiples of ``bin_width_nm`` (80, 160, 240, ...),
        matching the binning of Fig. 2.2a.
        """
        ensure_positive(bin_width_nm, "bin_width_nm")
        widths = self.transistor_widths_nm()
        if widths.size == 0:
            raise ValueError(f"design {self.name} has no transistors")
        bin_indices = np.maximum(np.round(widths / bin_width_nm).astype(int), 1)
        max_bin = int(bin_indices.max())
        counts = np.bincount(bin_indices, minlength=max_bin + 1)[1:]
        centers = bin_width_nm * np.arange(1, max_bin + 1)
        keep = counts > 0
        # Keep empty interior bins out of the histogram but preserve order.
        return WidthHistogram(bin_centers_nm=centers[keep], counts=counts[keep])

    def to_statistical(
        self,
        scaled_to: Optional[float] = None,
        bin_width_nm: float = 80.0,
    ) -> "StatisticalDesign":
        """Convert to a :class:`StatisticalDesign`, optionally rescaled.

        ``scaled_to`` is the transistor count of the target chip (the paper
        scales an OpenRISC-core histogram up to M = 1e8 devices).
        """
        histogram = self.width_histogram(bin_width_nm)
        total = scaled_to if scaled_to is not None else histogram.total_count
        return StatisticalDesign(
            name=self.name if scaled_to is None else f"{self.name}_scaled",
            histogram=histogram.scaled_counts(total),
        )


@dataclass(frozen=True)
class StatisticalDesign:
    """A design described only by its transistor-width histogram.

    This is the representation consumed by the chip-level yield and penalty
    analyses (Eq. 2.3–2.5, Fig. 2.2b, Fig. 3.3).
    """

    name: str
    histogram: WidthHistogram
    min_size_bin_count: int = 2
    """Number of smallest bins treated as "minimum size" when estimating
    Mmin, following the paper's two-left-most-bins rule."""

    @property
    def transistor_count(self) -> float:
        """Total transistor count M."""
        return self.histogram.total_count

    @property
    def widths_nm(self) -> np.ndarray:
        """Histogram bin centres."""
        return self.histogram.bin_centers_nm

    @property
    def counts(self) -> np.ndarray:
        """Histogram bin counts."""
        return self.histogram.counts

    @property
    def min_size_device_count(self) -> float:
        """Mmin — devices in the smallest ``min_size_bin_count`` bins."""
        order = np.argsort(self.widths_nm)
        smallest = order[: self.min_size_bin_count]
        return float(np.sum(self.counts[smallest]))

    @property
    def min_size_fraction(self) -> float:
        """Mmin / M."""
        total = self.transistor_count
        if total == 0:
            return 0.0
        return self.min_size_device_count / total

    def scaled_to(self, transistor_count: float) -> "StatisticalDesign":
        """Same width distribution rescaled to another chip size."""
        return StatisticalDesign(
            name=f"{self.name}_scaled",
            histogram=self.histogram.scaled_counts(transistor_count),
            min_size_bin_count=self.min_size_bin_count,
        )
