"""Synthetic OpenRISC-like processor core and the Fig. 2.2a width histogram.

The paper's case study extracts the transistor-width distribution from an
OpenRISC core (cache excluded) synthesized with the Nangate 45 nm library
modified for CNFETs.  Neither the synthesized gate-level netlist nor the
commercial synthesis flow is available, so this module provides two
substitutes that expose exactly the quantities the analysis consumes:

``openrisc_width_histogram()``
    A :class:`~repro.netlist.design.StatisticalDesign` with the published
    histogram *shape*: four 80 nm-wide bins centred at 80/160/240/320 nm with
    about a third of all devices in the two smallest bins (the paper's Mmin
    estimate), scalable to any chip-level transistor count.

``build_openrisc_like_design(...)``
    A concrete gate-level netlist produced by generating the functional
    blocks a small in-order RISC core contains (fetch, decode, register
    file, ALU, load/store, multiplier, exception/control logic), assigning
    fanouts from a Rent-style locality distribution and running the
    load-driven sizing pass of :mod:`repro.netlist.synthesis` against the
    synthetic Nangate-45-like library.  Its width histogram lands close to
    the statistical one, and it is small enough to feed placement and Monte
    Carlo experiments directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.cells.nangate45 import build_nangate45_library
from repro.netlist.design import Design, StatisticalDesign, WidthHistogram
from repro.netlist.synthesis import GateNetwork, LogicalGate, SizingPass
from repro.units import ensure_positive

#: Histogram bin centres of Fig. 2.2a (nm).
OPENRISC_WIDTH_BINS_NM: Tuple[float, ...] = (80.0, 160.0, 240.0, 320.0)

#: Per-bin device fractions.  The two smallest bins hold 33 % of all devices,
#: matching the paper's Mmin estimate; the remaining mass sits in the larger
#: bins with the monotonically increasing profile visible in Fig. 2.2a.
OPENRISC_WIDTH_FRACTIONS: Tuple[float, ...] = (0.13, 0.20, 0.30, 0.37)


def openrisc_width_histogram(
    transistor_count: float = 1.0e8,
    bins_nm: Sequence[float] = OPENRISC_WIDTH_BINS_NM,
    fractions: Sequence[float] = OPENRISC_WIDTH_FRACTIONS,
) -> StatisticalDesign:
    """The statistical OpenRISC width distribution scaled to a chip size.

    Parameters
    ----------
    transistor_count:
        Total transistor count M of the target chip (the paper uses 1e8).
    bins_nm, fractions:
        Histogram bin centres and device fractions; defaults reproduce the
        Fig. 2.2a profile.
    """
    ensure_positive(transistor_count, "transistor_count")
    bins = np.asarray(list(bins_nm), dtype=float)
    fracs = np.asarray(list(fractions), dtype=float)
    if bins.shape != fracs.shape:
        raise ValueError("bins_nm and fractions must have the same length")
    if np.any(fracs < 0):
        raise ValueError("fractions must be non-negative")
    total_fraction = fracs.sum()
    if not np.isclose(total_fraction, 1.0, atol=1e-9):
        raise ValueError(f"fractions must sum to 1, got {total_fraction}")
    histogram = WidthHistogram(
        bin_centers_nm=bins, counts=fracs * float(transistor_count)
    )
    return StatisticalDesign(name="openrisc_statistical", histogram=histogram)


# ---------------------------------------------------------------------------
# Concrete netlist generation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockProfile:
    """Gate-mix profile of one functional block of the core.

    ``gate_mix`` maps a library base function to its share of the block's
    combinational gates; ``register_bits`` is the number of flip-flops.
    """

    name: str
    combinational_gates: int
    register_bits: int
    gate_mix: Dict[str, float]


def _default_block_profiles(scale: float) -> List[BlockProfile]:
    """Functional blocks of a small in-order RISC core, scaled by ``scale``."""

    def gates(n: int) -> int:
        return max(int(round(n * scale)), 1)

    control_mix = {
        "NAND2": 0.22, "NOR2": 0.16, "INV": 0.20, "AOI21": 0.10,
        "OAI21": 0.08, "NAND3": 0.08, "NOR3": 0.06, "AOI22": 0.05,
        "OAI22": 0.05,
    }
    datapath_mix = {
        "NAND2": 0.18, "NOR2": 0.10, "INV": 0.16, "XOR2": 0.14,
        "XNOR2": 0.06, "AOI22": 0.08, "OAI22": 0.06, "MUX2": 0.12,
        "NAND3": 0.05, "AOI222": 0.03, "OAI222": 0.02,
    }
    mux_heavy_mix = {
        "MUX2": 0.34, "INV": 0.18, "NAND2": 0.16, "NOR2": 0.10,
        "AOI22": 0.08, "OAI22": 0.06, "BUF": 0.08,
    }
    adder_mix = {
        "FA": 0.20, "HA": 0.06, "XOR2": 0.22, "XNOR2": 0.08,
        "NAND2": 0.16, "NOR2": 0.10, "INV": 0.12, "AOI21": 0.06,
    }

    return [
        BlockProfile("ifetch", gates(900), int(96 * scale) + 32, control_mix),
        BlockProfile("decode", gates(1400), int(120 * scale) + 32, control_mix),
        BlockProfile("regfile", gates(2400), int(1024 * scale) + 64, mux_heavy_mix),
        BlockProfile("alu", gates(1800), int(64 * scale) + 32, adder_mix),
        BlockProfile("multiplier", gates(2600), int(128 * scale) + 64, adder_mix),
        BlockProfile("lsu", gates(1200), int(96 * scale) + 32, datapath_mix),
        BlockProfile("except_ctrl", gates(800), int(80 * scale) + 16, control_mix),
        BlockProfile("sprs", gates(700), int(160 * scale) + 16, mux_heavy_mix),
    ]


def _sample_fanout(rng: np.random.Generator) -> int:
    """Rent-style fanout: mostly 1–3, occasionally large (clock/reset-like)."""
    u = rng.random()
    if u < 0.55:
        return 1
    if u < 0.80:
        return 2
    if u < 0.92:
        return 3
    if u < 0.975:
        return int(rng.integers(4, 9))
    return int(rng.integers(9, 40))


def build_openrisc_like_design(
    library: Optional[CellLibrary] = None,
    scale: float = 1.0,
    seed: int = 2010,
    name: str = "openrisc_like",
) -> Design:
    """Generate the synthetic OpenRISC-like gate-level netlist.

    Parameters
    ----------
    library:
        Target library; defaults to the synthetic Nangate-45-like library.
    scale:
        Linear scale factor on the per-block gate budgets (1.0 ≈ a 12k-gate
        core, large enough for stable statistics yet fast to manipulate).
    seed:
        RNG seed controlling fanout assignment (and hence the drive mix).
    name:
        Design name.
    """
    ensure_positive(scale, "scale")
    library = library or build_nangate45_library()
    rng = np.random.default_rng(seed)
    sizing = SizingPass(library)
    available = set(sizing.available_functions())

    network = GateNetwork(name=name)
    for block in _default_block_profiles(scale):
        functions = [f for f in block.gate_mix if f in available]
        if not functions:
            raise RuntimeError(
                f"none of block {block.name}'s functions exist in library "
                f"{library.name}"
            )
        weights = np.array([block.gate_mix[f] for f in functions], dtype=float)
        weights = weights / weights.sum()
        choices = rng.choice(len(functions), size=block.combinational_gates, p=weights)
        for i, choice in enumerate(choices):
            network.add(
                LogicalGate(
                    name=f"{block.name}_g{i}",
                    function=functions[int(choice)],
                    fanout=_sample_fanout(rng),
                )
            )
        # Registers: a mix of plain, resettable and scan flip-flops.
        for i in range(block.register_bits):
            u = rng.random()
            if u < 0.55 and "DFF" in available:
                function = "DFF"
            elif u < 0.85 and "DFFR" in available:
                function = "DFFR"
            else:
                function = "SDFF" if "SDFF" in available else "DFF"
            network.add(
                LogicalGate(
                    name=f"{block.name}_r{i}",
                    function=function,
                    fanout=_sample_fanout(rng),
                    is_sequential=True,
                )
            )

    return sizing.run(network, design_name=name)
