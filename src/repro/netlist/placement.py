"""Row-based placement and extraction of the small-CNFET density Pmin-CNFET.

Equation 3.2 of the paper depends on a design-level quantity: the average
linear density of small-width CNFETs along a placement row (Pmin-CNFET,
1.8 FETs/µm for the OpenRISC case study).  That density is a property of
*placed* designs, so this module provides a simple but real placement
substrate:

* cells are packed greedily into fixed-height rows of a given width,
* each placed instance exposes the x-extents of its transistors' active
  regions,
* the :class:`PlacementStatistics` summary counts the minimum-size devices
  per row and per micrometre, the quantity fed into
  :class:`~repro.core.correlation.CorrelationParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.cell import StandardCell
from repro.netlist.design import CellInstance, Design
from repro.units import ensure_positive, per_nm_to_per_um


@dataclass(frozen=True)
class PlacedInstance:
    """A cell instance placed at a row-local x offset."""

    instance: CellInstance
    cell: StandardCell
    x_nm: float

    @property
    def x_end_nm(self) -> float:
        """Right edge of the placed cell."""
        return self.x_nm + self.cell.width_nm


@dataclass
class PlacementRow:
    """One placement row: fixed height, cells packed left to right."""

    index: int
    width_nm: float
    placed: List[PlacedInstance] = field(default_factory=list)
    used_nm: float = 0.0

    def fits(self, cell: StandardCell) -> bool:
        """Whether the cell still fits in the remaining row width."""
        return self.used_nm + cell.width_nm <= self.width_nm

    def place(self, instance: CellInstance, cell: StandardCell) -> PlacedInstance:
        """Place a cell at the current packing cursor."""
        if not self.fits(cell):
            raise ValueError(
                f"cell {cell.name} does not fit in row {self.index} "
                f"({self.used_nm + cell.width_nm:.0f} > {self.width_nm:.0f} nm)"
            )
        placed = PlacedInstance(instance=instance, cell=cell, x_nm=self.used_nm)
        self.placed.append(placed)
        self.used_nm += cell.width_nm
        return placed

    @property
    def utilisation(self) -> float:
        """Fraction of the row width occupied by cells."""
        return self.used_nm / self.width_nm

    def transistor_positions_nm(
        self, max_width_nm: Optional[float] = None
    ) -> np.ndarray:
        """x positions of (optionally only small) transistors in this row.

        Each transistor is located at the centre of its column inside its
        placed cell.  ``max_width_nm`` filters for small-width devices, which
        is how the Pmin-CNFET density is measured.
        """
        positions: List[float] = []
        for placed in self.placed:
            cell = placed.cell
            for t in cell.transistors:
                if max_width_nm is not None and t.width_nm > max_width_nm:
                    continue
                x = placed.x_nm + (t.column + 0.5) * cell.gate_pitch_nm
                positions.append(x)
        return np.asarray(positions, dtype=float)


@dataclass(frozen=True)
class PlacementStatistics:
    """Row-level statistics needed by the correlation model."""

    row_count: int
    row_width_nm: float
    mean_utilisation: float
    total_transistors: int
    small_transistors: int
    small_density_per_um: float
    small_width_threshold_nm: float

    @property
    def small_fraction(self) -> float:
        """Fraction of devices that are small-width."""
        if self.total_transistors == 0:
            return 0.0
        return self.small_transistors / self.total_transistors


class RowPlacement:
    """Greedy row packer for a :class:`~repro.netlist.design.Design`.

    Parameters
    ----------
    design:
        The design to place.
    row_width_nm:
        Width of each placement row.  The default (200 µm) matches the CNT
        length of the paper so one row corresponds to one correlation domain.
    utilisation_target:
        Fraction of each row the packer is allowed to fill (models routing
        whitespace); cells overflow to the next row beyond it.
    """

    def __init__(
        self,
        design: Design,
        row_width_nm: float = 200_000.0,
        utilisation_target: float = 0.85,
    ) -> None:
        self.design = design
        self.row_width_nm = ensure_positive(row_width_nm, "row_width_nm")
        if not 0.0 < utilisation_target <= 1.0:
            raise ValueError("utilisation_target must lie in (0, 1]")
        self.utilisation_target = float(utilisation_target)
        self._rows: Optional[List[PlacementRow]] = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def run(self) -> List[PlacementRow]:
        """Pack all instances into rows (cached after the first call)."""
        if self._rows is not None:
            return self._rows
        rows: List[PlacementRow] = []
        usable_width = self.row_width_nm * self.utilisation_target
        current = PlacementRow(index=0, width_nm=self.row_width_nm)
        rows.append(current)
        for instance in self.design.instances:
            cell = self.design.cell_of(instance)
            if cell.width_nm > usable_width:
                raise ValueError(
                    f"cell {cell.name} ({cell.width_nm:.0f} nm) is wider than a "
                    f"usable row ({usable_width:.0f} nm)"
                )
            if current.used_nm + cell.width_nm > usable_width:
                current = PlacementRow(index=len(rows), width_nm=self.row_width_nm)
                rows.append(current)
            current.place(instance, cell)
        self._rows = rows
        return rows

    @property
    def rows(self) -> Sequence[PlacementRow]:
        """The placement rows (runs the placer on first access)."""
        return tuple(self.run())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def statistics(self, small_width_threshold_nm: float = 160.0) -> PlacementStatistics:
        """Placement statistics, including the Pmin-CNFET density.

        Parameters
        ----------
        small_width_threshold_nm:
            Devices at or below this width count as "small" (the paper's
            minimum-size population; the default covers the two smallest
            histogram bins).
        """
        rows = self.run()
        total = 0
        small = 0
        occupied_length_nm = 0.0
        for row in rows:
            for placed in row.placed:
                widths = placed.cell.transistor_widths_nm()
                total += len(widths)
                small += sum(1 for w in widths if w <= small_width_threshold_nm)
            occupied_length_nm += row.used_nm
        density_per_nm = small / occupied_length_nm if occupied_length_nm > 0 else 0.0
        return PlacementStatistics(
            row_count=len(rows),
            row_width_nm=self.row_width_nm,
            mean_utilisation=float(np.mean([r.utilisation for r in rows])),
            total_transistors=total,
            small_transistors=small,
            small_density_per_um=per_nm_to_per_um(density_per_nm),
            small_width_threshold_nm=float(small_width_threshold_nm),
        )

    def small_device_density_per_um(
        self, small_width_threshold_nm: float = 160.0
    ) -> float:
        """Pmin-CNFET: small devices per µm of occupied row length."""
        return self.statistics(small_width_threshold_nm).small_density_per_um
