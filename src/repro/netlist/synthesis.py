"""A minimal load-driven sizing pass ("synthesis" substrate).

The paper's case study uses an OpenRISC core synthesized with a commercial
tool.  We cannot (and need not) reproduce a full synthesis flow; what the
yield analysis consumes is a *realistic drive-strength mix* — most gates at
small drives, a tail of larger drives on high-fanout nets — because that mix
determines the transistor-width histogram of Fig. 2.2a.

This module provides a tiny but real sizing pass:

* a :class:`GateNetwork` of technology-independent gates with fanout
  information,
* a :class:`SizingPass` that picks the smallest library drive strength whose
  drive capability covers the gate's load (fanout × a nominal input load),
  the classic load-per-drive heuristic used by quick synthesis estimates.

The OpenRISC-like generator in :mod:`repro.netlist.openrisc` builds gate
networks whose fanout distribution follows Rent-style locality, runs this
pass, and produces the concrete :class:`~repro.netlist.design.Design`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.design import CellInstance, Design
from repro.units import ensure_positive


@dataclass(frozen=True)
class LogicalGate:
    """A technology-independent gate awaiting technology mapping.

    Parameters
    ----------
    name:
        Instance name.
    function:
        Library base function name, e.g. ``"NAND2"`` or ``"DFFR"``.
    fanout:
        Number of gate inputs this gate drives.
    is_sequential:
        Whether the gate is a register (sized from a separate drive ladder).
    """

    name: str
    function: str
    fanout: int
    is_sequential: bool = False

    def __post_init__(self) -> None:
        if self.fanout < 0:
            raise ValueError(f"fanout must be non-negative, got {self.fanout}")


@dataclass
class GateNetwork:
    """A bag of logical gates with fanout statistics."""

    name: str
    gates: List[LogicalGate] = field(default_factory=list)

    def add(self, gate: LogicalGate) -> None:
        """Append a gate to the network."""
        self.gates.append(gate)

    @property
    def gate_count(self) -> int:
        """Number of gates."""
        return len(self.gates)

    def fanouts(self) -> np.ndarray:
        """Array of per-gate fanouts."""
        return np.array([g.fanout for g in self.gates], dtype=int)

    def function_histogram(self) -> Dict[str, int]:
        """Gate count per function."""
        histogram: Dict[str, int] = {}
        for gate in self.gates:
            histogram[gate.function] = histogram.get(gate.function, 0) + 1
        return histogram


class SizingPass:
    """Maps logical gates onto library drive strengths by load.

    Parameters
    ----------
    library:
        Target standard-cell library.  Drive strengths are discovered from
        the library's cell names (``<FUNCTION>_X<drive>``).
    load_per_fanout:
        Load units contributed by each fanout destination.
    drive_capability_per_x:
        Load units one unit of drive strength can handle before the next
        drive strength up is selected.
    """

    def __init__(
        self,
        library: CellLibrary,
        load_per_fanout: float = 1.0,
        drive_capability_per_x: float = 3.0,
    ) -> None:
        self.library = library
        self.load_per_fanout = ensure_positive(load_per_fanout, "load_per_fanout")
        self.drive_capability_per_x = ensure_positive(
            drive_capability_per_x, "drive_capability_per_x"
        )
        self._drives_by_function = self._index_library(library)

    @staticmethod
    def _index_library(library: CellLibrary) -> Dict[str, List[int]]:
        """Map function name -> sorted available drive strengths."""
        drives: Dict[str, List[int]] = {}
        for cell in library:
            name = cell.name
            if "_X" not in name:
                continue
            function, _, suffix = name.rpartition("_X")
            try:
                drive = int(suffix)
            except ValueError:
                continue
            drives.setdefault(function, []).append(drive)
        for function in drives:
            drives[function] = sorted(set(drives[function]))
        return drives

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    def available_functions(self) -> Sequence[str]:
        """Functions for which at least one drive strength exists."""
        return sorted(self._drives_by_function)

    def drives_for(self, function: str) -> Sequence[int]:
        """Available drive strengths for a function."""
        try:
            return tuple(self._drives_by_function[function])
        except KeyError:
            raise KeyError(
                f"function {function!r} not present in library {self.library.name!r}"
            ) from None

    def select_drive(self, gate: LogicalGate) -> int:
        """Smallest drive strength whose capability covers the gate's load."""
        drives = self.drives_for(gate.function)
        load = gate.fanout * self.load_per_fanout
        for drive in drives:
            if drive * self.drive_capability_per_x >= load:
                return drive
        return drives[-1]

    def map_gate(self, gate: LogicalGate) -> str:
        """Library cell name chosen for a logical gate."""
        drive = self.select_drive(gate)
        return f"{gate.function}_X{drive}"

    def run(self, network: GateNetwork, design_name: Optional[str] = None) -> Design:
        """Map a whole network onto library cells, producing a :class:`Design`."""
        design = Design(design_name or network.name, self.library)
        for index, gate in enumerate(network.gates):
            cell_name = self.map_gate(gate)
            design.add(f"{gate.name}_{index}", cell_name)
        return design

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def drive_mix(self, design: Design) -> Dict[int, int]:
        """Instance count per selected drive strength (for sanity checks)."""
        mix: Dict[int, int] = {}
        for instance in design.instances:
            name = instance.cell_name
            if "_X" not in name:
                continue
            drive = int(name.rpartition("_X")[2])
            mix[drive] = mix.get(drive, 0) + 1
        return mix
