"""Reporting layer: table/figure data generators and text rendering.

Every table and figure of the paper has a generator here that returns plain
data structures (dictionaries / arrays) plus a text renderer, so benchmarks
and examples print the same rows and series the paper reports without any
plotting dependency:

* :mod:`repro.reporting.figures` — data series for Fig. 2.1, Fig. 2.2a,
  Fig. 2.2b, Fig. 3.1 and Fig. 3.3.
* :mod:`repro.reporting.tables` — Table 1 and Table 2 generators.
* :mod:`repro.reporting.ascii_plot` — minimal text plotting used by the
  examples to visualise curves in a terminal.
* :mod:`repro.reporting.experiments` — paper-versus-measured records backing
  EXPERIMENTS.md.
"""

from repro.reporting.figures import (
    fig2_1_data,
    fig2_2a_data,
    fig2_2b_data,
    fig3_1_data,
    fig3_3_data,
)
from repro.reporting.tables import (
    chip_wafer_summary_rows,
    render_table,
    table1_data,
    table2_data,
    wafer_map_lines,
    wafer_summary_rows,
)
from repro.reporting.ascii_plot import ascii_line_plot, ascii_bar_chart
from repro.reporting.experiments import ExperimentRecord, experiment_summary

__all__ = [
    "fig2_1_data",
    "fig2_2a_data",
    "fig2_2b_data",
    "fig3_1_data",
    "fig3_3_data",
    "table1_data",
    "table2_data",
    "render_table",
    "wafer_summary_rows",
    "chip_wafer_summary_rows",
    "wafer_map_lines",
    "ascii_line_plot",
    "ascii_bar_chart",
    "ExperimentRecord",
    "experiment_summary",
]
