"""Minimal text-based plotting for terminal output.

The examples display the reproduced curves without any plotting dependency,
so a tiny ASCII renderer is provided: a line plot (optionally log-scaled on
the y axis) and a horizontal bar chart.  Both return strings so they can be
asserted on in tests and piped anywhere.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np


def ascii_line_plot(
    x: Iterable[float],
    y: Iterable[float],
    width: int = 70,
    height: int = 18,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Render a single series as an ASCII scatter/line plot.

    Parameters
    ----------
    x, y:
        Data series (equal length).
    width, height:
        Plot canvas size in characters.
    log_y:
        Plot log10(y) instead of y (non-positive values are dropped).
    title, x_label, y_label:
        Labels included in the rendered text.
    marker:
        Character used for data points.
    """
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have the same length")
    if x_arr.size == 0:
        return "(no data)"

    if log_y:
        keep = y_arr > 0
        x_arr, y_arr = x_arr[keep], np.log10(y_arr[keep])
        if x_arr.size == 0:
            return "(no positive data for log plot)"

    x_min, x_max = float(x_arr.min()), float(x_arr.max())
    y_min, y_max = float(y_arr.min()), float(y_arr.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x_arr, y_arr):
        col = int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((yi - y_min) / (y_max - y_min) * (height - 1)))
        canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_max:.3g}" + (" (log10)" if log_y else "")
    y_bottom = f"{y_min:.3g}" + (" (log10)" if log_y else "")
    lines.append(f"{y_label}: {y_bottom} .. {y_top}")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_min:.3g} .. {x_max:.3g}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Iterable[float],
    width: int = 50,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Render labelled values as a horizontal bar chart."""
    values_arr = np.asarray(list(values), dtype=float)
    labels = list(labels)
    if len(labels) != values_arr.size:
        raise ValueError("labels and values must have the same length")
    if values_arr.size == 0:
        return "(no data)"
    max_value = float(np.max(np.abs(values_arr))) or 1.0
    label_width = max(len(str(label)) for label in labels)

    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values_arr):
        bar_len = int(round(abs(value) / max_value * width))
        bar = "#" * bar_len
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)
