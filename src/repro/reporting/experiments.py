"""Paper-versus-measured experiment records.

EXPERIMENTS.md documents, for every table and figure, what the paper reports
and what this reproduction measures.  The records here provide the
machinery: each :class:`ExperimentRecord` carries the experiment id, the
paper's value, the reproduced value and an agreement note, and
:func:`experiment_summary` renders a collection of them as markdown-ready
text.  The benchmark harness uses these records to print consistent
paper-versus-measured lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class ExperimentRecord:
    """One paper-versus-measured comparison line."""

    experiment_id: str
    description: str
    paper_value: str
    measured_value: str
    note: str = ""

    def as_markdown_row(self) -> str:
        """Render as a Markdown table row."""
        note = self.note or "-"
        return (
            f"| {self.experiment_id} | {self.description} | "
            f"{self.paper_value} | {self.measured_value} | {note} |"
        )


MARKDOWN_HEADER = (
    "| Experiment | Description | Paper | Measured | Note |\n"
    "|---|---|---|---|---|"
)


def experiment_summary(records: Iterable[ExperimentRecord]) -> str:
    """Render experiment records as a Markdown table."""
    lines: List[str] = [MARKDOWN_HEADER]
    for record in records:
        lines.append(record.as_markdown_row())
    return "\n".join(lines)


def format_ratio(measured: float, paper: float) -> str:
    """Human-readable measured/paper ratio annotation."""
    if paper == 0:
        return "paper value is zero"
    ratio = measured / paper
    return f"measured/paper = {ratio:.2f}"


def record_from_numbers(
    experiment_id: str,
    description: str,
    paper_value: float,
    measured_value: float,
    unit: str = "",
    value_format: str = "{:.3g}",
    note: Optional[str] = None,
) -> ExperimentRecord:
    """Build a record from two floats with consistent formatting."""
    suffix = f" {unit}" if unit else ""
    return ExperimentRecord(
        experiment_id=experiment_id,
        description=description,
        paper_value=value_format.format(paper_value) + suffix,
        measured_value=value_format.format(measured_value) + suffix,
        note=note if note is not None else format_ratio(measured_value, paper_value),
    )
