"""Data generators for every figure of the paper's evaluation.

Each function returns a plain dictionary of arrays/values so that
benchmarks, examples and tests can consume the data without a plotting
dependency.  The corresponding paper figure is noted in each docstring.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.constants import TECHNOLOGY_NODES_NM
from repro.core.calibration import CalibratedSetup
from repro.core.correlation import LayoutScenario
from repro.core.failure import CNFETFailureModel, FIG2_1_CORNERS
from repro.core.scaling import penalty_versus_node
from repro.core.optimizer import CoOptimizationFlow
from repro.growth.directional import DirectionalGrowthModel, count_correlation_between_fets
from repro.growth.isotropic import IsotropicGrowthModel
from repro.growth.pitch import pitch_distribution_from_cv
from repro.growth.types import CNTTypeModel
from repro.netlist.design import StatisticalDesign
from repro.netlist.openrisc import openrisc_width_histogram


def fig2_1_data(
    setup: Optional[CalibratedSetup] = None,
    widths_nm: Optional[Sequence[float]] = None,
) -> Dict[str, object]:
    """Fig. 2.1 — CNFET failure probability pF versus width W.

    Returns one curve per processing corner (pm=33 %/pRs=30 %, pm=33 %/pRs=0,
    pm=0/pRs=0), plus the two horizontal budget lines (unrelaxed and relaxed)
    and the widths at which the worst-corner curve crosses them (the paper's
    Wmin ≈ 155 nm and ≈ 103 nm markers).
    """
    setup = setup or CalibratedSetup()
    widths = np.asarray(
        widths_nm if widths_nm is not None else np.arange(20.0, 181.0, 2.0),
        dtype=float,
    )
    curves = {}
    for corner in FIG2_1_CORNERS:
        model = CNFETFailureModel.from_corner(setup.count_model, corner)
        curves[corner.name] = model.failure_probabilities(widths)

    budget = setup.required_pf()
    relaxed_budget = setup.required_pf(setup.relaxation_factor())
    worst = CNFETFailureModel.from_corner(setup.count_model, FIG2_1_CORNERS[0])
    wmin_unrelaxed = worst.width_for_failure_probability(budget)
    wmin_relaxed = worst.width_for_failure_probability(relaxed_budget)

    return {
        "widths_nm": widths,
        "curves": curves,
        "budget_pf": budget,
        "relaxed_budget_pf": relaxed_budget,
        "wmin_unrelaxed_nm": wmin_unrelaxed,
        "wmin_relaxed_nm": wmin_relaxed,
        "relaxation_factor": setup.relaxation_factor(),
    }


def fig2_2a_data(
    design: Optional[StatisticalDesign] = None,
) -> Dict[str, object]:
    """Fig. 2.2a — transistor-width histogram of the OpenRISC case study."""
    design = design or openrisc_width_histogram()
    histogram = design.histogram
    return {
        "bin_centers_nm": histogram.bin_centers_nm,
        "fractions": histogram.fractions,
        "percentages": 100.0 * histogram.fractions,
        "min_size_fraction": design.min_size_fraction,
        "transistor_count": design.transistor_count,
    }


def fig2_2b_data(
    setup: Optional[CalibratedSetup] = None,
    design: Optional[StatisticalDesign] = None,
    nodes_nm: Optional[Sequence[float]] = None,
) -> Dict[str, object]:
    """Fig. 2.2b — upsizing gate-capacitance penalty versus technology node.

    Uses the *uncorrelated* Wmin (the paper's Sec. 2 baseline).
    """
    setup = setup or CalibratedSetup()
    design = design or openrisc_width_histogram(setup.chip_transistor_count)
    nodes = list(nodes_nm) if nodes_nm is not None else list(TECHNOLOGY_NODES_NM)
    wmin = setup.wmin_solver.solve_simplified(design.min_size_device_count).wmin_nm
    study = penalty_versus_node(
        design.widths_nm, design.counts, wmin, nodes_nm=nodes,
        label="Without CNT correlation",
    )
    return {
        "nodes_nm": study.nodes_nm,
        "penalty_percent": study.penalties_percent,
        "wmin_nm": wmin,
    }


def fig3_1_data(
    fet_width_nm: float = 80.0,
    fet_separation_um: float = 1.0,
    n_samples: int = 300,
    seed: int = 31,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, object]:
    """Fig. 3.1 — CNT count correlation between two FETs under three styles.

    The paper's Fig. 3.1 is an illustration (SEM-style sketches); the
    quantitative counterpart reproduced here is the correlation coefficient
    between the working-CNT counts of two equal-width FETs spaced 1 µm apart
    along the growth direction, under (a) uncorrelated growth, (b)
    directional growth with a misaligned (offset) layout and (c) directional
    growth with an aligned-active layout.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    type_model = CNTTypeModel()
    pitch = pitch_distribution_from_cv(4.0, 1.0)
    separation_nm = fet_separation_um * 1000.0
    region_length_nm = separation_nm + 2_000.0

    # (a) uncorrelated growth: independent populations per FET.
    iso = IsotropicGrowthModel(pitch=pitch, type_model=type_model)
    counts_a1 = np.empty(n_samples)
    counts_a2 = np.empty(n_samples)
    for i in range(n_samples):
        counts_a1[i] = iso.sample_device(fet_width_nm, rng).working_count
        counts_a2[i] = iso.sample_device(fet_width_nm, rng).working_count

    # (b) directional growth, misaligned: FET2 offset by half a width in y.
    # (c) directional growth, aligned: same y-window for both FETs.
    directional = DirectionalGrowthModel(pitch=pitch, type_model=type_model)
    counts_b1 = np.empty(n_samples)
    counts_b2 = np.empty(n_samples)
    counts_c1 = np.empty(n_samples)
    counts_c2 = np.empty(n_samples)
    offset = 0.5 * fet_width_nm
    grow_width = fet_width_nm + offset + 20.0
    fet1_x = (500.0, 500.0 + 200.0)
    fet2_x = (500.0 + separation_nm, 500.0 + separation_nm + 200.0)
    for i in range(n_samples):
        region = directional.grow(grow_width, region_length_nm, rng)
        counts_b1[i] = region.working_count_in_window(0.0, fet_width_nm, *fet1_x)
        counts_b2[i] = region.working_count_in_window(offset, offset + fet_width_nm, *fet2_x)
        counts_c1[i] = region.working_count_in_window(0.0, fet_width_nm, *fet1_x)
        counts_c2[i] = region.working_count_in_window(0.0, fet_width_nm, *fet2_x)

    def corr(x: np.ndarray, y: np.ndarray) -> float:
        if np.std(x) == 0 or np.std(y) == 0:
            return float("nan")
        return float(np.corrcoef(x, y)[0, 1])

    return {
        "fet_width_nm": fet_width_nm,
        "fet_separation_um": fet_separation_um,
        "correlation_uncorrelated_growth": corr(counts_a1, counts_a2),
        "correlation_directional_non_aligned": corr(counts_b1, counts_b2),
        "correlation_directional_aligned": corr(counts_c1, counts_c2),
        "n_samples": n_samples,
    }


def fig3_3_data(
    setup: Optional[CalibratedSetup] = None,
    design: Optional[StatisticalDesign] = None,
    nodes_nm: Optional[Sequence[float]] = None,
) -> Dict[str, object]:
    """Fig. 3.3 — penalty versus node, before and after the co-optimization."""
    setup = setup or CalibratedSetup()
    design = design or openrisc_width_histogram(setup.chip_transistor_count)
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    report = flow.run(nodes_nm=nodes_nm)
    return {
        "nodes_nm": report.baseline_scaling.nodes_nm,
        "penalty_without_correlation_percent": report.baseline_scaling.penalties_percent,
        "penalty_with_correlation_percent": report.optimized_scaling.penalties_percent,
        "wmin_without_nm": report.baseline_wmin.wmin_nm,
        "wmin_with_nm": report.optimized_wmin.wmin_nm,
        "relaxation_factor": report.relaxation_factor,
    }
