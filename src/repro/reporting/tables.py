"""Data generators for the paper's tables and a plain-text table renderer."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cells.aligned_active import enforce_aligned_active
from repro.cells.area import area_penalty_report
from repro.cells.commercial65 import build_commercial65_library
from repro.cells.library import CellLibrary
from repro.cells.nangate45 import build_nangate45_library
from repro.core.calibration import CalibratedSetup
from repro.core.correlation import CorrelationParameters, LayoutScenario, RowYieldModel
from repro.core.optimizer import CoOptimizationFlow
from repro.netlist.design import StatisticalDesign
from repro.netlist.openrisc import openrisc_width_histogram


def table1_data(
    setup: Optional[CalibratedSetup] = None,
    design: Optional[StatisticalDesign] = None,
) -> Dict[str, object]:
    """Table 1 — row failure probability pRF for the three growth/layout styles.

    The device-level operating point is the failure probability of a
    minimum-size CNFET upsized to the *baseline* Wmin (the Sec. 2 sizing),
    which is how the paper arrives at pRF values in the 1e-6 / 1e-8 range;
    the three columns then compare

    * completely uncorrelated CNT growth,
    * directional growth with the unmodified (non-aligned) cell library,
    * directional growth with the aligned-active cell library.
    """
    setup = setup or CalibratedSetup()
    design = design or openrisc_width_histogram(setup.chip_transistor_count)
    flow = CoOptimizationFlow(
        setup=setup,
        widths_nm=design.widths_nm,
        counts=design.counts,
        min_size_device_count=design.min_size_device_count,
    )
    baseline = flow.baseline_wmin()
    scenarios = flow.scenario_results(baseline.wmin_nm)

    uncorrelated = scenarios[LayoutScenario.UNCORRELATED_GROWTH]
    directional = scenarios[LayoutScenario.DIRECTIONAL_NON_ALIGNED]
    aligned = scenarios[LayoutScenario.DIRECTIONAL_ALIGNED]
    return {
        "prf_uncorrelated": uncorrelated.row_failure_probability,
        "prf_directional_non_aligned": directional.row_failure_probability,
        "prf_directional_aligned": aligned.row_failure_probability,
        "gain_from_growth": (
            uncorrelated.row_failure_probability
            / directional.row_failure_probability
        ),
        "gain_from_alignment": (
            directional.row_failure_probability
            / aligned.row_failure_probability
        ),
        "total_gain": (
            uncorrelated.row_failure_probability
            / aligned.row_failure_probability
        ),
        "wmin_nm": baseline.wmin_nm,
        "device_pf": uncorrelated.device_failure_probability,
    }


def table2_data(
    setup: Optional[CalibratedSetup] = None,
    nangate_library: Optional[CellLibrary] = None,
    commercial_library: Optional[CellLibrary] = None,
    commercial_min_cnfet_density_per_um: float = 1.5,
) -> List[Dict[str, object]]:
    """Table 2 — area penalty of the aligned-active restriction per library.

    Three columns, as in the paper:

    1. commercial 65 nm library, one aligned active region per polarity,
    2. commercial 65 nm library, two aligned active regions per polarity
       (no area penalty, but the correlation benefit — and hence Wmin — takes
       a hit),
    3. Nangate-like 45 nm library, one aligned active region.

    The 65 nm design is assumed to place its small CNFETs at a slightly lower
    linear density than the 45 nm OpenRISC core (default 1.5 FETs/µm), which
    is why its Wmin comes out a few nanometres larger, mirroring the paper's
    107 nm versus 103 nm.
    """
    setup = setup or CalibratedSetup()
    nangate_library = nangate_library or build_nangate45_library()
    commercial_library = commercial_library or build_commercial65_library()

    rows: List[Dict[str, object]] = []

    # --- 65 nm commercial library -------------------------------------------------
    base_params = setup.correlation
    for groups in (1, 2):
        params = CorrelationParameters(
            cnt_length_um=base_params.cnt_length_um,
            min_cnfet_density_per_um=commercial_min_cnfet_density_per_um,
            alignment_fraction=base_params.alignment_fraction,
            aligned_region_groups=groups,
        )
        row_model = RowYieldModel(parameters=params, count_model=setup.count_model)
        relaxation = row_model.relaxation_factor(setup.required_pf())
        wmin = setup.wmin_solver.solve_simplified(
            setup.min_size_device_count, relaxation_factor=relaxation
        ).wmin_nm
        result = enforce_aligned_active(
            commercial_library, wmin, aligned_region_groups=groups
        )
        report = area_penalty_report(result)
        rows.append(report.as_table_row())

    # --- 45 nm Nangate-like library ------------------------------------------------
    wmin_45 = setup.wmin_correlated_nm()
    result_45 = enforce_aligned_active(nangate_library, wmin_45, aligned_region_groups=1)
    report_45 = area_penalty_report(result_45)
    rows.append(report_45.as_table_row())

    return rows


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3g}",
) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    header = [str(c) for c in columns]
    body = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(columns))),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for r in body:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


SURFACE_SUMMARY_COLUMNS: Sequence[str] = (
    "scenario", "key", "grid", "width_nm", "density_per_um",
    "max_interp_err", "max_stat_se", "method", "rounds",
)


def surface_summary_rows(surfaces: Sequence[object]) -> List[Dict[str, object]]:
    """Summary rows for a set of yield surfaces (``repro sweep`` output).

    Accepts :class:`~repro.surface.surface.YieldSurface` objects (typed as
    ``object`` to keep the reporting layer import-light) and flattens
    their :meth:`describe` payloads into :func:`render_table`-ready rows.
    """
    rows: List[Dict[str, object]] = []
    for surface in surfaces:
        info = surface.describe()
        w_lo, w_hi = info["width_nm_range"]
        d_lo, d_hi = info["cnt_density_per_um_range"]
        rows.append({
            "scenario": info["scenario"],
            "key": info["key"],
            "grid": f"{info['n_width']}x{info['n_density']}",
            "width_nm": f"{w_lo:g}..{w_hi:g}",
            "density_per_um": f"{d_lo:g}..{d_hi:g}",
            "max_interp_err": info["max_interp_error_log"],
            "max_stat_se": info["max_stat_se_log"],
            "method": info["method"],
            "rounds": info["refinement_rounds"],
        })
    return rows


WAFER_SUMMARY_COLUMNS: Sequence[str] = (
    "zone", "dies", "mean_pitch_nm", "mean_yield", "min_yield", "max_yield",
    "good_dies", "good_fraction",
)


def _radial_zone_rows(result: object, zone_row) -> List[Dict[str, object]]:
    """Shared radial-zone binning of a wafer result's dice.

    Splits the usable radius into four equal zones (the last bin is
    closed at the wafer edge) plus a whole-wafer row, and calls
    ``zone_row(label, mask)`` for each non-empty zone — the single
    binning implementation behind :func:`wafer_summary_rows` and
    :func:`chip_wafer_summary_rows`.
    """
    import numpy as np

    dice = list(result.dice)
    if not dice:
        return []
    radius = np.array([d.radius_mm for d in dice])
    edges = np.linspace(0.0, 0.5 * result.wafer_diameter_mm, 5)
    rows = []
    for i in range(4):
        mask = (radius >= edges[i]) & (
            radius < edges[i + 1] if i < 3 else radius <= edges[i + 1]
        )
        if mask.any():
            rows.append(zone_row(f"r {edges[i]:.0f}-{edges[i + 1]:.0f} mm", mask))
    rows.append(zone_row("wafer", np.ones(len(dice), dtype=bool)))
    return rows


def wafer_summary_rows(result: object) -> List[Dict[str, object]]:
    """Radial summary rows for a wafer Monte Carlo run (``repro wafer``).

    Accepts a :class:`~repro.montecarlo.wafer_sim.WaferYieldResult` (typed
    as ``object`` to keep the reporting layer import-light) and bins its
    dice into four radial zones plus a whole-wafer row — die-to-die growth
    drift makes yield degrade towards the edge, which this table makes
    visible without a 2D plot.
    """
    import numpy as np

    dice = list(result.dice)
    if not dice:
        return []
    yields = np.array([d.chip_yield for d in dice])
    pitches = np.array([d.mean_pitch_nm for d in dice])
    good = yields >= result.good_die_threshold

    def zone_row(label: str, mask: np.ndarray) -> Dict[str, object]:
        return {
            "zone": label,
            "dies": int(mask.sum()),
            "mean_pitch_nm": float(pitches[mask].mean()),
            "mean_yield": float(yields[mask].mean()),
            "min_yield": float(yields[mask].min()),
            "max_yield": float(yields[mask].max()),
            "good_dies": int(good[mask].sum()),
            "good_fraction": float(good[mask].mean()),
        }

    return _radial_zone_rows(result, zone_row)


CHIP_WAFER_SUMMARY_COLUMNS: Sequence[str] = (
    "zone", "dies", "mean_pitch_nm", "mean_direct_yield", "mean_eq23_yield",
    "mean_failing_devices", "good_dies", "good_fraction",
)


def chip_wafer_summary_rows(result: object) -> List[Dict[str, object]]:
    """Radial summary rows for a whole-placement chip-wafer run.

    Accepts a :class:`~repro.montecarlo.wafer_sim.ChipWaferResult` (typed
    as ``object`` to keep the reporting layer import-light).  Alongside
    the direct per-die chip yield it reports the Eq. 2.3
    independent-device product — the gap between the two columns is the
    correlation benefit the paper quantifies, zone by zone.
    """
    import numpy as np

    dice = list(result.dice)
    if not dice:
        return []
    yields = np.array([d.chip_yield for d in dice])
    eq23 = np.array([d.eq23_chip_yield for d in dice])
    failing = np.array([d.mean_failing_devices for d in dice])
    pitches = np.array([d.mean_pitch_nm for d in dice])
    good = yields >= result.good_die_threshold

    def zone_row(label: str, mask: np.ndarray) -> Dict[str, object]:
        return {
            "zone": label,
            "dies": int(mask.sum()),
            "mean_pitch_nm": float(pitches[mask].mean()),
            "mean_direct_yield": float(yields[mask].mean()),
            "mean_eq23_yield": float(eq23[mask].mean()),
            "mean_failing_devices": float(failing[mask].mean()),
            "good_dies": int(good[mask].sum()),
            "good_fraction": float(good[mask].mean()),
        }

    return _radial_zone_rows(result, zone_row)


def wafer_map_lines(
    sites: Sequence[object],
    values: Sequence[float],
    threshold: float = 0.5,
) -> List[str]:
    """Crude text yield map: ``#`` good die, ``.`` failing die.

    ``sites`` is any sequence of objects with ``column`` / ``row``
    attributes (die sites or die estimates), ``values`` the per-site
    quantity tested against ``threshold``.  Rows are rendered top-down
    (largest grid row first), mirroring how a wafer map is usually drawn.
    """
    columns = sorted({site.column for site in sites})
    rows = sorted({site.row for site in sites})
    by_pos = {(s.column, s.row): v for s, v in zip(sites, values)}
    lines = []
    for row in reversed(rows):
        cells = []
        for column in columns:
            value = by_pos.get((column, row))
            if value is None:
                cells.append(" ")
            else:
                cells.append("#" if value >= threshold else ".")
        lines.append("".join(cells))
    return lines
