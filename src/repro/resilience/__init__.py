"""Resilient execution layer: checkpoints, supervision, faults, guards.

The spawn-keyed determinism contract of the Monte Carlo tier (see
``docs/guides/determinism.md``) makes robustness *testable*: because every
chunk, die and grid cell derives its random stream from a stateless seed
key, a retried or resumed unit of work reproduces its original result
bit-for-bit.  This package builds the machinery that exploits that
property:

``atomic``
    Write-temp-then-rename primitives and content hashing, so an
    interrupted writer never leaves a truncated artifact behind.
``checkpoint``
    Content-hashed campaign checkpoints: completed units persist as they
    finish and a resumed campaign re-runs only what is missing or
    corrupt (corrupt units are quarantined, never trusted).
``supervise``
    Supervised execution of picklable tasks over an in-process loop or a
    ``ProcessPoolExecutor``, with per-chunk timeouts and bounded
    retry-with-backoff on worker death.
``faults``
    A deterministic, seed-keyed fault-injection harness (kill-worker,
    delay, corrupt-artifact, inject-NaN) driving the chaos test suite.
``guards``
    Numerical guardrails — NaN/inf/negative-probability sentinels that
    raise structured diagnostics instead of letting poisoned values
    propagate silently.
``degrade``
    A monotonic-clock circuit breaker and deadline helper backing the
    serving layer's graceful-degradation ladder.
"""

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_bytes,
    sha256_file,
)
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    CheckpointError,
    CheckpointStore,
    CorruptArtifactError,
    fingerprint_parts,
)
from repro.resilience.degrade import CircuitBreaker, Deadline
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    WorkerCrash,
    corrupt_file,
)
from repro.resilience.guards import (
    NumericalGuardError,
    check_finite,
    check_probabilities,
)
from repro.resilience.supervise import (
    RetryPolicy,
    SeededChunk,
    SupervisorError,
    run_supervised,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "sha256_bytes",
    "sha256_file",
    "CampaignCheckpoint",
    "CheckpointError",
    "CheckpointStore",
    "CorruptArtifactError",
    "fingerprint_parts",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "InjectedFault",
    "WorkerCrash",
    "corrupt_file",
    "NumericalGuardError",
    "check_finite",
    "check_probabilities",
    "RetryPolicy",
    "SeededChunk",
    "SupervisorError",
    "run_supervised",
]
