"""Atomic file writes and content hashing.

Every artifact the campaign layer persists — checkpoint units, manifest
files, surface ``.npz`` archives, ``BENCH_*.json`` records — goes through
the write-temp-then-rename idiom implemented here: the payload is written
to a temporary file *in the destination directory* (so the final
``os.replace`` stays on one filesystem and is atomic), flushed and fsynced,
then renamed over the destination.  A reader therefore observes either the
old complete file or the new complete file, never a truncated mix.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "sha256_bytes",
    "sha256_file",
]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The parent directory is created if missing.  The temporary file name
    embeds the pid so concurrent writers in different processes never
    collide; the loser of a same-destination race is simply overwritten
    by the winner's complete file.

    Returns
    -------
    Path
        The destination path, for chaining.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)
    return path


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: Union[str, Path], payload: object, **kwargs) -> Path:
    """Serialise ``payload`` as JSON and write it atomically.

    Keyword arguments are forwarded to :func:`json.dumps`; the default
    is compact-but-readable (``indent=2``) with a trailing newline so the
    artifacts diff cleanly.
    """
    kwargs.setdefault("indent", 2)
    return atomic_write_text(path, json.dumps(payload, **kwargs) + "\n")


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 digest of an in-memory payload."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: Union[str, Path]) -> str:
    """Hex sha256 digest of a file's contents (streamed in 1 MiB blocks)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()
