"""Content-hashed campaign checkpoints with quarantine-on-corruption.

A *campaign* is any chunked computation whose units of work are
independently derivable — engine trial chunks, wafer dies, surface
refinement rounds.  Each completed unit persists as a single ``.npz``
(arrays plus a canonical-JSON meta blob) under the campaign directory,
and a ``manifest.json`` records the campaign fingerprint and the sha256
of every unit file.  All writes are atomic (:mod:`repro.resilience.atomic`),
so an interrupted campaign leaves only complete units behind.

On resume the manifest is re-read and every unit hash is re-verified;
units that fail verification are moved to ``quarantine/`` and silently
re-run — a checkpoint can *lose* work to corruption but can never poison
a resumed campaign with it.  Because the Monte Carlo tier derives unit
streams from stateless spawn keys, re-running a unit reproduces its
original result bit-for-bit, so resumed campaigns are bitwise identical
to uninterrupted ones.

Checkpoint directory layout::

    <root>/<campaign>/manifest.json     fingerprint + per-unit sha256
    <root>/<campaign>/units/unit-00007.npz
    <root>/<campaign>/quarantine/       corrupt units, moved aside
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    sha256_bytes,
    sha256_file,
)

__all__ = [
    "CheckpointError",
    "CorruptArtifactError",
    "fingerprint_parts",
    "CheckpointStore",
    "CampaignCheckpoint",
]

#: On-disk manifest format version; bumped on incompatible layout changes.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint directory cannot be used for the requested campaign."""


class CorruptArtifactError(CheckpointError):
    """A persisted artifact failed content-hash verification on load."""


def _fingerprint_encode(part: object) -> object:
    """Convert one fingerprint part into a canonically-JSONable value."""
    if isinstance(part, np.ndarray):
        return {
            "__ndarray__": sha256_bytes(part.tobytes()),
            "shape": list(part.shape),
            "dtype": str(part.dtype),
        }
    if isinstance(part, np.generic):
        return part.item()
    if isinstance(part, Mapping):
        return {str(k): _fingerprint_encode(v) for k, v in part.items()}
    if isinstance(part, (list, tuple)):
        return [_fingerprint_encode(v) for v in part]
    if isinstance(part, (str, int, float, bool)) or part is None:
        return part
    return repr(part)


def fingerprint_parts(*parts: object) -> str:
    """Hex sha256 identity of a campaign configuration.

    Accepts any mix of scalars, strings, mappings, sequences and numpy
    arrays (hashed by raw bytes, shape and dtype); everything else falls
    back to ``repr``.  Two campaigns share a checkpoint only when their
    fingerprints match, which is what makes resuming into the wrong
    checkpoint directory an error rather than silent corruption.
    """
    payload = json.dumps(
        [_fingerprint_encode(p) for p in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return sha256_bytes(payload.encode("utf-8"))


class CheckpointStore:
    """A root directory holding one subdirectory per named campaign."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def campaign(
        self,
        name: str,
        fingerprint: str,
        total_units: int,
        resume: bool = True,
    ) -> "CampaignCheckpoint":
        """Open (or create) the checkpoint for one campaign.

        Parameters
        ----------
        name:
            Campaign directory name under the store root.
        fingerprint:
            Configuration identity from :func:`fingerprint_parts`; a
            mismatch against an existing manifest raises
            :class:`CheckpointError` when resuming.
        total_units:
            Number of units the campaign will produce (recorded in the
            manifest for debris inspection).
        resume:
            When ``False``, any existing units are discarded and the
            campaign starts from scratch.
        """
        return CampaignCheckpoint(
            self.root / name, fingerprint, total_units, resume=resume
        )


class CampaignCheckpoint:
    """Per-campaign persistence of completed units, verified on load.

    Instances are created through :meth:`CheckpointStore.campaign`.  The
    ``quarantined`` attribute lists unit files moved aside after failing
    hash verification during this process's lifetime.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        total_units: int,
        resume: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.total_units = int(total_units)
        self.quarantined: List[Path] = []
        self._units_dir = self.directory / "units"
        self._quarantine_dir = self.directory / "quarantine"
        self._manifest_path = self.directory / "manifest.json"
        self._units: Dict[int, Dict[str, str]] = {}
        self._units_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load_manifest()
        else:
            for stale in sorted(self._units_dir.glob("*.npz")):
                stale.unlink()
            if self._manifest_path.exists():
                self._manifest_path.unlink()
        self._write_manifest()

    @property
    def units_dir(self) -> Path:
        """Directory holding the persisted unit files."""
        return self._units_dir

    @property
    def quarantine_dir(self) -> Path:
        """Directory corrupt units are moved into."""
        return self._quarantine_dir

    @property
    def manifest_path(self) -> Path:
        """Path of the campaign manifest JSON."""
        return self._manifest_path

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def _load_manifest(self) -> None:
        if not self._manifest_path.exists():
            return
        try:
            payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            version = payload["format_version"]
            fingerprint = payload["fingerprint"]
            units = {int(k): dict(v) for k, v in payload["units"].items()}
        except (ValueError, KeyError, TypeError):
            # A torn manifest cannot happen through the atomic writer, but
            # a foreign or hand-edited file can: move it aside and start
            # from the unit files' own hashes (none trusted).
            self._quarantine(self._manifest_path)
            return
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint manifest {self._manifest_path} has format "
                f"version {version!r}; this build reads "
                f"{CHECKPOINT_FORMAT_VERSION}"
            )
        if fingerprint != self.fingerprint:
            raise CheckpointError(
                f"checkpoint at {self.directory} belongs to a different "
                f"campaign (fingerprint {fingerprint[:12]}… != "
                f"{self.fingerprint[:12]}…); pass resume=False or use a "
                "fresh --checkpoint-dir to discard it"
            )
        self._units = units

    def _write_manifest(self) -> None:
        atomic_write_json(
            self._manifest_path,
            {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "fingerprint": self.fingerprint,
                "total_units": self.total_units,
                "units": {
                    str(k): self._units[k] for k in sorted(self._units)
                },
            },
            sort_keys=True,
        )

    def _quarantine(self, path: Path) -> None:
        self._quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self._quarantine_dir / path.name
        path.replace(target)
        self.quarantined.append(target)

    # ------------------------------------------------------------------
    # Units
    # ------------------------------------------------------------------

    def _unit_path(self, unit: int) -> Path:
        return self._units_dir / f"unit-{unit:05d}.npz"

    def completed_units(self) -> List[int]:
        """Unit indices recorded in the manifest (not yet re-verified)."""
        return sorted(self._units)

    def save_unit(
        self,
        unit: int,
        arrays: Optional[Mapping[str, np.ndarray]] = None,
        meta: object = None,
    ) -> Path:
        """Persist one completed unit atomically and record its hash.

        Parameters
        ----------
        unit:
            Zero-based unit index within the campaign.
        arrays:
            Named numpy arrays (the bulk payload), stored verbatim.
        meta:
            Any JSON-serialisable sidecar (scalar results, dataclass
            dicts); round-trips exactly for floats via ``repr`` grisu.
        """
        buffer = io.BytesIO()
        blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        np.savez(
            buffer,
            __meta__=np.frombuffer(blob, dtype=np.uint8),
            **dict(arrays or {}),
        )
        data = buffer.getvalue()
        path = atomic_write_bytes(self._unit_path(unit), data)
        self._units[int(unit)] = {
            "file": path.name,
            "sha256": sha256_bytes(data),
        }
        self._write_manifest()
        return path

    def load_unit(
        self, unit: int
    ) -> Optional[Tuple[Dict[str, np.ndarray], object]]:
        """Load one unit, verifying its content hash.

        Returns ``None`` when the unit was never saved.  A unit whose
        file is missing or fails verification is quarantined, dropped
        from the manifest, and reported as ``None`` so the caller simply
        recomputes it.
        """
        record = self._units.get(int(unit))
        if record is None:
            return None
        path = self._units_dir / record["file"]
        if not path.exists() or sha256_file(path) != record["sha256"]:
            if path.exists():
                self._quarantine(path)
            del self._units[int(unit)]
            self._write_manifest()
            return None
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "__meta__"
            }
        return arrays, meta

    def verified_units(
        self,
    ) -> Dict[int, Tuple[Dict[str, np.ndarray], object]]:
        """Load and hash-verify every recorded unit.

        Corrupt or missing units are quarantined and omitted — the
        resuming campaign recomputes exactly those.
        """
        results: Dict[int, Tuple[Dict[str, np.ndarray], object]] = {}
        for unit in self.completed_units():
            loaded = self.load_unit(unit)
            if loaded is not None:
                results[unit] = loaded
        return results
