"""Degradation primitives: circuit breaker and deadline budget.

The serving layer's fallback ladder (interpolated → exact closed-form →
stale cache) needs two small pieces of mechanism that are independent of
yield semantics: a :class:`CircuitBreaker` that stops hammering a failing
artifact store for a cooldown period, and a :class:`Deadline` that turns
a per-query wall-clock budget into cheap "is there time left?" checks.
Both use :func:`time.monotonic` so wall-clock adjustments never confuse
them.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["CircuitBreaker", "Deadline"]


class CircuitBreaker:
    """Open after consecutive failures, close again after a cooldown.

    The breaker guards a fallible resource (the surface store).  Every
    failure increments a consecutive-failure count; reaching
    ``failure_threshold`` *opens* the breaker, and while open
    :meth:`allow` returns ``False`` so callers skip the resource and go
    straight to their degraded path.  After ``cooldown_s`` seconds the
    next :meth:`allow` lets one probe through (half-open); a success
    closes the breaker, another failure re-opens it for a full cooldown.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._failures = 0
        self._opened_at: Optional[float] = None

    @property
    def is_open(self) -> bool:
        """Whether the breaker currently rejects calls (cooldown active)."""
        if self._opened_at is None:
            return False
        if time.monotonic() - self._opened_at >= self.cooldown_s:
            return False  # cooldown elapsed: half-open, allow a probe
        return True

    def allow(self) -> bool:
        """Whether the caller should attempt the guarded resource."""
        return not self.is_open

    def record_success(self) -> None:
        """Reset the breaker after a successful call."""
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """Count a failure, opening the breaker at the threshold."""
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = time.monotonic()

    def stats(self) -> dict:
        """Snapshot of breaker state for diagnostics."""
        return {
            "failures": self._failures,
            "open": self.is_open,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
        }


class Deadline:
    """A monotonic wall-clock budget for one request.

    ``Deadline(None)`` never expires, so callers can thread a deadline
    unconditionally without branching on its presence.
    """

    def __init__(self, budget_s: Optional[float]) -> None:
        self.budget_s = budget_s
        self._start = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.monotonic() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` for an unbounded deadline)."""
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        """Whether the budget has been used up."""
        return self.remaining() <= 0.0
