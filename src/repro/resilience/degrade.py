"""Degradation primitives: circuit breaker and deadline budget.

The serving layer's fallback ladder (interpolated → exact closed-form →
stale cache) needs two small pieces of mechanism that are independent of
yield semantics: a :class:`CircuitBreaker` that stops hammering a failing
artifact store for a cooldown period, and a :class:`Deadline` that turns
a per-query wall-clock budget into cheap "is there time left?" checks.
Both use :func:`time.monotonic` so wall-clock adjustments never confuse
them.

The breaker is thread-safe — the network service tier
(:mod:`repro.service`) shares one breaker across every concurrent
request — and its half-open state admits exactly **one** probe after the
cooldown: the first caller through :meth:`CircuitBreaker.allow` gets to
try the resource while everyone else keeps taking the degraded path
until that probe settles (success, failure, or an explicit
:meth:`CircuitBreaker.release`).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

__all__ = ["CircuitBreaker", "Deadline"]


class CircuitBreaker:
    """Open after consecutive failures, close again after a cooldown.

    The breaker guards a fallible resource (the surface store).  Every
    failure increments a consecutive-failure count; reaching
    ``failure_threshold`` *opens* the breaker, and while open
    :meth:`allow` returns ``False`` so callers skip the resource and go
    straight to their degraded path.  After ``cooldown_s`` seconds the
    breaker is *half-open*: the next :meth:`allow` lets exactly one
    probe through while concurrent callers keep being rejected.  The
    probe settles the breaker — :meth:`record_success` closes it,
    :meth:`record_failure` re-opens it for a full cooldown, and
    :meth:`release` returns it to half-open (for probes whose outcome
    says nothing about the resource's health, e.g. a missing key).

    All methods are thread-safe; many serving threads may share one
    breaker.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown_s: float = 30.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    def _state_locked(self) -> str:
        """Current state name; caller must hold the lock."""
        if self._opened_at is None:
            return "closed"
        if time.monotonic() - self._opened_at >= self.cooldown_s:
            return "half_open"
        return "open"

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` right now."""
        with self._lock:
            return self._state_locked()

    @property
    def is_open(self) -> bool:
        """Whether the breaker currently rejects calls (cooldown active)."""
        with self._lock:
            return self._state_locked() == "open"

    def allow(self) -> bool:
        """Whether the caller should attempt the guarded resource.

        Closed: always ``True``.  Open: always ``False``.  Half-open
        (cooldown elapsed): ``True`` for exactly one caller — the probe —
        and ``False`` for everyone else until that probe settles via
        :meth:`record_success`, :meth:`record_failure`, or
        :meth:`release`.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """Reset the breaker after a successful call."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """Count a failure, opening the breaker at the threshold.

        A failed half-open probe re-opens the breaker for a full
        cooldown.
        """
        with self._lock:
            self._probing = False
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = time.monotonic()

    def release(self) -> None:
        """Release a granted probe without recording an outcome.

        For probes that neither succeeded nor failed the *resource* —
        e.g. the store answered "no such key", which proves nothing
        about artifact health either way.  The breaker returns to
        half-open so the next caller may probe again.
        """
        with self._lock:
            self._probing = False

    def stats(self) -> dict:
        """Snapshot of breaker state for diagnostics."""
        with self._lock:
            return {
                "failures": self._failures,
                "open": self._state_locked() == "open",
                "state": self._state_locked(),
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
            }


class Deadline:
    """A monotonic wall-clock budget for one request.

    ``Deadline(None)`` never expires, so callers can thread a deadline
    unconditionally without branching on its presence.
    """

    def __init__(self, budget_s: Optional[float]) -> None:
        self.budget_s = budget_s
        self._start = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.monotonic() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` for an unbounded deadline)."""
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    @property
    def expired(self) -> bool:
        """Whether the budget has been used up."""
        return self.remaining() <= 0.0
