"""Deterministic, seed-keyed fault injection for the chaos test suite.

A :class:`FaultPlan` decides — purely from ``(seed, unit, attempt)`` spawn
keys, never from wall-clock or process state — whether a unit of work is
killed, delayed, or has NaN injected into its result, and
:func:`corrupt_file` deterministically flips bytes in a persisted
artifact.  Determinism matters twice over: chaos tests reproduce exactly
under ``pytest -x``, and a killed unit's *successful retry* must see the
fault plan decline to fire again (keyed on the attempt number) without
any shared mutable state between supervisor and workers.

Fault decisions are derived from ``default_rng([seed, FAULT_STREAM_TAG,
kind, unit, attempt])`` so they are independent of each other and of
every simulation stream (which use their own tags).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Tuple, Union

import numpy as np

__all__ = [
    "FAULT_STREAM_TAG",
    "InjectedFault",
    "WorkerCrash",
    "FaultPlan",
    "FaultyTask",
    "corrupt_file",
]

#: Spawn-key tag isolating fault-decision streams from simulation streams.
FAULT_STREAM_TAG = 0xFA0175

_KIND_KILL = 1
_KIND_DELAY = 2
_KIND_NAN = 3
_KIND_CORRUPT = 4


class InjectedFault(RuntimeError):
    """Base class for failures raised by the fault-injection harness."""


class WorkerCrash(InjectedFault):
    """An injected in-worker crash (the ``raise`` flavour of kill)."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults, keyed by spawn keys.

    Attributes
    ----------
    seed:
        Root of every fault-decision stream.
    kill_units:
        Unit indices whose first ``kill_attempts`` executions are killed
        (targeted faults — the workhorse of the chaos suite).
    kill_attempts:
        How many leading attempts of each targeted unit die before the
        unit is allowed to succeed; pair with a retry budget below this
        to abort a campaign mid-run deterministically.
    kill_probability:
        Additional random kill rate per ``(unit, attempt)``.
    kill_mode:
        ``"raise"`` raises :class:`WorkerCrash` inside the worker;
        ``"exit"`` calls ``os._exit`` — in a process pool this breaks
        the pool exactly like a real worker death.  In-process
        supervisors always downgrade ``"exit"`` to ``"raise"``.
    delay_units / delay_s:
        Units whose execution sleeps ``delay_s`` seconds first (for
        exercising timeouts).
    nan_units:
        Units whose *result* gets one NaN injected into its first float
        array, for driving the numerical guardrails.
    """

    seed: int = 0
    kill_units: Tuple[int, ...] = field(default_factory=tuple)
    kill_attempts: int = 1
    kill_probability: float = 0.0
    kill_mode: str = "raise"
    delay_units: Tuple[int, ...] = field(default_factory=tuple)
    delay_s: float = 0.0
    nan_units: Tuple[int, ...] = field(default_factory=tuple)

    def _stream(self, kind: int, unit: int, attempt: int) -> np.random.Generator:
        return np.random.default_rng(
            [int(self.seed), FAULT_STREAM_TAG, kind, int(unit), int(attempt)]
        )

    def should_kill(self, unit: int, attempt: int) -> bool:
        """Whether execution ``attempt`` of ``unit`` is killed."""
        if unit in self.kill_units and attempt < self.kill_attempts:
            return True
        if self.kill_probability > 0.0:
            draw = self._stream(_KIND_KILL, unit, attempt).random()
            return bool(draw < self.kill_probability)
        return False

    def delay_for(self, unit: int, attempt: int) -> float:
        """Seconds of injected startup delay for this execution."""
        del attempt  # delays are per-unit; the key keeps the API uniform
        return self.delay_s if unit in self.delay_units else 0.0

    def should_inject_nan(self, unit: int, attempt: int) -> bool:
        """Whether this execution's result gets a NaN injected."""
        del attempt
        return unit in self.nan_units


def _poison_first_float_array(result: Any) -> Any:
    """Return ``result`` with one NaN written into its first float array."""
    if isinstance(result, np.ndarray):
        if result.dtype.kind == "f" and result.size:
            poisoned = result.copy()
            poisoned.flat[0] = np.nan
            return poisoned
        return result
    if isinstance(result, tuple):
        items = list(result)
        for i, item in enumerate(items):
            poisoned = _poison_first_float_array(item)
            if poisoned is not item:
                items[i] = poisoned
                return tuple(items)
        return result
    return result


@dataclass(frozen=True)
class FaultyTask:
    """Picklable wrapper executing a task under a :class:`FaultPlan`.

    The supervisor wraps each submission with the unit index and attempt
    number, so the plan's decisions travel with the task into pool
    workers without shared state.
    """

    task: Callable[[], Any]
    plan: FaultPlan
    unit: int
    attempt: int
    allow_exit: bool = True

    def __call__(self) -> Any:
        delay = self.plan.delay_for(self.unit, self.attempt)
        if delay > 0.0:
            time.sleep(delay)
        if self.plan.should_kill(self.unit, self.attempt):
            if self.plan.kill_mode == "exit" and self.allow_exit:
                os._exit(17)
            raise WorkerCrash(
                f"injected kill: unit {self.unit} attempt {self.attempt}"
            )
        result = self.task()
        if self.plan.should_inject_nan(self.unit, self.attempt):
            result = _poison_first_float_array(result)
        return result


def corrupt_file(
    path: Union[str, Path], seed: int = 0, n_bytes: int = 16
) -> Path:
    """Deterministically flip ``n_bytes`` bytes in the middle of a file.

    Simulates silent media corruption: offsets are drawn from the
    seed-keyed fault stream within the middle half of the file (so
    archive headers usually survive and the corruption is only caught by
    content-hash verification, the interesting failure mode).
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    rng = np.random.default_rng([int(seed), FAULT_STREAM_TAG, _KIND_CORRUPT])
    lo, hi = len(data) // 4, max(len(data) // 4 + 1, 3 * len(data) // 4)
    offsets = rng.integers(lo, hi, size=min(n_bytes, len(data)))
    for offset in offsets:
        data[int(offset)] ^= 0xFF
    path.write_bytes(bytes(data))
    return path
