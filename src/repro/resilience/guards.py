"""Numerical guardrails: structured diagnostics for poisoned values.

Monte Carlo campaigns and the serving layer move probabilities and log
weights through many aggregation steps; a NaN injected anywhere (a bad
worker, a corrupt artifact, an overflowed tilt) silently poisons every
downstream statistic.  The guards here are cheap single-pass checks
applied at *aggregation boundaries* — per-chunk results, per-die
estimates, per-query bounds — that raise :class:`NumericalGuardError`
with enough structured context (where, what kind, how many) to locate
the poisoned unit instead of shipping a NaN yield to a caller.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["NumericalGuardError", "check_finite", "check_probabilities"]


class NumericalGuardError(ValueError):
    """A guarded array failed validation; carries structured context.

    Attributes
    ----------
    context:
        Dotted location label, e.g. ``"chip_mc.failing_devices"``.
    kind:
        The violation class: ``"nan"``, ``"inf"``, ``"negative"`` or
        ``"above_one"``.
    count / total:
        Number of offending elements and the array size.
    """

    def __init__(self, context: str, kind: str, count: int, total: int) -> None:
        super().__init__(
            f"numerical guard tripped at {context}: {count}/{total} "
            f"element(s) are {kind}"
        )
        self.context = context
        self.kind = kind
        self.count = count
        self.total = total


def check_finite(
    array: np.ndarray,
    context: str,
    allow_inf: bool = False,
) -> np.ndarray:
    """Raise :class:`NumericalGuardError` if ``array`` holds NaN (or inf).

    Parameters
    ----------
    array:
        Values to validate (validated as float; returned unchanged).
    context:
        Location label recorded on the diagnostic.
    allow_inf:
        Permit infinities (legitimate for, e.g., unbounded standard
        errors) while still rejecting NaN.
    """
    values = np.asarray(array)
    nan_count = int(np.count_nonzero(np.isnan(values)))
    if nan_count:
        raise NumericalGuardError(context, "nan", nan_count, values.size)
    if not allow_inf:
        inf_count = int(np.count_nonzero(np.isinf(values)))
        if inf_count:
            raise NumericalGuardError(context, "inf", inf_count, values.size)
    return array


def check_probabilities(
    array: np.ndarray,
    context: str,
    upper: Optional[float] = 1.0,
) -> np.ndarray:
    """Validate an array of probabilities: finite, non-negative, bounded.

    Parameters
    ----------
    array:
        Probability values (returned unchanged when valid).
    context:
        Location label recorded on the diagnostic.
    upper:
        Inclusive upper bound; ``None`` skips the bound check (for
        unnormalised weights that are only required non-negative).
    """
    values = np.asarray(array)
    check_finite(values, context)
    negative = int(np.count_nonzero(values < 0.0))
    if negative:
        raise NumericalGuardError(context, "negative", negative, values.size)
    if upper is not None:
        above = int(np.count_nonzero(values > upper))
        if above:
            raise NumericalGuardError(context, "above_one", above, values.size)
    return array
